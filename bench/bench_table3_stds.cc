// Table 3: STDS execution time (msec) on the synthetic dataset while
// varying (a) feature-set cardinality, (b) object cardinality, (c) the
// number of feature sets c, and (d) the number of indexed keywords —
// for both the modified IR2-tree and the SRT-index.
//
// Paper reference (unscaled): STDS needs >13 s per query at the defaults
// and scales poorly; SRT is consistently somewhat faster than IR2.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

constexpr uint32_t kDefaultCard = 100'000;
constexpr uint32_t kDefaultVocab = 128;
constexpr uint32_t kDefaultC = 2;

void RunRow(const BenchEnv& env, const std::string& label, Dataset ds) {
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStds, env);
    PrintBarRow(label, KindName(kind), "STDS", r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/5);
  std::printf("Table 3: STDS execution time, synthetic dataset "
              "(scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);

  PrintTitle("Table 3a: varying |F_i|");
  PrintBarHeader();
  for (uint32_t f : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|F_i|=" + std::to_string(Scaled(f, env)),
           MakeSynthetic(env, kDefaultCard, f, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Table 3b: varying |O|");
  PrintBarHeader();
  for (uint32_t o : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|O|=" + std::to_string(Scaled(o, env)),
           MakeSynthetic(env, o, kDefaultCard, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Table 3c: varying number of feature sets c");
  PrintBarHeader();
  for (uint32_t c : {2u, 3u, 4u, 5u}) {
    RunRow(env, "c=" + std::to_string(c),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, c, kDefaultVocab));
  }

  PrintTitle("Table 3d: varying indexed keywords");
  PrintBarHeader();
  for (uint32_t w : {64u, 128u, 192u, 256u}) {
    RunRow(env, "keywords=" + std::to_string(w),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, kDefaultC, w));
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
