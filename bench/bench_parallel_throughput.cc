// Parallel query throughput: queries/sec vs worker thread count.
//
// Not a paper figure — the paper's evaluation is single-threaded — but the
// engine's read path is immutable after build (DESIGN.md §11), so one
// engine can serve concurrent queries.  This bench fans the same random
// workload across N ∈ {1, 2, 4, 8} threads with ParallelWorkloadRunner and
// reports wall time, throughput, latency percentiles (from the per-thread
// histograms, DESIGN.md §12), and the scaling factor over the
// single-thread run.  Per-query page-read counts are identical across all
// rows (cold-cache sessions), so the speedup is pure CPU parallelism.
//
// Setting STPQ_JSON_OUT=<path> additionally writes every row to <path> as
// a JSON array, for CI artifact collection and cross-run comparison.
#include "bench_common.h"

#include <fstream>

#include "core/workload.h"

namespace stpq {
namespace bench {
namespace {

struct Row {
  const char* algo;
  size_t threads;
  double wall_ms;
  double qps;
  double speedup;
  double reads_per_query;
  double p50_ms;
  double p95_ms;
  double p99_ms;
};

void RunAlgo(const Dataset& ds, const std::vector<Query>& queries,
             Algorithm algorithm, const BenchEnv& env,
             std::vector<Row>& rows) {
  Engine engine = MakeEngine(ds, FeatureIndexKind::kSrt);
  ParallelWorkloadRunner runner(&engine);
  ParallelWorkloadOptions opts;
  opts.algorithm = algorithm;
  opts.io_unit_cost_ms = env.io_ms;

  double base_qps = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    opts.threads = threads;
    Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
    const ParallelWorkloadReport& r = report.value();
    if (threads == 1) base_qps = r.queries_per_sec;
    Row row{algorithm == Algorithm::kStds ? "STDS" : "STPS",
            threads,
            r.wall_ms,
            r.queries_per_sec,
            base_qps > 0.0 ? r.queries_per_sec / base_qps : 0.0,
            r.summary.mean_page_reads,
            r.latency.PercentileMs(0.50),
            r.latency.PercentileMs(0.95),
            r.latency.PercentileMs(0.99)};
    std::printf("%-6s %8zu %12.2f %12.1f %10.2fx %14.1f %9.2f %9.2f %9.2f\n",
                row.algo, row.threads, row.wall_ms, row.qps, row.speedup,
                row.reads_per_query, row.p50_ms, row.p95_ms, row.p99_ms);
    rows.push_back(row);
  }
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write STPQ_JSON_OUT file '%s'\n",
                 path.c_str());
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"algo\": \"" << r.algo << "\", \"threads\": " << r.threads
        << ", \"wall_ms\": " << r.wall_ms << ", \"queries_per_sec\": " << r.qps
        << ", \"speedup\": " << r.speedup
        << ", \"reads_per_query\": " << r.reads_per_query
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/200);
  std::printf("Parallel query throughput, synthetic dataset "
              "(scale=%.2f, %u queries)\n",
              env.scale, env.queries);
  Dataset ds = MakeSynthetic(env, 100'000, 100'000, 2, 128);
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  std::printf("%-6s %8s %12s %12s %11s %14s %9s %9s %9s\n", "algo", "threads",
              "wall_ms", "queries/s", "speedup", "reads/query", "p50_ms",
              "p95_ms", "p99_ms");
  std::vector<Row> rows;
  RunAlgo(ds, queries, Algorithm::kStps, env, rows);
  RunAlgo(ds, queries, Algorithm::kStds, env, rows);
  if (const char* path = std::getenv("STPQ_JSON_OUT")) WriteJson(path, rows);
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
