// Parallel query throughput: queries/sec vs worker thread count.
//
// Not a paper figure — the paper's evaluation is single-threaded — but the
// engine's read path is immutable after build (DESIGN.md §11), so one
// engine can serve concurrent queries.  This bench fans the same random
// workload across N ∈ {1, 2, 4, 8} threads with ParallelWorkloadRunner and
// reports wall time, throughput, and the scaling factor over the
// single-thread run.  Per-query page-read counts are identical across all
// rows (cold-cache sessions), so the speedup is pure CPU parallelism.
#include "bench_common.h"

#include "core/workload.h"

namespace stpq {
namespace bench {
namespace {

void RunAlgo(const Dataset& ds, const std::vector<Query>& queries,
             Algorithm algorithm, const BenchEnv& env) {
  Engine engine = MakeEngine(ds, FeatureIndexKind::kSrt);
  ParallelWorkloadRunner runner(&engine);
  ParallelWorkloadOptions opts;
  opts.algorithm = algorithm;
  opts.io_unit_cost_ms = env.io_ms;

  double base_qps = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    opts.threads = threads;
    Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
    const ParallelWorkloadReport& r = report.value();
    if (threads == 1) base_qps = r.queries_per_sec;
    std::printf("%-6s %8zu %12.2f %12.1f %10.2fx %14.1f\n",
                algorithm == Algorithm::kStds ? "STDS" : "STPS", threads,
                r.wall_ms, r.queries_per_sec,
                base_qps > 0.0 ? r.queries_per_sec / base_qps : 0.0,
                r.summary.mean_page_reads);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/200);
  std::printf("Parallel query throughput, synthetic dataset "
              "(scale=%.2f, %u queries)\n",
              env.scale, env.queries);
  Dataset ds = MakeSynthetic(env, 100'000, 100'000, 2, 128);
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  std::printf("%-6s %8s %12s %12s %11s %14s\n", "algo", "threads", "wall_ms",
              "queries/s", "speedup", "reads/query");
  RunAlgo(ds, queries, Algorithm::kStps, env);
  RunAlgo(ds, queries, Algorithm::kStds, env);
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
