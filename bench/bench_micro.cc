// Micro-benchmarks (google-benchmark) for the substrate operations:
// Hilbert transcoding, keyword-set algebra, signatures, R-tree queries,
// and the buffer pool.
#include <benchmark/benchmark.h>

#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "text/keyword_set.h"
#include "text/signature.h"
#include "util/rng.h"

namespace stpq {
namespace {

void BM_HilbertKey2D(benchmark::State& state) {
  uint32_t coords[2] = {12345, 54321};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertKey(coords, 16, 2));
    coords[0] += 7;
  }
}
BENCHMARK(BM_HilbertKey2D);

void BM_HilbertKey4D(benchmark::State& state) {
  uint32_t coords[4] = {123, 456, 789, 1011};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertKey(coords, 16, 4));
    coords[2] += 3;
  }
}
BENCHMARK(BM_HilbertKey4D);

void BM_EncodeKeywords(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  KeywordSet set(w);
  for (int i = 0; i < 4; ++i) {
    set.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeKeywords(set));
  }
}
BENCHMARK(BM_EncodeKeywords)->Arg(64)->Arg(128)->Arg(256);

void BM_AggregateHilbert(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  KeywordSet a(w), b(w);
  for (int i = 0; i < 4; ++i) {
    a.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    b.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  HilbertValue ha = EncodeKeywords(a), hb = EncodeKeywords(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AggregateHilbert(ha, hb, w));
  }
}
BENCHMARK(BM_AggregateHilbert)->Arg(128)->Arg(256);

void BM_Jaccard(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  KeywordSet a(w), b(w);
  for (int i = 0; i < 4; ++i) {
    a.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    b.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Jaccard(b));
  }
}
BENCHMARK(BM_Jaccard)->Arg(128)->Arg(256);

void BM_SignatureMatch(benchmark::State& state) {
  SignatureScheme scheme(256, 3);
  Rng rng(4);
  KeywordSet set(128), query(128);
  for (int i = 0; i < 4; ++i) {
    set.Insert(static_cast<TermId>(rng.UniformInt(0, 127)));
    query.Insert(static_cast<TermId>(rng.UniformInt(0, 127)));
  }
  Signature sig = scheme.SetSignature(set);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.UpperBoundIntersect(sig, query));
  }
}
BENCHMARK(BM_SignatureMatch);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<RTree<2>::Entry> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({PointRect({rng.Uniform(), rng.Uniform()}),
                   static_cast<uint32_t>(i),
                   {}});
  }
  SortByHilbertKey<2, NoAug>(&pts, ComputeDomain<2, NoAug>(pts), 16);
  RTreeOptions opts;
  opts.max_entries = 64;
  RTree<2> tree(opts);
  tree.BulkLoadSorted(pts);
  uint64_t found = 0;
  for (auto _ : state) {
    double x = rng.Uniform(0, 0.95);
    double y = rng.Uniform(0, 0.95);
    tree.ForEachInRange(MakeRect2(x, y, x + 0.02, y + 0.02),
                        [&](uint32_t, const Rect2&, const NoAug&) {
                          ++found;
                        });
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10'000)->Arg(100'000);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(6);
  RTreeOptions opts;
  opts.max_entries = 64;
  for (auto _ : state) {
    state.PauseTiming();
    RTree<2> tree(opts);
    state.ResumeTiming();
    for (uint32_t i = 0; i < 1000; ++i) {
      tree.Insert(PointRect({rng.Uniform(), rng.Uniform()}), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeInsert)->Unit(benchmark::kMicrosecond);

void BM_BufferPoolAccess(benchmark::State& state) {
  BufferPool pool(1024);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(rng.UniformInt(0, 4095)));
  }
}
BENCHMARK(BM_BufferPoolAccess);

}  // namespace
}  // namespace stpq

BENCHMARK_MAIN();
