// Micro-benchmarks (google-benchmark) for the substrate operations:
// Hilbert transcoding, keyword-set algebra, signatures, R-tree queries,
// and the buffer pool.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/compute_score.h"
#include "gen/synthetic.h"
#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "index/srt_index.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "text/keyword_set.h"
#include "text/signature.h"
#include "util/rng.h"

namespace stpq {
namespace {

void BM_HilbertKey2D(benchmark::State& state) {
  uint32_t coords[2] = {12345, 54321};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertKey(coords, 16, 2));
    coords[0] += 7;
  }
}
BENCHMARK(BM_HilbertKey2D);

void BM_HilbertKey4D(benchmark::State& state) {
  uint32_t coords[4] = {123, 456, 789, 1011};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertKey(coords, 16, 4));
    coords[2] += 3;
  }
}
BENCHMARK(BM_HilbertKey4D);

void BM_EncodeKeywords(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  KeywordSet set(w);
  for (int i = 0; i < 4; ++i) {
    set.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeKeywords(set));
  }
}
BENCHMARK(BM_EncodeKeywords)->Arg(64)->Arg(128)->Arg(256);

void BM_AggregateHilbert(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  KeywordSet a(w), b(w);
  for (int i = 0; i < 4; ++i) {
    a.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    b.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  HilbertValue ha = EncodeKeywords(a), hb = EncodeKeywords(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AggregateHilbert(ha, hb, w));
  }
}
BENCHMARK(BM_AggregateHilbert)->Arg(128)->Arg(256);

void BM_Jaccard(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  KeywordSet a(w), b(w);
  for (int i = 0; i < 4; ++i) {
    a.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    b.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Jaccard(b));
  }
}
BENCHMARK(BM_Jaccard)->Arg(128)->Arg(256);

void BM_SignatureMatch(benchmark::State& state) {
  SignatureScheme scheme(256, 3);
  Rng rng(4);
  KeywordSet set(128), query(128);
  for (int i = 0; i < 4; ++i) {
    set.Insert(static_cast<TermId>(rng.UniformInt(0, 127)));
    query.Insert(static_cast<TermId>(rng.UniformInt(0, 127)));
  }
  Signature sig = scheme.SetSignature(set);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.UpperBoundIntersect(sig, query));
  }
}
BENCHMARK(BM_SignatureMatch);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<RTree<2>::Entry> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({PointRect({rng.Uniform(), rng.Uniform()}),
                   static_cast<uint32_t>(i),
                   {}});
  }
  SortByHilbertKey<2, NoAug>(&pts, ComputeDomain<2, NoAug>(pts), 16);
  RTreeOptions opts;
  opts.max_entries = 64;
  RTree<2> tree(opts);
  tree.BulkLoadSorted(pts);
  uint64_t found = 0;
  for (auto _ : state) {
    double x = rng.Uniform(0, 0.95);
    double y = rng.Uniform(0, 0.95);
    tree.ForEachInRange(MakeRect2(x, y, x + 0.02, y + 0.02),
                        [&](uint32_t, const Rect2&, const NoAug&) {
                          ++found;
                        });
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10'000)->Arg(100'000);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(6);
  RTreeOptions opts;
  opts.max_entries = 64;
  for (auto _ : state) {
    state.PauseTiming();
    RTree<2> tree(opts);
    state.ResumeTiming();
    for (uint32_t i = 0; i < 1000; ++i) {
      tree.Insert(PointRect({rng.Uniform(), rng.Uniform()}), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeInsert)->Unit(benchmark::kMicrosecond);

/// Pre-drawn page sequence: keeps the RNG's 64-bit division out of the
/// timed loop (it costs as much as the pool access being measured).
std::vector<PageId> PageSequence(uint64_t seed, PageId max_page) {
  Rng rng(seed);
  std::vector<PageId> seq(4096);
  for (PageId& p : seq) p = rng.UniformInt(0, max_page);
  return seq;
}

void BM_BufferPoolAccess(benchmark::State& state) {
  BufferPool pool(1024);
  const std::vector<PageId> seq = PageSequence(7, 4095);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolAccess);

// ---------------------------------------------------------------------------
// Hot-path kernels: steady-state query work per node visit / page access.

/// One clustered synthetic feature set indexed by an SRT-index with no
/// buffer pool, so the kernels below measure pure CPU traversal cost.
struct TraversalFixture {
  Dataset ds;
  std::unique_ptr<SrtIndex> index;
  std::vector<Point> points;
  std::vector<KeywordSet> queries;

  TraversalFixture() {
    SyntheticConfig cfg;
    cfg.seed = 11;
    cfg.num_objects = 64;
    cfg.num_features_per_set = 20'000;
    cfg.num_feature_sets = 1;
    cfg.vocabulary_size = 128;
    cfg.num_clusters = 512;
    ds = GenerateSynthetic(cfg);
    FeatureIndexOptions opts;
    index = std::make_unique<SrtIndex>(&ds.feature_tables[0], opts);
    Rng rng(12);
    for (int i = 0; i < 64; ++i) {
      points.push_back({rng.Uniform(), rng.Uniform()});
      KeywordSet kw(cfg.vocabulary_size);
      kw.Insert(static_cast<TermId>(rng.UniformInt(0, cfg.vocabulary_size - 1)));
      kw.Insert(static_cast<TermId>(rng.UniformInt(0, cfg.vocabulary_size - 1)));
      queries.push_back(std::move(kw));
    }
  }

  static const TraversalFixture& Get() {
    static TraversalFixture fixture;
    return fixture;
  }
};

void BM_ComputeScoreRange(benchmark::State& state) {
  const TraversalFixture& fx = TraversalFixture::Get();
  QueryStats stats;
  TraversalScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBestRange(*fx.index, fx.points[i],
                                              fx.queries[i], 0.5, 0.05, stats,
                                              scratch));
    i = (i + 1) % fx.points.size();
  }
}
BENCHMARK(BM_ComputeScoreRange);

void BM_ComputeScoresRangeBatch(benchmark::State& state) {
  const TraversalFixture& fx = TraversalFixture::Get();
  Rng rng(13);
  std::vector<BatchObject> batch;
  for (uint32_t i = 0; i < 64; ++i) {
    batch.push_back({i, {rng.Uniform(0.4, 0.45), rng.Uniform(0.4, 0.45)}});
  }
  const Rect2 mbr = MakeRect2(0.4, 0.4, 0.45, 0.45);
  std::vector<double> scores(batch.size());
  QueryStats stats;
  TraversalScratch scratch;
  size_t qi = 0;
  for (auto _ : state) {
    ComputeScoresRangeBatch(*fx.index, batch, mbr, fx.queries[qi], 0.5, 0.05,
                            scores, stats, scratch);
    benchmark::DoNotOptimize(scores.data());
    qi = (qi + 1) % fx.queries.size();
  }
}
BENCHMARK(BM_ComputeScoresRangeBatch)->Unit(benchmark::kMicrosecond);

void BM_KeywordIntersectsSigned(benchmark::State& state) {
  const uint32_t w = static_cast<uint32_t>(state.range(0));
  // Disjoint sets: the common pruning case — a node summary that shares no
  // term with the query must be rejected as cheaply as possible.
  KeywordSet a(w), b(w);
  for (uint32_t t = 0; t < 4; ++t) a.Insert(static_cast<TermId>(t * 7));
  for (uint32_t t = 0; t < 4; ++t) {
    b.Insert(static_cast<TermId>(w / 2 + 1 + t * 5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
    benchmark::DoNotOptimize(b.Intersects(a));
  }
}
BENCHMARK(BM_KeywordIntersectsSigned)->Arg(128)->Arg(1024)->Arg(4096);

void BM_BufferPoolAccessHit(benchmark::State& state) {
  // Resident-set size is the axis: a few hundred pages is what one query
  // actually keeps warm; 4096 makes every touch an L2 round-trip.
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  BufferPool pool(n);
  for (PageId p = 0; p < n; ++p) pool.Access(p);
  const std::vector<PageId> seq = PageSequence(14, n - 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolAccessHit)->Arg(256)->Arg(4096);

void BM_BufferPoolAccessEvict(benchmark::State& state) {
  BufferPool pool(1024);
  const std::vector<PageId> seq = PageSequence(15, 65535);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolAccessEvict);

void BM_BufferPoolSessionHit(benchmark::State& state) {
  // The query hot path: ReadNode charges a thread-bound isolated session.
  // Warm the private pool first so every timed access is a hit.
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  BufferPool shared(2 * n);
  BufferPool::Session session(&shared, /*isolated=*/true);
  for (PageId p = 0; p < n; ++p) session.Access(p);
  const std::vector<PageId> seq = PageSequence(17, n - 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolSessionHit)->Arg(256)->Arg(4096);

void BM_BufferPoolSessionIsolated(benchmark::State& state) {
  BufferPool shared(1024);
  BufferPool::Session session(&shared, /*isolated=*/true);
  const std::vector<PageId> seq = PageSequence(16, 2047);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolSessionIsolated);

// ------------------------------- file-backed page store (DESIGN.md §16)

/// Lazily writes a zero-filled fixture file of `pages` 4 KiB pages and
/// opens a FilePageStore over it in the requested I/O mode.
std::unique_ptr<FilePageStore> OpenFixtureStore(uint64_t pages,
                                                FilePageStore::IoMode mode) {
  static const std::string path = [] {
    std::string p = (std::filesystem::temp_directory_path() /
                     "stpq_bench_store.bin")
                        .string();
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    std::vector<char> zeros(4096, 0);
    for (uint64_t i = 0; i < 4096; ++i) {
      out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    }
    return p;
  }();
  Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Open(
      path, {FilePageStore::Extent{0, pages, 0, 4096}}, mode);
  return store.TakeValue();
}

/// Cost of serving one buffer-pool miss from the index file: an extent
/// lookup plus one cache-line touch per 64 bytes of the mapped slot.
void BM_FilePageStoreFetchMmap(benchmark::State& state) {
  std::unique_ptr<FilePageStore> store =
      OpenFixtureStore(4096, FilePageStore::IoMode::kMmap);
  const std::vector<PageId> seq = PageSequence(18, 4095);
  size_t i = 0;
  for (auto _ : state) {
    store->FetchPage(seq[i]);
    benchmark::ClobberMemory();
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_FilePageStoreFetchMmap);

/// Same fetch through the pread fallback (no mapping): what platforms
/// without mmap — or files opened with IoMode::kPread — pay per miss.
void BM_FilePageStoreFetchPread(benchmark::State& state) {
  std::unique_ptr<FilePageStore> store =
      OpenFixtureStore(4096, FilePageStore::IoMode::kPread);
  const std::vector<PageId> seq = PageSequence(19, 4095);
  size_t i = 0;
  for (auto _ : state) {
    store->FetchPage(seq[i]);
    benchmark::ClobberMemory();
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_FilePageStoreFetchPread);

/// End-to-end miss path: LRU admission + eviction + file fetch, the
/// per-page cost a cold query pays on a reopened engine.
void BM_BufferPoolMissFileBacked(benchmark::State& state) {
  std::unique_ptr<FilePageStore> store =
      OpenFixtureStore(4096, FilePageStore::IoMode::kAuto);
  BufferPool pool(64, store.get());  // small pool: almost every access misses
  const std::vector<PageId> seq = PageSequence(20, 4095);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(seq[i]));
    i = (i + 1) & (seq.size() - 1);
  }
}
BENCHMARK(BM_BufferPoolMissFileBacked);

// ------------------------------------------ tracer overhead (DESIGN.md §14)

// The idle cost every emission point pays when tracing is compiled in but
// the tracer is stopped: one relaxed load and a predicted branch.
void BM_TraceInstantIdle(benchmark::State& state) {
  Tracer::Global().Stop();
  uint64_t i = 0;
  for (auto _ : state) {
    STPQ_TRACE_INSTANT(TraceEventType::kPoolHit, 0, 0, 0, i);
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_TraceInstantIdle);

void BM_TraceSpanIdle(benchmark::State& state) {
  Tracer::Global().Stop();
  for (auto _ : state) {
    STPQ_TRACE_SPAN(TraceEventType::kComponentScore, 0, 0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanIdle);

// Recording cost: timestamp + ring store.  The thread's ring is drained
// (discarded) periodically so the steady state measures the emit path,
// not the ring-full drop path.
void BM_TraceInstantActive(benchmark::State& state) {
  Tracer::Global().Start();
  uint64_t i = 0;
  for (auto _ : state) {
    STPQ_TRACE_INSTANT(TraceEventType::kPoolHit, 0, 0, 0, i);
    if ((++i & 0x3fff) == 0) Tracer::DrainCurrentThread(0, nullptr);
  }
  Tracer::Global().Stop();
  Tracer::Global().Discard();
}
BENCHMARK(BM_TraceInstantActive);

void BM_TraceSpanActive(benchmark::State& state) {
  Tracer::Global().Start();
  uint64_t i = 0;
  for (auto _ : state) {
    {
      STPQ_TRACE_SPAN(TraceEventType::kComponentScore, 0, 0);
      benchmark::ClobberMemory();
    }
    if ((++i & 0x1fff) == 0) Tracer::DrainCurrentThread(0, nullptr);
  }
  Tracer::Global().Stop();
  Tracer::Global().Discard();
}
BENCHMARK(BM_TraceSpanActive);

// Raw SPSC ring throughput: amortized emit + periodic full drain into a
// reused buffer (the collector side of the slow-query log).
void BM_TraceRingEmitDrain(benchmark::State& state) {
  TraceRing ring(0, 4096);
  TraceEvent e;
  e.type = TraceEventType::kNodeVisit;
  e.mark = TraceMark::kInstant;
  std::vector<TraceEvent> out;
  out.reserve(4096);
  uint64_t i = 0;
  for (auto _ : state) {
    e.ts_ns = i;
    ring.TryEmit(e);
    if ((++i & 0xfff) == 0) {
      out.clear();
      ring.Drain(/*keep_all=*/true, 0, &out);
      benchmark::DoNotOptimize(out.data());
    }
  }
}
BENCHMARK(BM_TraceRingEmitDrain);

}  // namespace
}  // namespace stpq

BENCHMARK_MAIN();
