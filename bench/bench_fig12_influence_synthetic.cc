// Figure 12: influence-score STPS on the synthetic dataset, varying
// (a) k and (b) queried keywords per feature set — SRT vs IR2.
//
// Paper reference shapes: slightly above the range-score cost (Fig 9) with
// the same tendencies; SRT consistently ahead.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunRow(const BenchEnv& env, const Dataset& ds, const std::string& label,
            QueryWorkloadConfig qcfg) {
  qcfg.count = env.queries;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
    PrintBarRow(label, KindName(kind), "STPS", r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/20);
  std::printf("Figure 12: influence-score STPS, synthetic dataset "
              "(scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);
  Dataset ds = MakeSynthetic(env, 100'000, 100'000, 2, 128);

  PrintTitle("Fig 12(a): varying k");
  PrintBarHeader();
  for (uint32_t k : {5u, 10u, 20u, 40u, 80u}) {
    QueryWorkloadConfig qcfg;
    qcfg.k = k;
    RunRow(env, ds, "k=" + std::to_string(k), qcfg);
  }

  PrintTitle("Fig 12(b): varying queried keywords per feature set");
  PrintBarHeader();
  for (uint32_t n : {1u, 3u, 5u, 7u, 9u}) {
    QueryWorkloadConfig qcfg;
    qcfg.keywords_per_set = n;
    RunRow(env, ds, "keywords=" + std::to_string(n), qcfg);
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
