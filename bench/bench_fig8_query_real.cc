// Figure 8: STPS on the real(-like) dataset, range score, varying the query
// parameters: (a) radius r, (b) k, (c) smoothing parameter lambda, and
// (d) queried keywords per feature set — SRT vs IR2.
//
// Paper reference shapes: time falls as r grows (small r forces many
// combinations); grows with k; is flat in lambda (SRT always ahead); and is
// high for 1 queried keyword, then flat-ish — with SRT consistently ahead.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunRow(const BenchEnv& env, const Dataset& ds, const std::string& label,
            const QueryWorkloadConfig& qcfg) {
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
    PrintBarRow(label, KindName(kind), "STPS", r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/30);
  std::printf("Figure 8: STPS query parameters, real-like dataset, range "
              "score (scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);
  Dataset ds = MakeRealLike(env);

  PrintTitle("Fig 8(a): varying radius r");
  PrintBarHeader();
  for (double r : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = env.queries;
    qcfg.radius = r;
    RunRow(env, ds, "r=" + std::to_string(r).substr(0, 5), qcfg);
  }

  PrintTitle("Fig 8(b): varying k");
  PrintBarHeader();
  for (uint32_t k : {5u, 10u, 20u, 40u, 80u}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = env.queries;
    qcfg.k = k;
    RunRow(env, ds, "k=" + std::to_string(k), qcfg);
  }

  PrintTitle("Fig 8(c): varying smoothing parameter lambda");
  PrintBarHeader();
  for (double l : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = env.queries;
    qcfg.lambda = l;
    RunRow(env, ds, "lambda=" + std::to_string(l).substr(0, 3), qcfg);
  }

  PrintTitle("Fig 8(d): varying queried keywords per feature set");
  PrintBarHeader();
  for (uint32_t n : {1u, 3u, 5u, 7u, 9u}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = env.queries;
    qcfg.keywords_per_set = n;
    RunRow(env, ds, "keywords=" + std::to_string(n), qcfg);
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
