// Figure 10: STPS scalability for the influence score variant on the
// synthetic dataset: (a) |F_i|, (b) |O|, (c) c, (d) indexed keywords —
// SRT vs IR2.
//
// Paper reference shapes: comparable to the range variant (Fig 7), in some
// cases slightly more expensive (more data objects per combination since
// objects beyond r still score); SRT beneficial in all setups.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

constexpr uint32_t kDefaultCard = 100'000;
constexpr uint32_t kDefaultVocab = 128;
constexpr uint32_t kDefaultC = 2;

void RunRow(const BenchEnv& env, const std::string& label, Dataset ds) {
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
    PrintBarRow(label, KindName(kind), "STPS", r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/20);
  std::printf("Figure 10: influence-score STPS scalability, synthetic "
              "dataset (scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);

  PrintTitle("Fig 10(a): varying |F_i|");
  PrintBarHeader();
  for (uint32_t f : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|F_i|=" + std::to_string(Scaled(f, env)),
           MakeSynthetic(env, kDefaultCard, f, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Fig 10(b): varying |O|");
  PrintBarHeader();
  for (uint32_t o : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|O|=" + std::to_string(Scaled(o, env)),
           MakeSynthetic(env, o, kDefaultCard, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Fig 10(c): varying number of feature sets c");
  PrintBarHeader();
  for (uint32_t c : {2u, 3u, 4u, 5u}) {
    RunRow(env, "c=" + std::to_string(c),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, c, kDefaultVocab));
  }

  PrintTitle("Fig 10(d): varying indexed keywords");
  PrintBarHeader();
  for (uint32_t w : {64u, 128u, 192u, 256u}) {
    RunRow(env, "keywords=" + std::to_string(w),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, kDefaultC, w));
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
