// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// experimental evaluation (Section 8).  Reported values are averages over a
// random query workload, with execution time split into CPU time (measured)
// and I/O time (simulated page reads x a configurable unit cost), mirroring
// the paper's dark/white bar breakdown.
//
// Environment knobs:
//   STPQ_SCALE    multiplier on all dataset cardinalities (default 0.1;
//                 1.0 = the paper's sizes: up to 1M records per set)
//   STPQ_QUERIES  queries per data point (default varies per bench;
//                 paper uses 1000)
//   STPQ_IO_MS    simulated cost of one page read in ms (default 0.1;
//                 the paper's 2007-era disk was ~5)
#ifndef STPQ_BENCH_BENCH_COMMON_H_
#define STPQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/queries.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "util/timer.h"

namespace stpq {
namespace bench {

struct BenchEnv {
  double scale = 0.1;
  uint32_t queries = 0;  // 0 = per-bench default
  double io_ms = 0.1;
};

inline BenchEnv GetEnv(uint32_t default_queries) {
  BenchEnv env;
  if (const char* s = std::getenv("STPQ_SCALE")) env.scale = std::atof(s);
  if (const char* s = std::getenv("STPQ_QUERIES")) {
    env.queries = static_cast<uint32_t>(std::atoi(s));
  }
  if (const char* s = std::getenv("STPQ_IO_MS")) env.io_ms = std::atof(s);
  if (env.queries == 0) env.queries = default_queries;
  return env;
}

inline uint32_t Scaled(uint32_t n, const BenchEnv& env) {
  return std::max(1u, static_cast<uint32_t>(n * env.scale));
}

/// Synthetic dataset with paper-style parameters, scaled by the env.
/// Cluster count scales with the data so small runs stay clustered.
inline Dataset MakeSynthetic(const BenchEnv& env, uint32_t num_objects,
                             uint32_t num_features, uint32_t c,
                             uint32_t vocab, uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_objects = Scaled(num_objects, env);
  cfg.num_features_per_set = Scaled(num_features, env);
  cfg.num_feature_sets = c;
  cfg.vocabulary_size = vocab;
  cfg.num_clusters = std::max(100u, Scaled(10'000, env));
  return GenerateSynthetic(cfg);
}

/// Real-like dataset (the factual.com substitute), scaled by the env.
inline Dataset MakeRealLike(const BenchEnv& env) {
  RealLikeConfig cfg;
  cfg.scale = env.scale;
  return GenerateRealLike(cfg);
}

/// Averaged per-query costs of a workload under one engine + algorithm.
struct WorkloadResult {
  double cpu_ms = 0.0;
  double io_ms = 0.0;
  double reads = 0.0;
  double voronoi_cpu_ms = 0.0;
  double voronoi_io_ms = 0.0;
  QueryStats totals;

  double total_ms() const { return cpu_ms + io_ms; }
};

inline WorkloadResult RunWorkload(Engine* engine,
                                  const std::vector<Query>& queries,
                                  Algorithm algorithm, const BenchEnv& env) {
  WorkloadResult out;
  for (const Query& q : queries) {
    QueryResult r = engine->Execute(q, algorithm).TakeValue();
    out.totals += r.stats;
  }
  const double n = static_cast<double>(queries.size());
  out.cpu_ms = out.totals.cpu_ms / n;
  out.reads = static_cast<double>(out.totals.TotalReads()) / n;
  out.io_ms = out.reads * env.io_ms;
  out.voronoi_cpu_ms = out.totals.voronoi_cpu_ms / n;
  out.voronoi_io_ms =
      static_cast<double>(out.totals.voronoi_reads) / n * env.io_ms;
  return out;
}

/// Prints one benchmark table header.
inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintBarHeader() {
  std::printf("%-24s %-6s %-6s %12s %12s %12s %12s\n", "param", "index",
              "algo", "cpu_ms", "io_reads", "io_ms", "total_ms");
}

inline void PrintBarRow(const std::string& param, const char* index,
                        const char* algo, const WorkloadResult& r) {
  std::printf("%-24s %-6s %-6s %12.3f %12.1f %12.3f %12.3f\n", param.c_str(),
              index, algo, r.cpu_ms, r.reads, r.io_ms, r.total_ms());
}

/// Header/row variants with the Voronoi breakdown (Figures 13-14's striped
/// bars: the I/O and CPU attributable to cell computation).
inline void PrintVoronoiHeader() {
  std::printf("%-24s %-6s %12s %12s %12s %12s %12s\n", "param", "index",
              "cpu_ms", "io_ms", "vor_cpu_ms", "vor_io_ms", "total_ms");
}

inline void PrintVoronoiRow(const std::string& param, const char* index,
                            const WorkloadResult& r) {
  std::printf("%-24s %-6s %12.3f %12.3f %12.3f %12.3f %12.3f\n",
              param.c_str(), index, r.cpu_ms, r.io_ms, r.voronoi_cpu_ms,
              r.voronoi_io_ms, r.total_ms());
}

/// Engine factory for the benchmark's standard configuration.
inline Engine MakeEngine(const Dataset& ds, FeatureIndexKind kind) {
  EngineOptions opts;
  opts.index_kind = kind;
  return Engine::Build(ds.objects,
                       std::vector<FeatureTable>(ds.feature_tables), opts)
      .TakeValue();
}

inline const char* KindName(FeatureIndexKind kind) {
  return kind == FeatureIndexKind::kSrt ? "SRT" : "IR2";
}

}  // namespace bench
}  // namespace stpq

#endif  // STPQ_BENCH_BENCH_COMMON_H_
