// Ablation: what makes the SRT-index work (Section 4 design choices).
//
//   1. Bulk-load ordering: Hilbert packing over the mapped 4-D space (the
//      paper's choice, [9]) vs STR vs one-at-a-time insertion.
//   2. Index family: SRT (clusters location+score+text) vs IR2 (location
//      only, signatures bolted on).
//
// Reported per configuration: STPS cost and the number of feature objects
// pulled before the top combinations were confirmed — the tighter s-hat(e)
// is, the fewer features STPS retrieves.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunConfig(const BenchEnv& env, const std::string& label,
               const Dataset& ds, const std::vector<Query>& queries,
               FeatureIndexKind kind, BulkLoadKind bulk) {
  EngineOptions opts;
  opts.index_kind = kind;
  opts.bulk_load = bulk;
  Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                opts).TakeValue();
  WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
  std::printf("%-28s %12.3f %12.1f %14.1f %12.3f\n", label.c_str(), r.cpu_ms,
              r.reads,
              static_cast<double>(r.totals.features_retrieved) /
                  queries.size(),
              r.total_ms());
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/30);
  std::printf("Ablation: SRT-index design choices "
              "(scale=%.2f, io=%.2fms/read)\n",
              env.scale, env.io_ms);
  Dataset ds = MakeSynthetic(env, 100'000, 100'000, 2, 128);
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  std::printf("%-28s %12s %12s %14s %12s\n", "config", "cpu_ms", "io_reads",
              "features/query", "total_ms");

  RunConfig(env, "SRT + 4-D Hilbert (paper)", ds, queries,
            FeatureIndexKind::kSrt, BulkLoadKind::kHilbert);
  RunConfig(env, "SRT + STR packing", ds, queries, FeatureIndexKind::kSrt,
            BulkLoadKind::kStr);
  RunConfig(env, "SRT + tuple insertion", ds, queries,
            FeatureIndexKind::kSrt, BulkLoadKind::kInsert);
  RunConfig(env, "IR2 + 2-D Hilbert", ds, queries, FeatureIndexKind::kIr2,
            BulkLoadKind::kHilbert);
  RunConfig(env, "IR2 + STR packing", ds, queries, FeatureIndexKind::kIr2,
            BulkLoadKind::kStr);
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
