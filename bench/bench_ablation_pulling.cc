// Ablation: STPS pulling strategies (Section 6.3).
//
// Compares Definition 5's prioritized strategy against simple round-robin
// across feature-set counts and feature-set size skews.  The prioritized
// strategy targets the set that defines the threshold, so it should pull
// fewer features (and hence read fewer pages), especially when feature
// sets differ in size or score distribution.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunRow(const BenchEnv& env, const std::string& label, const Dataset& ds,
            uint32_t queries) {
  QueryWorkloadConfig qcfg;
  qcfg.count = queries;
  std::vector<Query> qs = GenerateQueries(ds, qcfg);
  for (PullingStrategy strategy :
       {PullingStrategy::kRoundRobin, PullingStrategy::kPrioritized}) {
    EngineOptions opts;
    opts.pulling = strategy;
    Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                  opts).TakeValue();
    WorkloadResult r = RunWorkload(&engine, qs, Algorithm::kStps, env);
    std::printf("%-24s %-12s %12.3f %12.1f %14.1f %12.3f\n", label.c_str(),
                strategy == PullingStrategy::kPrioritized ? "prioritized"
                                                          : "round-robin",
                r.cpu_ms, r.reads,
                static_cast<double>(r.totals.features_retrieved) /
                    qs.size(),
                r.total_ms());
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/30);
  std::printf("Ablation: prioritized vs round-robin pulling strategy "
              "(scale=%.2f, io=%.2fms/read)\n",
              env.scale, env.io_ms);
  std::printf("%-24s %-12s %12s %12s %14s %12s\n", "setup", "strategy",
              "cpu_ms", "io_reads", "features/query", "total_ms");

  // Balanced sets, growing c.
  for (uint32_t c : {2u, 3u, 4u}) {
    RunRow(env, "balanced c=" + std::to_string(c),
           MakeSynthetic(env, 100'000, 100'000, c, 128), env.queries);
  }

  // Skewed: one large set and one small set; the threshold is usually
  // owned by one of them, which prioritized pulling exploits.
  {
    SyntheticConfig cfg;
    cfg.num_objects = Scaled(100'000, env);
    cfg.num_features_per_set = Scaled(20'000, env);
    cfg.num_feature_sets = 2;
    cfg.vocabulary_size = 128;
    cfg.num_clusters = std::max(100u, Scaled(10'000, env));
    Dataset ds = GenerateSynthetic(cfg);
    // Enlarge set 0 by regenerating it 10x bigger.
    SyntheticConfig big = cfg;
    big.seed = 77;
    big.num_features_per_set = Scaled(200'000, env);
    big.num_feature_sets = 1;
    Dataset large = GenerateSynthetic(big);
    ds.feature_tables[0] = std::move(large.feature_tables[0]);
    RunRow(env, "skewed 10:1", ds, env.queries);
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
