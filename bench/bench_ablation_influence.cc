// Ablation: influence-variant strategies (DESIGN.md Section 4, note 2).
//
// Compares the paper's Algorithm 5 (combinations ordered by s(C)) against
// the library's anchored retrieval, across feature-set counts.  Both are
// exact; the combination count above the final threshold — and with it
// Algorithm 5's cost — grows combinatorially with c, while the anchored
// strategy scales with the number of viable anchors.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunRow(const BenchEnv& env, const std::string& label, const Dataset& ds,
            uint32_t queries, double budget_ms) {
  QueryWorkloadConfig qcfg;
  qcfg.count = queries;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> qs = GenerateQueries(ds, qcfg);
  for (InfluenceMode mode :
       {InfluenceMode::kCombinations, InfluenceMode::kAnchored}) {
    if (mode == InfluenceMode::kCombinations && budget_ms <= 0.0) {
      std::printf("%-16s %-12s   (skipped: combination count is "
                  "combinatorial at this c)\n",
                  label.c_str(), "alg5-combos");
      continue;
    }
    EngineOptions opts;
    opts.influence_mode = mode;
    Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                  opts).TakeValue();
    // Guard the combinatorial mode with a budget: run one query first.
    Timer probe;
    QueryResult first = engine.Execute(qs[0], Algorithm::kStps).TakeValue();
    double first_ms = probe.ElapsedMillis();
    const char* name =
        mode == InfluenceMode::kAnchored ? "anchored" : "alg5-combos";
    if (mode == InfluenceMode::kCombinations && first_ms > budget_ms) {
      std::printf("%-16s %-12s %12.3f %14llu  (single query; over budget, "
                  "row skipped)\n",
                  label.c_str(), name, first_ms,
                  static_cast<unsigned long long>(
                      first.stats.combinations_emitted));
      continue;
    }
    WorkloadResult r = RunWorkload(&engine, qs, Algorithm::kStps, env);
    std::printf("%-16s %-12s %12.3f %14.1f %12.1f %12.3f\n", label.c_str(),
                name, r.cpu_ms,
                static_cast<double>(r.totals.combinations_emitted) /
                    qs.size(),
                r.reads, r.total_ms());
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/10);
  std::printf("Ablation: influence strategies, synthetic dataset "
              "(scale=%.2f, io=%.2fms/read)\n",
              env.scale, env.io_ms);
  std::printf("%-16s %-12s %12s %14s %12s %12s\n", "setup", "strategy",
              "cpu_ms", "combos/query", "io_reads", "total_ms");
  for (uint32_t c : {2u, 3u, 4u}) {
    // Algorithm 5 is only attempted up to c=3; a single c=4 query can run
    // for tens of minutes (DESIGN.md Section 4, note 2).
    RunRow(env, "c=" + std::to_string(c),
           MakeSynthetic(env, 100'000, 100'000, c, 128), env.queries,
           /*budget_ms=*/c <= 3 ? 30'000.0 : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
