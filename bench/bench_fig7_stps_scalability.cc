// Figure 7: STPS scalability on the synthetic dataset (range score),
// varying (a) |F_i|, (b) |O|, (c) the number of feature sets c, and
// (d) the number of indexed keywords — SRT-index vs modified IR2-tree,
// execution time split into I/O (page reads x unit cost) and CPU.
//
// Paper reference shapes: STPS is orders of magnitude faster than STDS;
// SRT consistently beats IR2 (~2x); time grows sub-linearly with |F_i|,
// barely with |O|, strongly with c, mildly with the vocabulary.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

constexpr uint32_t kDefaultCard = 100'000;
constexpr uint32_t kDefaultVocab = 128;
constexpr uint32_t kDefaultC = 2;

void RunRow(const BenchEnv& env, const std::string& label, Dataset ds) {
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
    PrintBarRow(label, KindName(kind), "STPS", r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/30);
  std::printf("Figure 7: STPS scalability, synthetic dataset, range score "
              "(scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);

  PrintTitle("Fig 7(a): varying |F_i|");
  PrintBarHeader();
  for (uint32_t f : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|F_i|=" + std::to_string(Scaled(f, env)),
           MakeSynthetic(env, kDefaultCard, f, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Fig 7(b): varying |O|");
  PrintBarHeader();
  for (uint32_t o : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|O|=" + std::to_string(Scaled(o, env)),
           MakeSynthetic(env, o, kDefaultCard, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Fig 7(c): varying number of feature sets c");
  PrintBarHeader();
  for (uint32_t c : {2u, 3u, 4u, 5u}) {
    RunRow(env, "c=" + std::to_string(c),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, c, kDefaultVocab));
  }

  PrintTitle("Fig 7(d): varying indexed keywords");
  PrintBarHeader();
  for (uint32_t w : {64u, 128u, 192u, 256u}) {
    RunRow(env, "keywords=" + std::to_string(w),
           MakeSynthetic(env, kDefaultCard, kDefaultCard, kDefaultC, w));
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
