// Figure 13: nearest-neighbor-score STPS scalability on the synthetic
// dataset, varying (a) |F_i| and (b) |O| — SRT vs IR2, with the Voronoi
// cell computation cost reported separately (the paper's striped bars).
//
// Paper reference shapes: NN is the costliest variant; for large feature
// sets the Voronoi-cell computation dominates, and SRT's advantage shrinks
// (cells need spatially-nearby features, which the spatial-only IR2-tree
// co-locates better) but SRT remains beneficial overall.
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

constexpr uint32_t kDefaultCard = 100'000;
constexpr uint32_t kDefaultVocab = 128;
constexpr uint32_t kDefaultC = 2;

void RunRow(const BenchEnv& env, const std::string& label, Dataset ds) {
  QueryWorkloadConfig qcfg;
  qcfg.count = env.queries;
  qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
    Engine engine = MakeEngine(ds, kind);
    WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
    PrintVoronoiRow(label, KindName(kind), r);
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/10);
  std::printf("Figure 13: NN-score STPS scalability, synthetic dataset "
              "(scale=%.2f, %u queries/point, io=%.2fms/read; vor_* columns "
              "= Voronoi-cell share of the totals)\n",
              env.scale, env.queries, env.io_ms);

  PrintTitle("Fig 13(a): varying |F_i|");
  PrintVoronoiHeader();
  for (uint32_t f : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|F_i|=" + std::to_string(Scaled(f, env)),
           MakeSynthetic(env, kDefaultCard, f, kDefaultC, kDefaultVocab));
  }

  PrintTitle("Fig 13(b): varying |O|");
  PrintVoronoiHeader();
  for (uint32_t o : {50'000u, 100'000u, 500'000u, 1'000'000u}) {
    RunRow(env, "|O|=" + std::to_string(Scaled(o, env)),
           MakeSynthetic(env, o, kDefaultCard, kDefaultC, kDefaultVocab));
  }
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
