// Figure 14: nearest-neighbor-score STPS varying k, on (a) the real-like
// dataset and (b) the synthetic dataset — SRT vs IR2, with the Voronoi
// share reported separately.
//
// Paper reference shapes: on the real dataset the time barely grows with k
// (a few combinations serve many objects); on the synthetic dataset it
// grows with k (dispersed clusters mean each combination's Voronoi
// intersection holds few objects, so more combinations are needed).
#include "bench_common.h"

namespace stpq {
namespace bench {
namespace {

void RunRows(const BenchEnv& env, const Dataset& ds) {
  for (uint32_t k : {5u, 10u, 20u, 40u, 80u}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = env.queries;
    qcfg.k = k;
    qcfg.variant = ScoreVariant::kNearestNeighbor;
    std::vector<Query> queries = GenerateQueries(ds, qcfg);
    for (FeatureIndexKind kind :
         {FeatureIndexKind::kIr2, FeatureIndexKind::kSrt}) {
      Engine engine = MakeEngine(ds, kind);
      WorkloadResult r = RunWorkload(&engine, queries, Algorithm::kStps, env);
      PrintVoronoiRow("k=" + std::to_string(k), KindName(kind), r);
    }
  }
}

void Main() {
  BenchEnv env = GetEnv(/*default_queries=*/10);
  std::printf("Figure 14: NN-score STPS varying k "
              "(scale=%.2f, %u queries/point, io=%.2fms/read)\n",
              env.scale, env.queries, env.io_ms);

  PrintTitle("Fig 14(a): real-like dataset");
  PrintVoronoiHeader();
  Dataset real = MakeRealLike(env);
  RunRows(env, real);

  PrintTitle("Fig 14(b): synthetic dataset");
  PrintVoronoiHeader();
  Dataset synth = MakeSynthetic(env, 100'000, 100'000, 2, 128);
  RunRows(env, synth);
}

}  // namespace
}  // namespace bench
}  // namespace stpq

int main() { stpq::bench::Main(); }
