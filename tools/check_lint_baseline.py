#!/usr/bin/env python3
"""Ratchet check for tools/lint_baseline.json: the baseline may shrink,
never grow.

The baseline is the ledger of known legacy stpq_lint findings.  New code
must come in clean (stpq_lint itself fails CI on any finding outside the
baseline), and this script closes the other loophole: silently absorbing
new debt by regenerating the baseline.  It compares a proposed baseline
against the committed one and fails if any key was added.

Usage:
  python3 tools/check_lint_baseline.py --old <committed.json> --new <proposed.json>

Typical CI wiring: run stpq_lint with --write-baseline into a temp file,
then compare that against the committed tools/lint_baseline.json.  Exit
codes: 0 = ok (shrank or unchanged), 1 = baseline grew, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_keys(path):
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"check_lint_baseline: cannot read {path}: {err}")
    keys = data.get("findings")
    if not isinstance(keys, list) or \
            not all(isinstance(k, str) for k in keys):
        sys.exit(f"check_lint_baseline: {path} has no 'findings' string list")
    return set(keys)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="fail if the stpq_lint baseline grew")
    ap.add_argument("--old", required=True,
                    help="committed baseline (the ratchet position)")
    ap.add_argument("--new", required=True,
                    help="proposed baseline (freshly written by stpq_lint "
                         "--write-baseline)")
    args = ap.parse_args(argv)

    old = load_keys(args.old)
    new = load_keys(args.new)
    added = sorted(new - old)
    removed = sorted(old - new)

    for k in removed:
        print(f"shrank: {k}")
    for k in added:
        print(f"GREW:   {k}")
    print(f"check_lint_baseline: {len(old)} -> {len(new)} entries "
          f"({len(removed)} removed, {len(added)} added)")
    if added:
        print("The lint baseline only ratchets down. Fix the new findings "
              "or add an inline `stpq-lint: allow(<rule>)` suppression "
              "with a reason a reviewer can challenge.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
