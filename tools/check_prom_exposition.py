#!/usr/bin/env python3
"""Validator for the Prometheus text exposition format 0.0.4.

Checks the output of MetricsRegistry::RenderPrometheusText (files written
by `stpq_cli ... --metrics` and live `/metrics` scrapes from the admin
server) against the exposition contract the repo relies on:

  * every metric family is one contiguous block: `# HELP`, then `# TYPE`,
    then the samples, with no interleaving between families and no
    duplicate families;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * HELP docstrings only use the two legal escapes (\\\\ and \\n);
  * the TYPE is one of counter|gauge|histogram|summary|untyped and the
    sample suffixes match it (counters/gauges are a single bare sample);
  * every sample value parses as a float (+Inf/-Inf/NaN allowed);
  * counter values are non-negative;
  * histograms expose `_bucket{le="..."}` with strictly ascending bounds,
    `+Inf` last, cumulative (non-decreasing) counts, plus `_sum` and
    `_count`, and `_count` equals the `+Inf` bucket.

Usage:
  check_prom_exposition.py FILE     validate FILE ('-' = stdin)
  check_prom_exposition.py --self-test

Exit code 0 when the exposition is valid, 1 with one line per violation
otherwise.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)


def parse_float(text):
    """Prometheus float: decimal, scientific, +Inf, -Inf, NaN."""
    try:
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    except ValueError:
        return None


def base_family(name):
    """Family a sample belongs to: strips histogram/summary suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_help_escaping(docstring):
    """Only \\\\ and \\n are legal escapes in a HELP docstring."""
    i = 0
    while i < len(docstring):
        if docstring[i] == "\\":
            if i + 1 >= len(docstring) or docstring[i + 1] not in ("\\", "n"):
                return False
            i += 2
        else:
            i += 1
    return True


def parse_le(labels):
    """The le="..." bound from a _bucket label set, or None."""
    match = re.search(r'le="([^"]*)"', labels or "")
    return match.group(1) if match else None


def validate(text):
    """Returns a list of violation strings (empty = valid)."""
    errors = []
    # family -> {"help": line#, "type": str, "samples": [...]}
    families = {}
    current = None  # family whose block we are inside
    closed = set()  # families whose block has ended

    def fail(lineno, message):
        errors.append("line %d: %s" % (lineno, message))

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue

        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            parts = rest.split(" ", 1)
            name = parts[0]
            docstring = parts[1] if len(parts) > 1 else ""
            if not METRIC_NAME_RE.match(name):
                fail(lineno, "bad metric name in HELP: %r" % name)
                continue
            if name in families:
                fail(lineno, "duplicate HELP for %s" % name)
                continue
            if name in closed:
                fail(lineno, "family %s reopened after its block ended" % name)
            if not check_help_escaping(docstring):
                fail(lineno, "illegal escape in HELP for %s "
                             "(only \\\\ and \\n)" % name)
            if current is not None:
                closed.add(current)
            families[name] = {"type": None, "samples": []}
            current = name
            continue

        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                fail(lineno, "malformed TYPE line: %r" % line)
                continue
            name, kind = parts
            if kind not in VALID_TYPES:
                fail(lineno, "unknown type %r for %s" % (kind, name))
            if name not in families:
                fail(lineno, "TYPE for %s without a preceding HELP" % name)
                continue
            if name != current:
                fail(lineno, "TYPE for %s inside %s's block" % (name, current))
                continue
            if families[name]["type"] is not None:
                fail(lineno, "duplicate TYPE for %s" % name)
                continue
            if families[name]["samples"]:
                fail(lineno, "TYPE for %s after its samples" % name)
            families[name]["type"] = kind
            continue

        if line.startswith("#"):
            continue  # free-form comment

        match = SAMPLE_RE.match(line)
        if not match:
            fail(lineno, "unparsable sample line: %r" % line)
            continue
        name = match.group("name")
        family = base_family(name)
        if family not in families and name in families:
            family = name  # e.g. a gauge literally named *_count
        if family not in families:
            fail(lineno, "sample %s outside any HELP/TYPE block" % name)
            continue
        if family != current:
            fail(lineno, "sample %s outside its family's block" % name)
            continue
        value = parse_float(match.group("value"))
        if value is None:
            fail(lineno, "non-float value %r for %s"
                 % (match.group("value"), name))
            continue
        families[family]["samples"].append(
            (lineno, name, match.group("labels"), value))

    for family, info in families.items():
        kind = info["type"]
        samples = info["samples"]
        if kind is None:
            errors.append("family %s has HELP but no TYPE" % family)
            continue
        if not samples:
            errors.append("family %s has no samples" % family)
            continue

        if kind == "counter":
            for lineno, name, _, value in samples:
                if value < 0:
                    errors.append("line %d: counter %s is negative (%g)"
                                  % (lineno, name, value))
            if len(samples) > 1 and all(s[2] is None for s in samples):
                errors.append("family %s: %d unlabeled counter samples"
                              % (family, len(samples)))

        if kind == "histogram":
            buckets = []
            sum_seen = count_value = None
            for lineno, name, labels, value in samples:
                if name == family + "_bucket":
                    le = parse_le(labels)
                    if le is None:
                        errors.append("line %d: bucket of %s without le"
                                      % (lineno, family))
                        continue
                    bound = parse_float(le)
                    if bound is None:
                        errors.append("line %d: unparsable le=%r" % (lineno, le))
                        continue
                    buckets.append((lineno, bound, value))
                elif name == family + "_sum":
                    sum_seen = value
                elif name == family + "_count":
                    count_value = value
                else:
                    errors.append("line %d: unexpected series %s in "
                                  "histogram %s" % (lineno, name, family))
            if not buckets:
                errors.append("histogram %s has no buckets" % family)
                continue
            for (l1, b1, v1), (l2, b2, v2) in zip(buckets, buckets[1:]):
                if not b2 > b1:
                    errors.append("line %d: histogram %s le bounds not "
                                  "ascending (%g after %g)"
                                  % (l2, family, b2, b1))
                if v2 < v1:
                    errors.append("line %d: histogram %s bucket counts not "
                                  "cumulative (%g after %g)"
                                  % (l2, family, v2, v1))
            if buckets[-1][1] != float("inf"):
                errors.append("histogram %s: last bucket is not le=\"+Inf\""
                              % family)
            if sum_seen is None:
                errors.append("histogram %s is missing _sum" % family)
            if count_value is None:
                errors.append("histogram %s is missing _count" % family)
            elif buckets[-1][1] == float("inf") and \
                    count_value != buckets[-1][2]:
                errors.append("histogram %s: _count (%g) != +Inf bucket (%g)"
                              % (family, count_value, buckets[-1][2]))

        if kind == "gauge" and len(samples) > 1 and \
                all(s[2] is None for s in samples):
            errors.append("family %s: %d unlabeled gauge samples"
                          % (family, len(samples)))

    return errors


# ---------------------------------------------------------- self-test

GOOD = """\
# HELP stpq_queries_total Queries executed.
# TYPE stpq_queries_total counter
stpq_queries_total 42
# HELP stpq_pool_occupancy Resident pages.
# TYPE stpq_pool_occupancy gauge
stpq_pool_occupancy 17.5
# HELP stpq_query_cpu_ms Query latency with a \\n newline and \\\\ slash.
# TYPE stpq_query_cpu_ms histogram
stpq_query_cpu_ms_bucket{le="0.001"} 0
stpq_query_cpu_ms_bucket{le="1"} 3
stpq_query_cpu_ms_bucket{le="+Inf"} 5
stpq_query_cpu_ms_sum 12.5
stpq_query_cpu_ms_count 5
"""

BAD_CASES = [
    # (expected substring, exposition text)
    ("without a preceding HELP",
     "# TYPE a counter\na 1\n"),
    ("HELP but no TYPE",
     "# HELP a doc\na 1\n"),
    ("illegal escape",
     "# HELP a bad \\t escape\n# TYPE a counter\na 1\n"),
    ("negative",
     "# HELP a doc\n# TYPE a counter\na -3\n"),
    ("non-float value",
     "# HELP a doc\n# TYPE a counter\na wat\n"),
    ("unknown type",
     "# HELP a doc\n# TYPE a rate\na 1\n"),
    ("duplicate HELP",
     "# HELP a doc\n# TYPE a counter\na 1\n# HELP a doc\n"),
    ("outside its family's block",
     "# HELP a doc\n# TYPE a counter\n"
     "# HELP b doc\n# TYPE b counter\na 1\nb 1\n"),
    ("not ascending",
     "# HELP h doc\n# TYPE h histogram\n"
     "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n"
     "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"),
    ("not cumulative",
     "# HELP h doc\n# TYPE h histogram\n"
     "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
     "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"),
    ("last bucket is not",
     "# HELP h doc\n# TYPE h histogram\n"
     "h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_sum 1\nh_count 2\n"),
    ("missing _sum",
     "# HELP h doc\n# TYPE h histogram\n"
     "h_bucket{le=\"+Inf\"} 1\nh_count 1\n"),
    ("_count (3) != +Inf bucket (1)",
     "# HELP h doc\n# TYPE h histogram\n"
     "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 3\n"),
]


def self_test():
    failures = 0
    errors = validate(GOOD)
    if errors:
        failures += 1
        print("self-test: GOOD fixture flagged: %s" % errors)
    for expected, text in BAD_CASES:
        errors = validate(text)
        if not any(expected in e for e in errors):
            failures += 1
            print("self-test: expected %r in %s" % (expected, errors))
    if failures == 0:
        print("self-test: %d fixtures OK" % (1 + len(BAD_CASES)))
    return failures


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return 1 if self_test() else 0
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    errors = validate(text)
    for error in errors:
        print(error)
    if not errors:
        print("OK: %d lines validated" % len(text.splitlines()))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
