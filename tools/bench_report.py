#!/usr/bin/env python3
"""Folds the per-run benchmark JSON outputs into one BENCH_summary.json.

Inputs (all optional — missing or unreadable files are reported in the
summary's `inputs` block instead of failing the run, so the CI step stays
green even when a bench was skipped):

  * bench_micro.json               Google Benchmark --benchmark_format=json
  * bench_parallel_throughput.json STPQ_JSON_OUT rows from
                                   bench_parallel_throughput

The summary is one flat JSON object per CI run: per-micro-benchmark
cpu_time rows, the parallel-throughput sweep keyed by algo/threads with
the 8-thread speedup called out, and enough context (host, cpu count,
date) to compare runs across commits.

Usage:
  bench_report.py --micro bench_micro.json \\
                  --parallel bench_parallel_throughput.json \\
                  --out BENCH_summary.json
"""

import argparse
import json
import sys


def load_json(path):
    """Returns (payload, error_string); exactly one is None."""
    if not path:
        return None, "not provided"
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f), None
    except (OSError, ValueError) as err:
        return None, str(err)


def summarize_micro(payload):
    """Google Benchmark JSON -> context + per-benchmark cpu_time rows."""
    benchmarks = []
    for row in payload.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        benchmarks.append({
            "name": row.get("name"),
            "cpu_time": row.get("cpu_time"),
            "real_time": row.get("real_time"),
            "time_unit": row.get("time_unit", "ns"),
            "iterations": row.get("iterations"),
        })
    context = payload.get("context", {})
    return {
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "library_build_type": context.get("library_build_type"),
        },
        "count": len(benchmarks),
        "benchmarks": benchmarks,
    }


def summarize_parallel(payload):
    """STPQ_JSON_OUT rows -> sweep keyed by algo, with speedup callouts."""
    by_algo = {}
    for row in payload:
        by_algo.setdefault(row.get("algo", "?"), []).append(row)
    summary = {"algos": {}}
    for algo, rows in sorted(by_algo.items()):
        rows = sorted(rows, key=lambda r: r.get("threads", 0))
        best = max(rows, key=lambda r: r.get("queries_per_sec", 0.0))
        summary["algos"][algo] = {
            "sweep": rows,
            "max_queries_per_sec": best.get("queries_per_sec"),
            "max_speedup": max(r.get("speedup", 0.0) for r in rows),
            "threads_at_max": best.get("threads"),
        }
    return summary


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--micro", default="",
                        help="bench_micro.json (Google Benchmark format)")
    parser.add_argument("--parallel", default="",
                        help="bench_parallel_throughput.json (STPQ_JSON_OUT)")
    parser.add_argument("--out", required=True,
                        help="where to write BENCH_summary.json")
    args = parser.parse_args()

    summary = {"inputs": {}}

    micro, err = load_json(args.micro)
    summary["inputs"]["micro"] = err or args.micro
    if micro is not None:
        try:
            summary["micro"] = summarize_micro(micro)
        except (TypeError, AttributeError) as bad:
            summary["inputs"]["micro"] = "unexpected shape: %s" % bad

    parallel, err = load_json(args.parallel)
    summary["inputs"]["parallel"] = err or args.parallel
    if parallel is not None:
        try:
            summary["parallel"] = summarize_parallel(parallel)
        except (TypeError, AttributeError) as bad:
            summary["inputs"]["parallel"] = "unexpected shape: %s" % bad

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")

    folded = [k for k in ("micro", "parallel") if k in summary]
    print("bench_report: folded %s into %s"
          % (" + ".join(folded) if folded else "no inputs", args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
