#!/usr/bin/env python3
"""Compare a bench_micro JSON run against a committed baseline.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
        --current artifacts/bench_micro.json [--threshold 2.0]

Fails (exit 1) if any benchmark tracked in the baseline is more than
`threshold` times slower in the current run.  Benchmarks present in only
one of the two files are reported but never fatal, so adding or removing
kernels does not require touching CI — only refreshing the baseline.

The threshold is deliberately loose: CI machines are shared and noisy,
and the point of the gate is to catch complexity regressions (an O(1)
path going O(n), an allocation sneaking back into a hot loop), not small
drifts.  Refresh the baseline with:

    ./build/bench/bench_micro --benchmark_min_time=0.5 \
        --benchmark_format=json --benchmark_out=bench/baseline.json
"""

import argparse
import json
import sys


def load_times(path):
    """Return {benchmark name: real_time in ns} for a benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[b["name"]] = b["real_time"] * scale
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail if current/baseline exceeds this (default 2.0)")
    args = ap.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    if not baseline:
        print(f"error: no benchmarks found in baseline {args.baseline}")
        return 1

    regressions = []
    width = max(len(n) for n in baseline)
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            print(f"  [missing ] {name:<{width}}  (not in current run)")
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = "REGRESSED" if ratio > args.threshold else "ok"
        print(f"  [{flag:>9}] {name:<{width}}  "
              f"{base_ns:10.1f} ns -> {cur_ns:10.1f} ns  ({ratio:5.2f}x)")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    for name in sorted(set(current) - set(baseline)):
        print(f"  [untracked] {name} (not in baseline; add it on refresh)")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed beyond "
              f"{args.threshold:.1f}x:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nall {len(baseline)} tracked kernels within "
          f"{args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
