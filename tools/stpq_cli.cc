// stpq_cli: command-line front end for the stpq library.
//
// Subcommands (run `stpq_cli <command> --help` for per-command flags):
//
//   generate   synthesize a dataset and write it as a .stpq file
//   info       summarize a .stpq dataset
//   build      build all indexes over a dataset and persist them as a
//              versioned .stpqx index file (Engine::Save)
//   load       print the superblock + segment catalog of a .stpqx file
//   query      run one query and print the top-k
//   bench      run a generated query batch sequentially
//   workload   parallel throughput sweep over thread counts
//   profile    sequential run with phase breakdown + latency histogram
//   trace      run with the tracer armed and export Chrome trace JSON
//   validate   run the deep structural validators over every index
//
// Every query-running command accepts either --data FILE (build indexes
// in memory, simulated storage) or --index FILE (reopen a prebuilt
// .stpqx file, file-backed storage); --backend simulated|file makes the
// choice explicit.  --kind srt|ir2 picks the feature index when
// building; a reopened file always uses the kind it was built with.
//
// Flags accept both "--flag value" and "--flag=value".
// Keyword syntax: per-feature-set lists separated by ';', terms by ','.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "debug/validate.h"
#include "core/explain.h"
#include "core/score.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "io/bulk_load.h"
#include "io/dataset_io.h"
#include "io/index_file.h"
#include "obs/admin_server.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "storage/page_store.h"

using namespace stpq;

namespace {

/// Minimal --flag value parser; positional[0] is the subcommand.
struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::atof(it->second.c_str());
  }
  uint32_t GetUint(const std::string& key, uint32_t def) const {
    auto it = flags.find(key);
    return it == flags.end()
               ? def
               : static_cast<uint32_t>(std::atoi(it->second.c_str()));
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

Args Parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      a.flags.insert_or_assign(key.substr(0, eq), key.substr(eq + 1));
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.flags.insert_or_assign(key, std::string(argv[++i]));
    } else {
      a.flags.insert_or_assign(key, std::string("1"));  // boolean flag
    }
  }
  return a;
}

/// One subcommand: name, one-line summary for the top-level usage, flag
/// details for `stpq_cli <name> --help`, and the handler.
struct CommandSpec {
  const char* name;
  const char* summary;
  const char* help;
  int (*run)(const Args&);
};

const std::vector<CommandSpec>& Commands();  // defined after the handlers

int Usage() {
  std::fprintf(stderr, "usage: stpq_cli <command> [flags]\n\ncommands:\n");
  for (const CommandSpec& c : Commands()) {
    std::fprintf(stderr, "  %-9s %s\n", c.name, c.summary);
  }
  std::fprintf(stderr,
               "\nrun 'stpq_cli <command> --help' for the command's flags\n");
  return 2;
}

/// Flags shared by every command that answers queries; individual help
/// strings append their command-specific flags to this.
#define STPQ_CLI_ENGINE_FLAGS                                               \
  "  --data FILE       dataset to index in memory (simulated storage)\n"    \
  "  --index FILE      prebuilt .stpqx index file to reopen instead\n"      \
  "  --backend NAME    simulated|file (default: file iff --index given)\n"  \
  "  --kind srt|ir2    feature index to build (default srt; ignored when\n" \
  "                    reopening: the file records its kind)\n"             \
  "  --page-size N     simulated page size in bytes when building\n"        \
  "  --pool N          buffer-pool capacity in pages (0 = unbounded)\n"

Result<Dataset> LoadData(const Args& args) {
  std::string path = args.Get("data");
  if (path.empty()) {
    return Status::InvalidArgument("--data FILE is required");
  }
  return ReadDatasetBinary(path);
}

EngineOptions MakeEngineOptions(const Args& args) {
  EngineOptions opts;
  if (args.Get("kind", "srt") == "ir2") {
    opts.index_kind = FeatureIndexKind::kIr2;
  }
  opts.storage.page_size = args.GetUint("page-size", kDefaultPageSizeBytes);
  opts.storage.pool_capacity = args.GetUint("pool", 0);
  opts.fill = args.GetDouble("fill", 1.0);
  if (args.Has("signature-bits")) {
    opts.signature_bits = args.GetUint("signature-bits", 0);
  }
  if (args.Has("signature-hashes")) {
    opts.signature_hashes = args.GetUint("signature-hashes", 3);
  }
  return opts;
}

/// The shared engine source behind every query-running command: builds
/// in memory from --data (simulated backend) or reopens --index (file
/// backend), and fills `ds` with the objects, tables and vocabularies the
/// command needs for keyword parsing and query generation.
Result<Engine> MakeEngine(const Args& args, Dataset* ds) {
  const std::string index_path = args.Get("index");
  Result<StorageBackend> backend = ParseStorageBackend(
      args.Get("backend", index_path.empty() ? "simulated" : "file"));
  if (!backend.ok()) return backend.status();

  if (backend.value() == StorageBackend::kFile) {
    if (index_path.empty()) {
      return Status::InvalidArgument("--backend=file requires --index FILE");
    }
    Result<Engine> engine = Engine::Open(index_path, MakeEngineOptions(args));
    if (!engine.ok()) return engine;
    // Rebuild the dataset view from the engine + the persisted
    // vocabularies so query generation matches the --data path.
    ds->objects = engine.value().objects();
    for (size_t i = 0; i < engine.value().num_feature_sets(); ++i) {
      ds->feature_tables.push_back(engine.value().feature_table(i));
    }
    Result<std::vector<Vocabulary>> vocabs = ReadIndexVocabularies(index_path);
    if (!vocabs.ok()) return vocabs.status();
    ds->vocabularies = vocabs.TakeValue();
    return engine;
  }

  if (!index_path.empty()) {
    return Status::InvalidArgument(
        "--index is only meaningful with --backend=file");
  }
  Result<Dataset> data = LoadData(args);
  if (!data.ok()) return data.status();
  *ds = data.TakeValue();
  // The dataset stays alive in the caller (names, vocabularies, query
  // generation), so the engine gets copies.
  return Engine::Build(ds->objects,
                       std::vector<FeatureTable>(ds->feature_tables),
                       MakeEngineOptions(args));
}

int Generate(const Args& args) {
  std::string out = args.Get("out");
  if (out.empty()) return Usage();
  double scale = args.GetDouble("scale", 0.1);
  uint64_t seed = args.GetUint("seed", 42);
  Dataset ds;
  if (args.Get("kind", "synthetic") == "real") {
    RealLikeConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    ds = GenerateRealLike(cfg);
  } else {
    SyntheticConfig cfg;
    cfg.seed = seed;
    cfg.num_objects = static_cast<uint32_t>(100'000 * scale);
    cfg.num_features_per_set = static_cast<uint32_t>(100'000 * scale);
    cfg.num_clusters = std::max(100u, static_cast<uint32_t>(10'000 * scale));
    ds = GenerateSynthetic(cfg);
  }
  Status st = WriteDatasetBinary(out, ds);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu objects, %zu feature sets\n", out.c_str(),
              ds.objects.size(), ds.feature_tables.size());
  return 0;
}

int Info(const Args& args) {
  Result<Dataset> data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = data.value();
  std::printf("objects: %zu\n", ds.objects.size());
  for (size_t i = 0; i < ds.feature_tables.size(); ++i) {
    std::printf("feature set %zu: %zu features, %u keywords (e.g.", i,
                ds.feature_tables[i].size(),
                ds.feature_tables[i].universe_size());
    for (uint32_t t = 0; t < std::min(5u, ds.vocabularies[i].size()); ++t) {
      std::printf(" %s", ds.vocabularies[i].Term(t).c_str());
    }
    std::printf(")\n");
  }
  return 0;
}

/// Parses "a,b;c,d" into one KeywordSet per feature set.
bool ParseKeywords(const std::string& spec, const Dataset& ds, Query* query) {
  std::vector<std::string> groups;
  std::string cur;
  for (char ch : spec) {
    if (ch == ';') {
      groups.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  groups.push_back(cur);
  if (groups.size() != ds.feature_tables.size()) {
    std::fprintf(stderr,
                 "error: %zu keyword groups for %zu feature sets "
                 "(separate groups with ';')\n",
                 groups.size(), ds.feature_tables.size());
    return false;
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    KeywordSet kw(ds.feature_tables[i].universe_size());
    std::string term;
    auto flush = [&]() {
      if (term.empty()) return true;
      Result<TermId> id = ds.vocabularies[i].Lookup(term);
      if (!id.ok()) {
        std::fprintf(stderr, "error: unknown keyword '%s' in set %zu\n",
                     term.c_str(), i);
        return false;
      }
      kw.Insert(id.value());
      term.clear();
      return true;
    };
    for (char ch : groups[i]) {
      if (ch == ',') {
        if (!flush()) return false;
      } else if (!std::isspace(static_cast<unsigned char>(ch))) {
        term.push_back(ch);
      }
    }
    if (!flush()) return false;
    query->keywords.push_back(std::move(kw));
  }
  return true;
}

int RunQuery(const Args& args) {
  Dataset ds;
  Result<Engine> engine_r = MakeEngine(args, &ds);
  if (!engine_r.ok()) {
    std::fprintf(stderr, "error: %s\n", engine_r.status().ToString().c_str());
    return 1;
  }
  Engine engine = engine_r.TakeValue();
  Query query;
  query.k = args.GetUint("k", 10);
  query.radius = args.GetDouble("r", 0.01);
  query.lambda = args.GetDouble("lambda", 0.5);
  std::string variant = args.Get("variant", "range");
  if (variant == "influence") query.variant = ScoreVariant::kInfluence;
  if (variant == "nn") query.variant = ScoreVariant::kNearestNeighbor;
  if (!ParseKeywords(args.Get("keywords"), ds, &query)) return 1;

  const std::vector<DataObject>& objects = ds.objects;  // names for printing
  Algorithm algo =
      args.Get("algo", "stps") == "stds" ? Algorithm::kStds : Algorithm::kStps;
  Result<QueryResult> executed = engine.Execute(query, algo);
  if (!executed.ok()) {
    std::fprintf(stderr, "error: %s\n", executed.status().ToString().c_str());
    return 1;
  }
  QueryResult result = executed.TakeValue();
  std::printf("top-%u (%s, %s, %s index):\n", query.k, VariantName(
                  query.variant),
              algo == Algorithm::kStds ? "STDS" : "STPS",
              engine.IndexName());
  for (size_t rank = 0; rank < result.entries.size(); ++rank) {
    const ResultEntry& e = result.entries[rank];
    const std::string& name = objects[e.object].name;
    std::printf("%3zu. #%-8u %-20s tau = %.5f\n", rank + 1, e.object,
                name.empty() ? "(unnamed)" : name.c_str(), e.score);
    if (args.Has("explain")) {
      Explanation why = ExplainScore(&engine, query, e.object);
      for (const Contribution& c : why.contributions) {
        if (!c.has_feature) {
          std::printf("       set %zu: no relevant feature\n",
                      c.feature_set);
          continue;
        }
        const FeatureObject& f =
            engine.feature_table(c.feature_set).Get(c.feature);
        std::printf("       set %zu: %-20s s=%.4f dist=%.5f\n",
                    c.feature_set,
                    f.name.empty() ? "(unnamed)" : f.name.c_str(), c.score,
                    c.distance);
      }
    }
  }
  std::printf("cost: %.3f ms CPU, %llu page reads\n", result.stats.cpu_ms,
              static_cast<unsigned long long>(result.stats.TotalReads()));
  return 0;
}

/// Live-introspection flags shared by the long-running commands; the
/// individual help strings append this to STPQ_CLI_ENGINE_FLAGS.
#define STPQ_CLI_ADMIN_FLAGS                                                  \
  "  --serve-admin PORT  serve /metrics /healthz /statusz /slowz /tracez\n"   \
  "                    /varz on 127.0.0.1:PORT while the run executes\n"      \
  "                    (0 = ephemeral; the bound port is printed)\n"          \
  "  --metrics-interval MS  sample interval deltas every MS ms (/varz;\n"     \
  "                    armed at 250 ms automatically when serving)\n"

/// The optional live-introspection plane behind --serve-admin /
/// --metrics-interval / --slow-ms (DESIGN.md §18): a background metrics
/// sampler, a slow-query log, and the admin HTTP server wired to all of
/// them plus the engine.  Members shut down in reverse order of arming.
struct AdminScope {
  std::unique_ptr<MetricsRecorder> recorder;
  std::unique_ptr<SlowQueryLog> slow_log;
  std::unique_ptr<AdminServer> server;

  /// Stops the server first (no requests against a dead sampler), then
  /// the sampler.  Idempotent; the destructor runs it too.
  void Shutdown() {
    if (server != nullptr) server->Stop();
    if (recorder != nullptr) recorder->Stop();
  }
  ~AdminScope() { Shutdown(); }
};

/// /statusz rows describing `engine`: shape, storage, live pool occupancy.
AdminStatusRows EngineStatusRows(const Engine* engine) {
  AdminStatusRows rows;
  rows.emplace_back("index", engine->IndexName());
  rows.emplace_back("objects", std::to_string(engine->objects().size()));
  rows.emplace_back("feature_sets",
                    std::to_string(engine->num_feature_sets()));
  rows.emplace_back("backend",
                    StorageBackendName(engine->options().storage.backend));
  rows.emplace_back("page_size",
                    std::to_string(engine->options().storage.page_size));
  rows.emplace_back("pool_capacity_pages",
                    std::to_string(engine->object_pool().capacity_pages()));
  rows.emplace_back(
      "pool_resident_pages",
      std::to_string(engine->object_pool().resident_pages() +
                     engine->feature_pool().resident_pages()));
  rows.emplace_back(
      "pool_pinned_pages",
      std::to_string(engine->object_pool().pinned_pages() +
                     engine->feature_pool().pinned_pages()));
  return rows;
}

/// Arms the introspection plane a command's flags ask for.  `external_slow_log`
/// lets a command that owns its own SlowQueryLog (trace) expose it on
/// /slowz instead of getting a second one.  Returns false (with the error
/// printed) only when --serve-admin was requested and the bind failed.
bool StartAdmin(const Args& args, const Engine* engine,
                SlowQueryLog* external_slow_log, AdminScope* scope) {
  const bool serve = args.Has("serve-admin");
  if (serve || args.Has("metrics-interval")) {
    MetricsRecorderOptions ropts;
    ropts.interval_ms = args.GetUint("metrics-interval", 250);
    if (ropts.interval_ms == 0) ropts.interval_ms = 250;
    scope->recorder = std::make_unique<MetricsRecorder>(ropts);
    scope->recorder->Start();
  }
  if (external_slow_log == nullptr && args.Has("slow-ms")) {
    scope->slow_log =
        std::make_unique<SlowQueryLog>(args.GetDouble("slow-ms", 0.0));
  }
  if (!serve) return true;
  AdminServerOptions sopts;
  sopts.port = static_cast<uint16_t>(args.GetUint("serve-admin", 0));
  sopts.recorder = scope->recorder.get();
  sopts.slow_log =
      external_slow_log != nullptr ? external_slow_log : scope->slow_log.get();
  sopts.status_provider = [engine] { return EngineStatusRows(engine); };
  scope->server = std::make_unique<AdminServer>(std::move(sopts));
  Status st = scope->server->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return false;
  }
  // The CI smoke driver (tests/admin/check_admin_live.py) parses this
  // line to find an ephemeral port; keep the format stable.
  std::printf("admin: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(scope->server->port()));
  std::fflush(stdout);
  return true;
}

/// Keeps the admin server scrapeable for --linger-ms after the run so
/// out-of-process drivers can fetch the final state.
void AdminLinger(const Args& args, const AdminScope& scope) {
  const uint32_t linger_ms = args.GetUint("linger-ms", 0);
  if (linger_ms == 0 || scope.server == nullptr) return;
  std::printf("admin: lingering %u ms\n", linger_ms);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
}

/// Prints the sampler's interval table: one row per closed interval with
/// the derived per-interval rates (the same numbers /varz serves).
void PrintIntervalTable(const MetricsRecorder& recorder) {
  const std::vector<IntervalSample> samples = recorder.Recent();
  if (samples.empty()) return;
  std::printf("interval samples (every %llu ms):\n",
              static_cast<unsigned long long>(recorder.interval_ms()));
  std::printf("%10s %9s %10s %12s %10s %10s %10s\n", "t_ms", "queries",
              "queries/s", "page_reads", "hit_rate", "p50_ms", "p99_ms");
  for (const IntervalSample& s : samples) {
    const LatencyHistogram* lat = s.Histogram("stpq_query_cpu_ms");
    std::printf("%10.0f %9llu %10.1f %12llu %10.3f %10.3f %10.3f\n", s.end_ms,
                static_cast<unsigned long long>(
                    s.CounterDelta("stpq_queries_total")),
                s.QueriesPerSec(),
                static_cast<unsigned long long>(
                    s.CounterDelta("stpq_pages_read_total")),
                s.PoolHitRate(),
                lat != nullptr ? lat->PercentileMs(0.50) : 0.0,
                lat != nullptr ? lat->PercentileMs(0.99) : 0.0);
  }
}

int Bench(const Args& args) {
  Dataset ds;
  Result<Engine> engine_r = MakeEngine(args, &ds);
  if (!engine_r.ok()) {
    std::fprintf(stderr, "error: %s\n", engine_r.status().ToString().c_str());
    return 1;
  }
  Engine engine = engine_r.TakeValue();
  QueryWorkloadConfig qcfg;
  qcfg.count = args.GetUint("queries", 50);
  qcfg.k = args.GetUint("k", 10);
  qcfg.radius = args.GetDouble("r", 0.01);
  qcfg.lambda = args.GetDouble("lambda", 0.5);
  std::string variant = args.Get("variant", "range");
  if (variant == "influence") qcfg.variant = ScoreVariant::kInfluence;
  if (variant == "nn") qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Algorithm algo =
      args.Get("algo", "stps") == "stds" ? Algorithm::kStds : Algorithm::kStps;
  AdminScope admin;
  if (!StartAdmin(args, &engine, nullptr, &admin)) return 1;
  Result<WorkloadSummary> s =
      RunWorkload(engine, queries, algo, args.GetDouble("io-ms", 0.1));
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", s.value().ToString().c_str());
  AdminLinger(args, admin);
  return 0;
}

/// Writes the global registry's Prometheus text exposition to `path`.
bool WriteMetricsFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                 path.c_str());
    return false;
  }
  out << MetricsRegistry::Global().RenderPrometheusText();
  return static_cast<bool>(out);
}

/// Drains the global tracer and writes a Chrome trace-event JSON file.
bool WriteTraceFile(const std::string& path) {
  TraceCollection collection = Tracer::Global().Collect();
  Status st = WriteChromeTraceFile(collection, path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return false;
  }
  std::printf("trace: %zu events from %zu threads (%llu dropped) -> %s\n",
              collection.TotalEvents(), collection.threads.size(),
              static_cast<unsigned long long>(collection.dropped),
              path.c_str());
  return true;
}

/// Parses "1,2,4,8" into thread counts; returns empty on a parse error.
std::vector<size_t> ParseThreadList(const std::string& spec) {
  std::vector<size_t> out;
  std::string cur;
  auto flush = [&]() {
    if (cur.empty()) return true;
    char* end = nullptr;
    long v = std::strtol(cur.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) return false;
    out.push_back(static_cast<size_t>(v));
    cur.clear();
    return true;
  };
  for (char ch : spec) {
    if (ch == ',') {
      if (!flush()) return {};
    } else if (!std::isspace(static_cast<unsigned char>(ch))) {
      cur.push_back(ch);
    }
  }
  if (!flush()) return {};
  return out;
}

/// Runs one generated query batch through ParallelWorkloadRunner for each
/// requested thread count and prints a throughput row per count.
int Workload(const Args& args) {
  Dataset ds;
  Result<Engine> engine = MakeEngine(args, &ds);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  QueryWorkloadConfig qcfg;
  qcfg.count = args.GetUint("queries", 200);
  qcfg.k = args.GetUint("k", 10);
  qcfg.radius = args.GetDouble("r", 0.01);
  qcfg.lambda = args.GetDouble("lambda", 0.5);
  std::string variant = args.Get("variant", "range");
  if (variant == "influence") qcfg.variant = ScoreVariant::kInfluence;
  if (variant == "nn") qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);

  std::vector<size_t> thread_counts = ParseThreadList(args.Get("threads", "1"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "error: --threads expects N or N,N,... (got '%s')\n",
                 args.Get("threads", "1").c_str());
    return 1;
  }

  ParallelWorkloadRunner runner(&engine.value());

  ParallelWorkloadOptions opts;
  opts.algorithm =
      args.Get("algo", "stps") == "stds" ? Algorithm::kStds : Algorithm::kStps;
  opts.io_unit_cost_ms = args.GetDouble("io-ms", 0.1);

  AdminScope admin;
  if (!StartAdmin(args, &engine.value(), nullptr, &admin)) return 1;
  opts.slow_log = admin.slow_log.get();

  if (args.Has("trace-out")) Tracer::Global().Start();

  std::printf("%zu queries, %s, %s index\n", queries.size(),
              opts.algorithm == Algorithm::kStds ? "STDS" : "STPS",
              engine.value().IndexName());
  std::printf("%8s %12s %12s %14s %10s %10s %10s\n", "threads", "wall_ms",
              "queries/s", "reads/query", "p50_ms", "p95_ms", "p99_ms");
  for (size_t threads : thread_counts) {
    opts.threads = threads;
    Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const ParallelWorkloadReport& r = report.value();
    std::printf("%8zu %12.2f %12.1f %14.1f %10.3f %10.3f %10.3f\n", threads,
                r.wall_ms, r.queries_per_sec, r.summary.mean_page_reads,
                r.latency.PercentileMs(0.50), r.latency.PercentileMs(0.95),
                r.latency.PercentileMs(0.99));
  }
  if (args.Has("trace-out")) {
    Tracer::Global().Stop();
    if (!WriteTraceFile(args.Get("trace-out"))) return 1;
  }
  if (args.Has("metrics") && !WriteMetricsFile(args.Get("metrics"))) {
    return 1;
  }
  AdminLinger(args, admin);
  if (admin.recorder != nullptr) {
    admin.recorder->Stop();  // closes the final partial interval
    PrintIntervalTable(*admin.recorder);
  }
  return 0;
}

/// Executes a generated workload sequentially and prints the per-phase
/// wall-time breakdown plus the latency distribution (DESIGN.md §12).
int Profile(const Args& args) {
  Dataset ds;
  Result<Engine> engine = MakeEngine(args, &ds);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  QueryWorkloadConfig qcfg;
  qcfg.count = args.GetUint("queries", 100);
  qcfg.k = args.GetUint("k", 10);
  qcfg.radius = args.GetDouble("r", 0.01);
  qcfg.lambda = args.GetDouble("lambda", 0.5);
  std::string variant = args.Get("variant", "range");
  if (variant == "influence") qcfg.variant = ScoreVariant::kInfluence;
  if (variant == "nn") qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  const double io_ms = args.GetDouble("io-ms", 0.1);
  Algorithm algo =
      args.Get("algo", "stps") == "stds" ? Algorithm::kStds : Algorithm::kStps;

  AdminScope admin;
  if (!StartAdmin(args, &engine.value(), nullptr, &admin)) return 1;

  if (args.Has("trace-out")) Tracer::Global().Start();

  QueryStats aggregate;
  LatencyHistogram latency;
  ExecuteOptions exec;
  exec.algorithm = algo;
  exec.slow_log = admin.slow_log.get();
  for (const Query& q : queries) {
    Result<QueryResult> r = engine.value().Execute(q, exec);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    const QueryStats& stats = r.value().stats;
    aggregate += stats;
    latency.Record(stats.cpu_ms + stats.IoMillis(io_ms));
  }

  std::printf("profile: %zu queries, %s, %s index, variant=%s\n",
              queries.size(), algo == Algorithm::kStds ? "STDS" : "STPS",
              engine.value().IndexName(), variant.c_str());
  std::printf("latency (cpu + %.3f ms/read): %s mean=%.3fms\n", io_ms,
              latency.SummaryString().c_str(), latency.mean_ms());

  // Phase breakdown: traced self-times, the derived I/O phase (page reads
  // priced at io-ms, never timed), and the untraced remainder.
  const double io_total = aggregate.IoMillis(io_ms);
  const double grand_total = aggregate.cpu_ms + io_total;
  auto row = [&](const char* name, double ms) {
    std::printf("  %-18s %12.3f ms %6.1f%%\n", name, ms,
                grand_total > 0.0 ? 100.0 * ms / grand_total : 0.0);
  };
  std::printf("phase breakdown (self time over the whole workload):\n");
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    row(QueryPhaseName(static_cast<QueryPhase>(i)),
        aggregate.phase_ms[i]);
  }
  row("io (derived)", io_total);
  row("other", aggregate.UntracedMillis());
  std::printf("counters: %s\n", aggregate.ToString().c_str());

  if (args.Has("trace-out")) {
    Tracer::Global().Stop();
    if (!WriteTraceFile(args.Get("trace-out"))) return 1;
  }
  if (args.Has("metrics") && !WriteMetricsFile(args.Get("metrics"))) {
    return 1;
  }
  AdminLinger(args, admin);
  return 0;
}

/// Runs a generated workload with the tracer armed and exports a Chrome
/// trace-event JSON file (load it at ui.perfetto.dev or
/// chrome://tracing).  With --slow-ms only queries at or above the
/// threshold are captured (slow-query mode); without it the full event
/// stream of the run is exported.
int Trace(const Args& args) {
  Dataset ds;
  Result<Engine> engine = MakeEngine(args, &ds);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  QueryWorkloadConfig qcfg;
  qcfg.count = args.GetUint("queries", 100);
  qcfg.k = args.GetUint("k", 10);
  qcfg.radius = args.GetDouble("r", 0.01);
  qcfg.lambda = args.GetDouble("lambda", 0.5);
  std::string variant = args.Get("variant", "range");
  if (variant == "influence") qcfg.variant = ScoreVariant::kInfluence;
  if (variant == "nn") qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);

  const std::string out_path = args.Get("trace-out", "trace.json");
  const bool slow_mode = args.Has("slow-ms");
  SlowQueryLog slow_log(args.GetDouble("slow-ms", 0.0));

  AdminScope admin;
  if (!StartAdmin(args, &engine.value(), slow_mode ? &slow_log : nullptr,
                  &admin)) {
    return 1;
  }

  Tracer::Global().Start();
  ParallelWorkloadRunner runner(&engine.value());
  ParallelWorkloadOptions opts;
  opts.algorithm =
      args.Get("algo", "stps") == "stds" ? Algorithm::kStds : Algorithm::kStps;
  opts.threads = args.GetUint("threads", 1);
  opts.io_unit_cost_ms = args.GetDouble("io-ms", 0.1);
  if (slow_mode) opts.slow_log = &slow_log;
  Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
  Tracer::Global().Stop();
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().summary.ToString().c_str());
  AdminLinger(args, admin);

  if (slow_mode) {
    // Slow-query mode: keep only the captured queries; the rest of the
    // stream (already drained per query by the log) is discarded.
    TraceCollection leftover = Tracer::Global().Collect();
    std::vector<SlowQueryRecord> records = slow_log.Snapshot();
    TraceCollection collection =
        CollectionFromSlowQueries(records, leftover.dropped);
    Status st = WriteChromeTraceFile(collection, out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu slow queries (>= %.3f ms), %zu events -> %s\n",
                records.size(), slow_log.threshold_ms(),
                collection.TotalEvents(), out_path.c_str());
    return 0;
  }
  return WriteTraceFile(out_path) ? 0 : 1;
}

/// Builds every index over the dataset and runs the deep structural
/// validators from debug/validate.h, reporting the first violation per
/// structure.  Exit code 0 = all structures sound.
int Validate(const Args& args) {
  Dataset ds;
  Result<Engine> engine_r = MakeEngine(args, &ds);
  if (!engine_r.ok()) {
    std::fprintf(stderr, "error: %s\n", engine_r.status().ToString().c_str());
    return 1;
  }
  Engine engine = engine_r.TakeValue();
  std::vector<std::vector<KeywordSet>> corpora(ds.feature_tables.size());
  for (size_t i = 0; i < ds.feature_tables.size(); ++i) {
    for (const FeatureObject& f : ds.feature_tables[i].All()) {
      corpora[i].push_back(f.keywords);
    }
  }

  int failures = 0;
  auto report = [&failures](const char* what, const Status& st) {
    if (st.ok()) {
      std::printf("%-24s OK\n", what);
    } else {
      std::printf("%-24s VIOLATION: %s\n", what, st.message().c_str());
      ++failures;
    }
  };

  report("object index", ValidateObjectIndex(engine.object_index()));
  for (size_t i = 0; i < engine.num_feature_sets(); ++i) {
    std::string label = "feature index " + std::to_string(i);
    const FeatureIndex& fi = engine.feature_index(i);
    if (const auto* srt = dynamic_cast<const SrtIndex*>(&fi)) {
      report((label + " (SRT)").c_str(), ValidateSrtIndex(*srt));
    } else if (const auto* ir2 = dynamic_cast<const Ir2Tree*>(&fi)) {
      report((label + " (IR2)").c_str(), ValidateIr2Tree(*ir2));
    } else {
      std::printf("%-24s skipped (unknown index type)\n", label.c_str());
    }
    InvertedIndex inv = InvertedIndex::Build(
        engine.feature_table(i).universe_size(), corpora[i]);
    report(("inverted index " + std::to_string(i)).c_str(),
           ValidateInvertedIndex(inv, corpora[i]));
  }
  if (failures == 0) {
    std::printf("all structures sound\n");
  }
  return failures == 0 ? 0 : 1;
}

/// Builds every index over a dataset and persists the set as a .stpqx
/// file that `--index`-accepting commands (and Engine::Open) reopen.
int BuildIndex(const Args& args) {
  const std::string out = args.Get("index");
  if (out.empty()) {
    std::fprintf(stderr, "error: --index FILE (output path) is required\n");
    return 1;
  }
  if (args.Has("external")) {
    // External build: stream the dataset straight into the .stpqx file in
    // bounded memory; the dataset is never materialized.
    const std::string data_path = args.Get("data");
    if (data_path.empty()) {
      std::fprintf(stderr, "error: --data FILE is required\n");
      return 1;
    }
    ExternalBuildOptions opts;
    if (args.Get("kind", "srt") == "ir2") {
      opts.params.index_kind = FeatureIndexKind::kIr2;
    }
    opts.params.page_size_bytes =
        args.GetUint("page-size", kDefaultPageSizeBytes);
    opts.params.fill = args.GetDouble("fill", 1.0);
    if (args.Has("signature-bits")) {
      opts.params.signature_bits = args.GetUint("signature-bits", 0);
    }
    if (args.Has("signature-hashes")) {
      opts.params.signature_hashes = args.GetUint("signature-hashes", 3);
    }
    opts.memory_budget_bytes =
        uint64_t{args.GetUint("memory-budget", 256)} << 20;
    opts.temp_dir = args.Get("temp-dir");
    Result<ExternalBuildStats> stats_r =
        BuildIndexFileExternal(data_path, out, opts);
    if (!stats_r.ok()) {
      std::fprintf(stderr, "error: %s\n", stats_r.status().ToString().c_str());
      return 1;
    }
    const ExternalBuildStats& s = stats_r.value();
    std::printf("wrote %s: %s index, %llu objects, %u feature sets, "
                "%llu bytes (external build)\n",
                out.c_str(),
                opts.params.index_kind == FeatureIndexKind::kIr2 ? "IR2"
                                                                 : "SRT",
                static_cast<unsigned long long>(s.objects), s.tables,
                static_cast<unsigned long long>(s.output_bytes));
    std::printf("sort: %llu runs written, %llu merge passes, "
                "%llu bytes spilled\n",
                static_cast<unsigned long long>(s.runs_written),
                static_cast<unsigned long long>(s.merge_passes),
                static_cast<unsigned long long>(s.spilled_bytes));
    return 0;
  }
  Result<Dataset> data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  Dataset ds = data.TakeValue();
  std::vector<Vocabulary> vocabularies = ds.vocabularies;  // ride along
  Result<Engine> engine =
      Engine::Build(std::move(ds.objects), std::move(ds.feature_tables),
                    MakeEngineOptions(args));
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  Status st = engine.value().Save(out, vocabularies);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<IndexFileInfo> info = ReadIndexFileInfo(out);
  if (!info.ok()) {
    std::fprintf(stderr, "error: reopening just-written index: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s index, %llu objects, %u feature sets, "
              "%llu bytes\n",
              out.c_str(), engine.value().IndexName(),
              static_cast<unsigned long long>(info.value().object_count),
              info.value().table_count,
              static_cast<unsigned long long>(info.value().file_bytes));
  return 0;
}

/// Prints the superblock + segment catalog of a .stpqx file; --verify
/// additionally restores every index (checksums + deep decode).
int LoadInfo(const Args& args) {
  const std::string path = args.Get("index");
  if (path.empty()) {
    std::fprintf(stderr, "error: --index FILE is required\n");
    return 1;
  }
  Result<IndexFileInfo> info_r = ReadIndexFileInfo(path);
  if (!info_r.ok()) {
    std::fprintf(stderr, "error: %s\n", info_r.status().ToString().c_str());
    return 1;
  }
  const IndexFileInfo& info = info_r.value();
  std::printf("%s: version %u, %s index, page size %u, fill %.2f\n",
              path.c_str(), info.version,
              info.params.index_kind == FeatureIndexKind::kIr2 ? "IR2" : "SRT",
              info.params.page_size_bytes, info.params.fill);
  std::printf("objects: %llu, feature sets: %u, file bytes: %llu\n",
              static_cast<unsigned long long>(info.object_count),
              info.table_count,
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("%-20s %8s %12s %10s %10s\n", "segment", "ordinal", "bytes",
              "slots", "slot_b");
  for (const IndexSegmentInfo& s : info.segments) {
    std::printf("%-20s %8u %12llu %10llu %10u\n", s.name.c_str(), s.ordinal,
                static_cast<unsigned long long>(s.bytes),
                static_cast<unsigned long long>(s.slots), s.slot_bytes);
  }
  if (args.Has("verify")) {
    Result<Engine> engine = Engine::Open(path);
    if (!engine.ok()) {
      std::fprintf(stderr, "verify FAILED: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("verify OK: all segments restored\n");
  }
  return 0;
}

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"generate", "synthesize a dataset and write it as a .stpq file",
       "  --out FILE        output dataset path (required)\n"
       "  --kind NAME       synthetic|real (default synthetic)\n"
       "  --scale S         dataset scale factor (default 0.1)\n"
       "  --seed N          RNG seed (default 42)\n",
       &Generate},
      {"info", "summarize a .stpq dataset",
       "  --data FILE       dataset path (required)\n", &Info},
      {"build",
       "build all indexes over a dataset and persist them as a .stpqx file",
       "  --data FILE       dataset to index (required)\n"
       "  --index FILE      output index file path (required)\n"
       "  --kind srt|ir2    feature index to build (default srt)\n"
       "  --page-size N     page size in bytes (default 4096)\n"
       "  --fill F          bulk-load fill factor in (0, 1]\n"
       "  --signature-bits N / --signature-hashes N  IR2 signatures\n"
       "  --external        stream-build on disk in bounded memory\n"
       "                    (external merge sort; byte-identical output)\n"
       "  --memory-budget MB  external sort memory ceiling (default 256)\n"
       "  --temp-dir DIR    where external sort runs spill (default: next\n"
       "                    to the output index)\n",
       &BuildIndex},
      {"load", "print the superblock + segment catalog of a .stpqx file",
       "  --index FILE      index file path (required)\n"
       "  --verify          additionally restore every index (checksums +\n"
       "                    full decode) via Engine::Open\n",
       &LoadInfo},
      {"query", "run one query and print the top-k",
       STPQ_CLI_ENGINE_FLAGS
       "  --keywords \"a,b;c\"  per-set keyword lists (required)\n"
       "  --k N / --r R / --lambda L\n"
       "  --variant range|influence|nn\n"
       "  --algo stps|stds\n"
       "  --explain         print per-set contributions for each result\n",
       &RunQuery},
      {"bench", "run a generated query batch sequentially",
       STPQ_CLI_ENGINE_FLAGS
       "  --queries N / --k N / --r R / --lambda L\n"
       "  --variant range|influence|nn\n"
       "  --algo stps|stds\n"
       "  --io-ms MS        simulated cost per page read\n"
       STPQ_CLI_ADMIN_FLAGS
       "  --linger-ms MS    keep the admin server up MS ms after the run\n",
       &Bench},
      {"workload", "parallel throughput sweep over thread counts",
       STPQ_CLI_ENGINE_FLAGS
       "  --threads N[,N...]  thread counts to sweep (default 1)\n"
       "  --queries N / --k N / --r R / --lambda L\n"
       "  --variant range|influence|nn\n"
       "  --algo stps|stds\n"
       "  --io-ms MS        simulated cost per page read\n"
       "  --metrics FILE    write Prometheus text exposition\n"
       "  --trace-out FILE  write Chrome trace JSON\n"
       STPQ_CLI_ADMIN_FLAGS
       "  --slow-ms T       retain queries at or above T ms (/slowz)\n"
       "  --linger-ms MS    keep the admin server up MS ms after the run\n",
       &Workload},
      {"profile", "sequential run with phase breakdown + latency histogram",
       STPQ_CLI_ENGINE_FLAGS
       "  --queries N / --k N / --r R / --lambda L\n"
       "  --variant range|influence|nn\n"
       "  --algo stps|stds\n"
       "  --io-ms MS        simulated cost per page read\n"
       "  --metrics FILE    write Prometheus text exposition\n"
       "  --trace-out FILE  write Chrome trace JSON\n"
       STPQ_CLI_ADMIN_FLAGS
       "  --slow-ms T       retain queries at or above T ms (/slowz)\n"
       "  --linger-ms MS    keep the admin server up MS ms after the run\n",
       &Profile},
      {"trace", "run with the tracer armed and export Chrome trace JSON",
       STPQ_CLI_ENGINE_FLAGS
       "  --trace-out FILE  output path (default trace.json)\n"
       "  --slow-ms T       capture only queries at or above T ms\n"
       "  --queries N / --threads N\n"
       "  --variant range|influence|nn\n"
       "  --algo stps|stds\n"
       STPQ_CLI_ADMIN_FLAGS
       "  --linger-ms MS    keep the admin server up MS ms after the run\n"
       "                    (note: a /tracez scrape consumes trace events\n"
       "                    the export would otherwise include)\n",
       &Trace},
      {"validate", "run the deep structural validators over every index",
       STPQ_CLI_ENGINE_FLAGS, &Validate},
  };
  return kCommands;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  for (const CommandSpec& c : Commands()) {
    if (args.command != c.name) continue;
    if (args.Has("help")) {
      std::printf("usage: stpq_cli %s [flags]\n%s\n%s", c.name, c.summary,
                  c.help);
      return 0;
    }
    return c.run(args);
  }
  return Usage();
}
