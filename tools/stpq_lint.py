#!/usr/bin/env python3
"""stpq_lint: project-specific static contract checks (DESIGN.md §15).

Enforces the invariants generic clang-tidy cannot express, on top of the
Clang thread-safety layer in src/util/thread_annotations.h:

  hot-alloc         Functions tagged STPQ_HOT — and everything they
                    transitively call inside the project — must not reach
                    operator new / malloc, std::make_unique/make_shared,
                    std::to_string, or construct an owning standard
                    container / string / stream as a local or temporary.
                    This is the §13 allocation-free warm-path contract,
                    checked without running the counting allocator.
  priority-queue    No std::priority_queue outside core/scratch.h; use the
                    scratch-borrowing BorrowedHeap (bit-identical pop
                    order, zero steady-state allocation).
  mutex-guard       Every std::mutex / stpq::Mutex member must be named in
                    at least one STPQ_GUARDED_BY / STPQ_PT_GUARDED_BY
                    relationship in its class, or carry an explicit
                    suppression explaining why no member can be guarded.
  raw-clock         No direct steady_clock/system_clock/
                    high_resolution_clock ::now() outside src/obs/ and
                    src/util/ — timing flows through Timer, PhaseTimer and
                    the Tracer so it can be compiled out and attributed.
  nodiscard-status  Every public function declared in a header that
                    returns Status or Result<T> must be [[nodiscard]].

The frontend is a self-contained C++ lexer + scope tracker: no libclang,
no pip dependencies, driven by the CMake-exported compile_commands.json
(or an explicit --sources list, used by the fixture tests).  It
deliberately over-approximates — the hot-alloc call graph links calls by
name across the whole project — and pairs that with two release valves:

  * a committed findings baseline (tools/lint_baseline.json) holding the
    known legacy debt; CI fails on any finding not in it, and
    tools/check_lint_baseline.py refuses baseline growth;
  * inline suppressions: a comment `stpq-lint: allow(<rule>)` on the
    finding's line or the line above, which every reviewer can see and
    challenge.

Run locally:
  python3 tools/stpq_lint.py --compile-commands build/compile_commands.json
Machine-readable output:  --json report.json
Refresh the baseline:     --write-baseline tools/lint_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import defaultdict
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Lexing

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "case",
    "do", "else", "new", "delete", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "throw", "catch", "decltype",
    "noexcept", "static_assert", "co_return", "co_await", "co_yield",
}

# Attribute-like macros from util/thread_annotations.h and util/attributes.h
# that may appear in declaration heads; those with parens have their
# argument group consumed as part of the attribute.
ATTR_MACROS = {
    "STPQ_HOT", "STPQ_COLD", "STPQ_CAPABILITY", "STPQ_SCOPED_CAPABILITY",
    "STPQ_GUARDED_BY", "STPQ_PT_GUARDED_BY", "STPQ_REQUIRES",
    "STPQ_ACQUIRE", "STPQ_RELEASE", "STPQ_TRY_ACQUIRE", "STPQ_EXCLUDES",
    "STPQ_ACQUIRED_BEFORE", "STPQ_ACQUIRED_AFTER", "STPQ_RETURN_CAPABILITY",
    "STPQ_ASSERT_CAPABILITY", "STPQ_NO_THREAD_SAFETY_ANALYSIS",
}

DECL_SPECIFIERS = {
    "static", "inline", "virtual", "constexpr", "consteval", "constinit",
    "explicit", "friend", "mutable", "extern", "thread_local", "typename",
    "const", "volatile", "class", "struct", "enum", "union", "using",
}

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|\d[\w.]*|.", re.S)

SUPPRESS_RE = re.compile(r"stpq-lint:\s*allow\(([a-z\-_, ]+)\)")


def strip_comments_and_strings(text):
    """Returns text with comments and string/char literals blanked
    (newlines preserved so token line numbers survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i > 0 and text[i - 1] == "R" and (i < 2 or
                                                 not text[i - 2].isalnum()):
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    j = text.find(closer, i)
                    j = n if j == -1 else j + len(closer)
                    out.append('""')
                    out.append("".join(ch for ch in text[i:j] if ch == "\n"))
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + "".join(ch for ch in text[i:j] if ch == "\n"))
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("''")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def drop_preprocessor(text):
    """Blanks preprocessor directives, including backslash continuations
    (macro bodies would otherwise confuse the scope tracker)."""
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            j = i
            while j < len(lines) and lines[j].rstrip().endswith("\\"):
                lines[j] = ""
                j += 1
            if j < len(lines):
                lines[j] = ""
            i = j + 1
        else:
            i += 1
    return "\n".join(lines)


def tokenize(text):
    """Yields (token, line) with 1-based line numbers; whitespace skipped."""
    toks = []
    line = 1
    for m in TOKEN_RE.finditer(text):
        t = m.group(0)
        if t == "\n":
            line += 1
        elif not t.isspace():
            toks.append((t, line))
    return toks


# --------------------------------------------------------------------------
# Model

@dataclass
class Function:
    qualname: str
    name: str
    file: str
    line: int
    attrs: set = field(default_factory=set)
    body: list = field(default_factory=list)  # [(token, line)]
    is_definition: bool = False
    access: str = "public"
    return_tokens: list = field(default_factory=list)


@dataclass
class Member:
    class_qualname: str
    name: str
    file: str
    line: int
    type_tokens: list = field(default_factory=list)
    guarded_by: str = ""   # argument of STPQ_GUARDED_BY / PT_GUARDED_BY


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    symbol: str
    message: str
    key: str = ""
    suppressed: bool = False
    baselined: bool = False


@dataclass
class SourceFile:
    path: str           # project-relative, '/'-separated
    suppressions: dict = field(default_factory=dict)  # line -> set(rules)
    functions: list = field(default_factory=list)
    members: list = field(default_factory=list)
    tokens: list = field(default_factory=list)


# --------------------------------------------------------------------------
# Parsing (scope tracking)

class Parser:
    """Extracts functions (with bodies and attributes) and class data
    members from one file's token stream.  Pragmatic by design: constructs
    it cannot classify are skipped as plain brace groups, which degrades
    to missed call-graph edges, never to crashes."""

    def __init__(self, path, toks):
        self.path = path
        self.toks = toks
        self.i = 0
        self.functions = []
        self.members = []

    def parse(self):
        self._scope([], in_class=False, access="public")
        return self.functions, self.members

    # -- helpers ----------------------------------------------------------

    def _peek(self, k=0):
        j = self.i + k
        return self.toks[j][0] if j < len(self.toks) else ""

    def _skip_group(self, open_ch, close_ch):
        """self.i is at `open_ch`; consumes through the matching close and
        returns the consumed tokens."""
        depth = 0
        out = []
        while self.i < len(self.toks):
            t, ln = self.toks[self.i]
            out.append((t, ln))
            self.i += 1
            if t == open_ch:
                depth += 1
            elif t == close_ch:
                depth -= 1
                if depth == 0:
                    break
        return out

    # -- declaration-head analysis ----------------------------------------

    @staticmethod
    def _head_attrs(head):
        """Returns ({attr names}, head without attribute tokens)."""
        attrs = set()
        clean = []
        i = 0
        while i < len(head):
            t, ln = head[i]
            if t in ATTR_MACROS:
                attrs.add(t)
                i += 1
                if i < len(head) and head[i][0] == "(":
                    depth = 0
                    args = []
                    while i < len(head):
                        tt = head[i][0]
                        if tt == "(":
                            depth += 1
                        elif tt == ")":
                            depth -= 1
                        else:
                            args.append(tt)
                        i += 1
                        if depth == 0:
                            break
                    attrs.add(t + "(" + "".join(args) + ")")
            elif t == "[" and i + 1 < len(head) and head[i + 1][0] == "[":
                depth = 0
                inner = []
                while i < len(head):
                    tt = head[i][0]
                    if tt == "[":
                        depth += 1
                    elif tt == "]":
                        depth -= 1
                    else:
                        inner.append(tt)
                    i += 1
                    if depth == 0:
                        break
                attrs.add("[[" + "".join(inner) + "]]")
            else:
                clean.append((t, ln))
                i += 1
        return attrs, clean

    @staticmethod
    def _function_name(clean_head):
        """Finds the declarator name: the identifier (with `A::B::` prefix,
        `operator@` handled) directly before the parameter-list '('.
        Returns (name, index_of_paren) or (None, -1)."""
        depth_angle = 0
        for idx, (t, _ln) in enumerate(clean_head):
            if t == "<":
                depth_angle += 1
            elif t == ">":
                depth_angle = max(0, depth_angle - 1)
            elif t == "(" and depth_angle == 0 and idx > 0:
                j = idx - 1
                name_parts = []
                if clean_head[j][0] == ">":  # e.g. Foo<int>::Bar( — rare
                    return None, -1
                # Walk back through an `ident (:: ident)*` chain, with an
                # optional leading '~' for destructors.
                expect_ident = True
                while j >= 0:
                    tj = clean_head[j][0]
                    if expect_ident and re.fullmatch(r"[A-Za-z_]\w*", tj):
                        name_parts.append(tj)
                        expect_ident = False
                        j -= 1
                    elif not expect_ident and tj == "::":
                        name_parts.append(tj)
                        expect_ident = True
                        j -= 1
                    elif not expect_ident and tj == "~":
                        name_parts.append(tj)
                        j -= 1
                        break
                    else:
                        break
                name = "".join(reversed(name_parts))
                if not name or name.split("::")[-1] in KEYWORDS:
                    return None, -1
                if j >= 0 and clean_head[j][0] == "operator":
                    name = "operator" + name
                return name, idx
        return None, -1

    # -- scope walker -----------------------------------------------------

    def _scope(self, namespace, in_class, access):
        """Parses declarations until the enclosing '}' (or EOF).
        `namespace` is the list of enclosing namespace/class names."""
        head = []
        while self.i < len(self.toks):
            t, ln = self.toks[self.i]
            if t == "}":
                self.i += 1
                return
            if t == ";":
                self._finish_declaration(head, namespace, in_class, access,
                                         is_definition=False)
                head = []
                self.i += 1
                continue
            if in_class and t in ("public", "private", "protected") \
                    and self._peek(1) == ":":
                access = t
                self.i += 2
                head = []
                continue
            if t == "{":
                self._open_brace(head, namespace, in_class, access)
                head = []
                continue
            if t == "=" and self._peek(1) in ("default", "delete"):
                # `= default;` / `= delete;` — drop so the ';' closes a
                # plain declaration.
                self.i += 2
                continue
            if t == ":" and not in_class and head and \
                    head[0][0] == "namespace":
                # `namespace A::B` is tokenized with '::', not ':'.
                pass
            head.append((t, ln))
            self.i += 1

    def _open_brace(self, head, namespace, in_class, access):
        toks = [t for t, _ in head]
        # namespace N { ... }   /  namespace { ... }
        if toks[:1] == ["namespace"]:
            name = "".join(toks[1:]) or "<anon>"
            self.i += 1
            self._scope(namespace + [name] if name != "<anon>" else namespace,
                        in_class=False, access="public")
            return
        # extern "C" { ... }
        if toks[:1] == ["extern"] and len(toks) <= 2:
            self.i += 1
            self._scope(namespace, in_class, access)
            return
        # enum [class] Name ... { ... }  — skip the enumerator list.
        if "enum" in toks[:3]:
            self._skip_group("{", "}")
            return
        # class/struct/union definition (possibly after template<...>).
        kw_idx = next((k for k, tt in enumerate(toks)
                       if tt in ("class", "struct", "union")), None)
        if kw_idx is not None and "(" not in toks:
            name = None
            for tt in toks[kw_idx + 1:]:
                if tt in ("final", ":"):
                    break
                if re.fullmatch(r"[A-Za-z_]\w*", tt) and \
                        tt not in ATTR_MACROS and tt != "alignas":
                    name = tt
            if name is None:
                self._skip_group("{", "}")
                return
            self.i += 1
            default_access = "private" if toks[kw_idx] == "class" else "public"
            self._scope(namespace + [name], in_class=True,
                        access=default_access)
            return
        # Function definition: a head containing a parameter list.
        attrs, clean = self._head_attrs(head)
        name, paren_idx = self._function_name(clean)
        if name is not None and self._looks_like_function(clean, paren_idx):
            body = self._skip_group("{", "}")
            fn = Function(
                qualname="::".join(namespace + [name]).replace("::::", "::"),
                name=name.split("::")[-1],
                file=self.path,
                line=head[0][1],
                attrs=attrs,
                body=body,
                is_definition=True,
                access=access,
                return_tokens=[t for t, _ in clean[:paren_idx]
                               if t not in DECL_SPECIFIERS][:8],
            )
            # Strip the parameter list and any constructor-initializer
            # tokens that leaked into the head from the body.
            self.functions.append(fn)
            return
        # Anything else (brace initializer, array init, lambda at
        # namespace scope, ...): treat as an opaque group attached to the
        # current declaration; parsing continues after it.
        group = self._skip_group("{", "}")
        # Keep initializer tokens visible to member parsing (e.g.
        # `std::atomic<uint64_t> buckets_[N]{};`).
        head.extend(group)

    def _looks_like_function(self, clean_head, paren_idx):
        """Distinguishes `T name(args) ... {` from control flow and
        initializers: requires a type-ish token before the name or a
        constructor-style name matching the enclosing class."""
        if paren_idx <= 0:
            return False
        before = [t for t, _ in clean_head[:paren_idx - 1]]
        tail = [t for t, _ in clean_head[paren_idx:]]
        # The parameter list must be the last paren group, optionally
        # followed by qualifiers (const, noexcept, ->Type, ctor-inits are
        # consumed by _open_brace's caller pattern below).
        return not any(t in ("if", "for", "while", "switch", "return")
                       for t in before + tail)

    def _finish_declaration(self, head, namespace, in_class, access,
                            is_definition):
        if not head:
            return
        attrs, clean = self._head_attrs(head)
        name, paren_idx = self._function_name(clean)
        if name is not None and paren_idx > 0:
            self.functions.append(Function(
                qualname="::".join(namespace + [name]).replace("::::", "::"),
                name=name.split("::")[-1],
                file=self.path,
                line=head[0][1],
                attrs=attrs,
                body=[],
                is_definition=False,
                access=access,
                return_tokens=[t for t, _ in clean[:paren_idx]
                               if t not in DECL_SPECIFIERS][:8],
            ))
            return
        if in_class and clean:
            self._record_member(head, attrs, clean, namespace)

    def _record_member(self, head, attrs, clean, namespace):
        """Parses a data-member declaration: type tokens, name, and any
        STPQ_GUARDED_BY argument (taken from the raw attr set)."""
        # Name = last identifier before '=', '[' or end.
        stop = len(clean)
        for k, (t, _ln) in enumerate(clean):
            if t in ("=", "["):
                stop = k
                break
        name = None
        name_line = head[0][1]
        for t, ln in reversed(clean[:stop]):
            if re.fullmatch(r"[A-Za-z_]\w*", t) and t not in DECL_SPECIFIERS:
                name = t
                name_line = ln
                break
        if name is None:
            return
        guarded = ""
        for a in attrs:
            m = re.match(r"STPQ(?:_PT)?_GUARDED_BY\((.+)\)$", a)
            if m:
                guarded = m.group(1)
        type_tokens = [t for t, _ln in clean[:stop] if t != name]
        self.members.append(Member(
            class_qualname="::".join(namespace),
            name=name,
            file=self.path,
            line=name_line,
            type_tokens=type_tokens,
            guarded_by=guarded,
        ))


# --------------------------------------------------------------------------
# Source discovery

CC_EXTS = (".cc", ".cpp", ".cxx")
H_EXTS = (".h", ".hh", ".hpp")


def discover_sources(args, root):
    """Returns absolute paths of files to analyze."""
    files = []
    if args.sources:
        for s in args.sources:
            if os.path.isdir(s):
                for dirpath, _dirs, names in sorted(os.walk(s)):
                    for nm in sorted(names):
                        if nm.endswith(CC_EXTS + H_EXTS):
                            files.append(os.path.join(dirpath, nm))
            else:
                files.append(s)
        return [os.path.abspath(f) for f in files]
    if not args.compile_commands:
        sys.exit("stpq_lint: pass --compile-commands build/"
                 "compile_commands.json or --sources <files>")
    with open(args.compile_commands, encoding="utf-8") as fh:
        db = json.load(fh)
    src_root = os.path.join(root, "src")
    seen = set()
    for entry in db:
        path = os.path.abspath(os.path.join(entry.get("directory", "."),
                                            entry["file"]))
        if path.startswith(src_root + os.sep) and path not in seen:
            seen.add(path)
            files.append(path)
    # The compilation database lists TUs; the contracts live mostly in
    # headers, so every project header rides along.
    for dirpath, _dirs, names in sorted(os.walk(src_root)):
        for nm in sorted(names):
            if nm.endswith(H_EXTS):
                path = os.path.join(dirpath, nm)
                if path not in seen:
                    seen.add(path)
                    files.append(path)
    return files


def load_file(path, root):
    raw = open(path, encoding="utf-8", errors="replace").read()
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    sf = SourceFile(path=rel)
    for lineno, line in enumerate(raw.split("\n"), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            sf.suppressions[lineno] = rules
    text = drop_preprocessor(strip_comments_and_strings(raw))
    sf.tokens = tokenize(text)
    sf.functions, sf.members = Parser(sf.path, sf.tokens).parse()
    return sf


# --------------------------------------------------------------------------
# Rules

ALLOC_CONTAINERS = {
    "vector", "string", "deque", "list", "forward_list", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "function",
    "ostringstream", "istringstream", "stringstream", "queue",
    "priority_queue", "stack", "basic_string",
}

ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string",
}

CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}


def body_alloc_sites(fn):
    """Yields (line, detail) for allocation constructs in a function body."""
    toks = fn.body
    n = len(toks)
    for i, (t, ln) in enumerate(toks):
        if t == "new":
            # `operator new` mentions and `new` in template args don't
            # occur in this codebase; treat every keyword use as a site.
            yield ln, "new"
        elif t in ALLOC_CALLS and i + 1 < n and toks[i + 1][0] == "(":
            yield ln, t
        elif t == "std" and i + 2 < n and toks[i + 1][0] == "::":
            tname = toks[i + 2][0]
            if tname not in ALLOC_CONTAINERS:
                continue
            j = i + 3
            if j < n and toks[j][0] == "<":
                depth = 0
                while j < n:
                    tt = toks[j][0]
                    if tt == "<":
                        depth += 1
                    elif tt == ">":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    j += 1
            if j >= n:
                continue
            nxt = toks[j][0]
            # Reference/pointer bindings and nested-name uses
            # (std::vector<T>::iterator) don't construct.
            if nxt in ("&", "*", "::", ">", ",", ")", ";"):
                continue
            if re.fullmatch(r"[A-Za-z_]\w*", nxt) or nxt in ("(", "{"):
                yield ln, f"std::{tname}"


def rule_hot_alloc(files, findings):
    by_name = defaultdict(list)
    for sf in files:
        for fn in sf.functions:
            if fn.is_definition:
                by_name[fn.name].append(fn)
    # Attributes may sit on the header declaration while the body lives in
    # the .cc file: union attrs across same-qualname declarations.
    attrs_by_qual = defaultdict(set)
    for sf in files:
        for fn in sf.functions:
            attrs_by_qual[fn.qualname] |= fn.attrs
            # Header declarations inside `class X {}` carry the class in
            # qualname; out-of-line definitions spell `X::name`.  Union on
            # the trailing two components as well.
            short = "::".join(fn.qualname.split("::")[-2:])
            attrs_by_qual[short] |= fn.attrs

    def is_hot(fn):
        short = "::".join(fn.qualname.split("::")[-2:])
        return ("STPQ_HOT" in attrs_by_qual[fn.qualname]
                or "STPQ_HOT" in attrs_by_qual[short])

    roots = [fn for sf in files for fn in sf.functions
             if fn.is_definition and is_hot(fn)]
    # BFS over name-matched call edges; remember one witness path.
    hot = {}
    queue = []
    for fn in roots:
        if id(fn) not in hot:
            hot[id(fn)] = (fn, None)
            queue.append(fn)
    while queue:
        fn = queue.pop()
        callees = set()
        for k, (t, _ln) in enumerate(fn.body):
            if (re.fullmatch(r"[A-Za-z_]\w*", t) and t not in KEYWORDS
                    and k + 1 < len(fn.body) and fn.body[k + 1][0] == "("):
                callees.add(t)
        for name in callees:
            for callee in by_name.get(name, ()):
                if id(callee) not in hot and callee is not fn:
                    hot[id(callee)] = (callee, fn)
                    queue.append(callee)

    for fn, parent in hot.values():
        per_detail = defaultdict(int)
        for ln, detail in body_alloc_sites(fn):
            per_detail[detail] += 1
            ordinal = per_detail[detail]
            via = "" if parent is None else \
                f" (reached from STPQ_HOT via {parent.qualname})"
            findings.append(Finding(
                rule="hot-alloc", file=fn.file, line=ln,
                symbol=fn.qualname,
                message=f"{fn.qualname} is on the STPQ_HOT path{via} but "
                        f"allocates: {detail}",
                key=f"hot-alloc|{fn.file}|{fn.qualname}|{detail}#{ordinal}",
            ))


def rule_priority_queue(files, findings):
    for sf in files:
        if sf.path.endswith("core/scratch.h"):
            continue
        count = defaultdict(int)
        toks = sf.tokens
        for k, (t, ln) in enumerate(toks):
            if t == "priority_queue" and k >= 2 and toks[k - 1][0] == "::" \
                    and toks[k - 2][0] == "std":
                count[sf.path] += 1
                findings.append(Finding(
                    rule="priority-queue", file=sf.path, line=ln,
                    symbol=sf.path,
                    message="std::priority_queue outside core/scratch.h; "
                            "use BorrowedHeap over session scratch",
                    key=f"priority-queue|{sf.path}|#{count[sf.path]}",
                ))


def rule_mutex_guard(files, findings):
    guards_by_class = defaultdict(set)
    methods_requiring = defaultdict(set)
    for sf in files:
        for m in sf.members:
            if m.guarded_by:
                guards_by_class[m.class_qualname].add(m.guarded_by)
        for fn in sf.functions:
            cls = "::".join(fn.qualname.split("::")[:-1])
            for a in fn.attrs:
                mm = re.match(
                    r"STPQ_(?:REQUIRES|EXCLUDES|ACQUIRE|RELEASE|"
                    r"TRY_ACQUIRE|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
                    r"\((.*)\)$", a)
                if mm:
                    for arg in mm.group(1).split(","):
                        arg = arg.strip().lstrip("!&")
                        if arg and arg not in ("true", "false"):
                            methods_requiring[cls].add(arg.split(".")[0])
    for sf in files:
        for m in sf.members:
            tt = m.type_tokens
            is_mutex = ("Mutex" in tt and "MutexLock" not in tt) or \
                ("mutex" in tt and "std" in tt)
            # References don't own the capability (MutexLock::mu_).
            if not is_mutex or "&" in tt:
                continue
            if m.name in guards_by_class[m.class_qualname]:
                continue
            findings.append(Finding(
                rule="mutex-guard", file=m.file, line=m.line,
                symbol=f"{m.class_qualname}::{m.name}",
                message=f"mutex member {m.class_qualname}::{m.name} has no "
                        "STPQ_GUARDED_BY relationship; annotate the members "
                        "it protects (or suppress with a reason)",
                key=f"mutex-guard|{m.file}|{m.class_qualname}::{m.name}",
            ))


def rule_raw_clock(files, findings):
    for sf in files:
        if sf.path.startswith(("src/obs/", "src/util/")):
            continue
        toks = sf.tokens
        count = defaultdict(int)
        for k, (t, ln) in enumerate(toks):
            if t in CLOCKS and k + 2 < len(toks) \
                    and toks[k + 1][0] == "::" and toks[k + 2][0] == "now":
                count[t] += 1
                findings.append(Finding(
                    rule="raw-clock", file=sf.path, line=ln,
                    symbol=sf.path,
                    message=f"direct {t}::now() outside obs/ and util/; "
                            "route timing through Timer / PhaseTimer / "
                            "Tracer so it stays attributable and "
                            "compile-out-able",
                    key=f"raw-clock|{sf.path}|{t}#{count[t]}",
                ))


def rule_nodiscard_status(files, findings):
    for sf in files:
        if not sf.path.endswith(H_EXTS):
            continue
        for fn in sf.functions:
            if fn.access != "public":
                continue
            rt = fn.return_tokens
            returns_status = rt[:1] == ["Status"] or \
                rt[:2] == ["stpq", "Status"] or \
                rt[:1] == ["Result"] or rt[:2] == ["stpq", "Result"]
            if not returns_status:
                continue
            if fn.name in ("Status", "Result"):  # constructors
                continue
            if "[[nodiscard]]" in fn.attrs:
                continue
            findings.append(Finding(
                rule="nodiscard-status", file=fn.file, line=fn.line,
                symbol=fn.qualname,
                message=f"public {fn.qualname} returns "
                        f"{'::'.join(rt[:1])} but is not [[nodiscard]]",
                key=f"nodiscard-status|{fn.file}|{fn.qualname}",
            ))


RULES = {
    "hot-alloc": rule_hot_alloc,
    "priority-queue": rule_priority_queue,
    "mutex-guard": rule_mutex_guard,
    "raw-clock": rule_raw_clock,
    "nodiscard-status": rule_nodiscard_status,
}


# --------------------------------------------------------------------------
# Driver

def apply_suppressions(files, findings):
    """A `stpq-lint: allow(rule)` comment suppresses findings on its own
    line and the line below; placed on (or right above) a function
    definition it covers every finding attributed to that function."""
    supp = {sf.path: sf.suppressions for sf in files}
    fn_lines = defaultdict(set)
    for sf in files:
        for fn in sf.functions:
            if fn.is_definition:
                fn_lines[(sf.path, fn.qualname)].add(fn.line)
    for f in findings:
        lines = {f.line, f.line - 1}
        for def_line in fn_lines.get((f.file, f.symbol), ()):
            lines |= {def_line, def_line - 1}
        for ln in lines:
            rules = supp.get(f.file, {}).get(ln, set())
            if f.rule in rules or "all" in rules:
                f.suppressed = True
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="stpq project linter (see tools/stpq_lint.py docstring)")
    ap.add_argument("--compile-commands",
                    help="CMake-exported compile_commands.json")
    ap.add_argument("--sources", nargs="*",
                    help="explicit files/dirs to scan (fixture tests)")
    ap.add_argument("--project-root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--baseline", default=None,
                    help="committed findings baseline JSON")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write the machine-readable report here")
    ap.add_argument("--write-baseline", default=None,
                    help="write the current finding keys as a new baseline")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--allow-stale", action="store_true",
                    help="do not fail on baseline entries that no longer "
                         "occur")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = os.path.abspath(args.project_root or
                           os.path.join(os.path.dirname(__file__), os.pardir))
    paths = discover_sources(args, root)
    files = [load_file(p, root) for p in paths]

    selected = sorted(RULES) if not args.rules else \
        [r.strip() for r in args.rules.split(",") if r.strip()]
    for r in selected:
        if r not in RULES:
            sys.exit(f"stpq_lint: unknown rule '{r}' "
                     f"(known: {', '.join(sorted(RULES))})")

    findings = []
    for r in selected:
        RULES[r](files, findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.key))
    apply_suppressions(files, findings)

    baseline_keys = set()
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as fh:
            baseline_keys = set(json.load(fh).get("findings", []))
    for f in findings:
        if f.key in baseline_keys:
            f.baselined = True

    active = [f for f in findings if not f.suppressed]
    new = [f for f in active if not f.baselined]
    seen_keys = {f.key for f in active}
    stale = sorted(baseline_keys - seen_keys)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            json.dump({"version": 1,
                       "findings": sorted(f.key for f in active)},
                      fh, indent=1, sort_keys=True)
            fh.write("\n")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump({
                "version": 1,
                "rules": selected,
                "files_scanned": len(files),
                "findings": [vars(f) for f in findings],
                "new": len(new),
                "baselined": sum(f.baselined for f in active),
                "suppressed": sum(f.suppressed for f in findings),
                "stale_baseline_entries": stale,
            }, fh, indent=1, sort_keys=True)
            fh.write("\n")

    for f in new:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    if stale and not args.allow_stale:
        for k in stale:
            print(f"stale baseline entry (fixed? remove it): {k}")
    print(f"stpq_lint: {len(files)} files, {len(active)} findings "
          f"({len(new)} new, {sum(f.baselined for f in active)} baselined, "
          f"{sum(f.suppressed for f in findings)} suppressed, "
          f"{len(stale)} stale baseline entries)")
    if new:
        return 1
    if stale and not args.allow_stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
