#include "core/stps.h"

#include <vector>

#include "core/combination.h"
#include "core/object_retrieval.h"
#include "util/logging.h"

namespace stpq {

QueryResult Stps::Execute(const Query& query, PullingStrategy strategy,
                          TraversalScratch* scratch) const {
  STPQ_CHECK(query.keywords.size() == feature_indexes_.size());
  TraversalScratch local_scratch;
  TraversalScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  switch (query.variant) {
    case ScoreVariant::kRange:
      return ExecuteRange(query, strategy, scr);
    case ScoreVariant::kInfluence:
      return influence_mode_ == InfluenceMode::kAnchored
                 ? ExecuteInfluenceAnchored(query, strategy, scr)
                 : ExecuteInfluence(query, strategy, scr);
    case ScoreVariant::kNearestNeighbor:
      return ExecuteNearestNeighbor(query, strategy, scr);
  }
  STPQ_CHECK(false && "unknown score variant");
}

QueryResult Stps::ExecuteRange(const Query& query, PullingStrategy strategy,
                               TraversalScratch& scratch) const {
  QueryResult result;
  CombinationIterator it(feature_indexes_, query,
                         /*enforce_range_constraint=*/true, strategy,
                         &result.stats);
  std::vector<bool> claimed(objects_->size(), false);
  std::vector<Point> member_pos;
  // Algorithm 3: emit combinations best-first; objects qualified by their
  // best covering combination have exactly tau(p) = s(C).
  while (result.entries.size() < query.k) {
    std::optional<Combination> combo = it.Next();
    if (!combo.has_value()) break;
    member_pos.clear();
    for (size_t i = 0; i < combo->members.size(); ++i) {
      if (combo->members[i] == kVirtualFeature) continue;
      member_pos.push_back(
          feature_indexes_[i]->table().Get(combo->members[i]).pos);
    }
    CollectObjectsInRange(*objects_, member_pos, query.radius, combo->score,
                          query.k - result.entries.size(), &claimed,
                          &result.entries, result.stats, scratch);
  }
  return result;
}

}  // namespace stpq
