#include "core/object_retrieval.h"

#include "geom/rect.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "rtree/rtree.h"

namespace stpq {

void CollectObjectsInRange(const ObjectIndex& objects,
                           const std::vector<Point>& member_pos,
                           double radius, double score, size_t remaining,
                           std::vector<bool>* claimed,
                           std::vector<ResultEntry>* result,
                           QueryStats& stats, TraversalScratch& scratch) {
  if (objects.tree().root_id() == kInvalidNodeId || remaining == 0) return;
  STPQ_TRACE_PHASE(stats, QueryPhase::kObjectRetrieval);
  STPQ_TRACE_SPAN(TraceEventType::kRetrievalBatch,
                  static_cast<uint32_t>(remaining),
                  static_cast<uint64_t>(member_pos.size()));
  const double r2 = radius * radius;
  size_t added = 0;
  std::vector<NodeId>& stack = scratch.stack;
  stack.assign(1, objects.tree().root_id());
  while (!stack.empty() && added < remaining) {
    NodeId nid = stack.back();
    stack.pop_back();
    const RTree<2>::Node& node = objects.tree().ReadNode(nid);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const auto& e : node.entries) {
      if (added >= remaining) break;
      // Prune entries out of range of any real member (Section 6.4).
      bool ok = true;
      for (const Point& t : member_pos) {
        if (MinSquaredDistance(t, e.rect) > r2) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        ++pruned;
        continue;
      }
      if (node.IsLeaf()) {
        if ((*claimed)[e.id]) {
          ++pruned;
          continue;
        }
        Point p{e.rect.lo[0], e.rect.lo[1]};
        bool in_range = true;
        for (const Point& t : member_pos) {
          if (SquaredDistance(p, t) > r2) {
            in_range = false;
            break;
          }
        }
        if (!in_range) {
          ++pruned;
          continue;
        }
        (*claimed)[e.id] = true;
        ++stats.objects_scored;
        result->push_back(ResultEntry{e.id, score});
        ++added;
        ++descended;
      } else {
        stack.push_back(e.id);
        ++descended;
      }
    }
    RecordNodeVisit(stats, kTraceObjectTree, node.level, nid, pruned,
                    descended);
  }
}

}  // namespace stpq
