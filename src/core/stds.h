// Spatio-Textual Data Scan (STDS), Section 5 / Algorithm 1.
//
// The baseline: computes tau(p) for every data object and keeps the best k.
// Two optimizations from the paper are implemented:
//   * partial-score pruning: after computing tau_i(p) for a prefix of the
//     feature sets, the upper bound tau-hat(p) (unknown components bounded
//     by 1) is tested against the running k-th best score;
//   * batched score computation: objects are processed per object-R-tree
//     leaf block, and Algorithm 2 resolves a whole block per traversal
//     (range variant; the other variants score per object).
#ifndef STPQ_CORE_STDS_H_
#define STPQ_CORE_STDS_H_

#include <vector>

#include "core/query.h"
#include "core/scratch.h"
#include "index/feature_index.h"
#include "index/object_index.h"
#include "util/attributes.h"

namespace stpq {

/// STDS executor bound to one object index and c feature indexes.
///
/// Stateless between queries: Execute is const and all per-query state
/// (the top-k heap, batch scratch, stats) lives on the call's stack, so
/// the engine constructs one per Execute call and concurrent queries
/// share nothing mutable (DESIGN.md §11).
class Stds {
 public:
  /// Pointers are not owned and must outlive the executor.
  Stds(const ObjectIndex* objects,
       std::vector<const FeatureIndex*> feature_indexes)
      : objects_(objects), feature_indexes_(std::move(feature_indexes)) {}

  /// Runs the query; `use_batching` toggles the Section 5 improvement
  /// (ignored for non-range variants, which always score per object).
  /// `scratch` (may be null) provides reusable traversal buffers — the
  /// engine passes its session's scratch; a null falls back to a local.
  STPQ_HOT QueryResult Execute(const Query& query, bool use_batching = true,
                      TraversalScratch* scratch = nullptr) const;

 private:
  const ObjectIndex* objects_;
  std::vector<const FeatureIndex*> feature_indexes_;
};

}  // namespace stpq

#endif  // STPQ_CORE_STDS_H_
