#include "core/voronoi.h"

#include "obs/phase.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace stpq {

ConvexPolygon ComputeVoronoiCell(const FeatureIndex& index,
                                 ObjectId center_id,
                                 const KeywordSet& query_kw, double lambda,
                                 const Rect2& domain, QueryStats& stats,
                                 TraversalScratch& scratch) {
  Timer timer;
  STPQ_TRACE_PHASE(stats, QueryPhase::kVoronoi);
  STPQ_TRACE_SPAN(TraceEventType::kVoronoiCell, index.set_ordinal(),
                  center_id);
  const uint8_t tree = TraceTreeForSet(index.set_ordinal());
  const BufferPoolStats before =
      index.buffer_pool() != nullptr ? index.buffer_pool()->stats()
                                     : BufferPoolStats{};
  const Point center = index.table().Get(center_id).pos;
  ConvexPolygon cell = ConvexPolygon::FromRect(domain);
  ++stats.voronoi_cells;

  // Min-heap on squared mindist from the center.
  BorrowedMinHeap heap(scratch.heap);
  if (index.RootId() != kInvalidNodeId) {
    heap.push({0.0, index.RootId(), false});
  }
  std::vector<FeatureBranch>& branches = scratch.branches;
  double max_vertex = cell.MaxDistanceFrom(center);
  while (!heap.empty() && !cell.IsEmpty()) {
    SearchHeapItem top = heap.top();
    // Termination: a feature at distance d can only cut the cell if
    // d / 2 < max vertex distance.
    if (top.priority >= 4.0 * max_vertex * max_vertex) break;
    heap.pop();
    if (top.is_leaf_item) {
      if (top.id == center_id) continue;
      const FeatureObject& t = index.table().Get(top.id);
      if (t.pos == center) continue;  // co-located: bisector undefined
      ++stats.voronoi_clip_features;
      cell.Clip(BisectorHalfPlane(center, t.pos));
      max_vertex = cell.MaxDistanceFrom(center);
      continue;
    }
    const uint16_t level = index.NodeLevel(top.id);
    index.VisitChildren(top.id, query_kw, lambda, &branches);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : branches) {
      if (!b.text_match) {
        // Only relevant features define cells.
        ++pruned;
        continue;
      }
      heap.push({MinSquaredDistance(center, b.mbr), b.id, b.is_feature});
      ++descended;
    }
    RecordNodeVisit(stats, tree, level, top.id, pruned, descended);
  }

  if (index.buffer_pool() != nullptr) {
    stats.voronoi_reads += (index.buffer_pool()->stats() - before).reads;
  }
  stats.voronoi_cpu_ms += timer.ElapsedMillis();
  return cell;
}

void IntersectConvex(ConvexPolygon* poly, const ConvexPolygon& other) {
  if (other.IsEmpty()) {
    *poly = ConvexPolygon();
    return;
  }
  const std::vector<Point>& v = other.vertices();
  for (size_t i = 0; i < v.size() && !poly->IsEmpty(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % v.size()];
    // CCW edge (a -> b): the inside is the left side, i.e.
    // cross(b - a, p - a) >= 0  <=>  (-dy)*p.x + dx*p.y <= dx*a.y - dy*a.x.
    double dx = b.x - a.x;
    double dy = b.y - a.y;
    poly->Clip(HalfPlane{dy, -dx, dy * a.x - dx * a.y});
  }
}

}  // namespace stpq
