// STPS for the influence score variant (Section 7.1, Algorithm 5).
#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/combination.h"
#include "core/compute_score.h"
#include "core/score.h"
#include "core/stps.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/topk.h"

namespace stpq {

namespace {

struct ScoredObject {
  ObjectId id;
  double score;
};

/// Top-k traversal of the object R-tree ordered by the combination's
/// influence score sum_i s(t_i) * 2^(-dist(p, t_i)/r).  Internal entries
/// are bounded via mindist; retrieval stops after k objects or when the
/// bound falls to `stop_threshold` (both Section 7.1 optimizations).
std::vector<ScoredObject> TopKInfluenceObjects(
    const ObjectIndex& objects, const std::vector<Point>& member_pos,
    const std::vector<double>& member_score, double radius, size_t k,
    double stop_threshold, QueryStats& stats, TraversalScratch& scratch) {
  std::vector<ScoredObject> out;
  if (objects.tree().root_id() == kInvalidNodeId) return out;
  STPQ_TRACE_PHASE(stats, QueryPhase::kObjectRetrieval);
  STPQ_TRACE_SPAN(TraceEventType::kRetrievalBatch, static_cast<uint32_t>(k),
                  static_cast<uint64_t>(member_pos.size()));
  HeapWatermark watermark;

  auto bound_for = [&](const Rect2& rect, bool exact_point) {
    double s = 0.0;
    for (size_t i = 0; i < member_pos.size(); ++i) {
      double d = exact_point
                     ? Distance(Point{rect.lo[0], rect.lo[1]}, member_pos[i])
                     : MinDistance(member_pos[i], rect);
      s += member_score[i] * InfluenceFactor(d, radius);
    }
    return s;
  };

  // Root bound: the combination score itself (influence at distance 0).
  double root_bound = 0.0;
  for (double s : member_score) root_bound += s;
  BorrowedMaxHeap heap(scratch.heap);
  heap.push({root_bound, objects.tree().root_id(), false});
  while (!heap.empty() && out.size() < k) {
    SearchHeapItem top = heap.top();
    heap.pop();
    // Strict comparison: candidates tied with the threshold may still fill
    // result slots (e.g. all-zero scores when nothing is relevant).
    if (top.priority < stop_threshold) break;
    if (top.is_leaf_item) {
      out.push_back(ScoredObject{top.id, top.priority});
      ++stats.objects_scored;
      continue;
    }
    const RTree<2>::Node& node = objects.tree().ReadNode(top.id);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const auto& e : node.entries) {
      double pri = bound_for(e.rect, node.IsLeaf());
      if (pri < stop_threshold) {
        ++pruned;
        continue;
      }
      heap.push({pri, e.id, node.IsLeaf()});
      ++descended;
      ++stats.heap_pushes;
    }
    RecordNodeVisit(stats, kTraceObjectTree, node.level, top.id, pruned,
                    descended);
    watermark.Observe(heap.size());
  }
  return out;
}

/// Current k-th best score among the merged candidates (0 if fewer than k).
double KthScore(const std::unordered_map<ObjectId, double>& best, size_t k) {
  if (best.size() < k) return 0.0;
  std::vector<double> scores;
  scores.reserve(best.size());
  for (const auto& [id, s] : best) scores.push_back(s);
  std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end(),
                   std::greater<>());
  return scores[k - 1];
}

/// Upper bound on the influence score any single location can collect from
/// this combination.  For members i, j at distance D, every p satisfies
/// d(p,i) + d(p,j) >= D, and x -> 2^(-x/r) is convex, so the pair's joint
/// contribution is maximized at an endpoint (p at one of the members):
///   s_i + s_j * 2^(-D/r)   or   s_j + s_i * 2^(-D/r).
/// Minimizing over pairs (others bounded by factor 1) tightens s(C) for
/// spread-out combinations, letting the search skip their object retrieval
/// once the k-th candidate beats the bound.
double AchievableBound(const std::vector<Point>& pos,
                       const std::vector<double>& score, double radius) {
  double total = 0.0;
  for (double s : score) total += s;
  double bound = total;
  for (size_t i = 0; i < pos.size(); ++i) {
    for (size_t j = i + 1; j < pos.size(); ++j) {
      double decay = InfluenceFactor(Distance(pos[i], pos[j]), radius);
      double pair_best =
          std::max(score[i] + score[j] * decay, score[j] + score[i] * decay);
      bound = std::min(bound,
                       total - score[i] - score[j] + pair_best);
    }
  }
  return bound;
}

}  // namespace

QueryResult Stps::ExecuteInfluence(const Query& query,
                                   PullingStrategy strategy,
                                   TraversalScratch& scratch) const {
  QueryResult result;
  // nextCombination without the 2r validity filter (Section 7.1).
  CombinationIterator it(feature_indexes_, query,
                         /*enforce_range_constraint=*/false, strategy,
                         &result.stats);
  // Influence scores of a data object differ per combination; keep the max
  // over all combinations processed (Algorithm 5, line 6).
  std::unordered_map<ObjectId, double> best;
  double tau = 0.0;
  std::vector<Point> member_pos;
  std::vector<double> member_score;
  while (true) {
    std::optional<Combination> combo = it.Next();
    if (!combo.has_value()) break;
    // s(C) bounds the influence score of any object under any unseen
    // combination (it is the score at distance 0); terminate when it can
    // no longer improve the top-k (Algorithm 5, line 3).
    if (best.size() >= query.k && combo->score <= tau) break;
    member_pos.clear();
    member_score.clear();
    for (size_t i = 0; i < combo->members.size(); ++i) {
      if (combo->members[i] == kVirtualFeature) continue;
      const FeatureObject& t =
          feature_indexes_[i]->table().Get(combo->members[i]);
      member_pos.push_back(t.pos);
      member_score.push_back(
          PreferenceScore(t, query.keywords[i], query.lambda));
    }
    // Spread-out combinations cannot produce a competitive object: skip
    // their retrieval entirely.
    if (best.size() >= query.k &&
        AchievableBound(member_pos, member_score, query.radius) <= tau) {
      continue;
    }
    std::vector<ScoredObject> candidates = TopKInfluenceObjects(
        *objects_, member_pos, member_score, query.radius, query.k, tau,
        result.stats, scratch);
    bool changed = false;
    for (const ScoredObject& c : candidates) {
      auto [iter, inserted] = best.try_emplace(c.id, c.score);
      if (inserted) {
        changed = true;
      } else if (c.score > iter->second) {
        iter->second = c.score;
        changed = true;
      }
    }
    if (changed) tau = KthScore(best, query.k);
  }

  std::vector<ResultEntry> all;
  all.reserve(best.size());
  for (const auto& [id, s] : best) all.push_back(ResultEntry{id, s});
  std::sort(all.begin(), all.end(), [](const ResultEntry& a,
                                       const ResultEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.object < b.object;
  });
  if (all.size() > query.k) all.resize(query.k);
  result.entries = std::move(all);
  return result;
}

// ---------------------------------------------------------------------------
// Anchored influence retrieval (InfluenceMode::kAnchored).
//
// For any object p, let a* be the nearest among its per-set realizing
// features (the argmax features of Definition 6).  Every realizing feature
// is at distance >= d(p, a*), so
//
//   tau(p) <= (s(a*) + sum_{j != set(a*)} max_s(F_j)) * 2^(-d(p,a*)/r).
//
// Streaming the relevant features of every set in non-increasing s(t)
// ("anchors") therefore covers all candidates: an anchor a with current
// k-th score tau_k only needs the objects within
//
//   R_a = r * log2((s(a) + sum_other_max) / tau_k),
//
// and the per-set streams can stop as soon as even s(next) + sum_other_max
// <= tau_k.  Retrieved objects get their *exact* tau(p) via per-set
// influence traversals, which drives tau_k up quickly and shrinks every
// subsequent radius.  Results are identical to Algorithm 5's; the cost no
// longer depends on the number of combinations scoring above tau_k.
// ---------------------------------------------------------------------------

namespace {

/// Ids of the `k` objects nearest to `center` (incremental NN on the
/// object R-tree); used to seed tau_k before any radius can be bounded.
std::vector<ObjectId> NearestObjects(const ObjectIndex& objects,
                                     const Point& center, size_t k,
                                     QueryStats& stats,
                                     TraversalScratch& scratch) {
  std::vector<ObjectId> out;
  if (objects.tree().root_id() == kInvalidNodeId) return out;
  STPQ_TRACE_PHASE(stats, QueryPhase::kObjectRetrieval);
  STPQ_TRACE_SPAN(TraceEventType::kRetrievalBatch, static_cast<uint32_t>(k),
                  0);
  HeapWatermark watermark;
  // Min-heap on squared distance.
  BorrowedMinHeap heap(scratch.heap);
  heap.push({0.0, objects.tree().root_id(), false});
  while (!heap.empty() && out.size() < k) {
    SearchHeapItem top = heap.top();
    heap.pop();
    if (top.is_leaf_item) {
      out.push_back(top.id);
      continue;
    }
    const RTree<2>::Node& node = objects.tree().ReadNode(top.id);
    for (const auto& e : node.entries) {
      Point lo{e.rect.lo[0], e.rect.lo[1]};
      double d2 = node.IsLeaf() ? SquaredDistance(center, lo)
                                : MinSquaredDistance(center, e.rect);
      heap.push({d2, e.id, node.IsLeaf()});
      ++stats.heap_pushes;
    }
    // Incremental NN expands everything it reads: nothing is pruned.
    RecordNodeVisit(stats, kTraceObjectTree, node.level, top.id, 0,
                    static_cast<uint32_t>(node.entries.size()));
    watermark.Observe(heap.size());
  }
  return out;
}

}  // namespace

QueryResult Stps::ExecuteInfluenceAnchored(const Query& query,
                                           PullingStrategy strategy,
                                           TraversalScratch& scratch) const {
  QueryResult result;
  const size_t c = feature_indexes_.size();
  std::vector<SortedFeatureStream> streams;
  streams.reserve(c);
  for (size_t i = 0; i < c; ++i) {
    streams.emplace_back(feature_indexes_[i], &query.keywords[i],
                         query.lambda, &result.stats);
  }

  // Per-set bookkeeping: the top score (fixed after the first pull) and
  // the score of the most recent pull (upper-bounds the next one).
  std::vector<double> max_score(c, 0.0), last_score(c, 0.0);
  std::vector<bool> done(c, false);
  std::vector<std::optional<SortedFeatureStream::Item>> pending(c);
  for (size_t i = 0; i < c; ++i) {
    pending[i] = streams[i].Next();
    if (pending[i].has_value() && pending[i]->id != kVirtualFeature) {
      max_score[i] = pending[i]->score;
      last_score[i] = pending[i]->score;
    } else {
      done[i] = true;
    }
  }
  double sum_max = 0.0;
  for (double m : max_score) sum_max += m;

  TopK<ObjectId> topk(query.k);
  std::vector<bool> scored(objects_->size(), false);
  auto exactify = [&](ObjectId id) {
    if (scored[id]) return;
    scored[id] = true;
    ++result.stats.objects_scored;
    const Point& p = objects_->Get(id).pos;
    double tau = 0.0;
    for (size_t i = 0; i < c; ++i) {
      tau += ComputeScoreInfluence(*feature_indexes_[i], p,
                                   query.keywords[i], query.lambda,
                                   query.radius, result.stats, scratch);
    }
    topk.Push(tau, id);
  };

  size_t round_robin = 0;
  while (true) {
    // Optimistic value of the next anchor per live set.
    double tau = topk.Full() ? topk.Threshold() : 0.0;
    size_t pick = c;
    double pick_value = -1.0;
    for (size_t step = 0; step < c; ++step) {
      size_t i = strategy == PullingStrategy::kRoundRobin
                     ? (round_robin + step) % c
                     : step;
      if (done[i]) continue;
      double value = last_score[i] + (sum_max - max_score[i]);
      if (strategy == PullingStrategy::kRoundRobin) {
        if (value > tau) {
          pick = i;
          pick_value = value;
          break;
        }
        continue;
      }
      if (value > pick_value) {
        pick = i;
        pick_value = value;
      }
    }
    if (pick == c || (topk.Full() && pick_value <= tau)) break;
    round_robin = (pick + 1) % c;

    // Take the pending item (or pull the next) from the chosen stream.
    std::optional<SortedFeatureStream::Item> item = pending[pick];
    pending[pick] = streams[pick].Next();
    if (!pending[pick].has_value() ||
        pending[pick]->id == kVirtualFeature) {
      done[pick] = true;
    } else {
      last_score[pick] = pending[pick]->score;
    }
    if (!item.has_value() || item->id == kVirtualFeature) continue;
    const FeatureObject& anchor = feature_indexes_[pick]->table().Get(
        item->id);
    double cap = item->score + (sum_max - max_score[pick]);
    if (topk.Full() && cap <= topk.Threshold()) continue;

    // Seed tau_k near this anchor while the result set is short.
    if (!topk.Full()) {
      for (ObjectId id : NearestObjects(*objects_, anchor.pos, query.k,
                                        result.stats, scratch)) {
        exactify(id);
      }
    }
    double tau_now = topk.Threshold();
    if (topk.Full() && tau_now > 0.0 && cap > tau_now) {
      double radius = query.radius * std::log2(cap / tau_now);
      for (ObjectId id :
           objects_->RangeQuery(anchor.pos, radius, &result.stats)) {
        exactify(id);
      }
    }
  }

  // Degenerate completion: with fewer than k objects scored (k close to
  // |O|, or no relevant features anywhere) the radius pruning never
  // engaged and coverage is not guaranteed — score everything.
  if (!topk.Full()) {
    for (ObjectId id = 0; id < objects_->size(); ++id) {
      exactify(static_cast<ObjectId>(id));
    }
  }

  for (auto& e : topk.TakeSortedDescending()) {
    result.entries.push_back(ResultEntry{e.item, e.score});
  }
  return result;
}

}  // namespace stpq
