// Workload evaluation: run a query batch and summarize per-query costs.
//
// This is the measurement harness the paper's evaluation implies ("every
// reported value is the average of 1,000 random queries"), packaged as a
// library utility so users can benchmark their own datasets: means and
// tail percentiles for CPU, simulated I/O and total time, plus the
// aggregated algorithm counters.
//
// Two drivers share the summary format: RunWorkload executes the batch on
// the calling thread, and ParallelWorkloadRunner fans it across a fixed
// thread pool — the engine's read path is thread-safe, and with the
// default cold_cache_per_query accounting both drivers report identical
// per-query results and page-read counts (DESIGN.md §11).
#ifndef STPQ_CORE_WORKLOAD_H_
#define STPQ_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "obs/histogram.h"
#include "util/result.h"

namespace stpq {

/// Distribution summary of one per-query cost metric (milliseconds).
struct MetricSummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Result of running a workload through one engine + algorithm.
struct WorkloadSummary {
  size_t queries = 0;
  MetricSummary cpu_ms;
  MetricSummary io_ms;
  MetricSummary total_ms;
  double mean_page_reads = 0.0;
  QueryStats aggregate;  ///< summed counters over the whole workload

  std::string ToString() const;
};

/// Executes every query on the calling thread and summarizes costs.
/// `io_unit_cost_ms` prices one simulated page read (the paper's dark-bar
/// constant).  Returns InvalidArgument if any query is malformed for the
/// engine (nothing is executed in that case).
[[nodiscard]] Result<WorkloadSummary> RunWorkload(const Engine& engine,
                                    const std::vector<Query>& queries,
                                    Algorithm algorithm,
                                    double io_unit_cost_ms);

/// Knobs for the parallel driver.
struct ParallelWorkloadOptions {
  Algorithm algorithm = Algorithm::kStps;
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  size_t threads = 1;
  /// Price of one simulated page read in milliseconds.
  double io_unit_cost_ms = 0.0;
  /// Optional slow-query capture shared by the workers; not owned.
  SlowQueryLog* slow_log = nullptr;
};

/// Outcome of a parallel run: the merged summary, the per-query results in
/// input order (independent of scheduling), and throughput.
struct ParallelWorkloadReport {
  WorkloadSummary summary;
  std::vector<QueryResult> per_query;  ///< one entry per input query
  double wall_ms = 0.0;                ///< end-to-end batch wall time
  double queries_per_sec = 0.0;        ///< throughput over wall time
  /// Per-query total latency (cpu + priced I/O), accumulated in one
  /// LatencyHistogram per worker thread and merged after the join — no
  /// locks or atomics touch the recording path (DESIGN.md §12).
  LatencyHistogram latency;
};

/// Fans a query batch across a fixed pool of N threads over one engine.
/// Work is distributed dynamically (an atomic cursor over the batch), each
/// query's stats are merged through a thread-safe QueryStatsSink, and the
/// per-query results land in input order.
class ParallelWorkloadRunner {
 public:
  /// `engine` is not owned and must outlive the runner.
  explicit ParallelWorkloadRunner(const Engine* engine) : engine_(engine) {}

  /// Runs the batch.  Every query is validated up front, so a non-OK
  /// status means nothing was executed; worker threads cannot fail.
  [[nodiscard]] Result<ParallelWorkloadReport> Run(
      const std::vector<Query>& queries,
      const ParallelWorkloadOptions& options) const;

 private:
  const Engine* engine_;
};

}  // namespace stpq

#endif  // STPQ_CORE_WORKLOAD_H_
