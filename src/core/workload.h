// Workload evaluation: run a query batch and summarize per-query costs.
//
// This is the measurement harness the paper's evaluation implies ("every
// reported value is the average of 1,000 random queries"), packaged as a
// library utility so users can benchmark their own datasets: means and
// tail percentiles for CPU, simulated I/O and total time, plus the
// aggregated algorithm counters.
#ifndef STPQ_CORE_WORKLOAD_H_
#define STPQ_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query.h"

namespace stpq {

/// Distribution summary of one per-query cost metric (milliseconds).
struct MetricSummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Result of running a workload through one engine + algorithm.
struct WorkloadSummary {
  size_t queries = 0;
  MetricSummary cpu_ms;
  MetricSummary io_ms;
  MetricSummary total_ms;
  double mean_page_reads = 0.0;
  QueryStats aggregate;  ///< summed counters over the whole workload

  std::string ToString() const;
};

/// Executes every query and summarizes costs.  `io_unit_cost_ms` prices
/// one simulated page read (the paper's dark-bar constant).
WorkloadSummary RunWorkload(Engine* engine, const std::vector<Query>& queries,
                            Algorithm algorithm, double io_unit_cost_ms);

}  // namespace stpq

#endif  // STPQ_CORE_WORKLOAD_H_
