#include "core/workload.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "util/logging.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace stpq {

namespace {

MetricSummary Summarize(std::vector<double> values) {
  MetricSummary out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
  };
  out.p50 = percentile(0.50);
  out.p90 = percentile(0.90);
  out.p95 = percentile(0.95);
  out.p99 = percentile(0.99);
  out.max = values.back();
  return out;
}

/// Builds the distribution summary from executed results (shared by the
/// sequential and parallel drivers; the aggregate counters are filled by
/// the caller, which owns how they were collected).
WorkloadSummary SummarizeResults(const std::vector<QueryResult>& results,
                                 double io_unit_cost_ms) {
  WorkloadSummary out;
  out.queries = results.size();
  std::vector<double> cpu, io, total;
  cpu.reserve(results.size());
  io.reserve(results.size());
  total.reserve(results.size());
  uint64_t reads = 0;
  for (const QueryResult& r : results) {
    double io_ms = r.stats.IoMillis(io_unit_cost_ms);
    cpu.push_back(r.stats.cpu_ms);
    io.push_back(io_ms);
    total.push_back(r.stats.cpu_ms + io_ms);
    reads += r.stats.TotalReads();
  }
  out.cpu_ms = Summarize(std::move(cpu));
  out.io_ms = Summarize(std::move(io));
  out.total_ms = Summarize(std::move(total));
  if (!results.empty()) {
    out.mean_page_reads =
        static_cast<double>(reads) / static_cast<double>(results.size());
  }
  return out;
}

/// Mutex-guarded stats accumulator shared by the parallel workers.
class AggregatingStatsSink : public QueryStatsSink {
 public:
  void Record(const QueryStats& stats) override STPQ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    total_ += stats;
  }

  QueryStats total() const STPQ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return total_;
  }

 private:
  mutable Mutex mu_;
  QueryStats total_ STPQ_GUARDED_BY(mu_);
};

}  // namespace

std::string WorkloadSummary::ToString() const {
  std::ostringstream os;
  os << queries << " queries: total mean=" << total_ms.mean
     << "ms p50=" << total_ms.p50 << " p90=" << total_ms.p90
     << " p95=" << total_ms.p95 << " p99=" << total_ms.p99
     << " max=" << total_ms.max << " (cpu mean=" << cpu_ms.mean
     << ", io mean=" << io_ms.mean << ", reads/query=" << mean_page_reads
     << ")";
  return os.str();
}

Result<WorkloadSummary> RunWorkload(const Engine& engine,
                                    const std::vector<Query>& queries,
                                    Algorithm algorithm,
                                    double io_unit_cost_ms) {
  for (size_t i = 0; i < queries.size(); ++i) {
    Status st = engine.ValidateQuery(queries[i]);
    if (!st.ok()) {
      return Status::InvalidArgument("query " + std::to_string(i) + ": " +
                                     st.message());
    }
  }
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  QueryStats aggregate;
  for (const Query& q : queries) {
    Result<QueryResult> r = engine.Execute(q, algorithm);
    STPQ_CHECK(r.ok());  // pre-validated above
    aggregate += r.value().stats;
    results.push_back(r.TakeValue());
  }
  WorkloadSummary out = SummarizeResults(results, io_unit_cost_ms);
  out.aggregate = aggregate;
  return out;
}

Result<ParallelWorkloadReport> ParallelWorkloadRunner::Run(
    const std::vector<Query>& queries,
    const ParallelWorkloadOptions& options) const {
  STPQ_CHECK(engine_ != nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    Status st = engine_->ValidateQuery(queries[i]);
    if (!st.ok()) {
      return Status::InvalidArgument("query " + std::to_string(i) + ": " +
                                     st.message());
    }
  }
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::max<size_t>(1, std::min(threads, queries.size()));
  if (queries.empty()) threads = 1;

  ParallelWorkloadReport report;
  report.per_query.resize(queries.size());

  AggregatingStatsSink sink;
  ExecuteOptions exec_options;
  exec_options.algorithm = options.algorithm;
  exec_options.stats_sink = &sink;
  exec_options.slow_log = options.slow_log;

  // Dynamic work distribution: each worker claims the next unprocessed
  // query.  Results land in distinct slots, so only the claim counter and
  // the sink are shared; latency histograms are strictly per-thread and
  // merged only after the join (single-writer, no synchronization).
  std::atomic<size_t> next{0};
  std::vector<LatencyHistogram> thread_hist(threads);
  auto worker = [&](size_t tid) {
    LatencyHistogram& hist = thread_hist[tid];
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) return;
      Result<QueryResult> r = engine_->Execute(queries[i], exec_options);
      STPQ_CHECK(r.ok());  // pre-validated above
      const QueryStats& stats = r.value().stats;
      hist.Record(stats.cpu_ms + stats.IoMillis(options.io_unit_cost_ms));
      report.per_query[i] = r.TakeValue();
    }
  };

  Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  report.wall_ms = wall.ElapsedMillis();
  for (const LatencyHistogram& h : thread_hist) report.latency.Merge(h);

  report.summary = SummarizeResults(report.per_query, options.io_unit_cost_ms);
  report.summary.aggregate = sink.total();
  if (report.wall_ms > 0.0) {
    report.queries_per_sec =
        static_cast<double>(queries.size()) / (report.wall_ms / 1000.0);
  }
  return report;
}

}  // namespace stpq
