#include "core/workload.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace stpq {

namespace {

MetricSummary Summarize(std::vector<double> values) {
  MetricSummary out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  out.max = values.back();
  return out;
}

}  // namespace

std::string WorkloadSummary::ToString() const {
  std::ostringstream os;
  os << queries << " queries: total mean=" << total_ms.mean
     << "ms p50=" << total_ms.p50 << " p95=" << total_ms.p95
     << " max=" << total_ms.max << " (cpu mean=" << cpu_ms.mean
     << ", io mean=" << io_ms.mean << ", reads/query=" << mean_page_reads
     << ")";
  return os.str();
}

WorkloadSummary RunWorkload(Engine* engine, const std::vector<Query>& queries,
                            Algorithm algorithm, double io_unit_cost_ms) {
  STPQ_CHECK(engine != nullptr);
  WorkloadSummary out;
  out.queries = queries.size();
  std::vector<double> cpu, io, total;
  cpu.reserve(queries.size());
  io.reserve(queries.size());
  total.reserve(queries.size());
  uint64_t reads = 0;
  for (const Query& q : queries) {
    QueryResult r = engine->Execute(q, algorithm);
    double io_ms = r.stats.IoMillis(io_unit_cost_ms);
    cpu.push_back(r.stats.cpu_ms);
    io.push_back(io_ms);
    total.push_back(r.stats.cpu_ms + io_ms);
    reads += r.stats.TotalReads();
    out.aggregate += r.stats;
  }
  out.cpu_ms = Summarize(std::move(cpu));
  out.io_ms = Summarize(std::move(io));
  out.total_ms = Summarize(std::move(total));
  if (!queries.empty()) {
    out.mean_page_reads =
        static_cast<double>(reads) / static_cast<double>(queries.size());
  }
  return out;
}

}  // namespace stpq
