#include "core/explain.h"

#include "util/logging.h"

namespace stpq {

Explanation ExplainScore(const Engine* engine, const Query& query,
                         ObjectId object) {
  STPQ_CHECK(query.keywords.size() == engine->num_feature_sets());
  STPQ_CHECK(object < engine->objects().size());
  Explanation out;
  out.object = object;
  const Point& p = engine->objects()[object].pos;
  QueryStats& scratch_stats = out.stats;
  TraversalScratch scratch;
  for (size_t i = 0; i < engine->num_feature_sets(); ++i) {
    const FeatureIndex& index = engine->feature_index(i);
    BestFeature best;
    switch (query.variant) {
      case ScoreVariant::kRange:
        best = ComputeBestRange(index, p, query.keywords[i], query.lambda,
                                query.radius, scratch_stats, scratch);
        break;
      case ScoreVariant::kInfluence:
        best = ComputeBestInfluence(index, p, query.keywords[i],
                                    query.lambda, query.radius,
                                    scratch_stats, scratch);
        break;
      case ScoreVariant::kNearestNeighbor:
        best = ComputeBestNearestNeighbor(index, p, query.keywords[i],
                                          query.lambda, scratch_stats,
                                          scratch);
        break;
    }
    Contribution c;
    c.feature_set = i;
    c.has_feature = best.feature != 0xffffffffu;
    if (c.has_feature) {
      c.feature = best.feature;
      c.score = best.score;
      c.distance = best.distance;
    }
    out.total += c.score;
    out.contributions.push_back(c);
  }
  return out;
}

}  // namespace stpq
