// Cross-query Voronoi cell cache.
//
// Section 8.5: "for static data the Voronoi cells can be pre-computed in a
// special structure, and therefore significantly reduce the execution
// time."  A cell depends on the feature, its feature set, and the query
// keywords (they select which features are relevant) — but not on lambda,
// k, or r — so cells can be reused across queries with the same keyword
// sets.  The cache memoizes cells on first use, which converges to the
// paper's precomputation for workloads with recurring keyword sets.
#ifndef STPQ_CORE_VORONOI_CACHE_H_
#define STPQ_CORE_VORONOI_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/polygon.h"
#include "index/feature.h"
#include "text/keyword_set.h"

namespace stpq {

/// Memoizes Voronoi cells keyed by (feature set, feature, query keywords).
class VoronoiCellCache {
 public:
  /// Returns the cached cell or nullptr.
  const ConvexPolygon* Find(size_t feature_set, ObjectId feature,
                            const KeywordSet& query_kw);

  /// Stores a cell (overwrites an existing entry).
  void Put(size_t feature_set, ObjectId feature, const KeywordSet& query_kw,
           ConvexPolygon cell);

  void Clear();

  size_t size() const { return cells_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Key {
    uint32_t feature_set;
    ObjectId feature;
    std::vector<uint64_t> keyword_blocks;

    bool operator==(const Key& other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.feature_set;
      h = (h ^ k.feature) * 0xbf58476d1ce4e5b9ULL;
      for (uint64_t b : k.keyword_blocks) {
        h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  std::unordered_map<Key, ConvexPolygon, KeyHash> cells_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace stpq

#endif  // STPQ_CORE_VORONOI_CACHE_H_
