// Cross-query Voronoi cell cache.
//
// Section 8.5: "for static data the Voronoi cells can be pre-computed in a
// special structure, and therefore significantly reduce the execution
// time."  A cell depends on the feature, its feature set, and the query
// keywords (they select which features are relevant) — but not on lambda,
// k, or r — so cells can be reused across queries with the same keyword
// sets.  The cache memoizes cells on first use, which converges to the
// paper's precomputation for workloads with recurring keyword sets.
//
// The cache is the one piece of engine state that query execution mutates
// after build, so it is internally synchronized: Find copies the cell out
// under the lock (returning a pointer into the map would dangle across a
// concurrent rehash), and Put keeps the first writer's cell on a race —
// cells for the same key are identical by construction, so either copy is
// correct.  Under concurrency the hit/miss counters (and therefore the
// I/O charged to cell computation) depend on query interleaving, exactly
// as a physical shared cache would; see DESIGN.md §11.
#ifndef STPQ_CORE_VORONOI_CACHE_H_
#define STPQ_CORE_VORONOI_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/polygon.h"
#include "index/feature.h"
#include "text/keyword_set.h"
#include "util/thread_annotations.h"

namespace stpq {

/// Memoizes Voronoi cells keyed by (feature set, feature, query keywords).
/// Safe for concurrent Find/Put from multiple query threads.
class VoronoiCellCache {
 public:
  /// Returns a copy of the cached cell, or nullopt on a miss.
  std::optional<ConvexPolygon> Find(size_t feature_set, ObjectId feature,
                                    const KeywordSet& query_kw)
      STPQ_EXCLUDES(mu_);

  /// Stores a cell.  If another thread already stored one for the same key
  /// the existing entry wins (both are the same cell).
  void Put(size_t feature_set, ObjectId feature, const KeywordSet& query_kw,
           ConvexPolygon cell) STPQ_EXCLUDES(mu_);

  void Clear() STPQ_EXCLUDES(mu_);

  size_t size() const STPQ_EXCLUDES(mu_);
  uint64_t hits() const STPQ_EXCLUDES(mu_);
  uint64_t misses() const STPQ_EXCLUDES(mu_);

 private:
  struct Key {
    uint32_t feature_set;
    ObjectId feature;
    std::vector<uint64_t> keyword_blocks;

    bool operator==(const Key& other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.feature_set;
      h = (h ^ k.feature) * 0xbf58476d1ce4e5b9ULL;
      for (uint64_t b : k.keyword_blocks) {
        h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  mutable Mutex mu_;
  std::unordered_map<Key, ConvexPolygon, KeyHash> cells_ STPQ_GUARDED_BY(mu_);
  uint64_t hits_ STPQ_GUARDED_BY(mu_) = 0;
  uint64_t misses_ STPQ_GUARDED_BY(mu_) = 0;
};

}  // namespace stpq

#endif  // STPQ_CORE_VORONOI_CACHE_H_
