// Brute-force reference evaluator: computes tau(p) for every data object by
// scanning all feature sets.  O(|O| * sum |F_i|) — used as ground truth in
// tests and as the ultimate baseline in sanity benchmarks.
#ifndef STPQ_CORE_BRUTE_FORCE_H_
#define STPQ_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/query.h"
#include "index/feature_table.h"

namespace stpq {

/// Ground-truth evaluator over in-memory tables (no indexes, no I/O model).
class BruteForceEvaluator {
 public:
  /// Neither container is owned; both must outlive the evaluator.
  BruteForceEvaluator(const std::vector<DataObject>* objects,
                      std::vector<const FeatureTable*> feature_sets)
      : objects_(objects), feature_sets_(std::move(feature_sets)) {}

  /// Component score tau_i(p) under the query's variant (Defs. 2, 6, 7).
  double ComponentScore(const Point& p, size_t set_index,
                        const Query& query) const;

  /// Overall score tau(p) (Definition 3).
  double Tau(const Point& p, const Query& query) const;

  /// The k data objects with the highest tau(p), sorted descending.
  /// Ties at the k-th position are broken by object id (ascending).
  std::vector<ResultEntry> TopK(const Query& query) const;

 private:
  const std::vector<DataObject>* objects_;
  std::vector<const FeatureTable*> feature_sets_;
};

}  // namespace stpq

#endif  // STPQ_CORE_BRUTE_FORCE_H_
