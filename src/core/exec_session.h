// ExecutionSession: all per-query mutable engine state, as one object.
//
// A fully built Engine is immutable; everything a single Execute/cursor
// call mutates — search heaps, combination iterators, QueryStats, and the
// simulated-I/O accounting — must live on the call's own stack or in this
// session object.  The heaps and iterators are naturally local to the
// algorithms; the I/O accounting is not, because index node reads charge
// the engine's shared BufferPools from deep inside the read path.  The
// session closes that gap: it owns one BufferPool::Session per pool
// (object index + feature indexes) and a Scope that routes the executing
// thread's page accesses to them, so N concurrent queries each see their
// own counters (DESIGN.md §11).
//
// Sessions are cheap to construct (two empty page tables) and are created
// per Execute call; cursors own one for their whole lifetime, binding it
// during each Next() so a cursor can outlive the query that opened it and
// be drained from any thread (one thread at a time).
#ifndef STPQ_CORE_EXEC_SESSION_H_
#define STPQ_CORE_EXEC_SESSION_H_

#include "core/scratch.h"
#include "storage/buffer_pool.h"
#include "util/metrics.h"

namespace stpq {

/// Owns the per-query buffer-pool accounting for one query execution.
class ExecutionSession {
 public:
  /// `object_pool` / `feature_pool` are the engine's shared pools (not
  /// owned, must outlive the session).  `isolated` mirrors
  /// EngineOptions::cold_cache_per_query: isolated sessions count distinct
  /// pages against a private cold pool (deterministic under concurrency);
  /// shared sessions keep the engine pools warm across queries.
  ExecutionSession(BufferPool* object_pool, BufferPool* feature_pool,
                   bool isolated)
      : object_session_(object_pool, isolated),
        feature_session_(feature_pool, isolated) {}

  ExecutionSession(const ExecutionSession&) = delete;
  ExecutionSession& operator=(const ExecutionSession&) = delete;

  /// RAII: while alive, this thread's accesses to both engine pools are
  /// charged to this session.  Scopes nest LIFO; never bind the same
  /// session on two threads at once.
  class Scope {
   public:
    explicit Scope(ExecutionSession* session)
        : object_bind_(&session->object_session_),
          feature_bind_(&session->feature_session_) {}

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BufferPool::ScopedBind object_bind_;
    BufferPool::ScopedBind feature_bind_;
  };

  /// Reusable traversal buffers for the executing query (DESIGN.md §13).
  /// Same threading contract as the pool sessions: one query, one thread
  /// at a time.
  TraversalScratch& scratch() { return scratch_; }

  /// Writes this session's I/O counters into `stats` (overwriting the
  /// read/hit fields; the algorithm counters are untouched).
  void ExportIoCounters(QueryStats& stats) const {
    const BufferPoolStats obj = object_session_.stats();
    const BufferPoolStats feat = feature_session_.stats();
    stats.object_index_reads = obj.reads;
    stats.feature_index_reads = feat.reads;
    stats.buffer_hits = obj.hits + feat.hits;
  }

 private:
  BufferPool::Session object_session_;
  BufferPool::Session feature_session_;
  TraversalScratch scratch_;
};

}  // namespace stpq

#endif  // STPQ_CORE_EXEC_SESSION_H_
