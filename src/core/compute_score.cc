#include "core/compute_score.h"

#include <algorithm>

#include "core/score.h"
#include "geom/rect.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace stpq {

BestFeature ComputeBestRange(const FeatureIndex& index, const Point& p,
                             const KeywordSet& query_kw, double lambda,
                             double r, QueryStats& stats,
                             TraversalScratch& scratch) {
  if (index.RootId() == kInvalidNodeId) return {};
  STPQ_TRACE_PHASE(stats, QueryPhase::kComponentScore);
  STPQ_TRACE_SPAN(TraceEventType::kComponentScore, index.set_ordinal(), 0);
  HeapWatermark watermark;
  const uint8_t tree = TraceTreeForSet(index.set_ordinal());
  const double r2 = r * r;
  BorrowedMaxHeap heap(scratch.heap);
  heap.push({1.0, index.RootId(), false});
  std::vector<FeatureBranch>& branches = scratch.branches;
  while (!heap.empty()) {
    SearchHeapItem top = heap.top();
    heap.pop();
    if (top.is_leaf_item) {
      // Features enter the heap pre-filtered (dist <= r, sim > 0), sorted
      // by exact s(t): the first one popped is tau_i(p) (Algorithm 2).
      ++stats.features_retrieved;
      return {top.id, top.priority,
              Distance(p, index.table().Get(top.id).pos)};
    }
    const uint16_t level = index.NodeLevel(top.id);
    index.VisitChildren(top.id, query_kw, lambda, &branches);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : branches) {
      if (!b.text_match) {
        ++pruned;
        continue;
      }
      if (MinSquaredDistance(p, b.mbr) > r2) {
        ++pruned;
        continue;
      }
      heap.push({b.score_bound, b.id, b.is_feature});
      ++descended;
      ++stats.heap_pushes;
    }
    RecordNodeVisit(stats, tree, level, top.id, pruned, descended);
    watermark.Observe(heap.size());
  }
  return {};
}

double ComputeScoreRange(const FeatureIndex& index, const Point& p,
                         const KeywordSet& query_kw, double lambda, double r,
                         QueryStats& stats, TraversalScratch& scratch) {
  return ComputeBestRange(index, p, query_kw, lambda, r, stats, scratch)
      .score;
}

BestFeature ComputeBestInfluence(const FeatureIndex& index, const Point& p,
                                 const KeywordSet& query_kw, double lambda,
                                 double r, QueryStats& stats,
                                 TraversalScratch& scratch) {
  if (index.RootId() == kInvalidNodeId) return {};
  STPQ_TRACE_PHASE(stats, QueryPhase::kComponentScore);
  STPQ_TRACE_SPAN(TraceEventType::kComponentScore, index.set_ordinal(), 0);
  HeapWatermark watermark;
  const uint8_t tree = TraceTreeForSet(index.set_ordinal());
  BorrowedMaxHeap heap(scratch.heap);
  heap.push({1.0, index.RootId(), false});
  std::vector<FeatureBranch>& branches = scratch.branches;
  while (!heap.empty()) {
    SearchHeapItem top = heap.top();
    heap.pop();
    if (top.is_leaf_item) {
      ++stats.features_retrieved;
      return {top.id, top.priority,
              Distance(p, index.table().Get(top.id).pos)};
    }
    const uint16_t level = index.NodeLevel(top.id);
    index.VisitChildren(top.id, query_kw, lambda, &branches);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : branches) {
      if (!b.text_match) {
        ++pruned;
        continue;
      }
      // s-hat(e) decayed at mindist upper-bounds the influence score of
      // every feature below e (score <= s-hat, distance >= mindist).
      double pri =
          b.score_bound * InfluenceFactor(MinDistance(p, b.mbr), r);
      heap.push({pri, b.id, b.is_feature});
      ++descended;
      ++stats.heap_pushes;
    }
    RecordNodeVisit(stats, tree, level, top.id, pruned, descended);
    watermark.Observe(heap.size());
  }
  return {};
}

double ComputeScoreInfluence(const FeatureIndex& index, const Point& p,
                             const KeywordSet& query_kw, double lambda,
                             double r, QueryStats& stats,
                             TraversalScratch& scratch) {
  return ComputeBestInfluence(index, p, query_kw, lambda, r, stats, scratch)
      .score;
}

BestFeature ComputeBestNearestNeighbor(const FeatureIndex& index,
                                       const Point& p,
                                       const KeywordSet& query_kw,
                                       double lambda, QueryStats& stats,
                                       TraversalScratch& scratch) {
  if (index.RootId() == kInvalidNodeId) return {};
  STPQ_TRACE_PHASE(stats, QueryPhase::kComponentScore);
  STPQ_TRACE_SPAN(TraceEventType::kComponentScore, index.set_ordinal(), 0);
  HeapWatermark watermark;
  const uint8_t tree = TraceTreeForSet(index.set_ordinal());
  BorrowedMinHeap heap(scratch.heap);
  heap.push({0.0, index.RootId(), false});
  std::vector<FeatureBranch>& branches = scratch.branches;
  bool found = false;
  double nearest_d2 = std::numeric_limits<double>::infinity();
  BestFeature best;
  while (!heap.empty()) {
    SearchHeapItem top = heap.top();
    // Once the nearest relevant feature is known, only exact-distance ties
    // can still matter (they take the max preference score).  Heap
    // priorities are mindist *lower bounds* on the exact distance, so
    // popping everything with priority <= nearest_d2 covers all potential
    // ties; the tie test itself never uses the heap priority.
    if (found && top.priority > nearest_d2) break;
    heap.pop();
    if (top.is_leaf_item) {
      ++stats.features_retrieved;
      const FeatureObject& t = index.table().Get(top.id);
      // Exact squared distance through one code path for every feature:
      // candidates at geometrically identical distances compare equal even
      // when MBR mindist arithmetic would round differently.
      const double d2 = SquaredDistance(p, t.pos);
      double s = PreferenceScore(t, query_kw, lambda);
      if (!found || d2 < nearest_d2 ||
          (d2 == nearest_d2 && s > best.score)) {
        found = true;
        nearest_d2 = d2;
        best = {top.id, s, std::sqrt(d2)};
      }
      continue;
    }
    const uint16_t level = index.NodeLevel(top.id);
    index.VisitChildren(top.id, query_kw, lambda, &branches);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : branches) {
      if (!b.text_match) {
        ++pruned;
        continue;
      }
      heap.push({MinSquaredDistance(p, b.mbr), b.id, b.is_feature});
      ++descended;
      ++stats.heap_pushes;
    }
    RecordNodeVisit(stats, tree, level, top.id, pruned, descended);
    watermark.Observe(heap.size());
  }
  return found ? best : BestFeature{};
}

double ComputeScoreNearestNeighbor(const FeatureIndex& index, const Point& p,
                                   const KeywordSet& query_kw, double lambda,
                                   QueryStats& stats,
                                   TraversalScratch& scratch) {
  return ComputeBestNearestNeighbor(index, p, query_kw, lambda, stats,
                                    scratch)
      .score;
}

void ComputeScoresRangeBatch(const FeatureIndex& index,
                             std::span<const BatchObject> batch,
                             const Rect2& batch_mbr,
                             const KeywordSet& query_kw, double lambda,
                             double r, std::span<double> scores,
                             QueryStats& stats, TraversalScratch& scratch) {
  STPQ_CHECK(scores.size() == batch.size());
  std::fill(scores.begin(), scores.end(), 0.0);
  if (index.RootId() == kInvalidNodeId || batch.empty()) return;
  STPQ_TRACE_PHASE(stats, QueryPhase::kComponentScore);
  STPQ_TRACE_SPAN(TraceEventType::kComponentScore, index.set_ordinal(), 0);
  HeapWatermark watermark;
  const uint8_t tree = TraceTreeForSet(index.set_ordinal());
  const double r2 = r * r;

  // Indices of batch members whose score is still unresolved.
  std::vector<uint32_t>& active = scratch.active;
  active.resize(batch.size());
  for (uint32_t i = 0; i < batch.size(); ++i) active[i] = i;

  BorrowedMaxHeap heap(scratch.heap);
  heap.push({1.0, index.RootId(), false});
  std::vector<FeatureBranch>& branches = scratch.branches;
  while (!heap.empty() && !active.empty()) {
    SearchHeapItem top = heap.top();
    heap.pop();
    if (top.is_leaf_item) {
      ++stats.features_retrieved;
      const FeatureObject& t = index.table().Get(top.id);
      // Features pop in descending s(t): the first one within range of a
      // batch member resolves that member.
      for (size_t a = 0; a < active.size();) {
        uint32_t i = active[a];
        if (SquaredDistance(batch[i].pos, t.pos) <= r2) {
          scores[i] = top.priority;
          active[a] = active.back();
          active.pop_back();
        } else {
          ++a;
        }
      }
      continue;
    }
    const uint16_t level = index.NodeLevel(top.id);
    index.VisitChildren(top.id, query_kw, lambda, &branches);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : branches) {
      if (!b.text_match) {
        ++pruned;
        continue;
      }
      // Cheap prefilter on the whole batch MBR, then the exact exists-test
      // of Section 5: expand only if at least one active p is in range.
      if (MinDistance(batch_mbr, b.mbr) > r) {
        ++pruned;
        continue;
      }
      bool any = false;
      for (uint32_t i : active) {
        if (MinSquaredDistance(batch[i].pos, b.mbr) <= r2) {
          any = true;
          break;
        }
      }
      if (!any) {
        ++pruned;
        continue;
      }
      heap.push({b.score_bound, b.id, b.is_feature});
      ++descended;
      ++stats.heap_pushes;
    }
    RecordNodeVisit(stats, tree, level, top.id, pruned, descended);
    watermark.Observe(heap.size());
  }
}

}  // namespace stpq
