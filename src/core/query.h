// The top-k spatio-textual preference query (Problem 1) and its results.
#ifndef STPQ_CORE_QUERY_H_
#define STPQ_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "index/feature.h"
#include "text/keyword_set.h"
#include "util/metrics.h"

namespace stpq {

/// Score definitions of Sections 3 and 7.
enum class ScoreVariant {
  kRange,            ///< Definition 2: max s(t) within distance r
  kInfluence,        ///< Definition 6: max s(t) * 2^(-dist/r)
  kNearestNeighbor,  ///< Definition 7: s(t) of the nearest relevant feature
};

/// STPS feature-pulling strategies (Section 6.3).
enum class PullingStrategy {
  kPrioritized,  ///< Definition 5: pull from the set holding the threshold
  kRoundRobin,   ///< simple alternative mentioned by the paper (ablation)
};

/// A top-k spatio-textual preference query Q = (k, r, lambda, W_1..W_c).
struct Query {
  uint32_t k = 10;
  double radius = 0.01;  ///< r, in the normalized [0,1] space
  double lambda = 0.5;   ///< smoothing between t.s and textual similarity
  /// Query keywords per feature set; keywords.size() must equal the number
  /// of feature sets c of the engine executing the query.
  std::vector<KeywordSet> keywords;
  ScoreVariant variant = ScoreVariant::kRange;
};

/// One result row: a data object and its spatio-textual score tau(p).
struct ResultEntry {
  ObjectId object = 0;
  double score = 0.0;

  bool operator==(const ResultEntry& other) const = default;
};

/// Query result: up to k entries sorted by descending score, plus the cost
/// counters accumulated while executing.
struct QueryResult {
  std::vector<ResultEntry> entries;
  QueryStats stats;
};

}  // namespace stpq

#endif  // STPQ_CORE_QUERY_H_
