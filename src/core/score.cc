#include "core/score.h"

#include "core/query.h"

namespace stpq {

const char* VariantName(ScoreVariant variant) {
  switch (variant) {
    case ScoreVariant::kRange:
      return "range";
    case ScoreVariant::kInfluence:
      return "influence";
    case ScoreVariant::kNearestNeighbor:
      return "nn";
  }
  return "unknown";
}

}  // namespace stpq
