// Scoring functions of Sections 3 and 7.
#ifndef STPQ_CORE_SCORE_H_
#define STPQ_CORE_SCORE_H_

#include <cmath>

#include "index/feature.h"
#include "text/keyword_set.h"
#include "util/logging.h"

namespace stpq {

/// Definition 1: s(t) = (1 - lambda) * t.s + lambda * sim(t, W), with
/// sim = Jaccard.  Requires lambda in [0,1] and t.s in [0,1] (Section 3),
/// so the result is itself in [0,1].
inline double PreferenceScore(const FeatureObject& t, const KeywordSet& query,
                              double lambda) {
  STPQ_DCHECK(lambda >= 0.0 && lambda <= 1.0);
  STPQ_DCHECK(t.score >= 0.0 && t.score <= 1.0);
  return (1.0 - lambda) * t.score + lambda * t.keywords.Jaccard(query);
}

/// The influence decay factor 2^(-dist / r) of Definition 6.  Requires
/// r > 0 (the query radius) and a non-negative distance.
inline double InfluenceFactor(double dist, double r) {
  STPQ_DCHECK(r > 0.0);
  STPQ_DCHECK(dist >= 0.0);
  return std::exp2(-dist / r);
}

/// Whether feature t is textually relevant (sim(t, W) > 0).
inline bool TextRelevant(const FeatureObject& t, const KeywordSet& query) {
  return t.keywords.Intersects(query);
}

enum class ScoreVariant;

/// Human-readable variant name ("range", "influence", "nn").
const char* VariantName(ScoreVariant variant);

}  // namespace stpq

#endif  // STPQ_CORE_SCORE_H_
