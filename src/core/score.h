// Scoring functions of Sections 3 and 7.
#ifndef STPQ_CORE_SCORE_H_
#define STPQ_CORE_SCORE_H_

#include <cmath>

#include "index/feature.h"
#include "text/keyword_set.h"

namespace stpq {

/// Definition 1: s(t) = (1 - lambda) * t.s + lambda * sim(t, W), with
/// sim = Jaccard.
inline double PreferenceScore(const FeatureObject& t, const KeywordSet& query,
                              double lambda) {
  return (1.0 - lambda) * t.score + lambda * t.keywords.Jaccard(query);
}

/// The influence decay factor 2^(-dist / r) of Definition 6.
inline double InfluenceFactor(double dist, double r) {
  return std::exp2(-dist / r);
}

/// Whether feature t is textually relevant (sim(t, W) > 0).
inline bool TextRelevant(const FeatureObject& t, const KeywordSet& query) {
  return t.keywords.Intersects(query);
}

enum class ScoreVariant;

/// Human-readable variant name ("range", "influence", "nn").
const char* VariantName(ScoreVariant variant);

}  // namespace stpq

#endif  // STPQ_CORE_SCORE_H_
