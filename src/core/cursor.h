// StpsCursor: incremental result delivery for range-score queries.
//
// Section 6.2 notes that STPS "can be returned to the user incrementally":
// objects qualified by the best not-yet-processed combination are final the
// moment they are found.  The cursor exposes exactly that — results stream
// one at a time in non-increasing tau(p) with no k fixed up front, so a
// caller can stop whenever it has seen enough (top-k with a posteriori k).
//
// Only the range variant supports this (the influence and NN variants need
// cross-combination reconciliation before a result is final).
//
// A cursor opened through Engine::OpenCursor owns its own ExecutionSession:
// its simulated I/O is charged to the cursor, not to the engine's shared
// pools, so a cursor may outlive the query that opened it, be interleaved
// with concurrent Execute calls, and be drained from a different thread
// than the one that opened it.  A single cursor is not itself thread-safe:
// drain it from one thread at a time.
#ifndef STPQ_CORE_CURSOR_H_
#define STPQ_CORE_CURSOR_H_

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/combination.h"
#include "core/exec_session.h"
#include "core/query.h"
#include "core/scratch.h"
#include "index/object_index.h"

namespace stpq {

/// Streams range-score results in non-increasing tau(p).
class StpsCursor {
 public:
  /// `objects` and `feature_indexes` are not owned and must outlive the
  /// cursor.  `query.k` is ignored — the cursor is unbounded.
  /// `query.variant` must be kRange.  `session` (may be null) receives the
  /// cursor's page-read accounting; Engine::OpenCursor always provides one.
  StpsCursor(const ObjectIndex* objects,
             std::vector<const FeatureIndex*> feature_indexes, Query query,
             PullingStrategy strategy = PullingStrategy::kPrioritized,
             std::unique_ptr<ExecutionSession> session = nullptr);

  ~StpsCursor();
  StpsCursor(StpsCursor&&) = delete;
  StpsCursor& operator=(StpsCursor&&) = delete;

  /// The next result, or nullopt once every data object has been returned.
  std::optional<ResultEntry> Next();

  /// Cost counters accumulated so far, including the page reads charged to
  /// the cursor's session.
  QueryStats stats() const;

 private:
  void RefillBuffer();

  const ObjectIndex* objects_;
  std::vector<const FeatureIndex*> feature_indexes_;
  Query query_;  // owned copy; the iterator references it
  QueryStats stats_;
  std::unique_ptr<ExecutionSession> session_;
  std::unique_ptr<CombinationIterator> iterator_;
  TraversalScratch scratch_;  ///< reused across Next()/RefillBuffer calls
  std::vector<bool> claimed_;
  std::deque<ResultEntry> buffer_;
  bool exhausted_ = false;
};

}  // namespace stpq

#endif  // STPQ_CORE_CURSOR_H_
