// Incremental Voronoi-cell computation for the NN variant (Section 7.2).
//
// The qualifying region of a feature t_i (the points whose nearest relevant
// feature of F_i is t_i) is t_i's Voronoi cell with respect to the relevant
// features of F_i.  The cell is computed incrementally: relevant features
// are streamed by ascending distance from t_i and their perpendicular
// bisectors clip the domain rectangle; once the next feature is at least
// twice as far as the farthest cell vertex, no further feature can shrink
// the cell and it is final.
#ifndef STPQ_CORE_VORONOI_H_
#define STPQ_CORE_VORONOI_H_

#include "core/scratch.h"
#include "geom/polygon.h"
#include "index/feature_index.h"
#include "text/keyword_set.h"
#include "util/attributes.h"
#include "util/metrics.h"

namespace stpq {

/// Computes the Voronoi cell of feature `center_id` among the features of
/// `index` with sim(t, query_kw) > 0, clipped to `domain`.  Charges the
/// feature index's buffer pool; cost is recorded in the voronoi_* counters
/// of `stats` (the striped bars of the paper's Figures 13-14).
STPQ_HOT ConvexPolygon ComputeVoronoiCell(const FeatureIndex& index,
                                 ObjectId center_id,
                                 const KeywordSet& query_kw, double lambda,
                                 const Rect2& domain, QueryStats& stats,
                                 TraversalScratch& scratch);

/// Intersects `poly` with `other` in place (clips by every edge of
/// `other`); both must be convex with CCW vertex order.
STPQ_HOT void IntersectConvex(ConvexPolygon* poly, const ConvexPolygon& other);

}  // namespace stpq

#endif  // STPQ_CORE_VORONOI_H_
