#include "core/combination.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "core/score.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace stpq {

namespace {

/// Packs grid cell indices into a hash key.  The bias keeps both halves
/// positive for slightly negative coordinates.
uint64_t CellKey(int64_t cx, int64_t cy) {
  return (static_cast<uint64_t>(cx + (1 << 20)) << 32) ^
         static_cast<uint64_t>(cy + (1 << 20));
}

int64_t CellIndex(double v, double cell) {
  return static_cast<int64_t>(std::floor(v / cell));
}

}  // namespace

SortedFeatureStream::SortedFeatureStream(const FeatureIndex* index,
                                         const KeywordSet* query_kw,
                                         double lambda, QueryStats* stats)
    : index_(index), query_kw_(query_kw), lambda_(lambda), stats_(stats) {
  STPQ_CHECK(stats_ != nullptr);
  if (index_->RootId() != kInvalidNodeId) {
    heap_.push({1.0, index_->RootId(), false});
  }
}

std::optional<SortedFeatureStream::Item> SortedFeatureStream::Next() {
  STPQ_TRACE_PHASE(*stats_, QueryPhase::kComponentScore);
  const uint8_t tree = TraceTreeForSet(index_->set_ordinal());
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (top.is_feature) {
      ++stats_->features_retrieved;
      return Item{top.id, top.priority};
    }
    const uint16_t level = index_->NodeLevel(top.id);
    index_->VisitChildren(top.id, *query_kw_, lambda_, &scratch_);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const FeatureBranch& b : scratch_) {
      // Textual pruning only: sorted feature retrieval has no spatial
      // constraint (the 2r test applies to combinations, not features).
      if (!b.text_match) {
        ++pruned;
        continue;
      }
      heap_.push({b.score_bound, b.id, b.is_feature});
      ++descended;
      ++stats_->heap_pushes;
    }
    RecordNodeVisit(*stats_, tree, level, top.id, pruned, descended);
  }
  if (!virtual_emitted_) {
    // heap_i.pop() "returns a virtual feature object as final object".
    virtual_emitted_ = true;
    return Item{kVirtualFeature, 0.0};
  }
  return std::nullopt;
}

CombinationIterator::CombinationIterator(
    std::vector<const FeatureIndex*> indexes, const Query& query,
    bool enforce_range_constraint, PullingStrategy strategy,
    QueryStats* stats)
    : indexes_(std::move(indexes)),
      query_(query),
      enforce_range_(enforce_range_constraint),
      strategy_(strategy),
      stats_(stats) {
  STPQ_CHECK(stats_ != nullptr);
  const size_t c = indexes_.size();
  STPQ_CHECK(query_.keywords.size() == c);
  streams_.reserve(c);
  for (size_t i = 0; i < c; ++i) {
    streams_.emplace_back(indexes_[i], &query_.keywords[i], query_.lambda,
                          stats_);
  }
  STPQ_CHECK(c >= 1 && c <= kMaxFeatureSets);
  retrieved_.resize(c);
  max_score_.assign(c, 0.0);
  min_score_.assign(c, std::numeric_limits<double>::infinity());
  stream_done_.assign(c, false);
  stalled_.resize(c);
  grids_.resize(c);
  has_virtual_.assign(c, false);
}

void CombinationIterator::Pull(size_t m) {
  STPQ_DCHECK(!stream_done_[m]);
  std::optional<SortedFeatureStream::Item> item = streams_[m].Next();
  STPQ_DCHECK(item.has_value());
  Retrieved rec;
  rec.id = item->id;
  rec.score = item->score;
  rec.is_virtual = item->id == kVirtualFeature;
  if (!rec.is_virtual) {
    rec.pos = indexes_[m]->table().Get(item->id).pos;
  }
  if (retrieved_[m].empty()) max_score_[m] = rec.score;
  min_score_[m] = rec.score;
  retrieved_[m].push_back(rec);
  if (rec.is_virtual) stream_done_[m] = true;

  if (enforce_range_) {
    // Product mode: index the new member and materialize every valid
    // combination it completes (Algorithm 4, line 9).
    const uint32_t new_rank = static_cast<uint32_t>(retrieved_[m].size() - 1);
    if (rec.is_virtual) {
      has_virtual_[m] = true;
    } else {
      double cell = std::max(2.0 * query_.radius, 1e-12);
      grids_[m][CellKey(CellIndex(rec.pos.x, cell),
                        CellIndex(rec.pos.y, cell))]
          .push_back(new_rank);
    }
    if (initialized_) GenerateValidWithNew(m);
    return;
  }

  // Lattice mode: reactivate tuples stalled on this set.
  const uint32_t new_rank = static_cast<uint32_t>(retrieved_[m].size() - 1);
  std::vector<RankTuple> still_waiting;
  for (const RankTuple& ranks : stalled_[m]) {
    if (ranks[m] <= new_rank) {
      PushTuple(ranks);
    } else {
      still_waiting.push_back(ranks);
    }
  }
  stalled_[m] = std::move(still_waiting);
}

void CombinationIterator::GenerateValidWithNew(size_t m) {
  const size_t c = indexes_.size();
  const Retrieved& fresh = retrieved_[m].back();
  const uint32_t fresh_rank = static_cast<uint32_t>(retrieved_[m].size() - 1);
  const double limit = 2.0 * query_.radius;
  const double limit2 = limit * limit;
  const double cell = std::max(limit, 1e-12);

  // Candidate partners per other set: members within 2r of the fresh
  // feature (all members if the fresh one is the virtual feature), plus
  // the virtual member where available.
  std::vector<size_t> others;
  std::vector<std::vector<uint32_t>> candidates(c);
  for (size_t j = 0; j < c; ++j) {
    if (j == m) continue;
    others.push_back(j);
    std::vector<uint32_t>& cand = candidates[j];
    if (fresh.is_virtual) {
      // dist(t, virtual) = 0: every member of D_j is compatible with it
      // (pairwise checks among the chosen members still apply).
      for (uint32_t r = 0; r < retrieved_[j].size(); ++r) {
        if (!retrieved_[j][r].is_virtual) cand.push_back(r);
      }
    } else {
      int64_t bx = CellIndex(fresh.pos.x, cell);
      int64_t by = CellIndex(fresh.pos.y, cell);
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grids_[j].find(CellKey(bx + dx, by + dy));
          if (it == grids_[j].end()) continue;
          for (uint32_t r : it->second) {
            if (SquaredDistance(fresh.pos, retrieved_[j][r].pos) <= limit2) {
              cand.push_back(r);
            }
          }
        }
      }
    }
    if (has_virtual_[j]) {
      cand.push_back(static_cast<uint32_t>(retrieved_[j].size() - 1));
    }
    if (cand.empty()) return;  // no combination can include the fresh member
  }

  // Depth-first product over the candidate lists with incremental pairwise
  // distance checks among the chosen members.
  RankTuple ranks{};
  ranks[m] = fresh_rank;
  std::vector<size_t> chosen;  // positions already assigned (excluding m)
  std::function<void(size_t)> rec = [&](size_t oi) {
    if (oi == others.size()) {
      ++stats_->combinations_generated;
      tuple_heap_.push(Tuple{TupleScore(ranks), ranks});
      return;
    }
    size_t j = others[oi];
    for (uint32_t r : candidates[j]) {
      const Retrieved& cj = retrieved_[j][r];
      bool ok = true;
      if (!cj.is_virtual) {
        for (size_t pi : chosen) {
          const Retrieved& prev = retrieved_[pi][ranks[pi]];
          if (prev.is_virtual) continue;
          if (SquaredDistance(cj.pos, prev.pos) > limit2) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      ranks[j] = r;
      chosen.push_back(j);
      rec(oi + 1);
      chosen.pop_back();
    }
  };
  rec(0);
}

double CombinationIterator::Threshold() const {
  // tau = max_j ( max_1 + ... + min_j + ... + max_c ) over live streams.
  double sum_max = 0.0;
  for (double m : max_score_) sum_max += m;
  double tau = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < indexes_.size(); ++j) {
    if (stream_done_[j]) continue;
    tau = std::max(tau, sum_max - max_score_[j] + min_score_[j]);
  }
  return tau;
}

size_t CombinationIterator::NextFeatureSet() {
  const size_t c = indexes_.size();
  if (strategy_ == PullingStrategy::kRoundRobin) {
    for (size_t step = 0; step < c; ++step) {
      size_t m = (round_robin_next_ + step) % c;
      if (!stream_done_[m]) {
        round_robin_next_ = (m + 1) % c;
        return m;
      }
    }
    STPQ_CHECK(false && "NextFeatureSet called with all streams done");
  }
  // Prioritized strategy (Definition 5): pull from the set responsible for
  // the threshold; only lowering its min_m can lower tau.
  double sum_max = 0.0;
  for (double m : max_score_) sum_max += m;
  size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t j = 0; j < c; ++j) {
    if (stream_done_[j]) continue;
    double value = sum_max - max_score_[j] + min_score_[j];
    if (!found || value > best_value) {
      best = j;
      best_value = value;
      found = true;
    }
  }
  STPQ_CHECK(found && "NextFeatureSet called with all streams done");
  return best;
}

double CombinationIterator::TupleScore(const RankTuple& ranks) const {
  double s = 0.0;
  for (size_t i = 0; i < indexes_.size(); ++i) {
    s += retrieved_[i][ranks[i]].score;
  }
  return s;
}

Combination CombinationIterator::MakeCombination(const RankTuple& ranks)
    const {
  Combination c;
  c.members.reserve(indexes_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    c.members.push_back(retrieved_[i][ranks[i]].id);
  }
  c.score = TupleScore(ranks);
  return c;
}

void CombinationIterator::PushTuple(const RankTuple& ranks) {
  // Find whether any rank points past its list; at most one can (tuples
  // advance one rank at a time).
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (ranks[i] >= retrieved_[i].size()) {
      if (stream_done_[i]) return;  // no further features will ever arrive
      stalled_[i].push_back(ranks);
      return;
    }
  }
  ++stats_->combinations_generated;
  tuple_heap_.push(Tuple{TupleScore(ranks), ranks});
}

void CombinationIterator::ExpandSuccessors(const RankTuple& ranks) {
  // Canonical children: increment position i only while every earlier rank
  // is zero, so each tuple is generated by exactly one parent.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    RankTuple next = ranks;
    ++next[i];
    PushTuple(next);
    if (ranks[i] > 0) break;  // i was the first nonzero rank
  }
}

std::optional<Combination> CombinationIterator::Next() {
  STPQ_TRACE_PHASE(*stats_, QueryPhase::kCombination);
  STPQ_TRACE_SPAN(TraceEventType::kCombinationRound,
                  static_cast<uint32_t>(indexes_.size()),
                  stats_->combinations_emitted);
  if (!initialized_) {
    for (size_t i = 0; i < indexes_.size(); ++i) Pull(i);
    initialized_ = true;
    if (enforce_range_) {
      // The initial pulls happened before combination generation was armed;
      // seed with the combinations among the first members.  Re-running the
      // generator for the last set covers exactly the initial cross-set
      // product (every combination's "newest" member is the set-(c-1) one).
      GenerateValidWithNew(indexes_.size() - 1);
    } else {
      PushTuple(RankTuple{});
    }
  }
  while (true) {
    bool all_done = true;
    for (size_t i = 0; i < indexes_.size(); ++i) {
      if (!stream_done_[i]) {
        all_done = false;
        break;
      }
    }
    if (!tuple_heap_.empty()) {
      double tau = Threshold();
      if (all_done || tuple_heap_.top().score >= tau) {
        Tuple top = tuple_heap_.top();
        tuple_heap_.pop();
        if (!enforce_range_) {
          // Lattice mode: expand successors; the tuple itself is valid.
          ExpandSuccessors(top.ranks);
        }
        ++stats_->combinations_emitted;
        return MakeCombination(top.ranks);
      }
    }
    if (all_done) {
      // Heap drained and no stream can produce more: enumeration is over.
      if (tuple_heap_.empty()) return std::nullopt;
      continue;
    }
    Pull(NextFeatureSet());
  }
}

}  // namespace stpq
