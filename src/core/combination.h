// Algorithm 4: sorted retrieval of valid combinations of feature objects.
//
// Per feature set, a SortedFeatureStream yields features in non-increasing
// preference score s(t) by best-first traversal over s-hat(e), terminated
// by the virtual feature (Section 6.1's "empty-set" member, score 0).  The
// CombinationIterator combines the streams: it maintains the retrieved
// lists D_i with their max_i / min_i scores, the threshold
//   tau = max_j ( sum_{l != j} max_l + min_j ),
// a pulling strategy (Definition 5's prioritized strategy or round-robin),
// and a heap of candidate combinations, emitting combinations in globally
// non-increasing score order.
//
// Candidate generation has two modes (see DESIGN.md Section 4):
//   * Range variant (2r constraint enforced): the paper's product
//     construction — each newly pulled feature e_i is combined with the
//     already-retrieved members of the other D_j lists, discarding pairs
//     farther than 2r.  A spatial grid over each D_j makes partner lookup
//     O(nearby) instead of O(|D_j|), so only *valid* combinations are ever
//     materialized.
//   * Influence/NN variants (no distance filter): the product would
//     materialize prod |D_i| tuples, so candidates are enumerated
//     lattice-style over rank tuples into the sorted D_i lists, seeded at
//     (0,..,0).  Each tuple is generated exactly once by its canonical
//     parent (decrement at the first nonzero rank), so no visited-set is
//     needed; every popped tuple is valid, so pops == emissions.
// Both modes emit combinations in globally non-increasing s(C) order under
// the same threshold scheme.
#ifndef STPQ_CORE_COMBINATION_H_
#define STPQ_CORE_COMBINATION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "index/feature_index.h"
#include "util/attributes.h"

namespace stpq {

/// Marker id of the virtual feature (the paper's empty-set member).
inline constexpr ObjectId kVirtualFeature = 0xffffffffu;

/// Maximum number of feature sets c supported per query.
inline constexpr size_t kMaxFeatureSets = 8;

/// A fixed-size rank tuple indexing into the per-set retrieved lists.
using RankTuple = std::array<uint32_t, kMaxFeatureSets>;

/// A valid combination C = {t_1, ..., t_c} with s(C) = sum s(t_i).
struct Combination {
  /// One feature id per feature set; kVirtualFeature encodes the empty
  /// member (dist 0 to everything, score 0).
  std::vector<ObjectId> members;
  double score = 0.0;
};

/// Streams the features of one index in non-increasing s(t), filtered to
/// sim(t, W) > 0, with the virtual feature appended last.
class SortedFeatureStream {
 public:
  /// Pointers are not owned.  `query_kw` and `stats` must stay valid;
  /// `stats` must be non-null (checked at construction).
  SortedFeatureStream(const FeatureIndex* index, const KeywordSet* query_kw,
                      double lambda, QueryStats* stats);

  struct Item {
    ObjectId id;
    double score;
  };

  /// Next feature (or the final virtual feature); nullopt afterwards.
  STPQ_HOT std::optional<Item> Next();

  /// True once the virtual feature has been returned.
  bool Exhausted() const { return virtual_emitted_; }

 private:
  struct HeapEntry {
    double priority;
    uint32_t id;
    bool is_feature;
    bool operator<(const HeapEntry& other) const {
      return priority < other.priority;
    }
  };

  const FeatureIndex* index_;
  const KeywordSet* query_kw_;
  double lambda_;
  QueryStats* stats_;
  std::priority_queue<HeapEntry> heap_;
  std::vector<FeatureBranch> scratch_;
  bool virtual_emitted_ = false;
};

/// Emits valid combinations in non-increasing s(C) (Algorithm 4).
class CombinationIterator {
 public:
  /// `enforce_range_constraint` applies Definition 4's pairwise
  /// dist(t_i, t_j) <= 2r filter (range variant); the influence and NN
  /// variants construct the iterator without it (Section 7).  `stats`
  /// must be non-null (checked at construction).
  CombinationIterator(std::vector<const FeatureIndex*> indexes,
                      const Query& query, bool enforce_range_constraint,
                      PullingStrategy strategy, QueryStats* stats);

  /// The next valid combination with the highest score, or nullopt when no
  /// combinations remain.
  STPQ_HOT std::optional<Combination> Next();

 private:
  struct Retrieved {
    ObjectId id;
    double score;
    Point pos;       // undefined for the virtual feature
    bool is_virtual;
  };

  struct Tuple {
    double score;
    RankTuple ranks;
    bool operator<(const Tuple& other) const { return score < other.score; }
  };

  /// Pulls the next feature from stream `m` into D_m, reactivating tuples
  /// stalled on m.
  void Pull(size_t m);

  /// Threshold tau over the non-exhausted streams; -infinity if all are
  /// exhausted (drain the heap).
  double Threshold() const;

  /// Prioritized (Definition 5) or round-robin choice of the next stream.
  size_t NextFeatureSet();

  /// Lattice mode: pushes the canonical children of `ranks` — increment at
  /// position i is allowed only when every rank before i is zero, so each
  /// tuple has exactly one generating parent.
  void ExpandSuccessors(const RankTuple& ranks);

  /// Lattice mode: pushes a tuple if within bounds, or stalls/drops it.
  void PushTuple(const RankTuple& ranks);

  /// Product mode: generates every valid combination whose member from set
  /// `m` is the newest retrieved feature (grid-accelerated, Definition 4).
  void GenerateValidWithNew(size_t m);

  double TupleScore(const RankTuple& ranks) const;
  Combination MakeCombination(const RankTuple& ranks) const;

  std::vector<const FeatureIndex*> indexes_;
  const Query& query_;
  bool enforce_range_;
  PullingStrategy strategy_;
  QueryStats* stats_;

  std::vector<SortedFeatureStream> streams_;
  std::vector<std::vector<Retrieved>> retrieved_;  // D_i
  std::vector<double> max_score_;                  // max_i
  std::vector<double> min_score_;                  // min_i
  std::vector<bool> stream_done_;                  // virtual emitted

  std::priority_queue<Tuple> tuple_heap_;
  /// Lattice mode: tuples waiting for D_j to grow, per feature set j.
  std::vector<std::vector<RankTuple>> stalled_;
  /// Product mode: spatial grid (cell size 2r) over each D_j's real
  /// members, mapping cell -> ranks, for partner lookup within 2r.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> grids_;
  std::vector<bool> has_virtual_;  ///< whether the empty member is in D_j

  size_t round_robin_next_ = 0;
  bool initialized_ = false;
};

}  // namespace stpq

#endif  // STPQ_CORE_COMBINATION_H_
