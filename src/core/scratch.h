// Reusable per-session traversal buffers (DESIGN.md §13).
//
// Every best-first traversal in the query path needs a search heap, a
// VisitChildren output buffer, and (for some kernels) a DFS stack or an
// active-member list.  Constructing those as locals costs one or more heap
// allocations per kernel call — and the kernels run hundreds of times per
// query (once per object per feature set).  A TraversalScratch owns the
// backing vectors once per ExecutionSession; kernels borrow them, clear
// them (capacity is retained), and leave them for the next call, so a warm
// session executes the range-variant hot path with zero allocations.
//
// Correctness constraint: borrowing must not change traversal order.
// BorrowedHeap reproduces std::priority_queue exactly — push_back +
// std::push_heap and std::pop_heap + pop_back with the same comparator is
// precisely what libstdc++'s priority_queue does — so pop order, and
// therefore page-read order and every golden I/O count, is bit-identical
// to the former per-call priority_queue code.
#ifndef STPQ_CORE_SCRATCH_H_
#define STPQ_CORE_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/feature_index.h"

namespace stpq {

/// Entry of a best-first search heap: a priority plus the node or
/// feature/object id it refers to.  All traversal kernels share this
/// layout; only the meaning of `priority` (score bound, mindist, ...)
/// and the comparator differ.
struct SearchHeapItem {
  double priority;
  uint32_t id;
  bool is_leaf_item;  ///< feature/object (true) vs. index node (false)
};

/// Max-heap ordering on priority (score-bound descent).
struct SearchHeapMaxOrder {
  bool operator()(const SearchHeapItem& a, const SearchHeapItem& b) const {
    return a.priority < b.priority;
  }
};

/// Min-heap ordering on priority (distance ascent).
struct SearchHeapMinOrder {
  bool operator()(const SearchHeapItem& a, const SearchHeapItem& b) const {
    return a.priority > b.priority;
  }
};

/// A binary heap over a borrowed vector: the std::priority_queue interface
/// without owning (or allocating) the storage.  Clears the vector on
/// construction; the vector's capacity persists in the scratch across
/// calls.
template <typename Order>
class BorrowedHeap {
 public:
  explicit BorrowedHeap(std::vector<SearchHeapItem>& storage) : v_(storage) {
    v_.clear();
  }

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] size_t size() const { return v_.size(); }
  [[nodiscard]] const SearchHeapItem& top() const { return v_.front(); }

  void push(const SearchHeapItem& item) {
    v_.push_back(item);
    std::push_heap(v_.begin(), v_.end(), Order{});
  }

  void pop() {
    std::pop_heap(v_.begin(), v_.end(), Order{});
    v_.pop_back();
  }

 private:
  std::vector<SearchHeapItem>& v_;
};

using BorrowedMaxHeap = BorrowedHeap<SearchHeapMaxOrder>;
using BorrowedMinHeap = BorrowedHeap<SearchHeapMinOrder>;

/// The per-session buffer set.  Members are independent: a kernel may use
/// any subset, but two *simultaneously live* traversals must not share one
/// member (sequential kernel calls are fine — each clears what it borrows).
/// The query path satisfies this by construction: component-score,
/// Voronoi, and object-retrieval traversals never nest inside each other.
struct TraversalScratch {
  /// Search-heap storage (max- or min-ordered via BorrowedHeap).
  std::vector<SearchHeapItem> heap;
  /// VisitChildren output buffer.
  std::vector<FeatureBranch> branches;
  /// Batched scoring: indexes of still-unresolved batch members.
  std::vector<uint32_t> active;
  /// DFS stack of node ids for object-R-tree walks.
  std::vector<uint32_t> stack;
};

}  // namespace stpq

#endif  // STPQ_CORE_SCRATCH_H_
