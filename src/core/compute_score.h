// Algorithm 2: spatio-textual score computation tau_i(p) on one feature
// index, plus the influence / nearest-neighbor adaptations (Section 7) and
// the batched improvement of Section 5.
//
// All traversals are best-first over s-hat(e) (or distance, for the NN
// variant); sub-trees are pruned when the spatial constraint cannot be met
// or no query keyword can occur below the entry.  Every function borrows
// its heap and child-visit buffers from a caller-provided TraversalScratch
// (see core/scratch.h), so a warm session runs these kernels without
// allocating.
//
// Stats contract: every function takes `QueryStats&` and unconditionally
// accumulates its work counters — callers that do not care still pass a
// (stack) QueryStats.  The reference signature makes the "never null"
// contract structural; it used to be a pointer that was dereferenced
// without a check.
#ifndef STPQ_CORE_COMPUTE_SCORE_H_
#define STPQ_CORE_COMPUTE_SCORE_H_

#include <span>
#include <vector>

#include "core/query.h"
#include "core/scratch.h"
#include "index/feature_index.h"
#include "util/attributes.h"
#include "util/metrics.h"

namespace stpq {

/// The feature realizing a component score tau_i(p) (for explanations).
struct BestFeature {
  /// 0xffffffff (no feature) when nothing qualifies.
  uint32_t feature = 0xffffffffu;
  double score = 0.0;     ///< the component score tau_i(p)
  double distance = 0.0;  ///< dist(p, feature); undefined when none
};

/// Definition 2 score: the best s(t) among relevant features within
/// distance r of p, or 0 if none qualifies.
STPQ_HOT double ComputeScoreRange(const FeatureIndex& index, const Point& p,
                         const KeywordSet& query_kw, double lambda, double r,
                         QueryStats& stats, TraversalScratch& scratch);

/// Detailed versions: also identify the feature that realizes the score.
STPQ_HOT BestFeature ComputeBestRange(const FeatureIndex& index, const Point& p,
                             const KeywordSet& query_kw, double lambda,
                             double r, QueryStats& stats,
                             TraversalScratch& scratch);
STPQ_HOT BestFeature ComputeBestInfluence(const FeatureIndex& index, const Point& p,
                                 const KeywordSet& query_kw, double lambda,
                                 double r, QueryStats& stats,
                                 TraversalScratch& scratch);

/// NN variant (Definition 7).  Tie rule: among relevant features, the
/// nearest by *exact* squared distance wins; equidistant features (squared
/// distances compared with ==, both computed by the same
/// SquaredDistance(p, t.pos) expression — never by mixing heap bounds with
/// recomputed values) tie-break by the larger preference score s(t).
/// Heap priorities (MBR mindists) are only ever used as lower bounds, so
/// floating-point noise in them cannot flip the tie decision.
STPQ_HOT BestFeature ComputeBestNearestNeighbor(const FeatureIndex& index,
                                       const Point& p,
                                       const KeywordSet& query_kw,
                                       double lambda, QueryStats& stats,
                                       TraversalScratch& scratch);

/// Definition 6 score: the best s(t) * 2^(-dist(p,t)/r) among relevant
/// features, or 0 if none qualifies.
STPQ_HOT double ComputeScoreInfluence(const FeatureIndex& index, const Point& p,
                             const KeywordSet& query_kw, double lambda,
                             double r, QueryStats& stats,
                             TraversalScratch& scratch);

/// Definition 7 score: s(t) of the nearest relevant feature (max s(t) among
/// equidistant nearest, see ComputeBestNearestNeighbor), or 0 if none
/// qualifies.
STPQ_HOT double ComputeScoreNearestNeighbor(const FeatureIndex& index, const Point& p,
                                   const KeywordSet& query_kw, double lambda,
                                   QueryStats& stats,
                                   TraversalScratch& scratch);

/// One member of a batched score computation.
struct BatchObject {
  ObjectId id = 0;
  Point pos;
};

/// Batched Definition 2 scores (the "performance improvements" of
/// Section 5): one index traversal resolves every object in `batch`.
/// `scores[i]` receives tau_i for batch[i] (0 if no feature qualifies).
/// `batch_mbr` must cover all batch positions.
STPQ_HOT void ComputeScoresRangeBatch(const FeatureIndex& index,
                             std::span<const BatchObject> batch,
                             const Rect2& batch_mbr,
                             const KeywordSet& query_kw, double lambda,
                             double r, std::span<double> scores,
                             QueryStats& stats, TraversalScratch& scratch);

}  // namespace stpq

#endif  // STPQ_CORE_COMPUTE_SCORE_H_
