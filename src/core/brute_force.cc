#include "core/brute_force.h"

#include <algorithm>

#include "core/score.h"
#include "util/logging.h"

namespace stpq {

double BruteForceEvaluator::ComponentScore(const Point& p, size_t set_index,
                                           const Query& query) const {
  const FeatureTable& table = *feature_sets_[set_index];
  const KeywordSet& w = query.keywords[set_index];
  double best = 0.0;
  switch (query.variant) {
    case ScoreVariant::kRange: {
      const double r2 = query.radius * query.radius;
      for (const FeatureObject& t : table.All()) {
        if (!TextRelevant(t, w)) continue;
        if (SquaredDistance(p, t.pos) > r2) continue;
        best = std::max(best, PreferenceScore(t, w, query.lambda));
      }
      break;
    }
    case ScoreVariant::kInfluence: {
      for (const FeatureObject& t : table.All()) {
        if (!TextRelevant(t, w)) continue;
        double s = PreferenceScore(t, w, query.lambda) *
                   InfluenceFactor(Distance(p, t.pos), query.radius);
        best = std::max(best, s);
      }
      break;
    }
    case ScoreVariant::kNearestNeighbor: {
      // Nearest relevant feature; among equidistant nearest features the
      // highest preference score wins (see DESIGN.md interpretation notes).
      double best_d2 = std::numeric_limits<double>::infinity();
      for (const FeatureObject& t : table.All()) {
        if (!TextRelevant(t, w)) continue;
        double d2 = SquaredDistance(p, t.pos);
        double s = PreferenceScore(t, w, query.lambda);
        if (d2 < best_d2 || (d2 == best_d2 && s > best)) {
          best_d2 = d2;
          best = s;
        }
      }
      break;
    }
  }
  return best;
}

double BruteForceEvaluator::Tau(const Point& p, const Query& query) const {
  double tau = 0.0;
  for (size_t i = 0; i < feature_sets_.size(); ++i) {
    tau += ComponentScore(p, i, query);
  }
  return tau;
}

std::vector<ResultEntry> BruteForceEvaluator::TopK(const Query& query) const {
  STPQ_CHECK(query.keywords.size() == feature_sets_.size());
  std::vector<ResultEntry> all;
  all.reserve(objects_->size());
  for (const DataObject& p : *objects_) {
    all.push_back(ResultEntry{p.id, Tau(p.pos, query)});
  }
  std::sort(all.begin(), all.end(), [](const ResultEntry& a,
                                       const ResultEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.object < b.object;
  });
  if (all.size() > query.k) all.resize(query.k);
  return all;
}

}  // namespace stpq
