#include "core/stds.h"

#include <algorithm>

#include "core/compute_score.h"
#include "obs/phase.h"
#include "util/logging.h"
#include "util/topk.h"

namespace stpq {

namespace {

/// Scores one object against every feature set with partial-score pruning
/// (Algorithm 1, lines 3-6).  Returns tau(p), or a negative value if the
/// object was pruned.
double ScoreObjectPruned(const std::vector<const FeatureIndex*>& indexes,
                         const Query& query, const Point& pos,
                         double threshold, QueryStats& stats,
                         TraversalScratch& scratch) {
  const size_t c = indexes.size();
  double partial = 0.0;
  for (size_t i = 0; i < c; ++i) {
    // tau-hat(p): known components + 1 for each unknown one.
    double bound = partial + static_cast<double>(c - i);
    if (bound < threshold) return -1.0;
    double tau_i = 0.0;
    switch (query.variant) {
      case ScoreVariant::kRange:
        tau_i = ComputeScoreRange(*indexes[i], pos, query.keywords[i],
                                  query.lambda, query.radius, stats,
                                  scratch);
        break;
      case ScoreVariant::kInfluence:
        tau_i = ComputeScoreInfluence(*indexes[i], pos, query.keywords[i],
                                      query.lambda, query.radius, stats,
                                      scratch);
        break;
      case ScoreVariant::kNearestNeighbor:
        tau_i = ComputeScoreNearestNeighbor(*indexes[i], pos,
                                            query.keywords[i], query.lambda,
                                            stats, scratch);
        break;
    }
    partial += tau_i;
  }
  return partial;
}

}  // namespace

QueryResult Stds::Execute(const Query& query, bool use_batching,
                          TraversalScratch* scratch) const {
  STPQ_CHECK(query.keywords.size() == feature_indexes_.size());
  TraversalScratch local_scratch;
  TraversalScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  QueryResult result;
  QueryStats& stats = result.stats;
  TopK<ObjectId> topk(query.k);
  const size_t c = feature_indexes_.size();
  // The leaf-block scan itself is object retrieval; the component-score
  // lookups inside it carve out their own (child) phase.
  STPQ_TRACE_PHASE(stats, QueryPhase::kObjectRetrieval);

  if (query.variant == ScoreVariant::kRange && use_batching) {
    // Batched STDS: every object-R-tree leaf block is one batch.
    std::vector<BatchObject> batch;
    std::vector<double> partial;
    std::vector<double> set_scores;
    objects_->ForEachLeafBlock([&](std::span<const ObjectId> ids,
                                   const Rect2& mbr) {
      batch.clear();
      for (ObjectId id : ids) {
        batch.push_back(BatchObject{id, objects_->Get(id).pos});
      }
      partial.assign(batch.size(), 0.0);
      std::vector<bool> alive(batch.size(), true);
      std::vector<BatchObject> sub;
      std::vector<uint32_t> sub_index;
      for (size_t i = 0; i < c; ++i) {
        // Prune objects whose upper bound cannot beat the k-th score.
        double remaining = static_cast<double>(c - i);
        double threshold = topk.Threshold();
        sub.clear();
        sub_index.clear();
        Rect2 sub_mbr = Rect2::Empty();
        for (size_t j = 0; j < batch.size(); ++j) {
          if (!alive[j]) continue;
          if (topk.Full() && partial[j] + remaining < threshold) {
            alive[j] = false;
            continue;
          }
          sub.push_back(batch[j]);
          sub_index.push_back(static_cast<uint32_t>(j));
          sub_mbr.EnlargePoint({batch[j].pos.x, batch[j].pos.y});
        }
        if (sub.empty()) break;
        (void)mbr;  // sub_mbr shrinks as objects are pruned
        set_scores.assign(sub.size(), 0.0);
        ComputeScoresRangeBatch(*feature_indexes_[i], sub, sub_mbr,
                                query.keywords[i], query.lambda, query.radius,
                                set_scores, stats, scr);
        for (size_t s = 0; s < sub.size(); ++s) {
          partial[sub_index[s]] += set_scores[s];
        }
      }
      for (size_t j = 0; j < batch.size(); ++j) {
        if (!alive[j]) continue;
        ++stats.objects_scored;
        topk.Push(partial[j], batch[j].id);
      }
    }, &stats);
  } else {
    // Per-object scan (Algorithm 1 verbatim).
    objects_->ForEachLeafBlock([&](std::span<const ObjectId> ids,
                                   const Rect2&) {
      for (ObjectId id : ids) {
        const Point& pos = objects_->Get(id).pos;
        double tau = ScoreObjectPruned(feature_indexes_, query, pos,
                                       topk.Full() ? topk.Threshold() : -1.0,
                                       stats, scr);
        if (tau >= 0.0) {
          ++stats.objects_scored;
          topk.Push(tau, id);
        }
      }
    }, &stats);
  }

  for (auto& scored : topk.TakeSortedDescending()) {
    result.entries.push_back(ResultEntry{scored.item, scored.score});
  }
  return result;
}

}  // namespace stpq
