// Spatio-Textual Preference Search (STPS), Sections 6 and 7.
//
// STPS inverts STDS's strategy: it first retrieves highly ranked valid
// combinations of feature objects (Algorithm 4) and then fetches the data
// objects qualified by each combination.  Objects retrieved for the best
// combination covering them receive exactly tau(p) = s(C), so results are
// produced incrementally in descending score order.
#ifndef STPQ_CORE_STPS_H_
#define STPQ_CORE_STPS_H_

#include <vector>

#include "core/query.h"
#include "core/voronoi_cache.h"
#include "index/feature_index.h"
#include "index/object_index.h"

namespace stpq {

/// How the influence variant drives object retrieval (Section 7.1).
enum class InfluenceMode {
  /// Anchored retrieval (default): every object's score is bounded via its
  /// nearest realizing feature a* by
  ///   tau(p) <= (s(a*) + sum_{j != set(a*)} max_s(F_j)) * 2^(-d(p,a*)/r),
  /// so streaming features ("anchors") in decreasing s(t) and fetching the
  /// objects inside each anchor's shrinking radius covers every candidate
  /// with *exact* scoring and no combination enumeration.  Equivalent
  /// results to Algorithm 5, typically orders of magnitude cheaper for
  /// c >= 3 (see DESIGN.md).
  kAnchored,
  /// The paper's Algorithm 5 verbatim: combinations ordered by s(C) with
  /// per-combination top-k object retrieval.  Exact but combinatorial when
  /// many combinations score above the final threshold.
  kCombinations,
};

/// STPS executor bound to one object index and c feature indexes.
class Stps {
 public:
  /// Pointers are not owned and must outlive the executor.
  Stps(const ObjectIndex* objects,
       std::vector<const FeatureIndex*> feature_indexes)
      : objects_(objects), feature_indexes_(std::move(feature_indexes)) {}

  /// Enables cross-query Voronoi cell reuse for the NN variant (Section
  /// 8.5's precomputation remark).  The cache is not owned.
  void set_voronoi_cache(VoronoiCellCache* cache) { voronoi_cache_ = cache; }

  /// Selects the influence-variant strategy (default: anchored).
  void set_influence_mode(InfluenceMode mode) { influence_mode_ = mode; }

  /// Runs the query under its score variant (Algorithm 3, Algorithm 5, or
  /// the Voronoi-based NN retrieval of Section 7.2).
  QueryResult Execute(
      const Query& query,
      PullingStrategy strategy = PullingStrategy::kPrioritized) const;

 private:
  QueryResult ExecuteRange(const Query& query, PullingStrategy strategy) const;
  QueryResult ExecuteInfluence(const Query& query,
                               PullingStrategy strategy) const;
  QueryResult ExecuteInfluenceAnchored(const Query& query,
                                       PullingStrategy strategy) const;
  QueryResult ExecuteNearestNeighbor(const Query& query,
                                     PullingStrategy strategy) const;

  const ObjectIndex* objects_;
  std::vector<const FeatureIndex*> feature_indexes_;
  VoronoiCellCache* voronoi_cache_ = nullptr;
  InfluenceMode influence_mode_ = InfluenceMode::kAnchored;
};

}  // namespace stpq

#endif  // STPQ_CORE_STPS_H_
