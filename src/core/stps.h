// Spatio-Textual Preference Search (STPS), Sections 6 and 7.
//
// STPS inverts STDS's strategy: it first retrieves highly ranked valid
// combinations of feature objects (Algorithm 4) and then fetches the data
// objects qualified by each combination.  Objects retrieved for the best
// combination covering them receive exactly tau(p) = s(C), so results are
// produced incrementally in descending score order.
#ifndef STPQ_CORE_STPS_H_
#define STPQ_CORE_STPS_H_

#include <vector>

#include "core/query.h"
#include "core/scratch.h"
#include "core/voronoi_cache.h"
#include "index/feature_index.h"
#include "index/object_index.h"
#include "util/attributes.h"

namespace stpq {

/// How the influence variant drives object retrieval (Section 7.1).
enum class InfluenceMode {
  /// Anchored retrieval (default): every object's score is bounded via its
  /// nearest realizing feature a* by
  ///   tau(p) <= (s(a*) + sum_{j != set(a*)} max_s(F_j)) * 2^(-d(p,a*)/r),
  /// so streaming features ("anchors") in decreasing s(t) and fetching the
  /// objects inside each anchor's shrinking radius covers every candidate
  /// with *exact* scoring and no combination enumeration.  Equivalent
  /// results to Algorithm 5, typically orders of magnitude cheaper for
  /// c >= 3 (see DESIGN.md).
  kAnchored,
  /// The paper's Algorithm 5 verbatim: combinations ordered by s(C) with
  /// per-combination top-k object retrieval.  Exact but combinatorial when
  /// many combinations score above the final threshold.
  kCombinations,
};

/// STPS executor bound to one object index and c feature indexes.
///
/// The executor is stateless between queries: it is fully configured at
/// construction, Execute is const, and every piece of per-query state
/// (heaps, combination iterators, stats) lives on the call's stack.  The
/// engine constructs one per Execute call (construction is a handful of
/// pointer copies), which keeps concurrent queries from sharing anything
/// mutable (DESIGN.md §11).
class Stps {
 public:
  /// Pointers are not owned and must outlive the executor.  `voronoi_cache`
  /// (may be null) enables cross-query Voronoi cell reuse for the NN
  /// variant (Section 8.5's precomputation remark); `influence_mode`
  /// selects the influence-variant strategy (default: anchored).
  Stps(const ObjectIndex* objects,
       std::vector<const FeatureIndex*> feature_indexes,
       InfluenceMode influence_mode = InfluenceMode::kAnchored,
       VoronoiCellCache* voronoi_cache = nullptr)
      : objects_(objects),
        feature_indexes_(std::move(feature_indexes)),
        voronoi_cache_(voronoi_cache),
        influence_mode_(influence_mode) {}

  /// Runs the query under its score variant (Algorithm 3, Algorithm 5, or
  /// the Voronoi-based NN retrieval of Section 7.2).  `scratch` (may be
  /// null) provides reusable traversal buffers — the engine passes its
  /// session's scratch; a null falls back to a local.
  STPQ_HOT QueryResult Execute(const Query& query,
                      PullingStrategy strategy = PullingStrategy::kPrioritized,
                      TraversalScratch* scratch = nullptr) const;

 private:
  STPQ_HOT QueryResult ExecuteRange(const Query& query, PullingStrategy strategy,
                           TraversalScratch& scratch) const;
  STPQ_HOT QueryResult ExecuteInfluence(const Query& query, PullingStrategy strategy,
                               TraversalScratch& scratch) const;
  STPQ_HOT QueryResult ExecuteInfluenceAnchored(const Query& query,
                                       PullingStrategy strategy,
                                       TraversalScratch& scratch) const;
  STPQ_HOT QueryResult ExecuteNearestNeighbor(const Query& query,
                                     PullingStrategy strategy,
                                     TraversalScratch& scratch) const;

  const ObjectIndex* objects_;
  std::vector<const FeatureIndex*> feature_indexes_;
  VoronoiCellCache* voronoi_cache_ = nullptr;
  InfluenceMode influence_mode_ = InfluenceMode::kAnchored;
};

}  // namespace stpq

#endif  // STPQ_CORE_STPS_H_
