// STPS for the nearest-neighbor score variant (Section 7.2).
//
// For a combination C, the qualifying objects are those whose nearest
// relevant feature of every F_i is C's member t_i — the intersection of the
// members' Voronoi cells.  Cells are computed incrementally and cached per
// feature; combinations whose intersection turns empty are discarded early.
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/combination.h"
#include "core/stps.h"
#include "core/voronoi.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace stpq {

namespace {

/// Appends up to `remaining` unclaimed objects inside `region` to `result`
/// with score `score`.
void CollectObjectsInRegion(const ObjectIndex& objects,
                            const ConvexPolygon& region, double score,
                            size_t remaining, std::vector<bool>* claimed,
                            std::vector<ResultEntry>* result,
                            QueryStats& stats, TraversalScratch& scratch) {
  if (objects.tree().root_id() == kInvalidNodeId || remaining == 0) return;
  STPQ_TRACE_PHASE(stats, QueryPhase::kObjectRetrieval);
  STPQ_TRACE_SPAN(TraceEventType::kRetrievalBatch,
                  static_cast<uint32_t>(remaining), 0);
  const Rect2 bbox = region.BoundingBox();
  size_t added = 0;
  std::vector<NodeId>& stack = scratch.stack;
  stack.assign(1, objects.tree().root_id());
  while (!stack.empty() && added < remaining) {
    NodeId nid = stack.back();
    stack.pop_back();
    const RTree<2>::Node& node = objects.tree().ReadNode(nid);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const auto& e : node.entries) {
      if (added >= remaining) break;
      if (!bbox.Intersects(e.rect)) {
        ++pruned;
        continue;
      }
      if (node.IsLeaf()) {
        if ((*claimed)[e.id]) {
          ++pruned;
          continue;
        }
        Point p{e.rect.lo[0], e.rect.lo[1]};
        if (!region.Contains(p)) {
          ++pruned;
          continue;
        }
        (*claimed)[e.id] = true;
        ++stats.objects_scored;
        result->push_back(ResultEntry{e.id, score});
        ++added;
        ++descended;
      } else {
        stack.push_back(e.id);
        ++descended;
      }
    }
    RecordNodeVisit(stats, kTraceObjectTree, node.level, nid, pruned,
                    descended);
  }
}

}  // namespace

QueryResult Stps::ExecuteNearestNeighbor(const Query& query,
                                         PullingStrategy strategy,
                                         TraversalScratch& scratch) const {
  QueryResult result;
  CombinationIterator it(feature_indexes_, query,
                         /*enforce_range_constraint=*/false, strategy,
                         &result.stats);
  const size_t c = feature_indexes_.size();

  // A virtual member at position i matches an object only when F_i has no
  // relevant feature at all (otherwise every object has a real nearest
  // neighbor in F_i).  Probe each set once.
  std::vector<bool> set_has_relevant(c, false);
  for (size_t i = 0; i < c; ++i) {
    SortedFeatureStream probe(feature_indexes_[i], &query.keywords[i],
                              query.lambda, &result.stats);
    std::optional<SortedFeatureStream::Item> first = probe.Next();
    set_has_relevant[i] =
        first.has_value() && first->id != kVirtualFeature;
  }

  std::vector<bool> claimed(objects_->size(), false);
  // Voronoi cells cached per (feature set, feature): combinations share
  // members.  With an engine-level cache attached, cells are additionally
  // reused across queries with the same keyword sets (Section 8.5's
  // precomputation remark).
  std::unordered_map<uint64_t, ConvexPolygon> cell_cache;
  const Rect2& domain = objects_->domain();
  auto cell_for = [&](size_t i, ObjectId member) -> const ConvexPolygon& {
    uint64_t key = (static_cast<uint64_t>(i) << 32) | member;
    auto local = cell_cache.find(key);
    if (local != cell_cache.end()) return local->second;
    if (voronoi_cache_ != nullptr) {
      std::optional<ConvexPolygon> shared =
          voronoi_cache_->Find(i, member, query.keywords[i]);
      if (shared.has_value()) {
        ++result.stats.voronoi_cache_hits;
        return cell_cache.emplace(key, *std::move(shared)).first->second;
      }
    }
    ConvexPolygon cell =
        ComputeVoronoiCell(*feature_indexes_[i], member, query.keywords[i],
                           query.lambda, domain, result.stats, scratch);
    if (voronoi_cache_ != nullptr) {
      voronoi_cache_->Put(i, member, query.keywords[i], cell);
    }
    return cell_cache.emplace(key, std::move(cell)).first->second;
  };

  while (result.entries.size() < query.k) {
    std::optional<Combination> combo = it.Next();
    if (!combo.has_value()) break;
    ConvexPolygon region = ConvexPolygon::FromRect(domain);
    bool feasible = true;
    for (size_t i = 0; i < c && feasible; ++i) {
      ObjectId member = combo->members[i];
      if (member == kVirtualFeature) {
        // tau_i(p) = 0 is only possible when F_i has nothing relevant.
        if (set_has_relevant[i]) feasible = false;
        continue;
      }
      IntersectConvex(&region, cell_for(i, member));
      if (region.IsEmpty()) feasible = false;
    }
    if (!feasible || region.IsEmpty()) continue;
    CollectObjectsInRegion(*objects_, region, combo->score,
                           query.k - result.entries.size(), &claimed,
                           &result.entries, result.stats, scratch);
  }
  return result;
}

}  // namespace stpq
