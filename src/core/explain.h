// Result explanation: which feature of each set gives an object its score.
//
// tau(p) = sum_i tau_i(p); each tau_i is realized by one feature (or by
// none).  Explain() re-derives the realizing features through the indexes,
// so UIs can answer "why is this hotel first?" with "because of Ontario's
// Pizza at distance 2.2 and Royal Coffe Shop at distance 1.8".
#ifndef STPQ_CORE_EXPLAIN_H_
#define STPQ_CORE_EXPLAIN_H_

#include <vector>

#include "core/compute_score.h"
#include "core/engine.h"
#include "core/query.h"

namespace stpq {

/// One feature set's contribution to tau(p).
struct Contribution {
  size_t feature_set = 0;     ///< index i of F_i
  bool has_feature = false;   ///< false when tau_i(p) = 0 with no feature
  ObjectId feature = 0;       ///< realizing feature id (valid if has_feature)
  double score = 0.0;         ///< tau_i(p)
  double distance = 0.0;      ///< dist(p, feature)
};

/// A fully explained score.
struct Explanation {
  ObjectId object = 0;
  double total = 0.0;  ///< tau(p) = sum of contribution scores
  std::vector<Contribution> contributions;  ///< one per feature set
  /// Cost counters of the explaining traversals themselves, including the
  /// per-level traversal profile (which nodes were visited, pruned,
  /// descended while re-deriving each tau_i).
  QueryStats stats;
};

/// Explains tau(p) for `object` under `query` using `engine`'s indexes.
/// The engine's buffer pools are charged as for a normal query.
Explanation ExplainScore(const Engine* engine, const Query& query, ObjectId object);

}  // namespace stpq

#endif  // STPQ_CORE_EXPLAIN_H_
