#include "core/engine.h"

#include <string>
#include <utility>

#include "core/exec_session.h"
#include "core/stds.h"
#include "core/stps.h"
#include "io/index_file.h"
#include "obs/query_metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace stpq {

namespace {

/// Smallest page that holds the 16-byte node header plus at least one
/// 2-D entry (rect + id); FanOutForPage clamps fan-out to >= 4 anyway,
/// but a page below this is a configuration error, not a layout choice.
constexpr uint32_t kMinPageSizeBytes = 64;

}  // namespace

Status Engine::ValidateOptions(const EngineOptions& options) {
  if (options.storage.page_size < kMinPageSizeBytes) {
    return Status::InvalidArgument(
        "storage.page_size must be >= " + std::to_string(kMinPageSizeBytes) +
        ", got " + std::to_string(options.storage.page_size));
  }
  if (options.storage.backend == StorageBackend::kFile &&
      options.storage.path.empty()) {
    return Status::InvalidArgument(
        "storage.backend=file requires storage.path (use Engine::Open)");
  }
  if (options.storage.backend == StorageBackend::kSimulated &&
      !options.storage.path.empty()) {
    return Status::InvalidArgument(
        "storage.path is set but storage.backend is simulated; use "
        "Engine::Open to attach an index file");
  }
  if (!(options.fill > 0.0 && options.fill <= 1.0)) {
    return Status::InvalidArgument("fill must be in (0, 1], got " +
                                   std::to_string(options.fill));
  }
  if (options.signature_hashes == 0) {
    return Status::InvalidArgument("signature_hashes must be >= 1");
  }
  if (options.signature_bits != 0 &&
      options.signature_bits < options.signature_hashes) {
    return Status::InvalidArgument(
        "signature_bits (" + std::to_string(options.signature_bits) +
        ") must be 0 (auto) or >= signature_hashes (" +
        std::to_string(options.signature_hashes) + ")");
  }
  return Status::OK();
}

Result<Engine> Engine::Build(std::vector<DataObject> objects,
                             std::vector<FeatureTable> feature_tables,
                             EngineOptions options) {
  if (options.storage.backend != StorageBackend::kSimulated) {
    return Status::InvalidArgument(
        "Engine::Build constructs in memory (storage.backend=simulated); "
        "use Engine::Open for the file backend");
  }
  Status st = ValidateOptions(options);
  if (!st.ok()) return st;
  return Engine(options, std::move(objects), std::move(feature_tables));
}

Result<Engine> Engine::Create(std::vector<DataObject> objects,
                              std::vector<FeatureTable> feature_tables,
                              EngineOptions options) {
  return Build(std::move(objects), std::move(feature_tables),
               std::move(options));
}

Engine::Engine(EngineOptions options, std::vector<DataObject> objects,
               std::vector<FeatureTable> feature_tables)
    : options_(std::move(options)),
      objects_(std::make_unique<std::vector<DataObject>>(std::move(objects))),
      feature_tables_(std::make_unique<std::vector<FeatureTable>>(
          std::move(feature_tables))) {
  for (size_t i = 0; i < objects_->size(); ++i) {
    (*objects_)[i].id = static_cast<ObjectId>(i);
  }
  page_store_ = std::make_unique<SimulatedPageStore>();
  object_pool_ = std::make_unique<BufferPool>(options_.storage.pool_capacity,
                                              page_store_.get());
  feature_pool_ = std::make_unique<BufferPool>(options_.storage.pool_capacity,
                                               page_store_.get());

  ObjectIndexOptions obj_opts;
  obj_opts.page_size_bytes = options_.storage.page_size;
  obj_opts.buffer_pool = object_pool_.get();
  obj_opts.fill = options_.fill;
  object_index_ = std::make_unique<ObjectIndex>(objects_.get(), obj_opts);

  // Feature indexes share one pool; page_base keeps their page ids apart.
  for (size_t i = 0; i < feature_tables_->size(); ++i) {
    FeatureIndexOptions fopts;
    fopts.page_size_bytes = options_.storage.page_size;
    fopts.buffer_pool = feature_pool_.get();
    fopts.page_base = kIndexPageStride * (i + 1);
    fopts.bulk_load = options_.bulk_load;
    fopts.fill = options_.fill;
    fopts.signature_bits = options_.signature_bits;
    fopts.signature_hashes = options_.signature_hashes;
    fopts.set_ordinal = static_cast<uint32_t>(i);
    switch (options_.index_kind) {
      case FeatureIndexKind::kSrt:
        feature_indexes_.push_back(
            std::make_unique<SrtIndex>(&(*feature_tables_)[i], fopts));
        break;
      case FeatureIndexKind::kIr2:
        feature_indexes_.push_back(
            std::make_unique<Ir2Tree>(&(*feature_tables_)[i], fopts));
        break;
    }
    index_ptrs_.push_back(feature_indexes_.back().get());
  }

  if (options_.reuse_voronoi_cells) {
    voronoi_cache_ = std::make_unique<VoronoiCellCache>();
  }

  // Construction touched the pools; queries start from a clean slate.
  object_pool_->Clear();
  object_pool_->ResetStats();
  feature_pool_->Clear();
  feature_pool_->ResetStats();
}

Result<Engine> Engine::Open(const std::string& path, EngineOptions options) {
  Result<LoadedIndex> loaded_r = LoadIndexFile(path);
  if (!loaded_r.ok()) return loaded_r.status();
  LoadedIndex loaded = loaded_r.TakeValue();

  // The file's build parameters win: fan-outs, signature widths and page
  // layout must match the persisted node records exactly.
  options.index_kind = loaded.params.index_kind;
  options.bulk_load = loaded.params.bulk_load;
  options.fill = loaded.params.fill;
  options.signature_bits = loaded.params.signature_bits;
  options.signature_hashes = loaded.params.signature_hashes;
  options.storage.backend = StorageBackend::kFile;
  options.storage.path = path;
  options.storage.page_size = loaded.params.page_size_bytes;
  Status st = ValidateOptions(options);
  if (!st.ok()) return st;

  Result<std::unique_ptr<FilePageStore>> store_r =
      FilePageStore::Open(path, std::move(loaded.extents));
  if (!store_r.ok()) return store_r.status();
  return Engine(std::move(options), std::move(loaded), store_r.TakeValue());
}

Engine::Engine(EngineOptions options, LoadedIndex loaded,
               std::unique_ptr<PageStore> store)
    : options_(std::move(options)),
      objects_(std::make_unique<std::vector<DataObject>>(
          std::move(loaded.objects))),
      feature_tables_(std::make_unique<std::vector<FeatureTable>>(
          std::move(loaded.feature_tables))) {
  page_store_ = std::move(store);
  object_pool_ = std::make_unique<BufferPool>(options_.storage.pool_capacity,
                                              page_store_.get());
  feature_pool_ = std::make_unique<BufferPool>(options_.storage.pool_capacity,
                                               page_store_.get());

  ObjectIndexOptions obj_opts;
  obj_opts.page_size_bytes = options_.storage.page_size;
  obj_opts.buffer_pool = object_pool_.get();
  obj_opts.fill = options_.fill;
  object_index_ = std::make_unique<ObjectIndex>(
      objects_.get(), obj_opts, std::move(loaded.object_tree));

  for (size_t i = 0; i < feature_tables_->size(); ++i) {
    FeatureIndexOptions fopts;
    fopts.page_size_bytes = options_.storage.page_size;
    fopts.buffer_pool = feature_pool_.get();
    fopts.page_base = kIndexPageStride * (i + 1);
    fopts.bulk_load = options_.bulk_load;
    fopts.fill = options_.fill;
    fopts.signature_bits = options_.signature_bits;
    fopts.signature_hashes = options_.signature_hashes;
    fopts.set_ordinal = static_cast<uint32_t>(i);
    switch (options_.index_kind) {
      case FeatureIndexKind::kSrt:
        feature_indexes_.push_back(std::make_unique<SrtIndex>(
            &(*feature_tables_)[i], fopts, std::move(loaded.srt_trees[i])));
        break;
      case FeatureIndexKind::kIr2:
        feature_indexes_.push_back(std::make_unique<Ir2Tree>(
            &(*feature_tables_)[i], fopts, std::move(loaded.ir2_trees[i])));
        break;
    }
    index_ptrs_.push_back(feature_indexes_.back().get());
  }

  if (options_.reuse_voronoi_cells) {
    voronoi_cache_ = std::make_unique<VoronoiCellCache>();
  }
  // Restoration reads no pages, but start from an explicit clean slate
  // like the build path does.
  object_pool_->Clear();
  object_pool_->ResetStats();
  feature_pool_->Clear();
  feature_pool_->ResetStats();
}

Status Engine::Save(const std::string& path,
                    const std::vector<Vocabulary>& vocabularies) const {
  const size_t num_tables = feature_tables_->size();
  if (!vocabularies.empty() && vocabularies.size() != num_tables) {
    return Status::InvalidArgument(
        "Save needs one vocabulary per feature table (" +
        std::to_string(num_tables) + "), got " +
        std::to_string(vocabularies.size()));
  }
  std::vector<Vocabulary> blank;
  if (vocabularies.empty()) blank.resize(num_tables);

  IndexFileWriteRequest request;
  request.params.index_kind = options_.index_kind;
  request.params.bulk_load = options_.bulk_load;
  request.params.page_size_bytes = options_.storage.page_size;
  request.params.fill = options_.fill;
  request.params.signature_bits = options_.signature_bits;
  request.params.signature_hashes = options_.signature_hashes;
  request.objects = objects_.get();
  request.feature_tables = feature_tables_.get();
  request.vocabularies = vocabularies.empty() ? &blank : &vocabularies;
  request.object_index = object_index_.get();
  request.feature_indexes = index_ptrs_;
  return WriteIndexFile(path, request);
}

Status Engine::ValidateQuery(const Query& query) const {
  if (query.keywords.size() != num_feature_sets()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.keywords.size()) +
        " keyword sets but the engine indexes " +
        std::to_string(num_feature_sets()) + " feature sets");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!(query.lambda >= 0.0 && query.lambda <= 1.0)) {
    return Status::InvalidArgument("lambda must be in [0, 1], got " +
                                   std::to_string(query.lambda));
  }
  if (query.variant != ScoreVariant::kNearestNeighbor &&
      !(query.radius > 0.0)) {
    return Status::InvalidArgument("radius must be > 0, got " +
                                   std::to_string(query.radius));
  }
  return Status::OK();
}

Result<QueryResult> Engine::Execute(const Query& query,
                                    Algorithm algorithm) const {
  return Execute(query, ExecuteOptions{algorithm, nullptr});
}

Result<QueryResult> Engine::Execute(const Query& query,
                                    const ExecuteOptions& options) const {
  Status st = ValidateQuery(query);
  if (!st.ok()) {
    QueryMetrics::Global().RecordRejected();
    return st;
  }

  // All per-query mutable state lives in the session (I/O accounting) and
  // in the executor's stack frames; the engine itself is only read.
  ExecutionSession session(object_pool_.get(), feature_pool_.get(),
                           options_.cold_cache_per_query);
  ExecutionSession::Scope scope(&session);
  TraceQueryScope trace_scope;
  Timer timer;
  QueryResult result;
  if (options.algorithm == Algorithm::kStds) {
    Stds stds(object_index_.get(), index_ptrs_);
    result = stds.Execute(query, options_.stds_batching, &session.scratch());
  } else {
    Stps stps(object_index_.get(), index_ptrs_, options_.influence_mode,
              voronoi_cache_.get());
    result = stps.Execute(query, options_.pulling, &session.scratch());
  }
  result.stats.cpu_ms = timer.ElapsedMillis();
  session.ExportIoCounters(result.stats);
  // Close the query span before the slow log drains this thread's ring so
  // the end event is part of any captured record.
  trace_scope.End();
  if (options.slow_log != nullptr) {
    options.slow_log->Offer(trace_scope.id(), result.stats.cpu_ms,
                            result.stats);
  }
  if (options.stats_sink != nullptr) {
    options.stats_sink->Record(result.stats);
  }
  // Feed the process-wide registry once per completed query: a fixed set
  // of relaxed atomic adds, never inside the search loops.
  QueryMetrics& metrics = QueryMetrics::Global();
  metrics.RecordQuery(result.stats);
  metrics.object_pool_resident_pages.Set(object_pool_->resident_pages());
  metrics.feature_pool_resident_pages.Set(feature_pool_->resident_pages());
  if (voronoi_cache_ != nullptr) {
    metrics.voronoi_cache_cells.Set(voronoi_cache_->size());
  }
  return result;
}

Result<std::unique_ptr<StpsCursor>> Engine::OpenCursor(
    const Query& query) const {
  // The cursor ignores k, so a default-constructed k of 0 would be fine —
  // but rejecting it keeps one validation story for both entry points.
  Status st = ValidateQuery(query);
  if (!st.ok()) return st;
  if (query.variant != ScoreVariant::kRange) {
    return Status::InvalidArgument(
        "cursors support the range score variant only");
  }
  auto session = std::make_unique<ExecutionSession>(
      object_pool_.get(), feature_pool_.get(), options_.cold_cache_per_query);
  return std::make_unique<StpsCursor>(object_index_.get(), index_ptrs_, query,
                                      options_.pulling, std::move(session));
}

}  // namespace stpq
