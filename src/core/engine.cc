#include "core/engine.h"

#include "util/logging.h"
#include "util/timer.h"

namespace stpq {

Engine::Engine(std::vector<DataObject> objects,
               std::vector<FeatureTable> feature_tables,
               EngineOptions options)
    : options_(options),
      objects_(std::move(objects)),
      feature_tables_(std::move(feature_tables)) {
  for (size_t i = 0; i < objects_.size(); ++i) {
    objects_[i].id = static_cast<ObjectId>(i);
  }
  object_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  feature_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);

  ObjectIndexOptions obj_opts;
  obj_opts.page_size_bytes = options_.page_size_bytes;
  obj_opts.buffer_pool = object_pool_.get();
  obj_opts.fill = options_.fill;
  object_index_ = std::make_unique<ObjectIndex>(&objects_, obj_opts);

  // Feature indexes share one pool; page_base keeps their page ids apart.
  constexpr PageId kIndexStride = PageId{1} << 32;
  std::vector<const FeatureIndex*> index_ptrs;
  for (size_t i = 0; i < feature_tables_.size(); ++i) {
    FeatureIndexOptions fopts;
    fopts.page_size_bytes = options_.page_size_bytes;
    fopts.buffer_pool = feature_pool_.get();
    fopts.page_base = kIndexStride * (i + 1);
    fopts.bulk_load = options_.bulk_load;
    fopts.fill = options_.fill;
    fopts.signature_bits = options_.signature_bits;
    fopts.signature_hashes = options_.signature_hashes;
    switch (options_.index_kind) {
      case FeatureIndexKind::kSrt:
        feature_indexes_.push_back(
            std::make_unique<SrtIndex>(&feature_tables_[i], fopts));
        break;
      case FeatureIndexKind::kIr2:
        feature_indexes_.push_back(
            std::make_unique<Ir2Tree>(&feature_tables_[i], fopts));
        break;
    }
    index_ptrs.push_back(feature_indexes_.back().get());
  }

  stds_ = std::make_unique<Stds>(object_index_.get(), index_ptrs);
  stps_ = std::make_unique<Stps>(object_index_.get(), index_ptrs);
  stps_->set_influence_mode(options_.influence_mode);
  if (options_.reuse_voronoi_cells) {
    voronoi_cache_ = std::make_unique<VoronoiCellCache>();
    stps_->set_voronoi_cache(voronoi_cache_.get());
  }

  // Construction touched the pools; queries start from a clean slate.
  object_pool_->Clear();
  object_pool_->ResetStats();
  feature_pool_->Clear();
  feature_pool_->ResetStats();
}

std::unique_ptr<StpsCursor> Engine::OpenCursor(const Query& query) {
  STPQ_CHECK(query.keywords.size() == feature_indexes_.size());
  std::vector<const FeatureIndex*> ptrs;
  for (const auto& idx : feature_indexes_) ptrs.push_back(idx.get());
  return std::make_unique<StpsCursor>(object_index_.get(), std::move(ptrs),
                                      query, options_.pulling);
}

QueryResult Engine::Execute(const Query& query, Algorithm algorithm) {
  STPQ_CHECK(query.keywords.size() == feature_indexes_.size());
  STPQ_DCHECK(query.lambda >= 0.0 && query.lambda <= 1.0);
  STPQ_DCHECK(query.variant == ScoreVariant::kNearestNeighbor ||
              query.radius > 0.0);
  if (options_.cold_cache_per_query) {
    object_pool_->Clear();
    feature_pool_->Clear();
  }
  const BufferPoolStats obj_before = object_pool_->stats();
  const BufferPoolStats feat_before = feature_pool_->stats();
  Timer timer;
  QueryResult result = algorithm == Algorithm::kStds
                           ? stds_->Execute(query, options_.stds_batching)
                           : stps_->Execute(query, options_.pulling);
  result.stats.cpu_ms = timer.ElapsedMillis();
  const BufferPoolStats obj_delta = object_pool_->stats() - obj_before;
  const BufferPoolStats feat_delta = feature_pool_->stats() - feat_before;
  result.stats.object_index_reads = obj_delta.reads;
  result.stats.feature_index_reads = feat_delta.reads;
  result.stats.buffer_hits = obj_delta.hits + feat_delta.hits;
  return result;
}

}  // namespace stpq
