#include "core/engine.h"

#include <string>
#include <utility>

#include "core/exec_session.h"
#include "core/stds.h"
#include "core/stps.h"
#include "obs/query_metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace stpq {

namespace {

/// Smallest page that holds the 16-byte node header plus at least one
/// 2-D entry (rect + id); FanOutForPage clamps fan-out to >= 4 anyway,
/// but a page below this is a configuration error, not a layout choice.
constexpr uint32_t kMinPageSizeBytes = 64;

}  // namespace

Status Engine::ValidateOptions(const EngineOptions& options) {
  if (options.page_size_bytes < kMinPageSizeBytes) {
    return Status::InvalidArgument(
        "page_size_bytes must be >= " + std::to_string(kMinPageSizeBytes) +
        ", got " + std::to_string(options.page_size_bytes));
  }
  if (!(options.fill > 0.0 && options.fill <= 1.0)) {
    return Status::InvalidArgument("fill must be in (0, 1], got " +
                                   std::to_string(options.fill));
  }
  if (options.signature_hashes == 0) {
    return Status::InvalidArgument("signature_hashes must be >= 1");
  }
  if (options.signature_bits != 0 &&
      options.signature_bits < options.signature_hashes) {
    return Status::InvalidArgument(
        "signature_bits (" + std::to_string(options.signature_bits) +
        ") must be 0 (auto) or >= signature_hashes (" +
        std::to_string(options.signature_hashes) + ")");
  }
  return Status::OK();
}

Result<Engine> Engine::Create(std::vector<DataObject> objects,
                              std::vector<FeatureTable> feature_tables,
                              EngineOptions options) {
  Status st = ValidateOptions(options);
  if (!st.ok()) return st;
  return Engine(options, std::move(objects), std::move(feature_tables));
}

Engine::Engine(std::vector<DataObject> objects,
               std::vector<FeatureTable> feature_tables,
               EngineOptions options)
    : Engine(options, std::move(objects), std::move(feature_tables)) {
  // Validation ran inside the delegated constructor via STPQ_CHECK.
}

Engine::Engine(EngineOptions options, std::vector<DataObject> objects,
               std::vector<FeatureTable> feature_tables)
    : options_(options),
      objects_(std::make_unique<std::vector<DataObject>>(std::move(objects))),
      feature_tables_(std::make_unique<std::vector<FeatureTable>>(
          std::move(feature_tables))) {
  {
    Status st = ValidateOptions(options_);
    if (!st.ok()) {
      std::fprintf(stderr, "Engine: invalid EngineOptions: %s\n",
                   st.ToString().c_str());
    }
    STPQ_CHECK(st.ok());
  }
  for (size_t i = 0; i < objects_->size(); ++i) {
    (*objects_)[i].id = static_cast<ObjectId>(i);
  }
  object_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  feature_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);

  ObjectIndexOptions obj_opts;
  obj_opts.page_size_bytes = options_.page_size_bytes;
  obj_opts.buffer_pool = object_pool_.get();
  obj_opts.fill = options_.fill;
  object_index_ = std::make_unique<ObjectIndex>(objects_.get(), obj_opts);

  // Feature indexes share one pool; page_base keeps their page ids apart.
  constexpr PageId kIndexStride = PageId{1} << 32;
  for (size_t i = 0; i < feature_tables_->size(); ++i) {
    FeatureIndexOptions fopts;
    fopts.page_size_bytes = options_.page_size_bytes;
    fopts.buffer_pool = feature_pool_.get();
    fopts.page_base = kIndexStride * (i + 1);
    fopts.bulk_load = options_.bulk_load;
    fopts.fill = options_.fill;
    fopts.signature_bits = options_.signature_bits;
    fopts.signature_hashes = options_.signature_hashes;
    fopts.set_ordinal = static_cast<uint32_t>(i);
    switch (options_.index_kind) {
      case FeatureIndexKind::kSrt:
        feature_indexes_.push_back(
            std::make_unique<SrtIndex>(&(*feature_tables_)[i], fopts));
        break;
      case FeatureIndexKind::kIr2:
        feature_indexes_.push_back(
            std::make_unique<Ir2Tree>(&(*feature_tables_)[i], fopts));
        break;
    }
    index_ptrs_.push_back(feature_indexes_.back().get());
  }

  if (options_.reuse_voronoi_cells) {
    voronoi_cache_ = std::make_unique<VoronoiCellCache>();
  }

  // Construction touched the pools; queries start from a clean slate.
  object_pool_->Clear();
  object_pool_->ResetStats();
  feature_pool_->Clear();
  feature_pool_->ResetStats();
}

Status Engine::ValidateQuery(const Query& query) const {
  if (query.keywords.size() != num_feature_sets()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.keywords.size()) +
        " keyword sets but the engine indexes " +
        std::to_string(num_feature_sets()) + " feature sets");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!(query.lambda >= 0.0 && query.lambda <= 1.0)) {
    return Status::InvalidArgument("lambda must be in [0, 1], got " +
                                   std::to_string(query.lambda));
  }
  if (query.variant != ScoreVariant::kNearestNeighbor &&
      !(query.radius > 0.0)) {
    return Status::InvalidArgument("radius must be > 0, got " +
                                   std::to_string(query.radius));
  }
  return Status::OK();
}

Result<QueryResult> Engine::Execute(const Query& query,
                                    Algorithm algorithm) const {
  return Execute(query, ExecuteOptions{algorithm, nullptr});
}

Result<QueryResult> Engine::Execute(const Query& query,
                                    const ExecuteOptions& options) const {
  Status st = ValidateQuery(query);
  if (!st.ok()) {
    QueryMetrics::Global().RecordRejected();
    return st;
  }

  // All per-query mutable state lives in the session (I/O accounting) and
  // in the executor's stack frames; the engine itself is only read.
  ExecutionSession session(object_pool_.get(), feature_pool_.get(),
                           options_.cold_cache_per_query);
  ExecutionSession::Scope scope(&session);
  TraceQueryScope trace_scope;
  Timer timer;
  QueryResult result;
  if (options.algorithm == Algorithm::kStds) {
    Stds stds(object_index_.get(), index_ptrs_);
    result = stds.Execute(query, options_.stds_batching, &session.scratch());
  } else {
    Stps stps(object_index_.get(), index_ptrs_, options_.influence_mode,
              voronoi_cache_.get());
    result = stps.Execute(query, options_.pulling, &session.scratch());
  }
  result.stats.cpu_ms = timer.ElapsedMillis();
  session.ExportIoCounters(result.stats);
  // Close the query span before the slow log drains this thread's ring so
  // the end event is part of any captured record.
  trace_scope.End();
  if (options.slow_log != nullptr) {
    options.slow_log->Offer(trace_scope.id(), result.stats.cpu_ms,
                            result.stats);
  }
  if (options.stats_sink != nullptr) {
    options.stats_sink->Record(result.stats);
  }
  // Feed the process-wide registry once per completed query: a fixed set
  // of relaxed atomic adds, never inside the search loops.
  QueryMetrics& metrics = QueryMetrics::Global();
  metrics.RecordQuery(result.stats);
  metrics.object_pool_resident_pages.Set(object_pool_->resident_pages());
  metrics.feature_pool_resident_pages.Set(feature_pool_->resident_pages());
  if (voronoi_cache_ != nullptr) {
    metrics.voronoi_cache_cells.Set(voronoi_cache_->size());
  }
  return result;
}

Result<std::unique_ptr<StpsCursor>> Engine::OpenCursor(
    const Query& query) const {
  // The cursor ignores k, so a default-constructed k of 0 would be fine —
  // but rejecting it keeps one validation story for both entry points.
  Status st = ValidateQuery(query);
  if (!st.ok()) return st;
  if (query.variant != ScoreVariant::kRange) {
    return Status::InvalidArgument(
        "cursors support the range score variant only");
  }
  auto session = std::make_unique<ExecutionSession>(
      object_pool_.get(), feature_pool_.get(), options_.cold_cache_per_query);
  return std::make_unique<StpsCursor>(object_index_.get(), index_ptrs_, query,
                                      options_.pulling, std::move(session));
}

}  // namespace stpq
