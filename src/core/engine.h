// Engine: the library's main entry point.
//
// Owns the data objects, the feature tables, their indexes and the
// simulated-disk buffer pools, and executes top-k spatio-textual preference
// queries with either algorithm.  See examples/quickstart.cc for usage.
#ifndef STPQ_CORE_ENGINE_H_
#define STPQ_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/cursor.h"
#include "core/query.h"
#include "core/stds.h"
#include "core/stps.h"
#include "core/voronoi_cache.h"
#include "index/feature_index.h"
#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "storage/buffer_pool.h"

namespace stpq {

/// Query processing algorithms (Sections 5 and 6).
enum class Algorithm {
  kStds,  ///< Spatio-Textual Data Scan (baseline)
  kStps,  ///< Spatio-Textual Preference Search
};

/// Engine construction knobs.
struct EngineOptions {
  /// Which feature index to build (the benchmark axis SRT vs IR2).
  FeatureIndexKind index_kind = FeatureIndexKind::kSrt;
  /// Bulk-load ordering for the feature indexes.
  BulkLoadKind bulk_load = BulkLoadKind::kHilbert;
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  /// Buffer pool capacity in pages per pool (object pool + shared feature
  /// pool); 0 = unbounded.
  uint64_t buffer_pool_pages = 0;
  /// Clear the pools before each query, so reported I/O is the number of
  /// distinct pages a query touches (deterministic and machine-independent).
  bool cold_cache_per_query = true;
  /// Target node occupancy for bulk loading.
  double fill = 1.0;
  /// IR2-tree signature parameters (see FeatureIndexOptions).
  uint32_t signature_bits = 0;
  uint32_t signature_hashes = 3;
  /// STPS feature-pulling strategy.
  PullingStrategy pulling = PullingStrategy::kPrioritized;
  /// STDS batched score computation (Section 5 improvement).
  bool stds_batching = true;
  /// Reuse Voronoi cells across NN-variant queries with identical keyword
  /// sets (Section 8.5's precomputation remark).
  bool reuse_voronoi_cells = false;
  /// Influence-variant strategy: anchored retrieval (default) or the
  /// paper's Algorithm 5 (see InfluenceMode).
  InfluenceMode influence_mode = InfluenceMode::kAnchored;
};

/// A fully indexed dataset ready to answer STPQ queries.
class Engine {
 public:
  /// Builds the object index and one feature index per table.
  Engine(std::vector<DataObject> objects,
         std::vector<FeatureTable> feature_tables, EngineOptions options = {});

  /// Executes `query` with the given algorithm.  The result carries the
  /// entries sorted by descending tau(p) and the cost counters (CPU time,
  /// simulated page reads per index family).
  QueryResult Execute(const Query& query, Algorithm algorithm);

  QueryResult ExecuteStds(const Query& query) {
    return Execute(query, Algorithm::kStds);
  }
  QueryResult ExecuteStps(const Query& query) {
    return Execute(query, Algorithm::kStps);
  }

  /// Opens an incremental cursor over a range-score query (k is ignored;
  /// results stream in non-increasing tau(p) until the caller stops).
  /// The engine must outlive the cursor.
  std::unique_ptr<StpsCursor> OpenCursor(const Query& query);

  /// The shared Voronoi cell cache (nullptr unless reuse_voronoi_cells).
  VoronoiCellCache* voronoi_cache() { return voronoi_cache_.get(); }

  size_t num_feature_sets() const { return feature_indexes_.size(); }
  const std::vector<DataObject>& objects() const { return objects_; }
  const FeatureTable& feature_table(size_t i) const {
    return feature_tables_[i];
  }
  const FeatureIndex& feature_index(size_t i) const {
    return *feature_indexes_[i];
  }
  const ObjectIndex& object_index() const { return *object_index_; }
  const EngineOptions& options() const { return options_; }

  /// Name of the feature index in use ("SRT" or "IR2").
  const char* IndexName() const {
    return feature_indexes_.empty() ? "none" : feature_indexes_[0]->Name();
  }

 private:
  EngineOptions options_;
  std::vector<DataObject> objects_;
  std::vector<FeatureTable> feature_tables_;
  std::unique_ptr<BufferPool> object_pool_;
  std::unique_ptr<BufferPool> feature_pool_;
  std::unique_ptr<ObjectIndex> object_index_;
  std::vector<std::unique_ptr<FeatureIndex>> feature_indexes_;
  std::unique_ptr<Stds> stds_;
  std::unique_ptr<Stps> stps_;
  std::unique_ptr<VoronoiCellCache> voronoi_cache_;
};

}  // namespace stpq

#endif  // STPQ_CORE_ENGINE_H_
