// Engine: the library's main entry point.
//
// Owns the data objects, the feature tables, their indexes and the
// simulated-disk buffer pools, and executes top-k spatio-textual preference
// queries with either algorithm.  See examples/quickstart.cc for usage.
//
// Concurrency (DESIGN.md §11): a fully constructed Engine is immutable, and
// Execute/OpenCursor are const and safe to call from any number of threads
// concurrently.  Each call runs inside its own ExecutionSession, which owns
// all per-query mutable state including the simulated-I/O accounting; with
// the default cold_cache_per_query option the per-query page-read counters
// are identical to a sequential run regardless of thread count.
#ifndef STPQ_CORE_ENGINE_H_
#define STPQ_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cursor.h"
#include "core/query.h"
#include "core/stps.h"  // InfluenceMode
#include "core/voronoi_cache.h"
#include "index/feature_index.h"
#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace stpq {

struct LoadedIndex;  // io/index_file.h

/// Query processing algorithms (Sections 5 and 6).
enum class Algorithm {
  kStds,  ///< Spatio-Textual Data Scan (baseline)
  kStps,  ///< Spatio-Textual Preference Search
};

/// Receives the cost counters of every executed query.  Implementations
/// must be safe to call from multiple threads concurrently when the sink is
/// shared across parallel Execute calls (the workload runner's sink is).
class QueryStatsSink {
 public:
  virtual ~QueryStatsSink() = default;

  /// Called once per completed query with its final counters.
  virtual void Record(const QueryStats& stats) = 0;
};

/// Per-call execution knobs for Engine::Execute.
struct ExecuteOptions {
  Algorithm algorithm = Algorithm::kStps;
  /// Optional sink receiving the query's stats in addition to the returned
  /// QueryResult; not owned.  Used by the parallel workload runner to merge
  /// per-query stats without post-processing the results.
  QueryStatsSink* stats_sink = nullptr;
  /// Optional slow-query capture; not owned.  Every query is offered to the
  /// log with its latency; the log retains trace events + stats for queries
  /// at or above its threshold (bounded retention, drop-oldest).
  SlowQueryLog* slow_log = nullptr;
};

/// Where index pages live and how the buffer pools are sized.  One struct
/// so storage decisions travel together instead of as loose engine knobs.
struct StorageOptions {
  /// Page source behind the buffer pools.  kSimulated counts page accesses
  /// without any bytes behind them (the paper's cost model); kFile serves
  /// misses from a .stpqx index file and is only valid with Engine::Open.
  StorageBackend backend = StorageBackend::kSimulated;
  /// Index file path.  Set by Engine::Open; must be empty for kSimulated.
  std::string path;
  /// Buffer pool capacity in pages per pool (object pool + shared feature
  /// pool); 0 = unbounded.
  uint64_t pool_capacity = 0;
  /// Simulated disk page size; drives R-tree fan-out.
  uint32_t page_size = kDefaultPageSizeBytes;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Which feature index to build (the benchmark axis SRT vs IR2).
  FeatureIndexKind index_kind = FeatureIndexKind::kSrt;
  /// Bulk-load ordering for the feature indexes.
  BulkLoadKind bulk_load = BulkLoadKind::kHilbert;
  /// Backend, page size and pool capacity (see StorageOptions).
  StorageOptions storage;
  /// Charge each query against its own cold session pool, so reported I/O
  /// is the number of distinct pages the query touches (deterministic,
  /// machine-independent, and independent of concurrent queries).  When
  /// false the shared pools stay warm across queries instead.
  bool cold_cache_per_query = true;
  /// Target node occupancy for bulk loading.
  double fill = 1.0;
  /// IR2-tree signature parameters (see FeatureIndexOptions).
  uint32_t signature_bits = 0;
  uint32_t signature_hashes = 3;
  /// STPS feature-pulling strategy.
  PullingStrategy pulling = PullingStrategy::kPrioritized;
  /// STDS batched score computation (Section 5 improvement).
  bool stds_batching = true;
  /// Reuse Voronoi cells across NN-variant queries with identical keyword
  /// sets (Section 8.5's precomputation remark).  The cache is internally
  /// synchronized; under concurrency it makes the I/O counters of NN
  /// queries dependent on query interleaving (results are unaffected).
  bool reuse_voronoi_cells = false;
  /// Influence-variant strategy: anchored retrieval (default) or the
  /// paper's Algorithm 5 (see InfluenceMode).
  InfluenceMode influence_mode = InfluenceMode::kAnchored;
};

/// A fully indexed dataset ready to answer STPQ queries.
class Engine {
 public:
  /// Builds all indexes in memory over `objects` and `feature_tables`.
  /// Checks `options` (page size, fill factor, signature and storage
  /// parameters) and returns InvalidArgument instead of building a broken
  /// engine.  The storage backend must be kSimulated — a file-backed
  /// engine comes from Engine::Open on a file written by Save.
  [[nodiscard]] static Result<Engine> Build(std::vector<DataObject> objects,
                                            std::vector<FeatureTable> feature_tables,
                                            EngineOptions options = {});

  /// Opens a prebuilt .stpqx index file (WriteIndexFile / Engine::Save):
  /// restores every index verbatim and serves buffer-pool misses from the
  /// file through a FilePageStore.  Build parameters (index kind, page
  /// size, fill, signatures) come from the file's superblock and override
  /// whatever `options` says; runtime knobs (pool capacity, cold-cache,
  /// pulling, batching, ...) are taken from `options`.  A reopened engine
  /// answers every query with results and per-query page-read counters
  /// identical to the engine that built the file.  Typed errors:
  /// IoError (unreadable/truncated), InvalidArgument (not an index file /
  /// unsupported version), Corruption (checksum or structural damage).
  [[nodiscard]] static Result<Engine> Open(const std::string& path,
                                           EngineOptions options = {});

  /// Deprecated alias of Build, kept while callers migrate.
  [[nodiscard]] static Result<Engine> Create(std::vector<DataObject> objects,
                               std::vector<FeatureTable> feature_tables,
                               EngineOptions options = {});

  /// Persists the whole index set to `path` for Engine::Open.
  /// `vocabularies` (one per feature table, table order) ride along so a
  /// reopened CLI can still parse query keywords; pass empty to persist
  /// blank vocabularies.
  [[nodiscard]] Status Save(const std::string& path,
                            const std::vector<Vocabulary>& vocabularies = {}) const;

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes `query` with the given algorithm.  The result carries the
  /// entries sorted by descending tau(p) and the cost counters (CPU time,
  /// simulated page reads per index family).  Returns InvalidArgument for
  /// malformed queries: keyword-set count != num_feature_sets(), k == 0,
  /// lambda outside [0, 1], or radius <= 0 (NN-variant queries ignore the
  /// radius and are exempt from the radius check).
  ///
  /// Thread-safe: any number of Execute/OpenCursor calls may run
  /// concurrently on one engine.
  [[nodiscard]] Result<QueryResult> Execute(const Query& query,
                                           Algorithm algorithm) const;

  /// Execute with per-call options (algorithm + optional stats sink).
  [[nodiscard]] Result<QueryResult> Execute(
      const Query& query, const ExecuteOptions& options) const;

  /// Opens an incremental cursor over a range-score query (k is ignored;
  /// results stream in non-increasing tau(p) until the caller stops).
  /// The engine must outlive the cursor.  The cursor owns its own
  /// execution session, so it may be drained after Execute calls complete
  /// and from a different thread than the one that opened it (one thread
  /// at a time).  Returns InvalidArgument for malformed queries and for
  /// non-range variants.
  [[nodiscard]] Result<std::unique_ptr<StpsCursor>> OpenCursor(
      const Query& query) const;

  /// Checks `query` against this engine's shape: keyword-set count,
  /// k >= 1, lambda in [0, 1], radius > 0 for radius-dependent variants.
  [[nodiscard]] Status ValidateQuery(const Query& query) const;

  /// The shared Voronoi cell cache (nullptr unless reuse_voronoi_cells).
  VoronoiCellCache* voronoi_cache() const { return voronoi_cache_.get(); }

  size_t num_feature_sets() const { return feature_indexes_.size(); }
  const std::vector<DataObject>& objects() const { return *objects_; }
  const FeatureTable& feature_table(size_t i) const {
    return (*feature_tables_)[i];
  }
  const FeatureIndex& feature_index(size_t i) const {
    return *feature_indexes_[i];
  }
  const ObjectIndex& object_index() const { return *object_index_; }
  const EngineOptions& options() const { return options_; }
  /// The page source behind both buffer pools (SimulatedPageStore for
  /// built engines, FilePageStore for opened ones).
  const PageStore& page_store() const { return *page_store_; }

  /// The buffer pools, for live occupancy reporting (/statusz).  Reading
  /// stats/occupancy concurrently with queries is safe; see BufferPool.
  const BufferPool& object_pool() const { return *object_pool_; }
  const BufferPool& feature_pool() const { return *feature_pool_; }

  /// Name of the feature index in use ("SRT" or "IR2").
  const char* IndexName() const {
    return feature_indexes_.empty() ? "none" : feature_indexes_[0]->Name();
  }

 private:
  /// Builds the object index and one feature index per table; `options`
  /// must already be validated.
  Engine(EngineOptions options, std::vector<DataObject> objects,
         std::vector<FeatureTable> feature_tables);

  /// Restores indexes from a loaded .stpqx image; `store` (the file's
  /// FilePageStore) backs both buffer pools.
  Engine(EngineOptions options, LoadedIndex loaded,
         std::unique_ptr<PageStore> store);

  static Status ValidateOptions(const EngineOptions& options);

  EngineOptions options_;
  // The indexes and executors hold raw pointers into the object and
  // feature-table storage, so both live behind unique_ptr: moving the
  // engine (Result<Engine>, factory returns) keeps their addresses stable.
  std::unique_ptr<std::vector<DataObject>> objects_;
  std::unique_ptr<std::vector<FeatureTable>> feature_tables_;
  // Declared before the pools, which hold a raw pointer into it.
  std::unique_ptr<PageStore> page_store_;
  std::unique_ptr<BufferPool> object_pool_;
  std::unique_ptr<BufferPool> feature_pool_;
  std::unique_ptr<ObjectIndex> object_index_;
  std::vector<std::unique_ptr<FeatureIndex>> feature_indexes_;
  /// Borrowed views of feature_indexes_, in table order; immutable after
  /// construction and handed to the per-call executors.
  std::vector<const FeatureIndex*> index_ptrs_;
  std::unique_ptr<VoronoiCellCache> voronoi_cache_;
};

}  // namespace stpq

#endif  // STPQ_CORE_ENGINE_H_
