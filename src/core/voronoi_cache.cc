#include "core/voronoi_cache.h"

namespace stpq {

const ConvexPolygon* VoronoiCellCache::Find(size_t feature_set,
                                            ObjectId feature,
                                            const KeywordSet& query_kw) {
  Key key{static_cast<uint32_t>(feature_set), feature, query_kw.blocks()};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void VoronoiCellCache::Put(size_t feature_set, ObjectId feature,
                           const KeywordSet& query_kw, ConvexPolygon cell) {
  Key key{static_cast<uint32_t>(feature_set), feature, query_kw.blocks()};
  cells_[key] = std::move(cell);
}

void VoronoiCellCache::Clear() {
  cells_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace stpq
