#include "core/voronoi_cache.h"

namespace stpq {

std::optional<ConvexPolygon> VoronoiCellCache::Find(
    size_t feature_set, ObjectId feature, const KeywordSet& query_kw) {
  Key key{static_cast<uint32_t>(feature_set), feature, query_kw.blocks()};
  MutexLock lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void VoronoiCellCache::Put(size_t feature_set, ObjectId feature,
                           const KeywordSet& query_kw, ConvexPolygon cell) {
  Key key{static_cast<uint32_t>(feature_set), feature, query_kw.blocks()};
  MutexLock lock(mu_);
  cells_.try_emplace(std::move(key), std::move(cell));
}

void VoronoiCellCache::Clear() {
  MutexLock lock(mu_);
  cells_.clear();
  hits_ = 0;
  misses_ = 0;
}

size_t VoronoiCellCache::size() const {
  MutexLock lock(mu_);
  return cells_.size();
}

uint64_t VoronoiCellCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t VoronoiCellCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace stpq
