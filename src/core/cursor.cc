#include "core/cursor.h"

#include "core/object_retrieval.h"
#include "util/logging.h"

namespace stpq {

StpsCursor::StpsCursor(const ObjectIndex* objects,
                       std::vector<const FeatureIndex*> feature_indexes,
                       Query query, PullingStrategy strategy)
    : objects_(objects),
      feature_indexes_(std::move(feature_indexes)),
      query_(std::move(query)),
      claimed_(objects->size(), false) {
  STPQ_CHECK(query_.variant == ScoreVariant::kRange &&
             "StpsCursor supports the range score only");
  iterator_ = std::make_unique<CombinationIterator>(
      feature_indexes_, query_, /*enforce_range_constraint=*/true, strategy,
      &stats_);
}

StpsCursor::~StpsCursor() = default;

void StpsCursor::RefillBuffer() {
  std::vector<Point> member_pos;
  std::vector<ResultEntry> batch;
  while (buffer_.empty() && !exhausted_) {
    std::optional<Combination> combo = iterator_->Next();
    if (!combo.has_value()) {
      exhausted_ = true;
      return;
    }
    member_pos.clear();
    for (size_t i = 0; i < combo->members.size(); ++i) {
      if (combo->members[i] == kVirtualFeature) continue;
      member_pos.push_back(
          feature_indexes_[i]->table().Get(combo->members[i]).pos);
    }
    batch.clear();
    CollectObjectsInRange(*objects_, member_pos, query_.radius, combo->score,
                          /*remaining=*/SIZE_MAX, &claimed_, &batch,
                          &stats_);
    for (ResultEntry& e : batch) buffer_.push_back(e);
  }
}

std::optional<ResultEntry> StpsCursor::Next() {
  if (buffer_.empty()) RefillBuffer();
  if (buffer_.empty()) return std::nullopt;
  ResultEntry e = buffer_.front();
  buffer_.pop_front();
  return e;
}

}  // namespace stpq
