#include "core/cursor.h"

#include "core/object_retrieval.h"
#include "util/logging.h"

namespace stpq {

StpsCursor::StpsCursor(const ObjectIndex* objects,
                       std::vector<const FeatureIndex*> feature_indexes,
                       Query query, PullingStrategy strategy,
                       std::unique_ptr<ExecutionSession> session)
    : objects_(objects),
      feature_indexes_(std::move(feature_indexes)),
      query_(std::move(query)),
      session_(std::move(session)),
      claimed_(objects->size(), false) {
  STPQ_CHECK(query_.variant == ScoreVariant::kRange &&
             "StpsCursor supports the range score only");
  // The iterator primes its feature streams on construction; charge that
  // I/O to the cursor's session like everything that follows.
  std::optional<ExecutionSession::Scope> scope;
  if (session_ != nullptr) scope.emplace(session_.get());
  iterator_ = std::make_unique<CombinationIterator>(
      feature_indexes_, query_, /*enforce_range_constraint=*/true, strategy,
      &stats_);
}

StpsCursor::~StpsCursor() = default;

void StpsCursor::RefillBuffer() {
  std::vector<Point> member_pos;
  std::vector<ResultEntry> batch;
  while (buffer_.empty() && !exhausted_) {
    std::optional<Combination> combo = iterator_->Next();
    if (!combo.has_value()) {
      exhausted_ = true;
      return;
    }
    member_pos.clear();
    for (size_t i = 0; i < combo->members.size(); ++i) {
      if (combo->members[i] == kVirtualFeature) continue;
      member_pos.push_back(
          feature_indexes_[i]->table().Get(combo->members[i]).pos);
    }
    batch.clear();
    CollectObjectsInRange(*objects_, member_pos, query_.radius, combo->score,
                          /*remaining=*/SIZE_MAX, &claimed_, &batch,
                          stats_, scratch_);
    for (ResultEntry& e : batch) buffer_.push_back(e);
  }
}

std::optional<ResultEntry> StpsCursor::Next() {
  // Route this thread's page accesses to the cursor's session for the
  // duration of the call; Next() may run on any thread, including inside
  // another query's scope (bindings nest).
  std::optional<ExecutionSession::Scope> scope;
  if (session_ != nullptr) scope.emplace(session_.get());
  if (buffer_.empty()) RefillBuffer();
  if (buffer_.empty()) return std::nullopt;
  ResultEntry e = buffer_.front();
  buffer_.pop_front();
  return e;
}

QueryStats StpsCursor::stats() const {
  QueryStats merged = stats_;
  if (session_ != nullptr) session_->ExportIoCounters(merged);
  return merged;
}

}  // namespace stpq
