// Shared qualified-object retrieval for the range score (Section 6.4).
#ifndef STPQ_CORE_OBJECT_RETRIEVAL_H_
#define STPQ_CORE_OBJECT_RETRIEVAL_H_

#include <cstddef>
#include <vector>

#include "core/query.h"
#include "core/scratch.h"
#include "index/object_index.h"
#include "util/attributes.h"

namespace stpq {

/// getDataObjects(C): every unclaimed object within distance `radius` of
/// all of `member_pos` (the combination's real members) is claimed and
/// appended to `result` with score `score`.  Collection stops once
/// `remaining` objects were added (SIZE_MAX = unbounded).  Entries whose
/// MBR is out of range of any member are pruned.
STPQ_HOT void CollectObjectsInRange(const ObjectIndex& objects,
                           const std::vector<Point>& member_pos,
                           double radius, double score, size_t remaining,
                           std::vector<bool>* claimed,
                           std::vector<ResultEntry>* result,
                           QueryStats& stats, TraversalScratch& scratch);

}  // namespace stpq

#endif  // STPQ_CORE_OBJECT_RETRIEVAL_H_
