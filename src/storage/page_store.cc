#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics_registry.h"
#include "util/timer.h"

namespace stpq {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kSimulated:
      return "simulated";
    case StorageBackend::kFile:
      return "file";
  }
  return "unknown";
}

Result<StorageBackend> ParseStorageBackend(const std::string& name) {
  if (name == "simulated") return StorageBackend::kSimulated;
  if (name == "file") return StorageBackend::kFile;
  return Status::InvalidArgument("unknown storage backend '" + name +
                                 "' (expected 'simulated' or 'file')");
}

void SimulatedPageStore::FetchPage(PageId /*page*/) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
}

// --------------------------------------------------------- FilePageStore

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path, std::vector<Extent> extents, IoMode mode) {
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) {
              return a.first_page < b.first_page;
            });
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open index file '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat index file '" + path +
                           "': " + std::strerror(err));
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);

  PageId prev_end_page = 0;
  bool first = true;
  for (const Extent& e : extents) {
    if (e.page_count == 0 || e.slot_bytes == 0) {
      ::close(fd);
      return Status::InvalidArgument("page-store extent is empty");
    }
    if (!first && e.first_page < prev_end_page) {
      ::close(fd);
      return Status::InvalidArgument("page-store extents overlap");
    }
    first = false;
    prev_end_page = e.first_page + e.page_count;
    const uint64_t extent_bytes = e.page_count * uint64_t{e.slot_bytes};
    if (e.file_offset > file_bytes ||
        extent_bytes > file_bytes - e.file_offset) {
      ::close(fd);
      return Status::InvalidArgument(
          "page-store extent reaches past the end of '" + path + "'");
    }
  }

  const uint8_t* map = nullptr;
  if (mode != IoMode::kPread && file_bytes > 0) {
    void* m = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (m == MAP_FAILED) {
      if (mode == IoMode::kMmap) {
        const int err = errno;
        ::close(fd);
        return Status::IoError("cannot mmap index file '" + path +
                               "': " + std::strerror(err));
      }
      // kAuto degrades to pread.
    } else {
      // Index lookups jump between tree levels; readahead would fetch
      // neighbours the query never visits.
      ::madvise(m, file_bytes, MADV_RANDOM);
      map = static_cast<const uint8_t*>(m);
    }
  }
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(path, std::move(extents), fd, map, file_bytes));
}

FilePageStore::FilePageStore(std::string path, std::vector<Extent> extents,
                             int fd, const uint8_t* map, uint64_t file_bytes)
    : path_(std::move(path)),
      extents_(std::move(extents)),
      fd_(fd),
      map_(map),
      file_bytes_(file_bytes),
      metric_fetches_(MetricsRegistry::Global().GetCounter(
          "stpq_store_file_fetches_total",
          "Page fetches served by the file-backed page store")),
      metric_bytes_(MetricsRegistry::Global().GetCounter(
          "stpq_store_file_read_bytes_total",
          "Bytes read from persisted index files")),
      metric_latency_(MetricsRegistry::Global().GetHistogram(
          "stpq_store_file_fetch_latency_ms",
          "Latency of file-backed page fetches in milliseconds")) {}

FilePageStore::~FilePageStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), file_bytes_);
  }
  ::close(fd_);
}

const FilePageStore::Extent* FilePageStore::LookupExtent(PageId page) const {
  size_t lo = 0;
  size_t hi = extents_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const Extent& e = extents_[mid];
    if (page < e.first_page) {
      hi = mid;
    } else if (page - e.first_page >= e.page_count) {
      lo = mid + 1;
    } else {
      return &e;
    }
  }
  return nullptr;
}

void FilePageStore::RecordFetchError(FetchErrorKind kind, PageId page,
                                     int err) {
  last_error_kind_.store(static_cast<uint8_t>(kind),
                         std::memory_order_relaxed);
  last_error_errno_.store(err, std::memory_order_relaxed);
  last_error_page_.store(page, std::memory_order_relaxed);
  io_errors_.fetch_add(1, std::memory_order_relaxed);
}

Status FilePageStore::last_error() const {
  const auto kind = static_cast<FetchErrorKind>(
      last_error_kind_.load(std::memory_order_relaxed));
  const uint64_t page = last_error_page_.load(std::memory_order_relaxed);
  switch (kind) {
    case FetchErrorKind::kNone:
      return Status::OK();
    case FetchErrorKind::kUnmappedPage:
      return Status::IoError("page " + std::to_string(page) +
                             " is outside every extent of '" + path_ + "'");
    case FetchErrorKind::kPreadFailed:
      return Status::IoError(
          "pread failed for page " + std::to_string(page) + " of '" + path_ +
          "': " +
          std::strerror(last_error_errno_.load(std::memory_order_relaxed)));
    case FetchErrorKind::kTornPage:
      return Status::Corruption("torn page " + std::to_string(page) +
                                ": '" + path_ +
                                "' ends inside the slot (short read)");
  }
  return Status::Internal("unknown fetch error kind");
}

void FilePageStore::FetchPage(PageId page) {
  Timer timer;
  const Extent* extent = LookupExtent(page);
  if (extent == nullptr) {
    RecordFetchError(FetchErrorKind::kUnmappedPage, page, 0);
    return;
  }
  const uint64_t offset =
      extent->file_offset + (page - extent->first_page) * extent->slot_bytes;
  uint64_t fetched = 0;
  if (map_ != nullptr) {
    // One touch per cache line plus the slot's last byte; the fold keeps
    // the reads observable so the mapping is actually paged in.
    const uint8_t* slot = map_ + offset;
    uint64_t fold = 0;
    for (uint32_t i = 0; i < extent->slot_bytes; i += 64) fold += slot[i];
    fold += slot[extent->slot_bytes - 1];
    fold_sink_.store(fold, std::memory_order_relaxed);
    fetched = extent->slot_bytes;
  } else {
    uint8_t buffer[4096];
    uint64_t remaining = extent->slot_bytes;
    uint64_t position = offset;
    while (remaining > 0) {
      const size_t want = remaining < sizeof(buffer)
                              ? static_cast<size_t>(remaining)
                              : sizeof(buffer);
      const ssize_t got =
          pread_fn_(fd_, buffer, want, static_cast<off_t>(position));
      if (got < 0) {
        // EINTR is not a failure: the read was merely interrupted by a
        // signal and must be retried at the same position.
        if (errno == EINTR) continue;
        RecordFetchError(FetchErrorKind::kPreadFailed, page, errno);
        break;
      }
      if (got == 0) {
        // EOF inside a slot: the file is shorter than the extent table
        // promised.  A partially filled page must never be served as
        // complete — record it as a torn page.
        RecordFetchError(FetchErrorKind::kTornPage, page, 0);
        break;
      }
      position += static_cast<uint64_t>(got);
      remaining -= static_cast<uint64_t>(got);
      fetched += static_cast<uint64_t>(got);
    }
  }
  fetches_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(fetched, std::memory_order_relaxed);
  metric_fetches_.Increment();
  metric_bytes_.Increment(fetched);
  metric_latency_.Record(timer.ElapsedMillis());
}

}  // namespace stpq
