#include "storage/buffer_pool.h"

namespace stpq {

bool BufferPool::Access(PageId page) {
  auto it = table_.find(page);
  if (it != table_.end()) {
    ++stats_.hits;
    if (capacity_ != 0) {  // unbounded pools skip LRU maintenance
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return true;
  }
  ++stats_.reads;
  lru_.push_front(page);
  table_.emplace(page, lru_.begin());
  if (capacity_ != 0 && lru_.size() > capacity_) {
    table_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  table_.clear();
}

}  // namespace stpq
