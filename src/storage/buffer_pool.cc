#include "storage/buffer_pool.h"

#include <string>

#include "util/logging.h"

namespace stpq {

bool BufferPool::Access(PageId page) {
  auto it = table_.find(page);
  if (it != table_.end()) {
    ++stats_.hits;
    if (capacity_ != 0) {  // unbounded pools skip LRU maintenance
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return true;
  }
  ++stats_.reads;
  lru_.push_front(page);
  table_.emplace(page, lru_.begin());
  ++lifetime_admissions_;
  if (capacity_ != 0 && lru_.size() > capacity_) {
    EvictOneUnpinned();
  }
  return false;
}

void BufferPool::EvictOneUnpinned() {
  // Walk from the LRU end toward the front; the first unpinned page is the
  // victim.  The page just admitted sits at the front unpinned, so the walk
  // always finds one — in the worst case the new page evicts itself (an
  // uncached read-through that leaves every pinned resident in place).
  for (auto it = std::prev(lru_.end());; --it) {
    if (pins_.find(*it) == pins_.end()) {
      table_.erase(*it);
      lru_.erase(it);
      return;
    }
    STPQ_DCHECK(it != lru_.begin());  // front page is never pinned here
  }
}

Status BufferPool::Pin(PageId page) {
  Access(page);
  if (table_.find(page) == table_.end()) {
    return Status::FailedPrecondition(
        "cannot pin page " + std::to_string(page) + ": pool is full (" +
        std::to_string(capacity_) + " pages) and every frame is pinned");
  }
  ++pins_[page];
  return Status::OK();
}

uint32_t BufferPool::PinCount(PageId page) const {
  auto it = pins_.find(page);
  return it == pins_.end() ? 0 : it->second;
}

Status BufferPool::Unpin(PageId page) {
  auto it = pins_.find(page);
  if (it == pins_.end()) {
    return Status::FailedPrecondition(
        "unpin of page " + std::to_string(page) + " that is not pinned");
  }
  if (--it->second == 0) pins_.erase(it);
  return Status::OK();
}

void BufferPool::Clear() {
  STPQ_DCHECK(pins_.empty());
  lru_.clear();
  table_.clear();
  pins_.clear();
}

}  // namespace stpq
