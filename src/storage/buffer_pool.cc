#include "storage/buffer_pool.h"

#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace stpq {

namespace {

/// Thread-local binding stack: (shared pool, session) pairs, innermost
/// last.  A plain vector beats a map here — a thread holds at most a
/// handful of bindings (two per query: object pool + feature pool).
thread_local std::vector<std::pair<const BufferPool*, BufferPool::Session*>>
    tls_bindings;

}  // namespace

BufferPool::Session* BufferPool::CurrentSession() const {
  for (auto it = tls_bindings.rbegin(); it != tls_bindings.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return nullptr;
}

bool BufferPool::Access(PageId page) {
  if (Session* session = CurrentSession()) return session->Access(page);
  return AccessLocked(page);
}

bool BufferPool::AccessLocked(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  return AccessInternal(page);
}

bool BufferPool::AccessInternal(PageId page) {
  auto it = table_.find(page);
  if (it != table_.end()) {
    ++stats_.hits;
    if (capacity_ != 0) {  // unbounded pools skip LRU maintenance
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return true;
  }
  ++stats_.reads;
  lru_.push_front(page);
  table_.emplace(page, lru_.begin());
  ++lifetime_admissions_;
  if (capacity_ != 0 && lru_.size() > capacity_) {
    EvictOneUnpinned();
  }
  return false;
}

void BufferPool::EvictOneUnpinned() {
  // Walk from the LRU end toward the front; the first unpinned page is the
  // victim.  The page just admitted sits at the front unpinned, so the walk
  // always finds one — in the worst case the new page evicts itself (an
  // uncached read-through that leaves every pinned resident in place).
  for (auto it = std::prev(lru_.end());; --it) {
    if (pins_.find(*it) == pins_.end()) {
      table_.erase(*it);
      lru_.erase(it);
      return;
    }
    STPQ_DCHECK(it != lru_.begin());  // front page is never pinned here
  }
}

Status BufferPool::Pin(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  AccessInternal(page);
  if (table_.find(page) == table_.end()) {
    return Status::FailedPrecondition(
        "cannot pin page " + std::to_string(page) + ": pool is full (" +
        std::to_string(capacity_) + " pages) and every frame is pinned");
  }
  ++pins_[page];
  return Status::OK();
}

uint32_t BufferPool::PinCount(PageId page) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(page);
  return it == pins_.end() ? 0 : it->second;
}

Status BufferPool::Unpin(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(page);
  if (it == pins_.end()) {
    return Status::FailedPrecondition(
        "unpin of page " + std::to_string(page) + " that is not pinned");
  }
  if (--it->second == 0) pins_.erase(it);
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  STPQ_DCHECK(pins_.empty());
  lru_.clear();
  table_.clear();
  pins_.clear();
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = BufferPoolStats{};
}

BufferPoolStats BufferPool::stats() const {
  if (Session* session = CurrentSession()) return session->stats();
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t BufferPool::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.size();
}

bool BufferPool::Session::Access(PageId page) {
  if (isolated_) {
    // The private pool is never the target of a binding, so this call
    // cannot recurse back into session routing.
    return private_pool_.AccessLocked(page);
  }
  bool hit = shared_->AccessLocked(page);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.reads;
  }
  return hit;
}

BufferPoolStats BufferPool::Session::stats() const {
  if (isolated_) {
    std::lock_guard<std::mutex> lock(private_pool_.mu_);
    return private_pool_.stats_;
  }
  return stats_;
}

BufferPool::ScopedBind::ScopedBind(Session* session) {
  STPQ_DCHECK(session != nullptr);
  tls_bindings.emplace_back(session->shared_pool(), session);
}

BufferPool::ScopedBind::~ScopedBind() { tls_bindings.pop_back(); }

}  // namespace stpq
