#include "storage/buffer_pool.h"

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "storage/page_store.h"
#include "util/logging.h"

namespace stpq {

namespace {

/// Thread-local binding stack: (shared pool, session) pairs, innermost
/// last.  A plain vector beats a map here — a thread holds at most a
/// handful of bindings (two per query: object pool + feature pool).
thread_local std::vector<std::pair<const BufferPool*, BufferPool::Session*>>
    tls_bindings;

}  // namespace

// ------------------------------------------------------------- page table

uint64_t BufferPool::PageTable::Hash(PageId page) {
  // splitmix64 finalizer: full-avalanche over the 64-bit page id, so
  // page_base strides (1 << 32 per index) spread across the slots.
  uint64_t z = page + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint32_t BufferPool::PageTable::Find(PageId page) const {
  if (slots_.empty()) return kNilFrame;
  const size_t mask = slots_.size() - 1;
  for (size_t i = Hash(page) & mask;; i = (i + 1) & mask) {
    const Slot& slot = slots_[i];
    if (slot.frame == kNilFrame) return kNilFrame;
    if (slot.page == page) return slot.frame;
  }
}

void BufferPool::PageTable::Insert(PageId page, uint32_t frame) {
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(page) & mask;
  while (slots_[i].frame != kNilFrame) {
    STPQ_DCHECK(slots_[i].page != page);
    i = (i + 1) & mask;
  }
  slots_[i] = Slot{page, frame};
  ++size_;
}

void BufferPool::PageTable::Erase(PageId page) {
  if (slots_.empty()) return;
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(page) & mask;
  while (slots_[i].page != page || slots_[i].frame == kNilFrame) {
    if (slots_[i].frame == kNilFrame) return;  // absent
    i = (i + 1) & mask;
  }
  // Backward-shift deletion: pull every displaced entry of the probe
  // cluster back over the hole, leaving no tombstones behind.
  size_t hole = i;
  for (size_t j = (i + 1) & mask; slots_[j].frame != kNilFrame;
       j = (j + 1) & mask) {
    const size_t home = Hash(slots_[j].page) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole].frame = kNilFrame;
  --size_;
}

void BufferPool::PageTable::Clear() {
  for (Slot& slot : slots_) slot.frame = kNilFrame;
  size_ = 0;
}

// Amortized rehash: runs on cold admissions only, never on the warm hit
// path that the allocation contract covers.
// stpq-lint: allow(hot-alloc) amortized growth off the warm path
void BufferPool::PageTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.frame == kNilFrame) continue;
    size_t i = Hash(slot.page) & mask;
    while (slots_[i].frame != kNilFrame) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

// ------------------------------------------------------- intrusive chain

void BufferPool::Unlink(uint32_t f) {
  Frame& frame = frames_[f];
  if (frame.prev != kNilFrame) {
    frames_[frame.prev].next = frame.next;
  } else {
    head_ = frame.next;
  }
  if (frame.next != kNilFrame) {
    frames_[frame.next].prev = frame.prev;
  } else {
    tail_ = frame.prev;
  }
  --chain_size_;
}

void BufferPool::LinkFront(uint32_t f) {
  Frame& frame = frames_[f];
  frame.prev = kNilFrame;
  frame.next = head_;
  if (head_ != kNilFrame) frames_[head_].prev = f;
  head_ = f;
  if (tail_ == kNilFrame) tail_ = f;
  ++chain_size_;
}

uint32_t BufferPool::AcquireFrame() {
  if (free_head_ != kNilFrame) {
    const uint32_t f = free_head_;
    free_head_ = frames_[f].next;
    return f;
  }
  frames_.emplace_back();
  return static_cast<uint32_t>(frames_.size() - 1);
}

void BufferPool::ReleaseFrame(uint32_t f) {
  frames_[f].next = free_head_;
  frames_[f].prev = kNilFrame;
  frames_[f].pins = 0;
  free_head_ = f;
}

// ------------------------------------------------------------ public API

BufferPool::BufferPool(uint64_t capacity_pages, PageStore* store)
    : capacity_(capacity_pages),
      store_(store),
      backend_tag_(store == nullptr ? 0
                                    : static_cast<uint8_t>(store->backend())) {
}

BufferPool::Session* BufferPool::CurrentSession() const {
  for (auto it = tls_bindings.rbegin(); it != tls_bindings.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return nullptr;
}

bool BufferPool::Access(PageId page) {
  if (Session* session = CurrentSession()) return session->Access(page);
  return AccessLocked(page);
}

bool BufferPool::AccessLocked(PageId page) {
  MutexLock lock(mu_);
  return AccessInternal(page);
}

bool BufferPool::AccessSingleThreaded(PageId page) {
  // Thread-safety analysis is off here (see the header): `this` is an
  // isolated session's private pool, reachable only from the one thread
  // that owns the session, so mu_ is deliberately skipped.
  return AccessInternal(page);
}

bool BufferPool::AccessInternal(PageId page) {
  uint32_t f = table_.Find(page);
  if (f != kNilFrame) {
    // Plain load+store, not a locked RMW: writers are serialized by mu_
    // (or by the isolated session's single thread), atomics only make the
    // lock-free stats() readers well-defined.
    hits_.store(hits_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    STPQ_TRACE_INSTANT(TraceEventType::kPoolHit, 0, 0,
                       static_cast<uint32_t>(page & 0xffffffffu), page);
    if (capacity_ != 0 && head_ != f) {  // unbounded pools skip LRU upkeep
      Unlink(f);
      LinkFront(f);
    }
    return true;
  }
  reads_.store(reads_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  STPQ_TRACE_INSTANT(TraceEventType::kPoolMiss, backend_tag_, 0,
                     static_cast<uint32_t>(page & 0xffffffffu), page);
  // The miss has been counted; now it costs whatever the backend charges
  // (nothing when simulated, a physical slot read from the index file
  // otherwise).  Fetch before admission, like a disk read into the frame.
  if (store_ != nullptr) store_->FetchPage(page);
  f = AcquireFrame();
  frames_[f].page = page;
  frames_[f].pins = 0;
  LinkFront(f);
  table_.Insert(page, f);
  ++lifetime_admissions_;
  if (capacity_ != 0 && chain_size_ > capacity_) {
    EvictOneUnpinned();
  }
  return false;
}

void BufferPool::EvictOneUnpinned() {
  // Walk from the LRU tail toward the front; the first unpinned frame is
  // the victim.  The frame just admitted sits at the head unpinned, so the
  // walk always finds one — in the worst case the new page evicts itself
  // (an uncached read-through that leaves every pinned resident in place).
  for (uint32_t f = tail_;; f = frames_[f].prev) {
    if (frames_[f].pins == 0) {
      STPQ_TRACE_INSTANT(TraceEventType::kPoolEvict, 0, 0,
                         static_cast<uint32_t>(frames_[f].page & 0xffffffffu),
                         frames_[f].page);
      table_.Erase(frames_[f].page);
      Unlink(f);
      ReleaseFrame(f);
      return;
    }
    STPQ_DCHECK(f != head_);  // head frame is never pinned here
  }
}

Status BufferPool::Pin(PageId page) {
  MutexLock lock(mu_);
  AccessInternal(page);
  const uint32_t f = table_.Find(page);
  if (f == kNilFrame) {
    return Status::FailedPrecondition(
        "cannot pin page " + std::to_string(page) + ": pool is full (" +
        std::to_string(capacity_) + " pages) and every frame is pinned");
  }
  if (frames_[f].pins++ == 0) ++pinned_count_;
  return Status::OK();
}

uint32_t BufferPool::PinCount(PageId page) const {
  MutexLock lock(mu_);
  const uint32_t f = table_.Find(page);
  return f == kNilFrame ? 0 : frames_[f].pins;
}

Status BufferPool::Unpin(PageId page) {
  MutexLock lock(mu_);
  const uint32_t f = table_.Find(page);
  if (f == kNilFrame || frames_[f].pins == 0) {
    return Status::FailedPrecondition(
        "unpin of page " + std::to_string(page) + " that is not pinned");
  }
  if (--frames_[f].pins == 0) --pinned_count_;
  return Status::OK();
}

void BufferPool::Clear() {
  MutexLock lock(mu_);
  STPQ_DCHECK(pinned_count_ == 0);
  // Move every resident frame to the free list; the frame array and the
  // page-table slot array keep their allocations for the next fill.
  for (uint32_t f = head_; f != kNilFrame;) {
    const uint32_t next = frames_[f].next;
    ReleaseFrame(f);
    f = next;
  }
  head_ = tail_ = kNilFrame;
  chain_size_ = 0;
  pinned_count_ = 0;
  table_.Clear();
}

void BufferPool::ResetStats() {
  MutexLock lock(mu_);
  reads_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
}

BufferPoolStats BufferPool::stats() const {
  if (Session* session = CurrentSession()) return session->stats();
  return {reads_.load(std::memory_order_relaxed),
          hits_.load(std::memory_order_relaxed)};
}

uint64_t BufferPool::resident_pages() const {
  MutexLock lock(mu_);
  return chain_size_;
}

uint64_t BufferPool::pinned_pages() const {
  MutexLock lock(mu_);
  return pinned_count_;
}

bool BufferPool::Session::Access(PageId page) {
  if (isolated_) {
    // The private pool is single-threaded by construction (only this
    // session's thread reaches it) and never the target of a binding, so
    // this call skips the mutex and cannot recurse into session routing.
    return private_pool_->AccessSingleThreaded(page);
  }
  bool hit = shared_->AccessLocked(page);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.reads;
  }
  return hit;
}

BufferPoolStats BufferPool::Session::stats() const {
  if (isolated_) {
    return {private_pool_->reads_.load(std::memory_order_relaxed),
            private_pool_->hits_.load(std::memory_order_relaxed)};
  }
  return stats_;
}

BufferPool::ScopedBind::ScopedBind(Session* session) {
  STPQ_DCHECK(session != nullptr);
  tls_bindings.emplace_back(session->shared_pool(), session);
}

BufferPool::ScopedBind::~ScopedBind() { tls_bindings.pop_back(); }

}  // namespace stpq
