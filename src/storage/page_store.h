// PageStore: the physical half of the storage stack.
//
// BufferPool decides *whether* a page access is a hit or a miss (exact LRU,
// pinning, counters); a PageStore decides what a miss *costs*.  The
// simulated backend keeps today's behavior — a miss is only a counter tick —
// while the file backend turns a miss into a real page fetch from a
// persisted index file (storage/index_file.h).  The split keeps the golden
// I/O contract trivially true: hit/miss accounting never consults the
// store, so both backends report byte-identical page-read counts for the
// same workload.
//
// FetchPage runs inside BufferPool::AccessInternal, i.e. on the query hot
// path under the pool mutex (or an isolated session's private pool).  Every
// implementation must therefore be allocation-free and lock-free: the file
// backend reads through an immutable extent table built before the first
// query, touches mmapped bytes (or preads into a stack buffer), and updates
// relaxed atomics plus pre-registered metric handles.
#ifndef STPQ_STORAGE_PAGE_STORE_H_
#define STPQ_STORAGE_PAGE_STORE_H_

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/attributes.h"
#include "util/result.h"
#include "util/status.h"

namespace stpq {

class Counter;
class HistogramMetric;

/// Which physical backend serves buffer-pool misses.
enum class StorageBackend : uint8_t {
  kSimulated = 0,  ///< miss = counter tick, no bytes move (the default)
  kFile = 1,       ///< miss = page fetch from a persisted index file
};

/// Stable lowercase name ("simulated" / "file") for flags, metrics and
/// error messages.
const char* StorageBackendName(StorageBackend backend);

/// Parses the StorageBackendName form back; InvalidArgument on anything
/// else.
[[nodiscard]] Result<StorageBackend> ParseStorageBackend(
    const std::string& name);

/// Counters exposed by a PageStore.  `bytes_read` and `io_errors` stay 0 on
/// the simulated backend.
struct PageStoreStats {
  uint64_t fetches = 0;     ///< FetchPage calls (== buffer-pool misses)
  uint64_t bytes_read = 0;  ///< physical bytes fetched
  uint64_t io_errors = 0;   ///< fetches that failed (unmapped page, pread)
};

/// Physical page source behind a BufferPool.  Implementations are
/// immutable after construction and safe to share between pools (the
/// object pool and every feature pool of one engine share one store; their
/// page-id namespaces are disjoint by the kIndexStride layout).
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Fetches the physical bytes backing `page`.  Called once per
  /// buffer-pool miss, after the miss has been counted, so fetch totals
  /// mirror the pool's read counters exactly.  Infallible by design: a
  /// fetch that cannot be served (page outside every extent, read error)
  /// bumps `io_errors` instead of failing the query — the simulated node
  /// data in memory is still authoritative.  Must not allocate or block on
  /// anything but the read itself.
  STPQ_HOT virtual void FetchPage(PageId page) = 0;

  [[nodiscard]] virtual StorageBackend backend() const = 0;
  [[nodiscard]] virtual PageStoreStats stats() const = 0;
};

/// Count-only store: preserves the pre-PageStore semantics where a miss
/// moves no bytes.  An engine on the simulated backend does not install a
/// store at all (null pointer, zero overhead); this class exists so tests
/// and benches can exercise the BufferPool+store plumbing directly.
class SimulatedPageStore final : public PageStore {
 public:
  STPQ_HOT void FetchPage(PageId page) override;

  [[nodiscard]] StorageBackend backend() const override {
    return StorageBackend::kSimulated;
  }
  [[nodiscard]] PageStoreStats stats() const override {
    return {fetches_.load(std::memory_order_relaxed), 0, 0};
  }

 private:
  std::atomic<uint64_t> fetches_{0};
};

/// Store over a persisted index file: mmap when available, pread fallback.
/// The page-id space is sparse (object index at 0, feature index i at
/// kIndexStride * (i + 1)), so the mapping to file offsets goes through a
/// sorted extent table: each extent covers one node segment's contiguous
/// page-id range and names its slot width (a node slot spans one or more
/// pages when the serialized node exceeds the page size; the pool charges
/// one read per node, so one fetch moves one full slot).
class FilePageStore final : public PageStore {
 public:
  /// How fetches hit the file.  kAuto mmaps and falls back to pread when
  /// the mapping fails; the explicit modes exist for tests and benches.
  enum class IoMode : uint8_t { kAuto = 0, kMmap = 1, kPread = 2 };

  /// One contiguous page-id range backed by fixed-width slots in the file.
  struct Extent {
    PageId first_page = 0;      ///< pool-visible id of the first slot
    uint64_t page_count = 0;    ///< number of slots
    uint64_t file_offset = 0;   ///< byte offset of the first slot
    uint32_t slot_bytes = 0;    ///< bytes fetched per page access
  };

  /// Opens `path` read-only and validates the extent table (sorted by
  /// first_page, non-overlapping, inside the file).  Typed errors:
  /// IoError when the file cannot be opened or mapped (kMmap mode),
  /// InvalidArgument on a malformed extent table.
  [[nodiscard]] static Result<std::unique_ptr<FilePageStore>> Open(
      const std::string& path, std::vector<Extent> extents,
      IoMode mode = IoMode::kAuto);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  STPQ_HOT void FetchPage(PageId page) override;

  [[nodiscard]] StorageBackend backend() const override {
    return StorageBackend::kFile;
  }
  [[nodiscard]] PageStoreStats stats() const override {
    return {fetches_.load(std::memory_order_relaxed),
            bytes_read_.load(std::memory_order_relaxed),
            io_errors_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool using_mmap() const { return map_ != nullptr; }

  /// Typed view of the most recent fetch failure: OK when io_errors is 0,
  /// IoError for a failed pread, Corruption for a torn page (EOF inside a
  /// slot — the file is shorter than the extent table promised).  Cold:
  /// allocates the message; callers check after stats().io_errors != 0.
  [[nodiscard]] STPQ_COLD Status last_error() const;

  /// pread-compatible seam for fault-injection tests (EINTR, short reads,
  /// hard errors).  Not thread-safe against in-flight fetches; install
  /// before queries run.
  using PreadFn = ssize_t (*)(int fd, void* buf, size_t count, off_t offset);
  void SetPreadFnForTest(PreadFn fn) { pread_fn_ = fn; }

 private:
  /// What the last fetch failure was (relaxed atomics; FetchPage must stay
  /// allocation-free, so the Status is only built in last_error()).
  enum class FetchErrorKind : uint8_t {
    kNone = 0,
    kUnmappedPage = 1,  ///< page outside every extent
    kPreadFailed = 2,   ///< pread returned -1 (errno recorded)
    kTornPage = 3,      ///< EOF before the slot was fully read
  };
  FilePageStore(std::string path, std::vector<Extent> extents, int fd,
                const uint8_t* map, uint64_t file_bytes);

  /// Binary search over the sorted extent table; nullptr when `page` is
  /// outside every extent.
  [[nodiscard]] const Extent* LookupExtent(PageId page) const;

  /// Bumps io_errors and records the failure detail (allocation-free).
  void RecordFetchError(FetchErrorKind kind, PageId page, int err);

  const std::string path_;
  /// Sorted by first_page; immutable after Open, so FetchPage reads it
  /// without synchronization.
  const std::vector<Extent> extents_;
  const int fd_;
  const uint8_t* const map_;  ///< nullptr in pread mode
  const uint64_t file_bytes_;

  PreadFn pread_fn_ = &::pread;

  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint8_t> last_error_kind_{0};
  std::atomic<int> last_error_errno_{0};
  std::atomic<uint64_t> last_error_page_{0};
  /// Folded mmap bytes land here so the touch loop cannot be optimized
  /// away; the value itself is meaningless.
  std::atomic<uint64_t> fold_sink_{0};

  // Metric handles resolved once at Open (registry lookups allocate; the
  // hot path only does relaxed atomic updates on these).
  Counter& metric_fetches_;
  Counter& metric_bytes_;
  HistogramMetric& metric_latency_;
};

}  // namespace stpq

#endif  // STPQ_STORAGE_PAGE_STORE_H_
