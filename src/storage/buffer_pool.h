// Simulated disk-resident storage: an LRU buffer pool over index pages.
//
// The paper evaluates over "large disk-resident data" and reports execution
// time split into I/O and CPU.  Index nodes in this library live in memory,
// but every node access is charged through a BufferPool: a miss counts as
// one page read (one I/O), a hit is free.  Benchmarks convert page reads to
// I/O time with a configurable per-read unit cost, reproducing the paper's
// dark/white bar breakdown without a physical disk.
#ifndef STPQ_STORAGE_BUFFER_POOL_H_
#define STPQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace stpq {

using PageId = uint64_t;

/// Default simulated page size; node fan-out is derived from it.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Counters exposed by a BufferPool.
struct BufferPoolStats {
  uint64_t reads = 0;  ///< misses: simulated page reads from disk
  uint64_t hits = 0;   ///< accesses served from the pool

  BufferPoolStats operator-(const BufferPoolStats& other) const {
    return {reads - other.reads, hits - other.hits};
  }
};

/// LRU page cache.  capacity_pages == 0 means "unbounded": every page is
/// read from disk exactly once and then pinned forever (an infinite cache).
class BufferPool {
 public:
  explicit BufferPool(uint64_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  /// Touches `page`; returns true on a hit, false on a miss (a simulated
  /// disk read).  On a miss the page is admitted, evicting the LRU page if
  /// the pool is full.
  bool Access(PageId page);

  /// Drops all cached pages (simulates a cold cache between workloads).
  void Clear();

  /// Resets the counters without dropping pages.
  void ResetStats() { stats_ = BufferPoolStats{}; }

  const BufferPoolStats& stats() const { return stats_; }
  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const { return lru_.size(); }

 private:
  uint64_t capacity_;
  BufferPoolStats stats_;
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> table_;
};

}  // namespace stpq

#endif  // STPQ_STORAGE_BUFFER_POOL_H_
