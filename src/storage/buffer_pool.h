// Simulated disk-resident storage: an LRU buffer pool over index pages.
//
// The paper evaluates over "large disk-resident data" and reports execution
// time split into I/O and CPU.  Index nodes in this library live in memory,
// but every node access is charged through a BufferPool: a miss counts as
// one page read (one I/O), a hit is free.  Benchmarks convert page reads to
// I/O time with a configurable per-read unit cost, reproducing the paper's
// dark/white bar breakdown without a physical disk.
//
// Pages can be pinned: a pinned page is never evicted, so callers that hold
// references into a frame across other accesses (future iterator/cursor
// work) keep their page resident.  Pinning is fallible — a pool whose every
// frame is pinned reports FailedPrecondition instead of evicting or
// crashing.
//
// Concurrency model (DESIGN.md §11).  The shared LRU state is protected by
// a mutex, so direct Access/Pin/Clear calls are safe from any thread.  Query
// execution, however, never contends on that mutex in the default
// configuration: each query binds a BufferPool::Session to its thread (see
// ScopedBind), and Access() charges the session instead of the pool.  An
// *isolated* session simulates its own private cold pool of the same
// capacity — no shared mutation at all, and page-read counts that are
// byte-identical to a sequential cold_cache_per_query run regardless of how
// many sessions run in parallel.  A *shared* session routes through the
// locked pool (pages stay warm across queries) and records the hits and
// misses attributable to this session; those counts then depend on
// cross-query interleaving, exactly as a physical warm cache would.
#ifndef STPQ_STORAGE_BUFFER_POOL_H_
#define STPQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "util/status.h"

namespace stpq {

using PageId = uint64_t;

/// Default simulated page size; node fan-out is derived from it.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Counters exposed by a BufferPool.
struct BufferPoolStats {
  uint64_t reads = 0;  ///< misses: simulated page reads from disk
  uint64_t hits = 0;   ///< accesses served from the pool

  BufferPoolStats operator-(const BufferPoolStats& other) const {
    return {reads - other.reads, hits - other.hits};
  }
};

/// LRU page cache.  capacity_pages == 0 means "unbounded": every page is
/// read from disk exactly once and then pinned forever (an infinite cache).
class BufferPool {
 public:
  class Session;
  class ScopedBind;

  explicit BufferPool(uint64_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Touches `page`; returns true on a hit, false on a miss (a simulated
  /// disk read).  On a miss the page is admitted, evicting the least
  /// recently used *unpinned* page if the pool is full; when every other
  /// resident page is pinned the new page itself is dropped again (an
  /// uncached read-through), so pinned residents are never displaced.
  ///
  /// When a Session is bound to the calling thread (ScopedBind), the access
  /// is charged to the session instead; see the class comment.
  bool Access(PageId page);

  /// Ensures `page` is resident (counting the read on a miss) and pins it.
  /// Pins nest: each Pin must be matched by one Unpin.  Fails with
  /// FailedPrecondition when the pool is full and every frame is pinned.
  /// Always operates on the shared pool, never on a bound session (the
  /// query path does not pin; pinning is a direct-pool API).
  Status Pin(PageId page);

  /// Releases one pin on `page`; fails if the page is not pinned.
  Status Unpin(PageId page);

  /// Drops all cached pages (simulates a cold cache between workloads).
  /// Must not be called with outstanding pins.
  void Clear();

  /// Resets the counters without dropping pages.
  void ResetStats();

  /// Counter snapshot.  With a Session bound to the calling thread this
  /// returns the *session's* counters, so code computing read deltas (e.g.
  /// Voronoi cell accounting) attributes I/O to the executing query.
  BufferPoolStats stats() const;

  [[nodiscard]] uint64_t capacity_pages() const { return capacity_; }
  [[nodiscard]] uint64_t resident_pages() const;
  [[nodiscard]] uint64_t pinned_pages() const;

  /// Current pin count of `page` (0 when unpinned or not resident).
  [[nodiscard]] uint32_t PinCount(PageId page) const;

  /// Deliberate-corruption backdoor for invariant tests; never used by
  /// library code.
  struct Corrupter;

 private:
  friend Status ValidateBufferPool(const BufferPool& pool);
  friend struct Corrupter;
  friend class Session;

  /// The session bound to this pool on the calling thread, or nullptr.
  Session* CurrentSession() const;

  /// Shared-pool access under the mutex (the pre-session code path).
  bool AccessLocked(PageId page);

  /// Access body; callers hold mu_.
  bool AccessInternal(PageId page);

  /// Evicts the least recently used unpinned page (possibly the page that
  /// was just admitted, which is the read-through case).  Caller holds mu_.
  void EvictOneUnpinned();

  mutable std::mutex mu_;
  uint64_t capacity_;
  BufferPoolStats stats_;
  /// Total pages ever admitted to the pool; unlike stats_ this is never
  /// reset, so `resident_pages() <= lifetime_admissions_` is an invariant
  /// that ValidateBufferPool can check across ResetStats()/Clear() calls.
  uint64_t lifetime_admissions_ = 0;
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> table_;
  std::unordered_map<PageId, uint32_t> pins_;  // page -> nested pin count
};

/// Per-query read accounting against one shared pool (see the BufferPool
/// class comment).  A session is single-threaded by construction: it is
/// only reachable through the thread-local ScopedBind of the thread
/// executing the query, so its counters need no synchronization.
class BufferPool::Session {
 public:
  /// `shared` must outlive the session.  `isolated` selects the private
  /// cold-pool mode (deterministic counts, zero shared-state contention);
  /// otherwise accesses go through the locked shared pool and this session
  /// records its own share of the traffic.
  Session(BufferPool* shared, bool isolated)
      : shared_(shared),
        isolated_(isolated),
        private_pool_(shared->capacity_pages()) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Charges one page access to this session; returns true on a hit.
  bool Access(PageId page);

  /// Pages read (misses) and hits charged to this session so far.
  BufferPoolStats stats() const;

  [[nodiscard]] bool isolated() const { return isolated_; }
  [[nodiscard]] BufferPool* shared_pool() const { return shared_; }

 private:
  friend class BufferPool::ScopedBind;

  BufferPool* shared_;
  bool isolated_;
  BufferPool private_pool_;  ///< isolated mode: same capacity, starts cold
  BufferPoolStats stats_;    ///< shared mode: this session's traffic
};

/// RAII thread-local binding: while alive, Access()/stats() calls on the
/// session's shared pool made *from this thread* are routed to the session.
/// Bindings nest LIFO (e.g. a cursor drained inside another query's scope);
/// the innermost binding for a given pool wins.
class BufferPool::ScopedBind {
 public:
  explicit ScopedBind(Session* session);
  ~ScopedBind();

  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;
};

/// Deep structural check (also declared in debug/validate.h): frame/page
/// table bijection, pin-count consistency, capacity and admission-counter
/// invariants.  Returns a Status naming the first violation.  Only
/// meaningful on a quiescent pool (no concurrent accessors).
Status ValidateBufferPool(const BufferPool& pool);

struct BufferPool::Corrupter {
  /// Breaks the frame/page-table bijection: the LRU list keeps the page
  /// but the table forgets it.
  static void DropTableEntry(BufferPool* pool, PageId page) {
    pool->table_.erase(page);
  }
  /// Records a pin for a page that is not resident.
  static void PhantomPin(BufferPool* pool, PageId page) {
    pool->pins_[page] = 1;
  }
  /// Rewinds the lifetime admission counter below the resident count.
  static void RewindAdmissions(BufferPool* pool) {
    pool->lifetime_admissions_ = 0;
  }
};

}  // namespace stpq

#endif  // STPQ_STORAGE_BUFFER_POOL_H_
