// Simulated disk-resident storage: an LRU buffer pool over index pages.
//
// The paper evaluates over "large disk-resident data" and reports execution
// time split into I/O and CPU.  Index nodes in this library live in memory,
// but every node access is charged through a BufferPool: a miss counts as
// one page read (one I/O), a hit is free.  Benchmarks convert page reads to
// I/O time with a configurable per-read unit cost, reproducing the paper's
// dark/white bar breakdown without a physical disk.
//
// Pages can be pinned: a pinned page is never evicted, so callers that hold
// references into a frame across other accesses (future iterator/cursor
// work) keep their page resident.  Pinning is fallible — a pool whose every
// frame is pinned reports FailedPrecondition instead of evicting or
// crashing.
#ifndef STPQ_STORAGE_BUFFER_POOL_H_
#define STPQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/status.h"

namespace stpq {

using PageId = uint64_t;

/// Default simulated page size; node fan-out is derived from it.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Counters exposed by a BufferPool.
struct BufferPoolStats {
  uint64_t reads = 0;  ///< misses: simulated page reads from disk
  uint64_t hits = 0;   ///< accesses served from the pool

  BufferPoolStats operator-(const BufferPoolStats& other) const {
    return {reads - other.reads, hits - other.hits};
  }
};

/// LRU page cache.  capacity_pages == 0 means "unbounded": every page is
/// read from disk exactly once and then pinned forever (an infinite cache).
class BufferPool {
 public:
  explicit BufferPool(uint64_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  /// Touches `page`; returns true on a hit, false on a miss (a simulated
  /// disk read).  On a miss the page is admitted, evicting the least
  /// recently used *unpinned* page if the pool is full; when every other
  /// resident page is pinned the new page itself is dropped again (an
  /// uncached read-through), so pinned residents are never displaced.
  bool Access(PageId page);

  /// Ensures `page` is resident (counting the read on a miss) and pins it.
  /// Pins nest: each Pin must be matched by one Unpin.  Fails with
  /// FailedPrecondition when the pool is full and every frame is pinned.
  Status Pin(PageId page);

  /// Releases one pin on `page`; fails if the page is not pinned.
  Status Unpin(PageId page);

  /// Drops all cached pages (simulates a cold cache between workloads).
  /// Must not be called with outstanding pins.
  void Clear();

  /// Resets the counters without dropping pages.
  void ResetStats() { stats_ = BufferPoolStats{}; }

  const BufferPoolStats& stats() const { return stats_; }
  [[nodiscard]] uint64_t capacity_pages() const { return capacity_; }
  [[nodiscard]] uint64_t resident_pages() const { return lru_.size(); }
  [[nodiscard]] uint64_t pinned_pages() const { return pins_.size(); }

  /// Current pin count of `page` (0 when unpinned or not resident).
  [[nodiscard]] uint32_t PinCount(PageId page) const;

  /// Deliberate-corruption backdoor for invariant tests; never used by
  /// library code.
  struct Corrupter;

 private:
  friend Status ValidateBufferPool(const BufferPool& pool);
  friend struct Corrupter;

  /// Evicts the least recently used unpinned page (possibly the page that
  /// was just admitted, which is the read-through case).
  void EvictOneUnpinned();

  uint64_t capacity_;
  BufferPoolStats stats_;
  /// Total pages ever admitted to the pool; unlike stats_ this is never
  /// reset, so `resident_pages() <= lifetime_admissions_` is an invariant
  /// that ValidateBufferPool can check across ResetStats()/Clear() calls.
  uint64_t lifetime_admissions_ = 0;
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> table_;
  std::unordered_map<PageId, uint32_t> pins_;  // page -> nested pin count
};

/// Deep structural check (also declared in debug/validate.h): frame/page
/// table bijection, pin-count consistency, capacity and admission-counter
/// invariants.  Returns a Status naming the first violation.
Status ValidateBufferPool(const BufferPool& pool);

struct BufferPool::Corrupter {
  /// Breaks the frame/page-table bijection: the LRU list keeps the page
  /// but the table forgets it.
  static void DropTableEntry(BufferPool* pool, PageId page) {
    pool->table_.erase(page);
  }
  /// Records a pin for a page that is not resident.
  static void PhantomPin(BufferPool* pool, PageId page) {
    pool->pins_[page] = 1;
  }
  /// Rewinds the lifetime admission counter below the resident count.
  static void RewindAdmissions(BufferPool* pool) {
    pool->lifetime_admissions_ = 0;
  }
};

}  // namespace stpq

#endif  // STPQ_STORAGE_BUFFER_POOL_H_
