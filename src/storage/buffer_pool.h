// Simulated disk-resident storage: an LRU buffer pool over index pages.
//
// The paper evaluates over "large disk-resident data" and reports execution
// time split into I/O and CPU.  Index nodes in this library live in memory,
// but every node access is charged through a BufferPool: a miss counts as
// one page read (one I/O), a hit is free.  Benchmarks convert page reads to
// I/O time with a configurable per-read unit cost, reproducing the paper's
// dark/white bar breakdown without a physical disk.
//
// Pages can be pinned: a pinned page is never evicted, so callers that hold
// references into a frame across other accesses (future iterator/cursor
// work) keep their page resident.  Pinning is fallible — a pool whose every
// frame is pinned reports FailedPrecondition instead of evicting or
// crashing.
//
// Representation (DESIGN.md §13).  The pool is an intrusive doubly linked
// LRU chain threaded through a frame array (index-based prev/next links,
// pin count inline) plus an open-addressing page table mapping PageId to
// frame index.  Hits, misses, admissions and evictions are all O(1) with
// no per-operation allocation: evicted frames go on a free list and are
// reused in place, so a bounded pool allocates at most capacity+1 frames
// over its whole lifetime.  The observable behavior — exact LRU eviction
// order, pin/read-through semantics, every counter — is identical to the
// previous std::list + unordered_map implementation; the golden I/O test
// pins that equivalence.
//
// Concurrency model (DESIGN.md §11).  The shared LRU state is protected by
// a mutex, so direct Access/Pin/Clear calls are safe from any thread.  The
// hit/read counters are relaxed atomics written under the mutex, which
// makes stats() lock-free.  Query execution never contends on the mutex in
// the default configuration: each query binds a BufferPool::Session to its
// thread (see ScopedBind), and Access() charges the session instead of the
// pool.  An *isolated* session simulates its own private cold pool of the
// same capacity — no shared mutation at all (the private pool skips the
// mutex entirely; the session is single-threaded by construction), and
// page-read counts that are byte-identical to a sequential
// cold_cache_per_query run regardless of how many sessions run in
// parallel.  A *shared* session routes through the locked pool (pages stay
// warm across queries) and records the hits and misses attributable to
// this session; those counts then depend on cross-query interleaving,
// exactly as a physical warm cache would.
#ifndef STPQ_STORAGE_BUFFER_POOL_H_
#define STPQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/attributes.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace stpq {

class PageStore;

using PageId = uint64_t;

/// Default simulated page size; node fan-out is derived from it.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Page-id namespace stride between indexes sharing one pool (and one
/// PageStore): the object index owns pages [0, stride), feature index i
/// owns [stride * (i + 1), stride * (i + 2)).  Node id == offset within
/// the index's range, which the persisted file format relies on.
inline constexpr PageId kIndexPageStride = PageId{1} << 32;

/// Counters exposed by a BufferPool.
struct BufferPoolStats {
  uint64_t reads = 0;  ///< misses: simulated page reads from disk
  uint64_t hits = 0;   ///< accesses served from the pool

  /// Per-field saturating difference: subtracting a *newer* snapshot from
  /// an older one (a caller bug, or counters reset between snapshots)
  /// yields 0 instead of wrapping around to ~2^64 bogus reads.
  BufferPoolStats operator-(const BufferPoolStats& other) const {
    return {reads >= other.reads ? reads - other.reads : 0,
            hits >= other.hits ? hits - other.hits : 0};
  }
};

/// LRU page cache.  capacity_pages == 0 means "unbounded": every page is
/// read from disk exactly once and then pinned forever (an infinite cache).
class BufferPool {
 public:
  class Session;
  class ScopedBind;

  /// `store`, when non-null, is the physical backend: every miss triggers
  /// one PageStore::FetchPage after it has been counted, so hit/miss/evict
  /// accounting is identical across backends.  A null store is the
  /// simulated default (a miss is only a counter tick).  The store must
  /// outlive the pool and may be shared between pools.
  explicit BufferPool(uint64_t capacity_pages = 0, PageStore* store = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Touches `page`; returns true on a hit, false on a miss (a simulated
  /// disk read).  On a miss the page is admitted, evicting the least
  /// recently used *unpinned* page if the pool is full; when every other
  /// resident page is pinned the new page itself is dropped again (an
  /// uncached read-through), so pinned residents are never displaced.
  ///
  /// When a Session is bound to the calling thread (ScopedBind), the access
  /// is charged to the session instead; see the class comment.
  STPQ_HOT bool Access(PageId page) STPQ_EXCLUDES(mu_);

  /// Ensures `page` is resident (counting the read on a miss) and pins it.
  /// Pins nest: each Pin must be matched by one Unpin.  Fails with
  /// FailedPrecondition when the pool is full and every frame is pinned.
  /// Always operates on the shared pool, never on a bound session (the
  /// query path does not pin; pinning is a direct-pool API).
  [[nodiscard]] Status Pin(PageId page) STPQ_EXCLUDES(mu_);

  /// Releases one pin on `page`; fails if the page is not pinned.
  [[nodiscard]] Status Unpin(PageId page) STPQ_EXCLUDES(mu_);

  /// Drops all cached pages (simulates a cold cache between workloads).
  /// Must not be called with outstanding pins.
  void Clear() STPQ_EXCLUDES(mu_);

  /// Resets the counters without dropping pages.
  void ResetStats() STPQ_EXCLUDES(mu_);

  /// Counter snapshot.  With a Session bound to the calling thread this
  /// returns the *session's* counters, so code computing read deltas (e.g.
  /// Voronoi cell accounting) attributes I/O to the executing query.
  /// Lock-free on the shared pool (the counters are atomics).
  BufferPoolStats stats() const;

  [[nodiscard]] uint64_t capacity_pages() const { return capacity_; }
  /// The physical backend serving misses, or nullptr (simulated).
  [[nodiscard]] PageStore* page_store() const { return store_; }
  [[nodiscard]] uint64_t resident_pages() const STPQ_EXCLUDES(mu_);
  [[nodiscard]] uint64_t pinned_pages() const STPQ_EXCLUDES(mu_);

  /// Current pin count of `page` (0 when unpinned or not resident).
  [[nodiscard]] uint32_t PinCount(PageId page) const STPQ_EXCLUDES(mu_);

  /// Deliberate-corruption backdoor for invariant tests; never used by
  /// library code.
  struct Corrupter;

 private:
  friend Status ValidateBufferPool(const BufferPool& pool);
  friend struct Corrupter;
  friend class Session;

  /// Sentinel frame index: chain terminator / empty page-table slot.
  static constexpr uint32_t kNilFrame = 0xffffffffu;

  /// One page frame.  `prev`/`next` thread the frame through either the
  /// LRU chain (resident frames) or the free list (`next` only).
  struct Frame {
    PageId page = 0;
    uint32_t prev = kNilFrame;
    uint32_t next = kNilFrame;
    uint32_t pins = 0;
  };

  /// Open-addressing PageId -> frame-index map: linear probing over a
  /// power-of-two slot array, backward-shift deletion (no tombstones).
  /// Never shrinks, and Clear() keeps the slot array, so a warm pool
  /// re-fills without allocating.
  class PageTable {
   public:
    /// Frame index for `page`, or kNilFrame when absent.
    uint32_t Find(PageId page) const;
    /// `page` must not be present.
    void Insert(PageId page, uint32_t frame);
    /// No-op when `page` is absent (Corrupter uses that leniency).
    void Erase(PageId page);
    void Clear();
    [[nodiscard]] size_t size() const { return size_; }

   private:
    struct Slot {
      PageId page = 0;
      uint32_t frame = kNilFrame;  ///< kNilFrame marks an empty slot
    };

    static uint64_t Hash(PageId page);
    void Grow();

    std::vector<Slot> slots_;  ///< power-of-two size; empty until first use
    size_t size_ = 0;
  };

  /// The session bound to this pool on the calling thread, or nullptr.
  Session* CurrentSession() const;

  /// Shared-pool access under the mutex (the pre-session code path).
  STPQ_HOT bool AccessLocked(PageId page) STPQ_EXCLUDES(mu_);

  /// Access body; callers hold mu_ (AccessSingleThreaded is the one
  /// audited exception for exclusively owned private pools).
  STPQ_HOT bool AccessInternal(PageId page) STPQ_REQUIRES(mu_);

  /// AccessInternal on a pool that is single-threaded by construction (an
  /// isolated session's private pool, reachable only through the owning
  /// thread's binding): skips the mutex, so the thread-safety analysis is
  /// disabled at exactly this boundary instead of being silenced at every
  /// touched member.
  STPQ_HOT bool AccessSingleThreaded(PageId page)
      STPQ_NO_THREAD_SAFETY_ANALYSIS;

  /// Evicts the least recently used unpinned page (possibly the page that
  /// was just admitted, which is the read-through case).  Same locking
  /// contract as AccessInternal.
  void EvictOneUnpinned() STPQ_REQUIRES(mu_);

  // Intrusive-chain helpers; same locking contract as AccessInternal.
  void Unlink(uint32_t f) STPQ_REQUIRES(mu_);
  void LinkFront(uint32_t f) STPQ_REQUIRES(mu_);
  /// Pops the free list or grows frames_.
  uint32_t AcquireFrame() STPQ_REQUIRES(mu_);
  /// Pushes a frame on the free list.
  void ReleaseFrame(uint32_t f) STPQ_REQUIRES(mu_);

  mutable Mutex mu_;
  uint64_t capacity_;
  /// Physical backend (null = simulated).  Immutable after construction,
  /// so the miss path reads it without the lock's protection mattering.
  PageStore* store_;
  /// static_cast<uint8_t>(store_->backend()), or 0 when store_ is null;
  /// stamped into kPoolMiss trace events as arg_a.
  uint8_t backend_tag_;
  /// Counters are atomics so stats() is lock-free; every writer runs under
  /// mu_ (or single-threaded, for isolated-session private pools), so
  /// relaxed ordering suffices.
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> hits_{0};
  /// Total pages ever admitted to the pool; unlike the stats counters this
  /// is never reset, so `resident_pages() <= lifetime_admissions_` is an
  /// invariant that ValidateBufferPool can check across
  /// ResetStats()/Clear() calls.
  uint64_t lifetime_admissions_ STPQ_GUARDED_BY(mu_) = 0;
  std::vector<Frame> frames_ STPQ_GUARDED_BY(mu_);
  /// Most recently used.
  uint32_t head_ STPQ_GUARDED_BY(mu_) = kNilFrame;
  /// Least recently used.
  uint32_t tail_ STPQ_GUARDED_BY(mu_) = kNilFrame;
  /// Free list, singly linked via next.
  uint32_t free_head_ STPQ_GUARDED_BY(mu_) = kNilFrame;
  /// Resident frames in the LRU chain.
  uint64_t chain_size_ STPQ_GUARDED_BY(mu_) = 0;
  /// Resident frames with pins > 0.
  uint64_t pinned_count_ STPQ_GUARDED_BY(mu_) = 0;
  PageTable table_ STPQ_GUARDED_BY(mu_);
};

/// Per-query read accounting against one shared pool (see the BufferPool
/// class comment).  A session is single-threaded by construction: it is
/// only reachable through the thread-local ScopedBind of the thread
/// executing the query, so its counters (and its private pool, in isolated
/// mode) need no synchronization.
class BufferPool::Session {
 public:
  /// `shared` must outlive the session.  `isolated` selects the private
  /// cold-pool mode (deterministic counts, zero shared-state contention);
  /// otherwise accesses go through the locked shared pool and this session
  /// records its own share of the traffic.  Only an isolated session
  /// allocates a private pool; shared-mode sessions carry two counters and
  /// two pointers, nothing else.
  Session(BufferPool* shared, bool isolated)
      : shared_(shared),
        isolated_(isolated),
        private_pool_(isolated ? std::make_unique<BufferPool>(
                                     shared->capacity_pages(),
                                     shared->page_store())
                               : nullptr) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Charges one page access to this session; returns true on a hit.
  STPQ_HOT bool Access(PageId page);

  /// Pages read (misses) and hits charged to this session so far.
  BufferPoolStats stats() const;

  [[nodiscard]] bool isolated() const { return isolated_; }
  [[nodiscard]] BufferPool* shared_pool() const { return shared_; }

  /// Whether the private cold pool exists (isolated mode only; test hook
  /// for "shared sessions allocate no private pool").
  [[nodiscard]] bool has_private_pool() const {
    return private_pool_ != nullptr;
  }

 private:
  friend class BufferPool::ScopedBind;

  BufferPool* shared_;
  bool isolated_;
  /// Isolated mode: same capacity as the shared pool, starts cold.
  std::unique_ptr<BufferPool> private_pool_;
  BufferPoolStats stats_;  ///< shared mode: this session's traffic
};

/// RAII thread-local binding: while alive, Access()/stats() calls on the
/// session's shared pool made *from this thread* are routed to the session.
/// Bindings nest LIFO (e.g. a cursor drained inside another query's scope);
/// the innermost binding for a given pool wins.
class BufferPool::ScopedBind {
 public:
  explicit ScopedBind(Session* session);
  ~ScopedBind();

  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;
};

/// Deep structural check (also declared in debug/validate.h): LRU-chain
/// link and page-table bijection, pin-count consistency, capacity and
/// admission-counter invariants.  Returns a Status naming the first
/// violation.  Only meaningful on a quiescent pool (no concurrent
/// accessors).
[[nodiscard]] Status ValidateBufferPool(const BufferPool& pool);

// The corrupters mutate guarded state without the lock by design: they run
// on quiescent pools in invariant tests, and taking the mutex would hide
// exactly the raw-state damage they exist to inflict.
struct BufferPool::Corrupter {
  /// Breaks the frame/page-table bijection: the LRU chain keeps the page
  /// but the table forgets it.
  static void DropTableEntry(BufferPool* pool,
                             PageId page) STPQ_NO_THREAD_SAFETY_ANALYSIS {
    pool->table_.Erase(page);
  }
  /// Breaks the intrusive chain: the LRU tail's back-link points at
  /// itself instead of its predecessor.
  static void BreakLruBackLink(BufferPool* pool)
      STPQ_NO_THREAD_SAFETY_ANALYSIS {
    if (pool->tail_ != kNilFrame) {
      pool->frames_[pool->tail_].prev = pool->tail_;
    }
  }
  /// Rewinds the lifetime admission counter below the resident count.
  static void RewindAdmissions(BufferPool* pool)
      STPQ_NO_THREAD_SAFETY_ANALYSIS {
    pool->lifetime_admissions_ = 0;
  }
};

}  // namespace stpq

#endif  // STPQ_STORAGE_BUFFER_POOL_H_
