// The SRT-index keyword mapping of Section 4.2.
//
// A keyword set over a w-term vocabulary is a binary vector of length w;
// its Hilbert value is its position on the order-1 Hilbert walk of the
// w-dimensional unit hypercube.  For order 1, Skilling's transform reduces
// to a prefix-XOR (Gray) transform of the vector, so consecutive Hilbert
// values differ in exactly one keyword and a Hilbert distance of w' bounds
// the number of differing keywords by w' — the locality property the paper
// exploits to cluster textually similar features in the same index node.
//
// The paper's Figure 5 ordering for w=3 (000,010,011,001,101,111,110,100)
// is this walk up to a fixed permutation of the dimension labels; the
// locality guarantees are identical.
#ifndef STPQ_HILBERT_KEYWORD_HILBERT_H_
#define STPQ_HILBERT_KEYWORD_HILBERT_H_

#include <compare>
#include <cstdint>
#include <vector>

#include "text/keyword_set.h"

namespace stpq {

/// A w-bit Hilbert value, stored most-significant-word first with
/// dimension 0 (the first keyword) at bit 63 of word 0.
class HilbertValue {
 public:
  HilbertValue() = default;
  explicit HilbertValue(uint32_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  uint32_t bits() const { return bits_; }
  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& words() { return words_; }

  /// Numeric comparison (dimension 0 is the most significant bit).
  std::strong_ordering operator<=>(const HilbertValue& other) const;
  bool operator==(const HilbertValue& other) const = default;

  /// The value normalized into [0, 1), using the leading 64 bits.  This is
  /// the coordinate the SRT-index uses for the 4th tree dimension; the exact
  /// node summaries keep the bound computation exact regardless of this
  /// truncation (Section 4.2: the index choice affects only performance).
  double ToUnitDouble() const;

 private:
  uint32_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Maps a keyword set to its Hilbert value, H(t.W).
HilbertValue EncodeKeywords(const KeywordSet& set);

/// Inverse mapping: recovers the keyword set from a Hilbert value.
KeywordSet DecodeKeywords(const HilbertValue& value, uint32_t universe_size);

/// The SRT node-summary update (Section 4.2): both values are mapped back
/// to binary vectors, OR-ed, and the disjunction is re-encoded.
HilbertValue AggregateHilbert(const HilbertValue& a, const HilbertValue& b,
                              uint32_t universe_size);

}  // namespace stpq

#endif  // STPQ_HILBERT_KEYWORD_HILBERT_H_
