#include "hilbert/hilbert.h"

#include <algorithm>

#include "util/logging.h"

namespace stpq {

void AxesToTranspose(uint32_t* x, int b, int n) {
  uint32_t m = uint32_t{1} << (b - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        uint32_t t = (x[0] ^ x[i]) & p;  // exchange
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(uint32_t* x, int b, int n) {
  uint32_t nbit = uint32_t{2} << (b - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != nbit; q <<= 1) {
    uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        uint32_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

uint64_t HilbertKey(const uint32_t* coords, int b, int n) {
  STPQ_DCHECK(b >= 1 && n >= 1 && b * n <= 64);
  uint32_t x[16];
  STPQ_CHECK(n <= 16);
  std::copy(coords, coords + n, x);
  AxesToTranspose(x, b, n);
  // Interleave the transposed bits, most significant bit-plane first.
  uint64_t key = 0;
  for (int j = b - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) {
      key = (key << 1) | ((x[i] >> j) & 1u);
    }
  }
  return key;
}

void HilbertKeyToAxes(uint64_t key, int b, int n, uint32_t* coords) {
  STPQ_DCHECK(b >= 1 && n >= 1 && b * n <= 64);
  uint32_t x[16];
  STPQ_CHECK(n <= 16);
  std::fill(x, x + n, 0u);
  // De-interleave: the key's MSB belongs to bit-plane (b-1) of x[0].
  int bit = b * n - 1;
  for (int j = b - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) {
      x[i] |= static_cast<uint32_t>((key >> bit) & 1u) << j;
      --bit;
    }
  }
  TransposeToAxes(x, b, n);
  std::copy(x, x + n, coords);
}

uint64_t HilbertKeyFromUnit(const double* unit_coords, int b, int n) {
  uint32_t coords[16];
  STPQ_CHECK(n <= 16);
  const uint32_t max_coord = (uint32_t{1} << b) - 1;
  for (int i = 0; i < n; ++i) {
    double v = std::clamp(unit_coords[i], 0.0, 1.0);
    uint32_t q = static_cast<uint32_t>(v * static_cast<double>(max_coord + 1));
    coords[i] = std::min(q, max_coord);
  }
  return HilbertKey(coords, b, n);
}

}  // namespace stpq
