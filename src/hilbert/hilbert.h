// Hilbert curve transcoding (Skilling's algorithm) for small dimensions.
//
// Used for Hilbert bulk loading (Kamel & Faloutsos [9], as the paper uses
// for the SRT-index): each record is mapped to a Hilbert key of its
// quantized coordinates, records are sorted by key and packed bottom-up.
#ifndef STPQ_HILBERT_HILBERT_H_
#define STPQ_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

namespace stpq {

/// In-place conversion of `n` coordinates of `b` bits each into the
/// "transposed" Hilbert index (Skilling, AIP Conf. Proc. 707, 2004).
/// After the call, reading bit (b-1-j) of x[0..n-1] for j = 0..b-1 in
/// row-major order yields the Hilbert index MSB-first.
void AxesToTranspose(uint32_t* x, int b, int n);

/// Inverse of AxesToTranspose.
void TransposeToAxes(uint32_t* x, int b, int n);

/// Hilbert index of `n` coordinates (each < 2^b) packed into a uint64.
/// Requires n * b <= 64.
uint64_t HilbertKey(const uint32_t* coords, int b, int n);

/// Inverse of HilbertKey: decodes `key` into `n` coordinates of `b` bits.
void HilbertKeyToAxes(uint64_t key, int b, int n, uint32_t* coords);

/// Convenience: Hilbert key of a point with coordinates in [0,1]^n,
/// quantized to `b` bits per dimension.  Coordinates outside [0,1] are
/// clamped.  Requires n * b <= 64.
uint64_t HilbertKeyFromUnit(const double* unit_coords, int b, int n);

}  // namespace stpq

#endif  // STPQ_HILBERT_HILBERT_H_
