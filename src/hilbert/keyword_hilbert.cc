#include "hilbert/keyword_hilbert.h"

#include <bit>

#include "util/logging.h"

namespace stpq {

namespace {

uint64_t BitReverse64(uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ULL) | ((v & 0x5555555555555555ULL) << 1);
  v = ((v >> 2) & 0x3333333333333333ULL) | ((v & 0x3333333333333333ULL) << 2);
  v = ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL) | ((v & 0x0F0F0F0F0F0F0F0FULL) << 4);
  v = ((v >> 8) & 0x00FF00FF00FF00FFULL) | ((v & 0x00FF00FF00FF00FFULL) << 8);
  v = ((v >> 16) & 0x0000FFFF0000FFFFULL) |
      ((v & 0x0000FFFF0000FFFFULL) << 16);
  return (v >> 32) | (v << 32);
}

/// Prefix-XOR from the MSB downward within one word: output bit j becomes
/// the parity of input bits 63..j.
uint64_t PrefixXorMsbFirst(uint64_t v) {
  v ^= v >> 1;
  v ^= v >> 2;
  v ^= v >> 4;
  v ^= v >> 8;
  v ^= v >> 16;
  v ^= v >> 32;
  return v;
}

}  // namespace

std::strong_ordering HilbertValue::operator<=>(
    const HilbertValue& other) const {
  STPQ_DCHECK(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != other.words_[i]) {
      return words_[i] < other.words_[i] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

double HilbertValue::ToUnitDouble() const {
  if (words_.empty()) return 0.0;
  // 2^-64 scaling of the leading word; values land in [0, 1).
  return static_cast<double>(words_[0]) * 5.421010862427522e-20;
}

HilbertValue EncodeKeywords(const KeywordSet& set) {
  const uint32_t w = set.universe_size();
  HilbertValue out(w);
  // Keyword bitmaps are LSB-first; the Hilbert value wants dimension 0 at
  // the most significant position, so each block is bit-reversed.
  const std::vector<uint64_t>& blocks = set.blocks();
  std::vector<uint64_t>& words = out.words();
  uint64_t carry_parity = 0;  // parity of all vector bits in earlier words
  for (size_t i = 0; i < blocks.size(); ++i) {
    uint64_t v = BitReverse64(blocks[i]);
    uint64_t t = PrefixXorMsbFirst(v);
    if (carry_parity) t = ~t;
    words[i] = t;
    carry_parity ^= static_cast<uint64_t>(std::popcount(blocks[i])) & 1u;
  }
  // Zero bits beyond the universe so equal sets compare equal.
  uint32_t tail = w % 64;
  if (tail != 0 && !words.empty()) {
    words.back() &= ~uint64_t{0} << (64 - tail);
  }
  return out;
}

KeywordSet DecodeKeywords(const HilbertValue& value, uint32_t universe_size) {
  STPQ_DCHECK(value.bits() == universe_size);
  const std::vector<uint64_t>& words = value.words();
  std::vector<uint64_t> blocks(words.size(), 0);
  // v[d] = h[d] XOR h[d-1]; with MSB-first storage this is
  // h ^ (h >> 1) with the previous word's lowest bit carried into bit 63.
  uint64_t carry = 0;  // previous word's bit 0
  for (size_t i = 0; i < words.size(); ++i) {
    uint64_t h = words[i];
    uint64_t v = h ^ ((h >> 1) | (carry << 63));
    carry = h & 1u;
    blocks[i] = BitReverse64(v);
  }
  // Mask bits beyond the universe.
  uint32_t tail = universe_size % 64;
  if (tail != 0 && !blocks.empty()) {
    blocks.back() &= (uint64_t{1} << tail) - 1;
  }
  return KeywordSet::FromBlocks(universe_size, std::move(blocks));
}

HilbertValue AggregateHilbert(const HilbertValue& a, const HilbertValue& b,
                              uint32_t universe_size) {
  KeywordSet va = DecodeKeywords(a, universe_size);
  KeywordSet vb = DecodeKeywords(b, universe_size);
  va.UnionWith(vb);
  return EncodeKeywords(va);
}

}  // namespace stpq
