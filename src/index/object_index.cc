#include "index/object_index.h"

#include "debug/validate.h"
#include "obs/trace.h"
#include "rtree/bulk_load.h"

namespace stpq {

namespace {
RTreeOptions MakeTreeOptions(const ObjectIndexOptions& opts) {
  RTreeOptions t;
  t.max_entries = FanOutForPage(opts.page_size_bytes, 2, /*aug_bytes=*/0);
  t.buffer_pool = opts.buffer_pool;
  t.page_base = opts.page_base;
  return t;
}
}  // namespace

ObjectIndex::ObjectIndex(const std::vector<DataObject>* objects,
                         const ObjectIndexOptions& options)
    : objects_(objects), tree_(MakeTreeOptions(options)) {
  using Entry = RTree<2>::Entry;
  std::vector<Entry> records;
  records.reserve(objects_->size());
  for (size_t i = 0; i < objects_->size(); ++i) {
    records.push_back(
        Entry{PointRect((*objects_)[i].pos), static_cast<uint32_t>(i), {}});
  }
  domain_ = ComputeDomain<2, NoAug>(records);
  SortByHilbertKey<2, NoAug>(&records, domain_, /*bits_per_dim=*/16);
  tree_.BulkLoadSorted(records, options.fill);
  STPQ_VALIDATE(ValidateObjectIndex(*this));
}

ObjectIndex::ObjectIndex(const std::vector<DataObject>* objects,
                         const ObjectIndexOptions& options,
                         RestoredTreeData<2, NoAug> restored)
    : objects_(objects), tree_(MakeTreeOptions(options)) {
  AdoptRestoredTree(&tree_, std::move(restored));
  domain_ = Rect2::Empty();
  for (const DataObject& o : *objects_) domain_.Enlarge(PointRect(o.pos));
  STPQ_VALIDATE(ValidateObjectIndex(*this));
}

std::vector<ObjectId> ObjectIndex::RangeQuery(const Point& center,
                                              double radius,
                                              QueryStats* stats) const {
  std::vector<ObjectId> out;
  if (tree_.root_id() == kInvalidNodeId) return out;
  Rect2 box = MakeRect2(center.x - radius, center.y - radius,
                        center.x + radius, center.y + radius);
  const double r2 = radius * radius;
  // Same traversal as RTree::ForEachInRange (LIFO stack, identical page
  // order), unrolled here so node expansions can feed the traversal
  // profile.
  std::vector<NodeId> stack{tree_.root_id()};
  while (!stack.empty()) {
    NodeId nid = stack.back();
    stack.pop_back();
    const RTree<2>::Node& node = tree_.ReadNode(nid);
    uint32_t pruned = 0;
    uint32_t descended = 0;
    for (const auto& e : node.entries) {
      if (!box.Intersects(e.rect)) {
        ++pruned;
        continue;
      }
      if (node.IsLeaf()) {
        Point p{e.rect.lo[0], e.rect.lo[1]};
        if (SquaredDistance(p, center) <= r2) {
          out.push_back(e.id);
          ++descended;
        } else {
          ++pruned;
        }
      } else {
        stack.push_back(e.id);
        ++descended;
      }
    }
    if (stats != nullptr) {
      RecordNodeVisit(*stats, kTraceObjectTree, node.level, nid, pruned,
                      descended);
    }
  }
  return out;
}

void ObjectIndex::ForEachLeafBlock(
    const std::function<void(std::span<const ObjectId>, const Rect2&)>& fn,
    QueryStats* stats) const {
  if (tree_.root_id() == kInvalidNodeId) return;
  std::vector<NodeId> stack{tree_.root_id()};
  std::vector<ObjectId> ids;
  while (!stack.empty()) {
    NodeId nid = stack.back();
    stack.pop_back();
    const RTree<2>::Node& node = tree_.ReadNode(nid);
    if (node.IsLeaf()) {
      ids.clear();
      Rect2 mbr = Rect2::Empty();
      for (const auto& e : node.entries) {
        ids.push_back(e.id);
        mbr.Enlarge(e.rect);
      }
      fn(ids, mbr);
    } else {
      for (const auto& e : node.entries) stack.push_back(e.id);
    }
    if (stats != nullptr) {
      // A full scan prunes nothing: every entry is handed on.
      RecordNodeVisit(*stats, kTraceObjectTree, node.level, nid, 0,
                      static_cast<uint32_t>(node.entries.size()));
    }
  }
}

}  // namespace stpq
