// Object model: data objects (ranked) and feature objects (facilities).
#ifndef STPQ_INDEX_FEATURE_H_
#define STPQ_INDEX_FEATURE_H_

#include <cstdint>
#include <string>

#include "geom/point.h"
#include "text/keyword_set.h"

namespace stpq {

using ObjectId = uint32_t;

/// A data object p in O: the entities being ranked (e.g. hotels).
struct DataObject {
  ObjectId id = 0;
  Point pos;
  std::string name;  ///< optional display name (examples/real-like data)
};

/// A feature object t in F_i: a facility with a quality score in [0,1] and
/// a textual description t.W (Section 3).
struct FeatureObject {
  ObjectId id = 0;
  Point pos;
  double score = 0.0;  ///< non-spatial score t.s
  KeywordSet keywords;  ///< t.W
  std::string name;    ///< optional display name
};

}  // namespace stpq

#endif  // STPQ_INDEX_FEATURE_H_
