// The modified IR2-tree baseline (Section 8).
//
// Felipe et al.'s IR2-tree [8] combines an R-tree with signature files; the
// paper modifies it for preference queries by storing, per leaf, the
// feature's non-spatial score, and per internal entry the max enclosed
// score.  The s-hat(e) bound uses the signature's (over-)estimate of
// |e.W n W|, which is a valid upper bound because signatures admit false
// positives but never false negatives.
#ifndef STPQ_INDEX_IR2_TREE_H_
#define STPQ_INDEX_IR2_TREE_H_

#include <vector>

#include "index/feature_index.h"
#include "index/srt_index.h"  // FeatureIndexOptions, BulkLoadKind
#include "rtree/rtree.h"
#include "text/signature.h"

namespace stpq {

/// Entry augmentation of the IR2-tree: max score + keyword signature.
struct Ir2Aug {
  double max_score = 0.0;
  Signature signature;

  static Ir2Aug Merge(const Ir2Aug& a, const Ir2Aug& b) {
    Ir2Aug out{std::max(a.max_score, b.max_score), a.signature};
    out.signature.UnionWith(b.signature);
    return out;
  }
};

/// The modified IR2-tree over one feature set.
class Ir2Tree : public FeatureIndex {
 public:
  /// Builds the index over `table` (not owned; must outlive the index).
  Ir2Tree(const FeatureTable* table, const FeatureIndexOptions& options);

  /// Restores a persisted index (storage/index_file.*); see the SrtIndex
  /// counterpart.  The signature scheme is re-derived from `options` and
  /// the table's universe, which the file format records.
  Ir2Tree(const FeatureTable* table, const FeatureIndexOptions& options,
          RestoredTreeData<2, Ir2Aug> restored);

  NodeId RootId() const override;
  uint16_t NodeLevel(NodeId node_id) const override {
    return tree_.PeekNode(node_id).level;
  }
  void VisitChildren(NodeId node_id, const KeywordSet& query_kw,
                     double lambda,
                     std::vector<FeatureBranch>* out) const override;
  const FeatureTable& table() const override { return *table_; }
  BufferPool* buffer_pool() const override;
  const char* Name() const override { return "IR2"; }

  const RTree<2, Ir2Aug>& tree() const { return tree_; }
  const SignatureScheme& scheme() const { return scheme_; }

  /// Mutable tree access for deliberate-corruption invariant tests only.
  [[nodiscard]] RTree<2, Ir2Aug>& mutable_tree_for_test() { return tree_; }

 private:
  const FeatureTable* table_;
  SignatureScheme scheme_;
  RTree<2, Ir2Aug> tree_;
};

}  // namespace stpq

#endif  // STPQ_INDEX_IR2_TREE_H_
