#include "index/ir2_tree.h"

#include "debug/validate.h"
#include "rtree/bulk_load.h"

namespace stpq {

namespace {

uint32_t EffectiveSignatureBits(const FeatureIndexOptions& opts,
                                uint32_t universe_size) {
  // The signature must scale with the vocabulary so that larger keyword
  // universes preserve selectivity (the paper's Fig 7(d) observes node
  // capacity dropping with more indexed keywords for both indexes).
  return opts.signature_bits != 0 ? opts.signature_bits
                                  : std::max(64u, 2 * universe_size);
}

RTreeOptions MakeTreeOptions(const FeatureIndexOptions& opts,
                             uint32_t signature_bits) {
  RTreeOptions t;
  uint32_t aug_bytes = 8 + signature_bits / 8;
  t.max_entries = FanOutForPage(opts.page_size_bytes, 2, aug_bytes);
  t.buffer_pool = opts.buffer_pool;
  t.page_base = opts.page_base;
  return t;
}

}  // namespace

Ir2Tree::Ir2Tree(const FeatureTable* table, const FeatureIndexOptions& options)
    : FeatureIndex(options.set_ordinal),
      table_(table),
      scheme_(EffectiveSignatureBits(options, table->universe_size()),
              options.signature_hashes),
      tree_(MakeTreeOptions(options, scheme_.signature_bits())) {
  using Entry = RTree<2, Ir2Aug>::Entry;
  std::vector<Entry> records;
  records.reserve(table_->size());
  for (const FeatureObject& f : table_->All()) {
    records.push_back(Entry{PointRect(f.pos), f.id,
                            Ir2Aug{f.score, scheme_.SetSignature(f.keywords)}});
  }
  switch (options.bulk_load) {
    case BulkLoadKind::kHilbert: {
      // Spatial-only Hilbert packing: the IR2-tree clusters by location.
      Rect2 domain = ComputeDomain<2, Ir2Aug>(records);
      SortByHilbertKey<2, Ir2Aug>(&records, domain, /*bits_per_dim=*/16);
      tree_.BulkLoadSorted(records, options.fill);
      break;
    }
    case BulkLoadKind::kStr: {
      SortSTR<2, Ir2Aug>(&records, tree_.options().max_entries);
      tree_.BulkLoadSorted(records, options.fill);
      break;
    }
    case BulkLoadKind::kInsert: {
      for (const Entry& r : records) tree_.Insert(r.rect, r.id, r.aug);
      break;
    }
  }
  STPQ_VALIDATE(ValidateIr2Tree(*this));
}

Ir2Tree::Ir2Tree(const FeatureTable* table,
                 const FeatureIndexOptions& options,
                 RestoredTreeData<2, Ir2Aug> restored)
    : FeatureIndex(options.set_ordinal),
      table_(table),
      scheme_(EffectiveSignatureBits(options, table->universe_size()),
              options.signature_hashes),
      tree_(MakeTreeOptions(options, scheme_.signature_bits())) {
  AdoptRestoredTree(&tree_, std::move(restored));
  STPQ_VALIDATE(ValidateIr2Tree(*this));
}

NodeId Ir2Tree::RootId() const { return tree_.root_id(); }

BufferPool* Ir2Tree::buffer_pool() const {
  return tree_.options().buffer_pool;
}

void Ir2Tree::VisitChildren(NodeId node_id, const KeywordSet& query_kw,
                            double lambda,
                            std::vector<FeatureBranch>* out) const {
  out->clear();
  const RTree<2, Ir2Aug>::Node& node = tree_.ReadNode(node_id);
  const uint32_t query_count = query_kw.Count();
  out->reserve(node.entries.size());
  for (const auto& e : node.entries) {
    FeatureBranch b;
    b.id = e.id;
    b.is_feature = node.IsLeaf();
    b.mbr = e.rect;
    if (b.is_feature) {
      const FeatureObject& f = table_->Get(e.id);
      double sim = f.keywords.Jaccard(query_kw);
      b.score_bound = (1.0 - lambda) * f.score + lambda * sim;
      b.text_match = sim > 0.0;
    } else {
      uint32_t inter = scheme_.UpperBoundIntersect(e.aug.signature, query_kw);
      double text_bound =
          query_count > 0
              ? static_cast<double>(inter) / static_cast<double>(query_count)
              : 0.0;
      b.score_bound = (1.0 - lambda) * e.aug.max_score + lambda * text_bound;
      b.text_match = inter > 0;
    }
    out->push_back(std::move(b));
  }
}

}  // namespace stpq
