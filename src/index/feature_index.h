// FeatureIndex: the common abstraction over the paper's feature indexes.
//
// Section 4.1: any hierarchical spatio-textual index works, provided each
// entry e maintains (i) the max non-spatial score e.s below it and (ii) a
// keyword summary e.W, so that a query-time bound s-hat(e) >= s(t) holds
// for every descendant feature t.  STDS's score computation (Algorithm 2)
// and STPS's sorted feature retrieval (Algorithm 4) are written once against
// this interface; the SRT-index and the modified IR2-tree implement it.
#ifndef STPQ_INDEX_FEATURE_INDEX_H_
#define STPQ_INDEX_FEATURE_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "index/feature_table.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"

namespace stpq {

/// One child of a visited index node, with everything the algorithms need:
/// spatial extent for distance pruning, the score bound s-hat(e) for
/// priority ordering, and the textual sim-may-be-positive filter.
struct FeatureBranch {
  uint32_t id = 0;        ///< feature id if is_feature, else child node id
  bool is_feature = false;
  Rect2 mbr;              ///< spatial MBR (degenerate point for features)
  double score_bound = 0.0;  ///< s-hat(e); exact s(t) for features
  bool text_match = false;   ///< whether sim(., W) may be > 0
};

/// Read-only hierarchical access to one indexed feature set.
class FeatureIndex {
 public:
  virtual ~FeatureIndex() = default;

  /// Root node id, or kInvalidNodeId for an empty index.
  virtual NodeId RootId() const = 0;

  /// Tree level of `node_id` (0 = leaf).  Metadata peek for the traversal
  /// profile (util/metrics.h); charges no page access.
  virtual uint16_t NodeLevel(NodeId node_id) const = 0;

  /// Appends the children of `node_id` to `out` (which is cleared first),
  /// computing score bounds against the query keywords `query_kw` and the
  /// smoothing parameter `lambda`.  Charges one page access.
  virtual void VisitChildren(NodeId node_id, const KeywordSet& query_kw,
                             double lambda,
                             std::vector<FeatureBranch>* out) const = 0;

  /// The record store this index was built over.
  virtual const FeatureTable& table() const = 0;

  /// The buffer pool charged by this index (for I/O accounting).
  virtual BufferPool* buffer_pool() const = 0;

  /// Human-readable index name ("SRT", "IR2"), for benchmark labels.
  virtual const char* Name() const = 0;

  /// Position of this index's feature set in the engine's table order;
  /// addresses the per-set slice of TraversalProfile.  0 for standalone
  /// indexes built outside an engine.
  uint32_t set_ordinal() const { return set_ordinal_; }

 protected:
  explicit FeatureIndex(uint32_t set_ordinal = 0)
      : set_ordinal_(set_ordinal) {}

 private:
  uint32_t set_ordinal_ = 0;
};

/// Which feature-index implementation to build (benchmark axis).
enum class FeatureIndexKind {
  kSrt,  ///< the paper's SRT-index (Section 4)
  kIr2,  ///< modified IR2-tree baseline (Section 8)
};

}  // namespace stpq

#endif  // STPQ_INDEX_FEATURE_INDEX_H_
