// FeatureTable: the record store for one feature set F_i.
//
// Feature indexes (SRT, IR2) reference records by id; leaf pages hold the
// full records, so record access is charged with the leaf's page read.
#ifndef STPQ_INDEX_FEATURE_TABLE_H_
#define STPQ_INDEX_FEATURE_TABLE_H_

#include <span>
#include <vector>

#include "geom/rect.h"
#include "index/feature.h"

namespace stpq {

/// Immutable-after-build collection of feature objects with their spatial
/// domain and keyword universe.
class FeatureTable {
 public:
  FeatureTable() = default;

  /// Takes ownership of the features; ids are reassigned to positions.
  FeatureTable(std::vector<FeatureObject> features, uint32_t universe_size);

  const FeatureObject& Get(ObjectId id) const { return features_[id]; }
  std::span<const FeatureObject> All() const { return features_; }
  size_t size() const { return features_.size(); }
  uint32_t universe_size() const { return universe_size_; }

  /// Spatial bounding box of all features.
  const Rect2& domain() const { return domain_; }

 private:
  std::vector<FeatureObject> features_;
  uint32_t universe_size_ = 0;
  Rect2 domain_ = Rect2::Empty();
};

}  // namespace stpq

#endif  // STPQ_INDEX_FEATURE_TABLE_H_
