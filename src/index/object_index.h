// ObjectIndex: the R-tree over the data objects O ("rtree" in the paper).
#ifndef STPQ_INDEX_OBJECT_INDEX_H_
#define STPQ_INDEX_OBJECT_INDEX_H_

#include <functional>
#include <span>
#include <vector>

#include "index/feature.h"
#include "rtree/rtree.h"
#include "util/metrics.h"

namespace stpq {

/// Build-time knobs for the object index.
struct ObjectIndexOptions {
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  BufferPool* buffer_pool = nullptr;
  PageId page_base = 0;
  double fill = 1.0;
};

/// 2-D R-tree over data objects, Hilbert bulk-loaded.
class ObjectIndex {
 public:
  /// Builds over `objects` (not owned; must outlive the index).
  ObjectIndex(const std::vector<DataObject>* objects,
              const ObjectIndexOptions& options);

  /// Restores a persisted index (storage/index_file.*): adopts the
  /// deserialized tree instead of bulk loading and recomputes the spatial
  /// domain from `objects` (deterministic, so it matches the builder).
  ObjectIndex(const std::vector<DataObject>* objects,
              const ObjectIndexOptions& options,
              RestoredTreeData<2, NoAug> restored);

  const DataObject& Get(ObjectId id) const { return (*objects_)[id]; }
  size_t size() const { return objects_->size(); }

  /// Ids of all objects within Euclidean distance `radius` of `center`.
  /// With `stats`, node expansions land in the object-tree traversal
  /// profile (and as trace instants).
  std::vector<ObjectId> RangeQuery(const Point& center, double radius,
                                   QueryStats* stats = nullptr) const;

  /// Calls `fn` once per leaf node with the leaf's object ids and its MBR.
  /// Used by batched STDS: each leaf is a spatially clustered batch.
  /// With `stats`, node expansions land in the object-tree traversal
  /// profile (and as trace instants).
  void ForEachLeafBlock(
      const std::function<void(std::span<const ObjectId>, const Rect2&)>& fn,
      QueryStats* stats = nullptr) const;

  /// Underlying tree for custom traversals (STPS object retrieval).
  const RTree<2>& tree() const { return tree_; }

  /// Mutable tree access for deliberate-corruption invariant tests only.
  [[nodiscard]] RTree<2>& mutable_tree_for_test() { return tree_; }

  BufferPool* buffer_pool() const { return tree_.options().buffer_pool; }

  /// Spatial bounding box of all data objects (the NN variant's Voronoi
  /// domain).
  const Rect2& domain() const { return domain_; }

 private:
  const std::vector<DataObject>* objects_;
  RTree<2> tree_;
  Rect2 domain_ = Rect2::Empty();
};

}  // namespace stpq

#endif  // STPQ_INDEX_OBJECT_INDEX_H_
