#include "index/srt_index.h"

#include "debug/validate.h"
#include "rtree/bulk_load.h"

namespace stpq {

namespace {

RTreeOptions MakeTreeOptions(const FeatureIndexOptions& opts,
                             uint32_t universe_size) {
  RTreeOptions t;
  // Aug bytes: 8 (max score) + the aggregated Hilbert value.
  uint32_t aug_bytes = 8 + 8 * ((universe_size + 63) / 64);
  t.max_entries = FanOutForPage(opts.page_size_bytes, 4, aug_bytes);
  t.buffer_pool = opts.buffer_pool;
  t.page_base = opts.page_base;
  return t;
}

}  // namespace

SrtIndex::SrtIndex(const FeatureTable* table,
                   const FeatureIndexOptions& options)
    : FeatureIndex(options.set_ordinal),
      table_(table),
      build_kind_(options.bulk_load),
      tree_(MakeTreeOptions(options, table->universe_size())) {
  using Entry = RTree<4, SrtAug>::Entry;
  std::vector<Entry> records;
  records.reserve(table_->size());
  for (const FeatureObject& f : table_->All()) {
    HilbertValue hv = EncodeKeywords(f.keywords);
    // The mapped 4-D point of Section 4.2: {x, y, score, H(W)}.
    std::array<double, 4> p{f.pos.x, f.pos.y, f.score, hv.ToUnitDouble()};
    records.push_back(Entry{Rect4::FromPoint(p), f.id,
                            SrtAug{f.score, std::move(hv), f.keywords}});
  }
  switch (options.bulk_load) {
    case BulkLoadKind::kHilbert: {
      // Bulk insertion [9]: sort by the Hilbert key of the mapped 4-D point.
      Rect4 domain = ComputeDomain<4, SrtAug>(records);
      SortByHilbertKey<4, SrtAug>(&records, domain, /*bits_per_dim=*/16);
      tree_.BulkLoadSorted(records, options.fill);
      break;
    }
    case BulkLoadKind::kStr: {
      SortSTR<4, SrtAug>(&records, tree_.options().max_entries);
      tree_.BulkLoadSorted(records, options.fill);
      break;
    }
    case BulkLoadKind::kInsert: {
      for (const Entry& r : records) tree_.Insert(r.rect, r.id, r.aug);
      break;
    }
  }
  STPQ_VALIDATE(ValidateSrtIndex(*this));
}

SrtIndex::SrtIndex(const FeatureTable* table,
                   const FeatureIndexOptions& options,
                   RestoredTreeData<4, SrtAug> restored)
    : FeatureIndex(options.set_ordinal),
      table_(table),
      build_kind_(options.bulk_load),
      tree_(MakeTreeOptions(options, table->universe_size())) {
  AdoptRestoredTree(&tree_, std::move(restored));
  STPQ_VALIDATE(ValidateSrtIndex(*this));
}

NodeId SrtIndex::RootId() const { return tree_.root_id(); }

BufferPool* SrtIndex::buffer_pool() const {
  return tree_.options().buffer_pool;
}

void SrtIndex::VisitChildren(NodeId node_id, const KeywordSet& query_kw,
                             double lambda,
                             std::vector<FeatureBranch>* out) const {
  out->clear();
  const RTree<4, SrtAug>::Node& node = tree_.ReadNode(node_id);
  const uint32_t query_count = query_kw.Count();
  out->reserve(node.entries.size());
  for (const auto& e : node.entries) {
    FeatureBranch b;
    b.id = e.id;
    b.is_feature = node.IsLeaf();
    // Spatial projection of the 4-D MBR.
    b.mbr = Rect2{{e.rect.lo[0], e.rect.lo[1]}, {e.rect.hi[0], e.rect.hi[1]}};
    if (b.is_feature) {
      // Exact preference score s(t) (Definition 1).
      const FeatureObject& f = table_->Get(e.id);
      double sim = f.keywords.Jaccard(query_kw);
      b.score_bound = (1.0 - lambda) * f.score + lambda * sim;
      b.text_match = sim > 0.0;
    } else {
      // e.W is the decoded aggregated Hilbert value (cached at build time,
      // see SrtAug); the bound uses |e.W n W| / |W| >= Jaccard.
      uint32_t inter = e.aug.keywords.IntersectCount(query_kw);
      double text_bound =
          query_count > 0
              ? static_cast<double>(inter) / static_cast<double>(query_count)
              : 0.0;
      b.score_bound = (1.0 - lambda) * e.aug.max_score + lambda * text_bound;
      b.text_match = inter > 0;
    }
    out->push_back(std::move(b));
  }
}

}  // namespace stpq
