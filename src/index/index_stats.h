// Index introspection: structural statistics of a built feature index.
//
// Used by the ablation benchmarks and tests to quantify *why* the
// SRT-index helps: its leaves have smaller score spreads and fewer
// distinct keywords than spatial-only leaves, which makes the s-hat(e)
// bounds tight (Section 4.2's clustering argument).
#ifndef STPQ_INDEX_INDEX_STATS_H_
#define STPQ_INDEX_INDEX_STATS_H_

#include <cstdint>
#include <string>

#include "index/ir2_tree.h"
#include "index/srt_index.h"

namespace stpq {

/// Structural report over one feature index.
struct IndexStatsReport {
  uint32_t height = 0;
  uint32_t node_count = 0;
  uint32_t leaf_count = 0;
  uint64_t record_count = 0;
  uint32_t fan_out = 0;             ///< max entries per node
  double avg_leaf_fill = 0.0;       ///< mean entries/fan_out over leaves
  double avg_leaf_score_spread = 0.0;   ///< mean (max t.s - min t.s) per leaf
  double avg_leaf_keyword_count = 0.0;  ///< mean |union of leaf keywords|
  double avg_leaf_spatial_margin = 0.0; ///< mean spatial MBR margin per leaf

  std::string ToString() const;
};

/// Analyzes an SRT-index.
IndexStatsReport AnalyzeIndex(const SrtIndex& index);

/// Analyzes a modified IR2-tree.
IndexStatsReport AnalyzeIndex(const Ir2Tree& index);

}  // namespace stpq

#endif  // STPQ_INDEX_INDEX_STATS_H_
