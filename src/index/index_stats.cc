#include "index/index_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace stpq {

namespace {

/// Shared traversal: Tree is RTree<D, Aug>; leaf entry ids are feature ids.
template <int D, typename Aug>
IndexStatsReport Analyze(const RTree<D, Aug>& tree,
                         const FeatureTable& table) {
  IndexStatsReport out;
  out.height = tree.height();
  out.node_count = tree.node_count();
  out.record_count = tree.size();
  out.fan_out = tree.options().max_entries;
  if (tree.root_id() == kInvalidNodeId) return out;

  double fill_sum = 0, spread_sum = 0, kw_sum = 0, margin_sum = 0;
  std::vector<NodeId> stack{tree.root_id()};
  while (!stack.empty()) {
    NodeId nid = stack.back();
    stack.pop_back();
    const auto& node = tree.ReadNode(nid);
    if (!node.IsLeaf()) {
      for (const auto& e : node.entries) stack.push_back(e.id);
      continue;
    }
    ++out.leaf_count;
    fill_sum += static_cast<double>(node.entries.size()) / out.fan_out;
    double lo = 1e18, hi = -1e18;
    KeywordSet kw(table.universe_size());
    Rect2 mbr = Rect2::Empty();
    for (const auto& e : node.entries) {
      const FeatureObject& t = table.Get(e.id);
      lo = std::min(lo, t.score);
      hi = std::max(hi, t.score);
      kw.UnionWith(t.keywords);
      mbr.EnlargePoint({t.pos.x, t.pos.y});
    }
    spread_sum += hi - lo;
    kw_sum += kw.Count();
    margin_sum += mbr.Margin();
  }
  if (out.leaf_count > 0) {
    out.avg_leaf_fill = fill_sum / out.leaf_count;
    out.avg_leaf_score_spread = spread_sum / out.leaf_count;
    out.avg_leaf_keyword_count = kw_sum / out.leaf_count;
    out.avg_leaf_spatial_margin = margin_sum / out.leaf_count;
  }
  return out;
}

}  // namespace

std::string IndexStatsReport::ToString() const {
  std::ostringstream os;
  os << "height=" << height << " nodes=" << node_count
     << " leaves=" << leaf_count << " records=" << record_count
     << " fanout=" << fan_out << " fill=" << avg_leaf_fill
     << " score_spread=" << avg_leaf_score_spread
     << " leaf_keywords=" << avg_leaf_keyword_count
     << " leaf_margin=" << avg_leaf_spatial_margin;
  return os.str();
}

IndexStatsReport AnalyzeIndex(const SrtIndex& index) {
  return Analyze(index.tree(), index.table());
}

IndexStatsReport AnalyzeIndex(const Ir2Tree& index) {
  return Analyze(index.tree(), index.table());
}

}  // namespace stpq
