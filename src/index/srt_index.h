// The SRT-index (Section 4): an R-tree over the mapped 4-D space
// (x, y, t.s, H(t.W)) whose entries keep the max descendant score and the
// aggregated Hilbert value of all descendant keywords.
//
// Because the index clusters by spatial location, score AND textual
// description simultaneously, the bound
//   s-hat(e) = (1-lambda) * e.s + lambda * |e.W n W| / |W|
// is tight, which is what makes STPS's sorted feature retrieval cheap.
#ifndef STPQ_INDEX_SRT_INDEX_H_
#define STPQ_INDEX_SRT_INDEX_H_

#include <memory>
#include <vector>

#include "hilbert/keyword_hilbert.h"
#include "index/feature_index.h"
#include "rtree/rtree.h"

namespace stpq {

/// How a feature index organizes its records at build time.
enum class BulkLoadKind {
  kHilbert,  ///< Hilbert-sort packing (Kamel & Faloutsos [9]; the paper's choice)
  kStr,      ///< Sort-Tile-Recursive packing (spatial-only; ablation)
  kInsert,   ///< one-at-a-time Guttman insertion (ablation/testing)
};

/// Build-time knobs shared by the feature indexes.
struct FeatureIndexOptions {
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  BufferPool* buffer_pool = nullptr;
  PageId page_base = 0;
  BulkLoadKind bulk_load = BulkLoadKind::kHilbert;
  double fill = 1.0;  ///< target node occupancy for bulk loading
  /// IR2-tree only: signature width in bits (0 = 2x the keyword universe).
  uint32_t signature_bits = 0;
  /// IR2-tree only: bits set per keyword.
  uint32_t signature_hashes = 3;
  /// Position of this index's feature set in the engine's table order
  /// (traversal-profile attribution; see FeatureIndex::set_ordinal).
  uint32_t set_ordinal = 0;
};

/// Entry augmentation of the SRT-index: e.s and H(e.W) of Section 4.1.
///
/// The aggregated Hilbert value is what the paper's node entry stores (and
/// what the fan-out accounting charges); `keywords` caches its decoded
/// form so query-time bound computation skips the per-visit decode — the
/// two are kept consistent by construction (Merge re-derives the cache
/// through the Hilbert aggregation path, exactly as Section 4.2 updates
/// node values).
struct SrtAug {
  double max_score = 0.0;
  HilbertValue keyword_hilbert;
  KeywordSet keywords;

  static SrtAug Merge(const SrtAug& a, const SrtAug& b) {
    HilbertValue merged = AggregateHilbert(a.keyword_hilbert,
                                           b.keyword_hilbert,
                                           a.keyword_hilbert.bits());
    KeywordSet decoded = DecodeKeywords(merged, a.keywords.universe_size());
    return SrtAug{std::max(a.max_score, b.max_score), std::move(merged),
                  std::move(decoded)};
  }
};

/// The SRT-index over one feature set.
class SrtIndex : public FeatureIndex {
 public:
  /// Builds the index over `table` (not owned; must outlive the index).
  SrtIndex(const FeatureTable* table, const FeatureIndexOptions& options);

  /// Restores a persisted index (storage/index_file.*): adopts the
  /// deserialized tree instead of bulk loading, so node ids — and the
  /// golden I/O counts derived from them — match the builder exactly.
  /// `options` must carry the build-time parameters recorded in the file.
  SrtIndex(const FeatureTable* table, const FeatureIndexOptions& options,
           RestoredTreeData<4, SrtAug> restored);

  NodeId RootId() const override;
  uint16_t NodeLevel(NodeId node_id) const override {
    return tree_.PeekNode(node_id).level;
  }
  void VisitChildren(NodeId node_id, const KeywordSet& query_kw,
                     double lambda,
                     std::vector<FeatureBranch>* out) const override;
  const FeatureTable& table() const override { return *table_; }
  BufferPool* buffer_pool() const override;
  const char* Name() const override { return "SRT"; }

  /// Underlying tree (tests and ablations).
  const RTree<4, SrtAug>& tree() const { return tree_; }

  /// How the tree was packed; ValidateSrtIndex checks the Hilbert leaf
  /// order only for kHilbert builds.
  [[nodiscard]] BulkLoadKind build_kind() const { return build_kind_; }

  /// Mutable tree access for deliberate-corruption invariant tests only.
  [[nodiscard]] RTree<4, SrtAug>& mutable_tree_for_test() { return tree_; }

 private:
  const FeatureTable* table_;
  BulkLoadKind build_kind_;
  RTree<4, SrtAug> tree_;
};

}  // namespace stpq

#endif  // STPQ_INDEX_SRT_INDEX_H_
