#include "index/feature_table.h"

#include "util/logging.h"

namespace stpq {

FeatureTable::FeatureTable(std::vector<FeatureObject> features,
                           uint32_t universe_size)
    : features_(std::move(features)), universe_size_(universe_size) {
  for (size_t i = 0; i < features_.size(); ++i) {
    features_[i].id = static_cast<ObjectId>(i);
    STPQ_CHECK(features_[i].keywords.universe_size() == universe_size_);
    // t.s in [0,1] (Section 3); score math across the library relies on it.
    STPQ_DCHECK(features_[i].score >= 0.0 && features_[i].score <= 1.0);
    domain_.EnlargePoint({features_[i].pos.x, features_[i].pos.y});
  }
}

}  // namespace stpq
