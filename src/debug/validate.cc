#include "debug/validate.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "rtree/bulk_load.h"
#include "util/thread_annotations.h"

namespace stpq {

namespace {

using validate_internal::FormatRect;

std::string Num(double v) { return std::to_string(v); }
std::string Num(uint64_t v) { return std::to_string(v); }

/// Collects leaf entries in left-to-right tree order (the order bulk
/// loading packed them in).
template <int D, typename Aug>
void CollectLeavesInOrder(const RTree<D, Aug>& tree, NodeId nid,
                          std::vector<typename RTree<D, Aug>::Entry>* out) {
  const auto& node = tree.PeekNode(nid);
  if (node.IsLeaf()) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return;
  }
  for (const auto& e : node.entries) {
    CollectLeavesInOrder(tree, e.id, out);
  }
}

/// Checks that leaf records appear in non-decreasing Hilbert-key order —
/// the packing contract of BulkLoadKind::kHilbert (Kamel & Faloutsos).
/// Recomputes the build-time keys: centers quantized to 16 bits/dim inside
/// the record-set domain, exactly as SortByHilbertKey does.
template <int D, typename Aug>
Status CheckHilbertLeafOrder(const RTree<D, Aug>& tree) {
  if (tree.root_id() == kInvalidNodeId) return Status::OK();
  std::vector<typename RTree<D, Aug>::Entry> leaves;
  leaves.reserve(tree.size());
  CollectLeavesInOrder(tree, tree.root_id(), &leaves);
  Rect<D> domain = ComputeDomain<D, Aug>(leaves);
  uint64_t prev_key = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    double unit[D];
    for (int d = 0; d < D; ++d) {
      double extent = domain.hi[d] - domain.lo[d];
      unit[d] = extent > 0.0
                    ? (leaves[i].rect.Center(d) - domain.lo[d]) / extent
                    : 0.0;
    }
    uint64_t key = HilbertKeyFromUnit(unit, /*b=*/16, D);
    if (i > 0 && key < prev_key) {
      return Status::Internal(
          "leaf record " + Num(static_cast<uint64_t>(i)) + " (id " +
          Num(static_cast<uint64_t>(leaves[i].id)) + ") breaks the Hilbert "
          "bulk-load order: key " + Num(key) + " < predecessor key " +
          Num(prev_key));
    }
    prev_key = key;
  }
  return Status::OK();
}

/// Verifies that leaf entry ids cover [0, expected) exactly once.
Status CheckLeafIdBijection(std::span<const uint32_t> seen_counts,
                            const char* what) {
  for (size_t id = 0; id < seen_counts.size(); ++id) {
    if (seen_counts[id] != 1) {
      return Status::Internal(std::string(what) + " " +
                              Num(static_cast<uint64_t>(id)) + " appears " +
                              Num(static_cast<uint64_t>(seen_counts[id])) +
                              " times in the leaf level (expected exactly "
                              "once)");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateSrtIndex(const SrtIndex& index) {
  const FeatureTable& table = index.table();
  const RTree<4, SrtAug>& tree = index.tree();
  if (tree.size() != table.size()) {
    return Status::Internal("SRT tree holds " + Num(tree.size()) +
                            " records for a table of " +
                            Num(static_cast<uint64_t>(table.size())) +
                            " features");
  }

  std::vector<uint32_t> seen(table.size(), 0);

  auto summary_check = [](const RTree<4, SrtAug>::Entry& parent,
                          const RTree<4, SrtAug>::Entry& child) {
    if (parent.aug.max_score < child.aug.max_score) {
      return Status::Internal("aggregate score bound " +
                              Num(parent.aug.max_score) +
                              " does not dominate child score " +
                              Num(child.aug.max_score));
    }
    if (parent.aug.keywords.universe_size() !=
        child.aug.keywords.universe_size()) {
      return Status::Internal("keyword universe mismatch between parent and "
                              "child augmentation");
    }
    if (parent.aug.keywords.IntersectCount(child.aug.keywords) !=
        child.aug.keywords.Count()) {
      return Status::Internal(
          "node keyword set W is not a superset of its child's (child has " +
          Num(static_cast<uint64_t>(child.aug.keywords.Count())) +
          " keywords, only " +
          Num(static_cast<uint64_t>(
              parent.aug.keywords.IntersectCount(child.aug.keywords))) +
          " covered)");
    }
    return Status::OK();
  };

  auto entry_check = [&](const RTree<4, SrtAug>::Entry& e, bool is_leaf) {
    if (e.aug.keywords.universe_size() != table.universe_size()) {
      return Status::Internal(
          "augmentation keyword universe " +
          Num(static_cast<uint64_t>(e.aug.keywords.universe_size())) +
          " != table universe " +
          Num(static_cast<uint64_t>(table.universe_size())));
    }
    // The cached decoded keyword set and the stored aggregated Hilbert
    // value must describe the same set (Section 4.2 keeps them in sync).
    if (EncodeKeywords(e.aug.keywords) != e.aug.keyword_hilbert) {
      return Status::Internal(
          "aggregated Hilbert value is not the encoding of the cached "
          "keyword set (stale e.W cache)");
    }
    // Dimension 2 of the mapped 4-D space is the non-spatial score.
    if (e.rect.lo[2] < 0.0 || e.rect.hi[2] > 1.0) {
      return Status::Internal("score dimension of mapped MBR " +
                              FormatRect(e.rect) + " leaves [0,1]");
    }
    if (!is_leaf) return Status::OK();

    if (e.id >= table.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for table of " +
                              Num(static_cast<uint64_t>(table.size())));
    }
    ++seen[e.id];
    const FeatureObject& f = table.Get(e.id);
    HilbertValue hv = EncodeKeywords(f.keywords);
    const std::array<double, 4> p{f.pos.x, f.pos.y, f.score,
                                  hv.ToUnitDouble()};
    for (int d = 0; d < 4; ++d) {
      if (e.rect.lo[d] != p[d] || e.rect.hi[d] != p[d]) {
        return Status::Internal(
            "leaf rect " + FormatRect(e.rect) + " is not the mapped 4-D "
            "point of feature " + Num(static_cast<uint64_t>(e.id)) +
            " (dim " + std::to_string(d) + ")");
      }
    }
    if (e.aug.max_score != f.score) {
      return Status::Internal("leaf augmentation score " +
                              Num(e.aug.max_score) + " != feature score " +
                              Num(f.score));
    }
    if (!(e.aug.keywords == f.keywords)) {
      return Status::Internal("leaf augmentation keywords differ from "
                              "feature " +
                              Num(static_cast<uint64_t>(e.id)) +
                              "'s keyword set");
    }
    return Status::OK();
  };

  Status st = ValidateRTree<4, SrtAug>(tree, summary_check, entry_check);
  if (!st.ok()) {
    return Status::Internal("SRT-index: " + st.message());
  }
  st = CheckLeafIdBijection(seen, "SRT-index: feature");
  STPQ_RETURN_NOT_OK(st);
  if (index.build_kind() == BulkLoadKind::kHilbert) {
    st = CheckHilbertLeafOrder<4, SrtAug>(tree);
    if (!st.ok()) {
      return Status::Internal("SRT-index: " + st.message());
    }
  }
  return Status::OK();
}

Status ValidateIr2Tree(const Ir2Tree& index) {
  const FeatureTable& table = index.table();
  const SignatureScheme& scheme = index.scheme();
  const RTree<2, Ir2Aug>& tree = index.tree();
  if (tree.size() != table.size()) {
    return Status::Internal("IR2-tree holds " + Num(tree.size()) +
                            " records for a table of " +
                            Num(static_cast<uint64_t>(table.size())) +
                            " features");
  }

  std::vector<uint32_t> seen(table.size(), 0);

  auto summary_check = [](const RTree<2, Ir2Aug>::Entry& parent,
                          const RTree<2, Ir2Aug>::Entry& child) {
    if (parent.aug.max_score < child.aug.max_score) {
      return Status::Internal("aggregate score bound " +
                              Num(parent.aug.max_score) +
                              " does not dominate child score " +
                              Num(child.aug.max_score));
    }
    if (!parent.aug.signature.Covers(child.aug.signature)) {
      return Status::Internal(
          "node signature does not cover its child's signature (would "
          "create false negatives)");
    }
    return Status::OK();
  };

  auto entry_check = [&](const RTree<2, Ir2Aug>::Entry& e, bool is_leaf) {
    if (e.aug.signature.bits() != scheme.signature_bits()) {
      return Status::Internal(
          "signature width " +
          Num(static_cast<uint64_t>(e.aug.signature.bits())) +
          " != scheme width " +
          Num(static_cast<uint64_t>(scheme.signature_bits())));
    }
    if (!is_leaf) return Status::OK();
    if (e.id >= table.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for table of " +
                              Num(static_cast<uint64_t>(table.size())));
    }
    ++seen[e.id];
    const FeatureObject& f = table.Get(e.id);
    if (e.rect.lo[0] != f.pos.x || e.rect.hi[0] != f.pos.x ||
        e.rect.lo[1] != f.pos.y || e.rect.hi[1] != f.pos.y) {
      return Status::Internal("leaf rect " + FormatRect(e.rect) +
                              " is not the point of feature " +
                              Num(static_cast<uint64_t>(e.id)));
    }
    if (e.aug.max_score != f.score) {
      return Status::Internal("leaf augmentation score " +
                              Num(e.aug.max_score) + " != feature score " +
                              Num(f.score));
    }
    if (!(e.aug.signature == scheme.SetSignature(f.keywords))) {
      return Status::Internal("leaf signature differs from the scheme "
                              "signature of feature " +
                              Num(static_cast<uint64_t>(e.id)) +
                              "'s keywords");
    }
    return Status::OK();
  };

  Status st = ValidateRTree<2, Ir2Aug>(tree, summary_check, entry_check);
  if (!st.ok()) {
    return Status::Internal("IR2-tree: " + st.message());
  }
  return CheckLeafIdBijection(seen, "IR2-tree: feature");
}

Status ValidateObjectIndex(const ObjectIndex& index) {
  const RTree<2>& tree = index.tree();
  if (tree.size() != index.size()) {
    return Status::Internal("object R-tree holds " + Num(tree.size()) +
                            " records for " +
                            Num(static_cast<uint64_t>(index.size())) +
                            " objects");
  }
  std::vector<uint32_t> seen(index.size(), 0);
  auto no_summary = [](const RTree<2>::Entry&, const RTree<2>::Entry&) {
    return Status::OK();
  };
  auto entry_check = [&](const RTree<2>::Entry& e, bool is_leaf) {
    if (!is_leaf) return Status::OK();
    if (e.id >= index.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for " +
                              Num(static_cast<uint64_t>(index.size())) +
                              " objects");
    }
    ++seen[e.id];
    const Point& pos = index.Get(e.id).pos;
    if (e.rect.lo[0] != pos.x || e.rect.hi[0] != pos.x ||
        e.rect.lo[1] != pos.y || e.rect.hi[1] != pos.y) {
      return Status::Internal("leaf rect " + FormatRect(e.rect) +
                              " is not the position of object " +
                              Num(static_cast<uint64_t>(e.id)));
    }
    return Status::OK();
  };
  Status st = ValidateRTree<2, NoAug>(tree, no_summary, entry_check);
  if (!st.ok()) {
    return Status::Internal("object index: " + st.message());
  }
  return CheckLeafIdBijection(seen, "object index: object");
}

Status ValidateInvertedIndex(const InvertedIndex& index) {
  uint64_t total = 0;
  for (TermId t = 0; t < index.universe_size(); ++t) {
    std::span<const uint32_t> plist = index.Postings(t);
    total += plist.size();
    for (size_t i = 1; i < plist.size(); ++i) {
      if (plist[i] <= plist[i - 1]) {
        return Status::Internal(
            "postings of term " + Num(static_cast<uint64_t>(t)) +
            " are not strictly increasing at position " +
            Num(static_cast<uint64_t>(i)) + " (" +
            Num(static_cast<uint64_t>(plist[i - 1])) + " then " +
            Num(static_cast<uint64_t>(plist[i])) +
            "): unsorted or duplicate document id");
      }
    }
    if (index.DocumentFrequency(t) != plist.size()) {
      return Status::Internal("document frequency of term " +
                              Num(static_cast<uint64_t>(t)) +
                              " disagrees with its posting count");
    }
  }
  if (total != index.TotalPostings()) {
    return Status::Internal("sum of posting lengths " + Num(total) +
                            " != TotalPostings() " +
                            Num(index.TotalPostings()) +
                            " (CSR offsets corrupt)");
  }
  return Status::OK();
}

Status ValidateInvertedIndex(const InvertedIndex& index,
                             std::span<const KeywordSet> documents) {
  STPQ_RETURN_NOT_OK(ValidateInvertedIndex(index));
  // Forward direction: every posted document really contains the term.
  for (TermId t = 0; t < index.universe_size(); ++t) {
    for (uint32_t doc : index.Postings(t)) {
      if (doc >= documents.size()) {
        return Status::Internal("term " + Num(static_cast<uint64_t>(t)) +
                                " posts document " +
                                Num(static_cast<uint64_t>(doc)) +
                                ", outside the corpus of " +
                                Num(static_cast<uint64_t>(documents.size())));
      }
      if (!documents[doc].Contains(t)) {
        return Status::Internal("term " + Num(static_cast<uint64_t>(t)) +
                                " posts document " +
                                Num(static_cast<uint64_t>(doc)) +
                                " which does not contain it (phantom "
                                "posting)");
      }
    }
  }
  // Reverse direction: every document keyword is posted.
  for (uint32_t doc = 0; doc < documents.size(); ++doc) {
    for (TermId t : documents[doc].ToTerms()) {
      if (t >= index.universe_size()) {
        return Status::Internal(
            "document " + Num(static_cast<uint64_t>(doc)) + " uses term " +
            Num(static_cast<uint64_t>(t)) + " outside the indexed universe");
      }
      std::span<const uint32_t> plist = index.Postings(t);
      if (!std::binary_search(plist.begin(), plist.end(), doc)) {
        return Status::Internal("document " +
                                Num(static_cast<uint64_t>(doc)) +
                                " contains term " +
                                Num(static_cast<uint64_t>(t)) +
                                " but is missing from its postings");
      }
    }
  }
  return Status::OK();
}

Status ValidateBufferPool(const BufferPool& pool) {
  // The validator inspects raw chain/table state, so it takes the pool's
  // own mutex: safe on the quiescent pools it is documented for, and it
  // keeps the thread-safety analysis sound instead of being opted out.
  MutexLock lock(pool.mu_);
  constexpr uint32_t kNil = BufferPool::kNilFrame;
  // Walk the intrusive LRU chain from the head: every link must be in
  // range, back-links must mirror forward links, and the chain must be
  // acyclic and end at the recorded tail.
  uint64_t chain_count = 0;
  uint64_t pinned_count = 0;
  uint32_t prev = kNil;
  for (uint32_t f = pool.head_; f != kNil; f = pool.frames_[f].next) {
    if (f >= pool.frames_.size()) {
      return Status::Internal("buffer pool: LRU chain links frame " + Num(uint64_t{f}) +
                              " outside the frame array");
    }
    if (pool.frames_[f].prev != prev) {
      return Status::Internal("buffer pool: LRU chain back-link of frame " +
                              Num(uint64_t{f}) +
                              " does not point at its predecessor");
    }
    if (++chain_count > pool.frames_.size()) {
      return Status::Internal("buffer pool: LRU chain contains a cycle");
    }
    // Every resident page maps back to its own frame in the page table.
    const uint32_t mapped = pool.table_.Find(pool.frames_[f].page);
    if (mapped == kNil) {
      return Status::Internal("buffer pool: resident page " +
                              Num(pool.frames_[f].page) +
                              " is missing from the page table");
    }
    if (mapped != f) {
      return Status::Internal("buffer pool: page table entry for page " +
                              Num(pool.frames_[f].page) +
                              " does not point back at its LRU frame");
    }
    if (pool.frames_[f].pins > 0) ++pinned_count;
    prev = f;
  }
  if (prev != pool.tail_) {
    return Status::Internal("buffer pool: LRU chain ends at frame " +
                            Num(uint64_t{prev}) +
                            " but the tail index records " +
                            Num(uint64_t{pool.tail_}));
  }
  if (chain_count != pool.chain_size_) {
    return Status::Internal("buffer pool: LRU chain links " +
                            Num(chain_count) + " frames but the size "
                            "counter records " + Num(pool.chain_size_));
  }
  // Chain and page table must be a bijection (the walk above proved the
  // chain injects into the table; equal sizes make it onto).
  if (chain_count != pool.table_.size()) {
    return Status::Internal(
        "buffer pool: LRU chain links " + Num(chain_count) +
        " frames but the page table maps " +
        Num(static_cast<uint64_t>(pool.table_.size())) + " pages");
  }
  if (pinned_count != pool.pinned_count_) {
    return Status::Internal("buffer pool: " + Num(pinned_count) +
                            " resident frames carry pins but the pinned "
                            "counter records " + Num(pool.pinned_count_));
  }
  // Free-list frames must be disjoint from the chain: unpinned, absent
  // from the table, and the two lists together never exceed the array.
  uint64_t free_count = 0;
  for (uint32_t f = pool.free_head_; f != kNil; f = pool.frames_[f].next) {
    if (f >= pool.frames_.size()) {
      return Status::Internal("buffer pool: free list links frame " + Num(uint64_t{f}) +
                              " outside the frame array");
    }
    if (pool.frames_[f].pins != 0) {
      return Status::Internal("buffer pool: free frame " + Num(uint64_t{f}) +
                              " carries a pin");
    }
    if (++free_count + chain_count > pool.frames_.size()) {
      return Status::Internal(
          "buffer pool: free list and LRU chain overlap or cycle");
    }
  }
  // Capacity and I/O-counter consistency.
  if (pool.capacity_ != 0 && chain_count > pool.capacity_) {
    return Status::Internal("buffer pool: " + Num(chain_count) +
                            " resident pages exceed capacity " +
                            Num(pool.capacity_));
  }
  if (chain_count > pool.lifetime_admissions_) {
    return Status::Internal(
        "buffer pool: " + Num(chain_count) + " resident pages but only " +
        Num(pool.lifetime_admissions_) +
        " lifetime admissions (I/O counters inconsistent)");
  }
  return Status::OK();
}

}  // namespace stpq
