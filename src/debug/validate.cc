#include "debug/validate.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "rtree/bulk_load.h"

namespace stpq {

namespace {

using validate_internal::FormatRect;

std::string Num(double v) { return std::to_string(v); }
std::string Num(uint64_t v) { return std::to_string(v); }

/// Collects leaf entries in left-to-right tree order (the order bulk
/// loading packed them in).
template <int D, typename Aug>
void CollectLeavesInOrder(const RTree<D, Aug>& tree, NodeId nid,
                          std::vector<typename RTree<D, Aug>::Entry>* out) {
  const auto& node = tree.PeekNode(nid);
  if (node.IsLeaf()) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return;
  }
  for (const auto& e : node.entries) {
    CollectLeavesInOrder(tree, e.id, out);
  }
}

/// Checks that leaf records appear in non-decreasing Hilbert-key order —
/// the packing contract of BulkLoadKind::kHilbert (Kamel & Faloutsos).
/// Recomputes the build-time keys: centers quantized to 16 bits/dim inside
/// the record-set domain, exactly as SortByHilbertKey does.
template <int D, typename Aug>
Status CheckHilbertLeafOrder(const RTree<D, Aug>& tree) {
  if (tree.root_id() == kInvalidNodeId) return Status::OK();
  std::vector<typename RTree<D, Aug>::Entry> leaves;
  leaves.reserve(tree.size());
  CollectLeavesInOrder(tree, tree.root_id(), &leaves);
  Rect<D> domain = ComputeDomain<D, Aug>(leaves);
  uint64_t prev_key = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    double unit[D];
    for (int d = 0; d < D; ++d) {
      double extent = domain.hi[d] - domain.lo[d];
      unit[d] = extent > 0.0
                    ? (leaves[i].rect.Center(d) - domain.lo[d]) / extent
                    : 0.0;
    }
    uint64_t key = HilbertKeyFromUnit(unit, /*b=*/16, D);
    if (i > 0 && key < prev_key) {
      return Status::Internal(
          "leaf record " + Num(static_cast<uint64_t>(i)) + " (id " +
          Num(static_cast<uint64_t>(leaves[i].id)) + ") breaks the Hilbert "
          "bulk-load order: key " + Num(key) + " < predecessor key " +
          Num(prev_key));
    }
    prev_key = key;
  }
  return Status::OK();
}

/// Verifies that leaf entry ids cover [0, expected) exactly once.
Status CheckLeafIdBijection(std::span<const uint32_t> seen_counts,
                            const char* what) {
  for (size_t id = 0; id < seen_counts.size(); ++id) {
    if (seen_counts[id] != 1) {
      return Status::Internal(std::string(what) + " " +
                              Num(static_cast<uint64_t>(id)) + " appears " +
                              Num(static_cast<uint64_t>(seen_counts[id])) +
                              " times in the leaf level (expected exactly "
                              "once)");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateSrtIndex(const SrtIndex& index) {
  const FeatureTable& table = index.table();
  const RTree<4, SrtAug>& tree = index.tree();
  if (tree.size() != table.size()) {
    return Status::Internal("SRT tree holds " + Num(tree.size()) +
                            " records for a table of " +
                            Num(static_cast<uint64_t>(table.size())) +
                            " features");
  }

  std::vector<uint32_t> seen(table.size(), 0);

  auto summary_check = [](const RTree<4, SrtAug>::Entry& parent,
                          const RTree<4, SrtAug>::Entry& child) {
    if (parent.aug.max_score < child.aug.max_score) {
      return Status::Internal("aggregate score bound " +
                              Num(parent.aug.max_score) +
                              " does not dominate child score " +
                              Num(child.aug.max_score));
    }
    if (parent.aug.keywords.universe_size() !=
        child.aug.keywords.universe_size()) {
      return Status::Internal("keyword universe mismatch between parent and "
                              "child augmentation");
    }
    if (parent.aug.keywords.IntersectCount(child.aug.keywords) !=
        child.aug.keywords.Count()) {
      return Status::Internal(
          "node keyword set W is not a superset of its child's (child has " +
          Num(static_cast<uint64_t>(child.aug.keywords.Count())) +
          " keywords, only " +
          Num(static_cast<uint64_t>(
              parent.aug.keywords.IntersectCount(child.aug.keywords))) +
          " covered)");
    }
    return Status::OK();
  };

  auto entry_check = [&](const RTree<4, SrtAug>::Entry& e, bool is_leaf) {
    if (e.aug.keywords.universe_size() != table.universe_size()) {
      return Status::Internal(
          "augmentation keyword universe " +
          Num(static_cast<uint64_t>(e.aug.keywords.universe_size())) +
          " != table universe " +
          Num(static_cast<uint64_t>(table.universe_size())));
    }
    // The cached decoded keyword set and the stored aggregated Hilbert
    // value must describe the same set (Section 4.2 keeps them in sync).
    if (EncodeKeywords(e.aug.keywords) != e.aug.keyword_hilbert) {
      return Status::Internal(
          "aggregated Hilbert value is not the encoding of the cached "
          "keyword set (stale e.W cache)");
    }
    // Dimension 2 of the mapped 4-D space is the non-spatial score.
    if (e.rect.lo[2] < 0.0 || e.rect.hi[2] > 1.0) {
      return Status::Internal("score dimension of mapped MBR " +
                              FormatRect(e.rect) + " leaves [0,1]");
    }
    if (!is_leaf) return Status::OK();

    if (e.id >= table.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for table of " +
                              Num(static_cast<uint64_t>(table.size())));
    }
    ++seen[e.id];
    const FeatureObject& f = table.Get(e.id);
    HilbertValue hv = EncodeKeywords(f.keywords);
    const std::array<double, 4> p{f.pos.x, f.pos.y, f.score,
                                  hv.ToUnitDouble()};
    for (int d = 0; d < 4; ++d) {
      if (e.rect.lo[d] != p[d] || e.rect.hi[d] != p[d]) {
        return Status::Internal(
            "leaf rect " + FormatRect(e.rect) + " is not the mapped 4-D "
            "point of feature " + Num(static_cast<uint64_t>(e.id)) +
            " (dim " + std::to_string(d) + ")");
      }
    }
    if (e.aug.max_score != f.score) {
      return Status::Internal("leaf augmentation score " +
                              Num(e.aug.max_score) + " != feature score " +
                              Num(f.score));
    }
    if (!(e.aug.keywords == f.keywords)) {
      return Status::Internal("leaf augmentation keywords differ from "
                              "feature " +
                              Num(static_cast<uint64_t>(e.id)) +
                              "'s keyword set");
    }
    return Status::OK();
  };

  Status st = ValidateRTree<4, SrtAug>(tree, summary_check, entry_check);
  if (!st.ok()) {
    return Status::Internal("SRT-index: " + st.message());
  }
  st = CheckLeafIdBijection(seen, "SRT-index: feature");
  STPQ_RETURN_NOT_OK(st);
  if (index.build_kind() == BulkLoadKind::kHilbert) {
    st = CheckHilbertLeafOrder<4, SrtAug>(tree);
    if (!st.ok()) {
      return Status::Internal("SRT-index: " + st.message());
    }
  }
  return Status::OK();
}

Status ValidateIr2Tree(const Ir2Tree& index) {
  const FeatureTable& table = index.table();
  const SignatureScheme& scheme = index.scheme();
  const RTree<2, Ir2Aug>& tree = index.tree();
  if (tree.size() != table.size()) {
    return Status::Internal("IR2-tree holds " + Num(tree.size()) +
                            " records for a table of " +
                            Num(static_cast<uint64_t>(table.size())) +
                            " features");
  }

  std::vector<uint32_t> seen(table.size(), 0);

  auto summary_check = [](const RTree<2, Ir2Aug>::Entry& parent,
                          const RTree<2, Ir2Aug>::Entry& child) {
    if (parent.aug.max_score < child.aug.max_score) {
      return Status::Internal("aggregate score bound " +
                              Num(parent.aug.max_score) +
                              " does not dominate child score " +
                              Num(child.aug.max_score));
    }
    if (!parent.aug.signature.Covers(child.aug.signature)) {
      return Status::Internal(
          "node signature does not cover its child's signature (would "
          "create false negatives)");
    }
    return Status::OK();
  };

  auto entry_check = [&](const RTree<2, Ir2Aug>::Entry& e, bool is_leaf) {
    if (e.aug.signature.bits() != scheme.signature_bits()) {
      return Status::Internal(
          "signature width " +
          Num(static_cast<uint64_t>(e.aug.signature.bits())) +
          " != scheme width " +
          Num(static_cast<uint64_t>(scheme.signature_bits())));
    }
    if (!is_leaf) return Status::OK();
    if (e.id >= table.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for table of " +
                              Num(static_cast<uint64_t>(table.size())));
    }
    ++seen[e.id];
    const FeatureObject& f = table.Get(e.id);
    if (e.rect.lo[0] != f.pos.x || e.rect.hi[0] != f.pos.x ||
        e.rect.lo[1] != f.pos.y || e.rect.hi[1] != f.pos.y) {
      return Status::Internal("leaf rect " + FormatRect(e.rect) +
                              " is not the point of feature " +
                              Num(static_cast<uint64_t>(e.id)));
    }
    if (e.aug.max_score != f.score) {
      return Status::Internal("leaf augmentation score " +
                              Num(e.aug.max_score) + " != feature score " +
                              Num(f.score));
    }
    if (!(e.aug.signature == scheme.SetSignature(f.keywords))) {
      return Status::Internal("leaf signature differs from the scheme "
                              "signature of feature " +
                              Num(static_cast<uint64_t>(e.id)) +
                              "'s keywords");
    }
    return Status::OK();
  };

  Status st = ValidateRTree<2, Ir2Aug>(tree, summary_check, entry_check);
  if (!st.ok()) {
    return Status::Internal("IR2-tree: " + st.message());
  }
  return CheckLeafIdBijection(seen, "IR2-tree: feature");
}

Status ValidateObjectIndex(const ObjectIndex& index) {
  const RTree<2>& tree = index.tree();
  if (tree.size() != index.size()) {
    return Status::Internal("object R-tree holds " + Num(tree.size()) +
                            " records for " +
                            Num(static_cast<uint64_t>(index.size())) +
                            " objects");
  }
  std::vector<uint32_t> seen(index.size(), 0);
  auto no_summary = [](const RTree<2>::Entry&, const RTree<2>::Entry&) {
    return Status::OK();
  };
  auto entry_check = [&](const RTree<2>::Entry& e, bool is_leaf) {
    if (!is_leaf) return Status::OK();
    if (e.id >= index.size()) {
      return Status::Internal("leaf record id " +
                              Num(static_cast<uint64_t>(e.id)) +
                              " out of range for " +
                              Num(static_cast<uint64_t>(index.size())) +
                              " objects");
    }
    ++seen[e.id];
    const Point& pos = index.Get(e.id).pos;
    if (e.rect.lo[0] != pos.x || e.rect.hi[0] != pos.x ||
        e.rect.lo[1] != pos.y || e.rect.hi[1] != pos.y) {
      return Status::Internal("leaf rect " + FormatRect(e.rect) +
                              " is not the position of object " +
                              Num(static_cast<uint64_t>(e.id)));
    }
    return Status::OK();
  };
  Status st = ValidateRTree<2, NoAug>(tree, no_summary, entry_check);
  if (!st.ok()) {
    return Status::Internal("object index: " + st.message());
  }
  return CheckLeafIdBijection(seen, "object index: object");
}

Status ValidateInvertedIndex(const InvertedIndex& index) {
  uint64_t total = 0;
  for (TermId t = 0; t < index.universe_size(); ++t) {
    std::span<const uint32_t> plist = index.Postings(t);
    total += plist.size();
    for (size_t i = 1; i < plist.size(); ++i) {
      if (plist[i] <= plist[i - 1]) {
        return Status::Internal(
            "postings of term " + Num(static_cast<uint64_t>(t)) +
            " are not strictly increasing at position " +
            Num(static_cast<uint64_t>(i)) + " (" +
            Num(static_cast<uint64_t>(plist[i - 1])) + " then " +
            Num(static_cast<uint64_t>(plist[i])) +
            "): unsorted or duplicate document id");
      }
    }
    if (index.DocumentFrequency(t) != plist.size()) {
      return Status::Internal("document frequency of term " +
                              Num(static_cast<uint64_t>(t)) +
                              " disagrees with its posting count");
    }
  }
  if (total != index.TotalPostings()) {
    return Status::Internal("sum of posting lengths " + Num(total) +
                            " != TotalPostings() " +
                            Num(index.TotalPostings()) +
                            " (CSR offsets corrupt)");
  }
  return Status::OK();
}

Status ValidateInvertedIndex(const InvertedIndex& index,
                             std::span<const KeywordSet> documents) {
  STPQ_RETURN_NOT_OK(ValidateInvertedIndex(index));
  // Forward direction: every posted document really contains the term.
  for (TermId t = 0; t < index.universe_size(); ++t) {
    for (uint32_t doc : index.Postings(t)) {
      if (doc >= documents.size()) {
        return Status::Internal("term " + Num(static_cast<uint64_t>(t)) +
                                " posts document " +
                                Num(static_cast<uint64_t>(doc)) +
                                ", outside the corpus of " +
                                Num(static_cast<uint64_t>(documents.size())));
      }
      if (!documents[doc].Contains(t)) {
        return Status::Internal("term " + Num(static_cast<uint64_t>(t)) +
                                " posts document " +
                                Num(static_cast<uint64_t>(doc)) +
                                " which does not contain it (phantom "
                                "posting)");
      }
    }
  }
  // Reverse direction: every document keyword is posted.
  for (uint32_t doc = 0; doc < documents.size(); ++doc) {
    for (TermId t : documents[doc].ToTerms()) {
      if (t >= index.universe_size()) {
        return Status::Internal(
            "document " + Num(static_cast<uint64_t>(doc)) + " uses term " +
            Num(static_cast<uint64_t>(t)) + " outside the indexed universe");
      }
      std::span<const uint32_t> plist = index.Postings(t);
      if (!std::binary_search(plist.begin(), plist.end(), doc)) {
        return Status::Internal("document " +
                                Num(static_cast<uint64_t>(doc)) +
                                " contains term " +
                                Num(static_cast<uint64_t>(t)) +
                                " but is missing from its postings");
      }
    }
  }
  return Status::OK();
}

Status ValidateBufferPool(const BufferPool& pool) {
  // Frame list and page table must be a bijection.
  if (pool.lru_.size() != pool.table_.size()) {
    return Status::Internal("buffer pool: LRU list holds " +
                            Num(static_cast<uint64_t>(pool.lru_.size())) +
                            " frames but the page table maps " +
                            Num(static_cast<uint64_t>(pool.table_.size())) +
                            " pages");
  }
  for (auto it = pool.lru_.begin(); it != pool.lru_.end(); ++it) {
    auto entry = pool.table_.find(*it);
    if (entry == pool.table_.end()) {
      return Status::Internal("buffer pool: resident page " + Num(*it) +
                              " is missing from the page table");
    }
    if (entry->second != it) {
      return Status::Internal("buffer pool: page table entry for page " +
                              Num(*it) +
                              " does not point back at its LRU frame");
    }
  }
  // Pins must reference resident pages with positive counts.
  for (const auto& [page, count] : pool.pins_) {
    if (count == 0) {
      return Status::Internal("buffer pool: page " + Num(page) +
                              " has a zero pin count entry");
    }
    if (pool.table_.find(page) == pool.table_.end()) {
      return Status::Internal("buffer pool: pinned page " + Num(page) +
                              " is not resident");
    }
  }
  if (pool.pins_.size() > pool.lru_.size()) {
    return Status::Internal("buffer pool: more pinned pages than resident "
                            "frames");
  }
  // Capacity and I/O-counter consistency.
  if (pool.capacity_ != 0 && pool.lru_.size() > pool.capacity_) {
    return Status::Internal("buffer pool: " +
                            Num(static_cast<uint64_t>(pool.lru_.size())) +
                            " resident pages exceed capacity " +
                            Num(pool.capacity_));
  }
  if (pool.lru_.size() > pool.lifetime_admissions_) {
    return Status::Internal(
        "buffer pool: " + Num(static_cast<uint64_t>(pool.lru_.size())) +
        " resident pages but only " + Num(pool.lifetime_admissions_) +
        " lifetime admissions (I/O counters inconsistent)");
  }
  return Status::OK();
}

}  // namespace stpq
