// Deep structural invariant validators.
//
// Every validator returns Status::OK() on a healthy structure and a
// non-OK Status whose message names the violated invariant and the path to
// the offending node/entry (e.g. "root->n12[e3]: child MBR not contained").
// They never abort, so tests can exercise deliberate corruption, and the
// `stpq_cli validate` subcommand can report violations to users.
//
// Index build paths run these behind the STPQ_VALIDATE macro
// (util/logging.h): enabled in debug builds, compiled away in release, so
// later refactors of the bulk-load/insert/split machinery get an automatic
// safety net under `ctest` without taxing production binaries.
#ifndef STPQ_DEBUG_VALIDATE_H_
#define STPQ_DEBUG_VALIDATE_H_

#include <span>
#include <string>
#include <vector>

#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "text/inverted_index.h"
#include "util/status.h"

namespace stpq {

namespace validate_internal {

/// "root" for the root node, "root->n12[e3]" for node 12 reached through
/// entry 3 of its parent, and so on.
inline std::string ChildPath(const std::string& parent_path, NodeId child,
                             size_t entry_slot) {
  return parent_path + "->n" + std::to_string(child) + "[e" +
         std::to_string(entry_slot) + "]";
}

/// "[lo0,hi0]x[lo1,hi1]..." for violation messages.
template <int D>
std::string FormatRect(const Rect<D>& r) {
  std::string out;
  for (int d = 0; d < D; ++d) {
    out += (d == 0 ? "[" : "x[") + std::to_string(r.lo[d]) + "," +
           std::to_string(r.hi[d]) + "]";
  }
  return out;
}

}  // namespace validate_internal

/// Structural validation of an R-tree:
///   * node levels decrease by exactly one per step and all leaves sit at
///     level 0 (uniform leaf depth);
///   * every node holds between 1 and max_entries entries (bulk loading may
///     legally leave tail nodes under the insertion-path minimum fill);
///   * each internal entry's MBR is exactly the union of its child's entry
///     MBRs (containment + tightness);
///   * no node is reachable twice (no sharing/cycles) and reachable +
///     free-listed nodes account for every allocated node;
///   * the number of leaf records equals tree.size().
///
/// `summary_check(parent_entry, child_entry)` is called for every entry of
/// every child node against the parent entry summarizing that node — the
/// hook where augmentation dominance (max-score bounds, keyword supersets)
/// is verified.  `entry_check(entry, is_leaf)` is called once per entry for
/// self-consistency checks.  Both return Status; ValidateRTree prefixes the
/// node path to whatever message they produce.
template <int D, typename Aug, typename SummaryCheck, typename EntryCheck>
Status ValidateRTree(const RTree<D, Aug>& tree, SummaryCheck&& summary_check,
                     EntryCheck&& entry_check) {
  using Tree = RTree<D, Aug>;
  using Node = typename Tree::Node;
  using validate_internal::ChildPath;
  using validate_internal::FormatRect;

  if (tree.root_id() == kInvalidNodeId) {
    if (tree.height() != 0) {
      return Status::Internal("empty R-tree has height " +
                              std::to_string(tree.height()));
    }
    if (tree.size() != 0) {
      return Status::Internal("empty R-tree reports size " +
                              std::to_string(tree.size()));
    }
    return Status::OK();
  }
  if (tree.root_id() >= tree.node_count()) {
    return Status::Internal("root id " + std::to_string(tree.root_id()) +
                            " out of range (node count " +
                            std::to_string(tree.node_count()) + ")");
  }

  std::vector<bool> visited(tree.node_count(), false);
  uint64_t leaf_records = 0;

  struct Frame {
    NodeId id;
    uint16_t expected_level;
    std::string path;
  };
  std::vector<Frame> stack;
  stack.push_back(
      {tree.root_id(), static_cast<uint16_t>(tree.height() - 1), "root"});

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (visited[frame.id]) {
      return Status::Internal(frame.path + ": node " +
                              std::to_string(frame.id) +
                              " reachable through two paths (shared subtree "
                              "or cycle)");
    }
    visited[frame.id] = true;

    const Node& node = tree.PeekNode(frame.id);
    if (node.level != frame.expected_level) {
      return Status::Internal(
          frame.path + ": node level " + std::to_string(node.level) +
          " does not match expected depth level " +
          std::to_string(frame.expected_level) +
          " (leaf depth must be uniform)");
    }
    if (node.entries.empty()) {
      return Status::Internal(frame.path + ": node has no entries");
    }
    if (node.entries.size() > tree.options().max_entries) {
      return Status::Internal(
          frame.path + ": node holds " + std::to_string(node.entries.size()) +
          " entries, above max_entries " +
          std::to_string(tree.options().max_entries));
    }

    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto& e = node.entries[i];
      Status entry_st = entry_check(e, node.IsLeaf());
      if (!entry_st.ok()) {
        return Status::Internal(frame.path + "[e" + std::to_string(i) +
                                "]: " + entry_st.message());
      }
    }

    if (node.IsLeaf()) {
      leaf_records += node.entries.size();
      continue;
    }

    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto& e = node.entries[i];
      if (e.id >= tree.node_count()) {
        return Status::Internal(frame.path + "[e" + std::to_string(i) +
                                "]: child node id " + std::to_string(e.id) +
                                " out of range");
      }
      const Node& child = tree.PeekNode(e.id);
      const std::string child_path = ChildPath(frame.path, e.id, i);
      if (child.entries.empty()) {
        return Status::Internal(child_path + ": child node has no entries");
      }
      // The parent entry's MBR must be the exact union of the child's MBRs.
      Rect<D> unioned = child.entries.front().rect;
      for (size_t j = 1; j < child.entries.size(); ++j) {
        unioned.Enlarge(child.entries[j].rect);
      }
      for (int d = 0; d < D; ++d) {
        if (unioned.lo[d] != e.rect.lo[d] || unioned.hi[d] != e.rect.hi[d]) {
          return Status::Internal(
              child_path + ": parent entry MBR " + FormatRect(e.rect) +
              " is not the exact union " + FormatRect(unioned) +
              " of the child's entry MBRs (dim " + std::to_string(d) + ")");
        }
      }
      for (size_t j = 0; j < child.entries.size(); ++j) {
        Status st = summary_check(e, child.entries[j]);
        if (!st.ok()) {
          return Status::Internal(child_path + "[e" + std::to_string(j) +
                                  "]: " + st.message());
        }
      }
      stack.push_back({e.id, static_cast<uint16_t>(frame.expected_level - 1),
                       child_path});
    }
  }

  if (leaf_records != tree.size()) {
    return Status::Internal(
        "tree reports size " + std::to_string(tree.size()) + " but holds " +
        std::to_string(leaf_records) + " leaf records");
  }
  uint64_t reached = 0;
  for (bool v : visited) reached += v ? 1 : 0;
  if (reached + tree.free_node_count() != tree.node_count()) {
    return Status::Internal(
        std::to_string(reached) + " reachable nodes + " +
        std::to_string(tree.free_node_count()) + " free-listed nodes do not "
        "account for all " + std::to_string(tree.node_count()) +
        " allocated nodes");
  }
  return Status::OK();
}

/// Structure-only overload (no augmentation checks).
template <int D, typename Aug>
Status ValidateRTree(const RTree<D, Aug>& tree) {
  auto no_summary = [](const auto&, const auto&) { return Status::OK(); };
  auto no_entry = [](const auto&, bool) { return Status::OK(); };
  return ValidateRTree<D, Aug>(tree, no_summary, no_entry);
}

/// SRT-index validation (Section 4 invariants): R-tree structure, per-entry
/// aggregate score upper bounds dominating children, node keyword sets
/// supersets of their children, Hilbert/keyword-cache consistency, leaf
/// entries matching the feature table, and — for Hilbert bulk loads —
/// non-decreasing Hilbert keys across the leaf level.
[[nodiscard]] Status ValidateSrtIndex(const SrtIndex& index);

/// Modified IR2-tree validation: R-tree structure, max-score dominance,
/// node signatures covering child signatures, and leaf signatures/scores
/// matching the feature table.
[[nodiscard]] Status ValidateIr2Tree(const Ir2Tree& index);

/// Object R-tree validation: structure plus a bijection between leaf
/// records and the object collection.
[[nodiscard]] Status ValidateObjectIndex(const ObjectIndex& index);

/// Inverted-index validation: per-term postings sorted and duplicate-free,
/// document ids in range, and — when `documents` is the corpus the index
/// was built from — exact consistency in both directions (posted documents
/// contain the term; documents containing a term are posted).
[[nodiscard]] Status ValidateInvertedIndex(const InvertedIndex& index,
                             std::span<const KeywordSet> documents);

/// Postings-only overload for when the source corpus is unavailable.
[[nodiscard]] Status ValidateInvertedIndex(const InvertedIndex& index);

// ValidateBufferPool is declared in storage/buffer_pool.h (it needs friend
// access); re-exported here so validators have one include point.

}  // namespace stpq

#endif  // STPQ_DEBUG_VALIDATE_H_
