// Term dictionary: maps keyword strings to dense term ids.
//
// The paper's keyword universe (the "indexed keywords" parameter, 64-256 in
// the experiments) is represented by dense ids [0, size) so that keyword
// sets can be fixed-width bitmaps and the Hilbert mapping of Section 4.2
// can treat a keyword set as a binary vector of length w = size().
#ifndef STPQ_TEXT_VOCABULARY_H_
#define STPQ_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace stpq {

using TermId = uint32_t;

/// Bidirectional keyword <-> TermId dictionary.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or NotFound.
  [[nodiscard]] Result<TermId> Lookup(std::string_view term) const;

  /// The keyword string for `id`; id must be < size().
  const std::string& Term(TermId id) const;

  /// Number of distinct keywords (the paper's w).
  uint32_t size() const { return static_cast<uint32_t>(terms_.size()); }

  /// Builds a vocabulary of `n` synthetic keywords "kw000".."kwNNN".
  static Vocabulary Synthetic(uint32_t n);

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> ids_;
};

}  // namespace stpq

#endif  // STPQ_TEXT_VOCABULARY_H_
