// Hand-rolled inverted index: TermId -> sorted posting list of object ids.
//
// Used by the generators and tests for exact textual filtering, and
// available as a public building block (spatio-textual indexes in the
// literature, e.g. the IR-tree family, attach such inverted files to index
// nodes; the SRT-index replaces them with Hilbert keyword summaries).
#ifndef STPQ_TEXT_INVERTED_INDEX_H_
#define STPQ_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/keyword_set.h"

namespace stpq {

/// Immutable-after-build inverted file over a corpus of keyword sets.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index for `universe_size` terms; document i's keywords are
  /// `documents[i]`.  Document ids are their positions in the span.
  static InvertedIndex Build(uint32_t universe_size,
                             std::span<const KeywordSet> documents);

  /// Sorted ids of documents containing `term` (empty if none).
  std::span<const uint32_t> Postings(TermId term) const;

  /// Number of documents containing `term`.
  uint32_t DocumentFrequency(TermId term) const;

  /// Sorted ids of documents containing at least one keyword of `query`
  /// (the sim > 0 candidate set).
  std::vector<uint32_t> MatchAny(const KeywordSet& query) const;

  /// Sorted ids of documents containing every keyword of `query`.
  std::vector<uint32_t> MatchAll(const KeywordSet& query) const;

  uint32_t universe_size() const { return universe_size_; }
  uint64_t TotalPostings() const { return postings_.size(); }

  /// Raw postings access for deliberate-corruption invariant tests only.
  [[nodiscard]] std::vector<uint32_t>& mutable_postings_for_test() {
    return postings_;
  }

 private:
  uint32_t universe_size_ = 0;
  // Concatenated posting lists with per-term offsets (CSR layout).
  std::vector<uint32_t> postings_;
  std::vector<uint64_t> offsets_;  // size universe_size_ + 1
};

}  // namespace stpq

#endif  // STPQ_TEXT_INVERTED_INDEX_H_
