// Keyword sets as fixed-universe bitmaps with popcount-based set algebra.
//
// t.W in the paper.  Jaccard(t.W, W) = |t.W n W| / |t.W u W| (Section 3).
//
// Every set carries a one-word *signature*: the OR-fold of its blocks
// (bit b of the signature is set iff some block has bit b set).  Two sets
// whose signatures do not share a bit cannot share a keyword, so the
// sim > 0 pruning test (`Intersects`) and the |A n B| = 0 case short-
// circuit in a single AND before touching the block arrays; a non-zero
// AND falls back to the exact block scan, so answers never change.  For
// universes of at most 64 keywords the signature *is* the set and the
// fast path is exact in both directions.
#ifndef STPQ_TEXT_KEYWORD_SET_H_
#define STPQ_TEXT_KEYWORD_SET_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "text/vocabulary.h"

namespace stpq {

/// A set of TermIds over a universe of `universe_size` keywords.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Empty set over a universe of `universe_size` keywords.
  explicit KeywordSet(uint32_t universe_size);

  /// Set containing the given terms.
  KeywordSet(uint32_t universe_size, std::initializer_list<TermId> terms);

  void Insert(TermId id);
  bool Contains(TermId id) const;

  /// Number of keywords in the set.
  uint32_t Count() const;
  bool Empty() const { return Count() == 0; }

  uint32_t universe_size() const { return universe_size_; }

  /// |this n other|.
  uint32_t IntersectCount(const KeywordSet& other) const;
  /// |this u other|.
  uint32_t UnionCount(const KeywordSet& other) const;
  /// True iff the sets share at least one keyword (sim(t, W) > 0 test).
  bool Intersects(const KeywordSet& other) const;

  /// Jaccard similarity; 0 if both sets are empty.  Single fused block
  /// pass (intersection and union popcounts together) behind the
  /// signature short-circuit.
  double Jaccard(const KeywordSet& other) const;

  /// In-place union (the node-summary aggregation of Section 4.1).
  void UnionWith(const KeywordSet& other);

  bool operator==(const KeywordSet& other) const = default;

  /// The TermIds present, ascending.
  std::vector<TermId> ToTerms() const;

  /// Raw 64-bit blocks, LSB-first (bit d of block d/64 = term d).
  const std::vector<uint64_t>& blocks() const { return blocks_; }

  /// One-word OR-fold of the blocks (see the file comment).  Maintained
  /// incrementally by Insert/UnionWith; `sig_a & sig_b == 0` proves the
  /// sets disjoint.
  uint64_t signature() const { return sig_; }

  /// Builds a set directly from raw blocks (must match the universe size).
  static KeywordSet FromBlocks(uint32_t universe_size,
                               std::vector<uint64_t> blocks);

 private:
  uint32_t universe_size_ = 0;
  uint64_t sig_ = 0;
  std::vector<uint64_t> blocks_;
};

}  // namespace stpq

#endif  // STPQ_TEXT_KEYWORD_SET_H_
