#include "text/signature.h"

#include "util/logging.h"

namespace stpq {

namespace {
// splitmix64: cheap, well-distributed stateless hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void Signature::UnionWith(const Signature& other) {
  STPQ_DCHECK(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool Signature::Covers(const Signature& needle) const {
  STPQ_DCHECK(bits_ == needle.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((needle.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

SignatureScheme::SignatureScheme(uint32_t signature_bits,
                                 uint32_t hashes_per_term, uint64_t seed)
    : signature_bits_(signature_bits),
      hashes_per_term_(hashes_per_term),
      seed_(seed) {
  STPQ_CHECK(signature_bits_ > 0 && hashes_per_term_ > 0);
}

Signature SignatureScheme::TermSignature(TermId term) const {
  Signature sig(signature_bits_);
  for (uint32_t j = 0; j < hashes_per_term_; ++j) {
    uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(term) << 32 | j));
    sig.SetBit(static_cast<uint32_t>(h % signature_bits_));
  }
  return sig;
}

Signature SignatureScheme::SetSignature(const KeywordSet& set) const {
  Signature sig(signature_bits_);
  for (TermId t : set.ToTerms()) sig.UnionWith(TermSignature(t));
  return sig;
}

uint32_t SignatureScheme::UpperBoundIntersect(const Signature& signature,
                                              const KeywordSet& query) const {
  uint32_t n = 0;
  for (TermId t : query.ToTerms()) {
    if (signature.Covers(TermSignature(t))) ++n;
  }
  return n;
}

bool SignatureScheme::MayIntersect(const Signature& signature,
                                   const KeywordSet& query) const {
  for (TermId t : query.ToTerms()) {
    if (signature.Covers(TermSignature(t))) return true;
  }
  return false;
}

}  // namespace stpq
