#include "text/signature.h"

#include <bit>

#include "util/logging.h"

namespace stpq {

namespace {
// splitmix64: cheap, well-distributed stateless hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Calls `fn(term)` for every keyword in `set`, ascending.  Enumerates
/// set bits with countr_zero over the raw blocks — no temporary term
/// vector on the query hot path.
template <typename Fn>
void ForEachTerm(const KeywordSet& set, Fn&& fn) {
  const std::vector<uint64_t>& blocks = set.blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (uint64_t b = blocks[i]; b != 0; b &= b - 1) {
      fn(static_cast<TermId>(i * 64 + std::countr_zero(b)));
    }
  }
}
}  // namespace

void Signature::UnionWith(const Signature& other) {
  STPQ_DCHECK(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool Signature::Covers(const Signature& needle) const {
  STPQ_DCHECK(bits_ == needle.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((needle.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

SignatureScheme::SignatureScheme(uint32_t signature_bits,
                                 uint32_t hashes_per_term, uint64_t seed)
    : signature_bits_(signature_bits),
      hashes_per_term_(hashes_per_term),
      seed_(seed) {
  STPQ_CHECK(signature_bits_ > 0 && hashes_per_term_ > 0);
}

uint32_t SignatureScheme::TermBit(TermId term, uint32_t j) const {
  uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(term) << 32 | j));
  return static_cast<uint32_t>(h % signature_bits_);
}

Signature SignatureScheme::TermSignature(TermId term) const {
  Signature sig(signature_bits_);
  for (uint32_t j = 0; j < hashes_per_term_; ++j) sig.SetBit(TermBit(term, j));
  return sig;
}

Signature SignatureScheme::SetSignature(const KeywordSet& set) const {
  // Sets each term's hash bits directly into the result: the same bits
  // TermSignature would set, without a per-term Signature allocation.
  Signature sig(signature_bits_);
  ForEachTerm(set, [&](TermId t) {
    for (uint32_t j = 0; j < hashes_per_term_; ++j) sig.SetBit(TermBit(t, j));
  });
  return sig;
}

bool SignatureScheme::CoversTerm(const Signature& signature,
                                 TermId term) const {
  for (uint32_t j = 0; j < hashes_per_term_; ++j) {
    if (!signature.TestBit(TermBit(term, j))) return false;
  }
  return true;
}

uint32_t SignatureScheme::UpperBoundIntersect(const Signature& signature,
                                              const KeywordSet& query) const {
  uint32_t n = 0;
  ForEachTerm(query, [&](TermId t) {
    if (CoversTerm(signature, t)) ++n;
  });
  return n;
}

bool SignatureScheme::MayIntersect(const Signature& signature,
                                   const KeywordSet& query) const {
  const std::vector<uint64_t>& blocks = query.blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (uint64_t b = blocks[i]; b != 0; b &= b - 1) {
      const TermId t = static_cast<TermId>(i * 64 + std::countr_zero(b));
      if (CoversTerm(signature, t)) return true;
    }
  }
  return false;
}

}  // namespace stpq
