#include "text/vocabulary.h"

#include <cstdio>

#include "util/logging.h"

namespace stpq {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

Result<TermId> Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  if (it == ids_.end()) {
    return Status::NotFound("unknown keyword: " + std::string(term));
  }
  return it->second;
}

const std::string& Vocabulary::Term(TermId id) const {
  STPQ_CHECK(id < terms_.size());
  return terms_[id];
}

Vocabulary Vocabulary::Synthetic(uint32_t n) {
  Vocabulary v;
  char buf[16];
  for (uint32_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "kw%03u", i);
    v.Intern(buf);
  }
  return v;
}

}  // namespace stpq
