#include "text/keyword_set.h"

#include <bit>

#include "util/logging.h"

namespace stpq {

namespace {
size_t BlockCount(uint32_t universe_size) {
  return (static_cast<size_t>(universe_size) + 63) / 64;
}
}  // namespace

KeywordSet::KeywordSet(uint32_t universe_size)
    : universe_size_(universe_size), blocks_(BlockCount(universe_size), 0) {}

KeywordSet::KeywordSet(uint32_t universe_size,
                       std::initializer_list<TermId> terms)
    : KeywordSet(universe_size) {
  for (TermId id : terms) Insert(id);
}

void KeywordSet::Insert(TermId id) {
  STPQ_CHECK(id < universe_size_);
  const uint64_t bit = uint64_t{1} << (id % 64);
  blocks_[id / 64] |= bit;
  sig_ |= bit;
}

bool KeywordSet::Contains(TermId id) const {
  if (id >= universe_size_) return false;
  return (blocks_[id / 64] >> (id % 64)) & 1u;
}

uint32_t KeywordSet::Count() const {
  uint32_t n = 0;
  for (uint64_t b : blocks_) n += std::popcount(b);
  return n;
}

uint32_t KeywordSet::IntersectCount(const KeywordSet& other) const {
  STPQ_DCHECK(universe_size_ == other.universe_size_);
  if ((sig_ & other.sig_) == 0) return 0;  // provably disjoint
  uint32_t n = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    n += std::popcount(blocks_[i] & other.blocks_[i]);
  }
  return n;
}

uint32_t KeywordSet::UnionCount(const KeywordSet& other) const {
  STPQ_DCHECK(universe_size_ == other.universe_size_);
  uint32_t n = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    n += std::popcount(blocks_[i] | other.blocks_[i]);
  }
  return n;
}

bool KeywordSet::Intersects(const KeywordSet& other) const {
  STPQ_DCHECK(universe_size_ == other.universe_size_);
  if ((sig_ & other.sig_) == 0) return false;  // provably disjoint
  if (blocks_.size() == 1) return true;        // the signature is exact
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] & other.blocks_[i]) return true;
  }
  return false;
}

double KeywordSet::Jaccard(const KeywordSet& other) const {
  STPQ_DCHECK(universe_size_ == other.universe_size_);
  // Disjoint sets (including two empty ones) have similarity 0 by the
  // paper's convention, so the signature test answers directly.
  if ((sig_ & other.sig_) == 0) return 0.0;
  uint32_t inter = 0;
  uint32_t uni = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    inter += std::popcount(blocks_[i] & other.blocks_[i]);
    uni += std::popcount(blocks_[i] | other.blocks_[i]);
  }
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

void KeywordSet::UnionWith(const KeywordSet& other) {
  STPQ_DCHECK(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] |= other.blocks_[i];
  sig_ |= other.sig_;
}

std::vector<TermId> KeywordSet::ToTerms() const {
  std::vector<TermId> out;
  out.reserve(Count());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    for (uint64_t b = blocks_[i]; b != 0; b &= b - 1) {
      out.push_back(static_cast<TermId>(i * 64 + std::countr_zero(b)));
    }
  }
  return out;
}

KeywordSet KeywordSet::FromBlocks(uint32_t universe_size,
                                  std::vector<uint64_t> blocks) {
  STPQ_CHECK(blocks.size() == BlockCount(universe_size));
  KeywordSet s(universe_size);
  s.blocks_ = std::move(blocks);
  s.sig_ = 0;
  for (uint64_t b : s.blocks_) s.sig_ |= b;
  return s;
}

}  // namespace stpq
