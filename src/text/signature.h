// Signature files (superimposed coding) for the IR2-tree baseline.
//
// Felipe et al.'s IR2-tree [8] attaches a fixed-width bit signature to each
// node: the OR of the signatures of all keywords below the node.  A query
// keyword *may* be present below a node iff all its signature bits are set;
// false positives are possible, false negatives are not — so counting the
// possibly-present query keywords yields a valid upper bound on
// |e.W n W|, which the modified IR2-tree uses for s-hat(e).
#ifndef STPQ_TEXT_SIGNATURE_H_
#define STPQ_TEXT_SIGNATURE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "text/keyword_set.h"

namespace stpq {

/// A fixed-width bit signature.
class Signature {
 public:
  Signature() = default;
  explicit Signature(uint32_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  uint32_t bits() const { return bits_; }

  void SetBit(uint32_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  bool TestBit(uint32_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// OR-in another signature (node aggregation).
  void UnionWith(const Signature& other);

  /// True iff every set bit of `needle` is set in this signature.
  bool Covers(const Signature& needle) const;

  bool operator==(const Signature& other) const = default;

  /// Raw backing words, bit i at words()[i / 64] bit (i % 64)
  /// (serialization; storage/index_file.*).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Rebuilds a signature from serialized words.  `words` must hold
  /// exactly (bits + 63) / 64 entries; extra or missing words are adopted
  /// as-is and caught by the deep validators, not here.
  static Signature FromWords(uint32_t bits, std::vector<uint64_t> words) {
    Signature s;
    s.bits_ = bits;
    s.words_ = std::move(words);
    return s;
  }

 private:
  uint32_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Deterministic term -> signature hashing scheme shared by an index.
class SignatureScheme {
 public:
  /// `signature_bits` is the signature width F; `hashes_per_term` is the
  /// number of bits m each keyword sets.
  SignatureScheme(uint32_t signature_bits, uint32_t hashes_per_term,
                  uint64_t seed = 0x5157'4a2d'9e3b'71c5ULL);

  uint32_t signature_bits() const { return signature_bits_; }

  /// Signature of a single keyword.
  Signature TermSignature(TermId term) const;

  /// Signature of a keyword set (OR of its terms' signatures).
  Signature SetSignature(const KeywordSet& set) const;

  /// Upper bound on |set n query| given only `set`'s signature: the number
  /// of query keywords whose term signature is covered.
  uint32_t UpperBoundIntersect(const Signature& signature,
                               const KeywordSet& query) const;

  /// True iff at least one query keyword may be present (sim > 0 filter).
  bool MayIntersect(const Signature& signature,
                    const KeywordSet& query) const;

 private:
  /// The j-th hash bit of `term` (j < hashes_per_term_).
  uint32_t TermBit(TermId term, uint32_t j) const;

  /// Whether all of `term`'s hash bits are set in `signature` — the same
  /// answer as `signature.Covers(TermSignature(term))` without building
  /// the per-term Signature.
  bool CoversTerm(const Signature& signature, TermId term) const;

  uint32_t signature_bits_;
  uint32_t hashes_per_term_;
  uint64_t seed_;
};

}  // namespace stpq

#endif  // STPQ_TEXT_SIGNATURE_H_
