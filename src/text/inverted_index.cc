#include "text/inverted_index.h"

#include <algorithm>

#include "debug/validate.h"
#include "util/logging.h"

namespace stpq {

InvertedIndex InvertedIndex::Build(uint32_t universe_size,
                                   std::span<const KeywordSet> documents) {
  InvertedIndex idx;
  idx.universe_size_ = universe_size;
  // Two passes: count frequencies, then fill CSR slots.
  std::vector<uint64_t> counts(universe_size, 0);
  for (const KeywordSet& doc : documents) {
    for (TermId t : doc.ToTerms()) ++counts[t];
  }
  idx.offsets_.assign(universe_size + 1, 0);
  for (uint32_t t = 0; t < universe_size; ++t) {
    idx.offsets_[t + 1] = idx.offsets_[t] + counts[t];
  }
  idx.postings_.resize(idx.offsets_[universe_size]);
  std::vector<uint64_t> cursor(idx.offsets_.begin(),
                               idx.offsets_.end() - 1);
  for (uint32_t doc_id = 0; doc_id < documents.size(); ++doc_id) {
    for (TermId t : documents[doc_id].ToTerms()) {
      idx.postings_[cursor[t]++] = doc_id;
    }
  }
  STPQ_VALIDATE(ValidateInvertedIndex(idx, documents));
  return idx;
}

std::span<const uint32_t> InvertedIndex::Postings(TermId term) const {
  if (term >= universe_size_) return {};
  return std::span<const uint32_t>(postings_.data() + offsets_[term],
                                   offsets_[term + 1] - offsets_[term]);
}

uint32_t InvertedIndex::DocumentFrequency(TermId term) const {
  if (term >= universe_size_) return 0;
  return static_cast<uint32_t>(offsets_[term + 1] - offsets_[term]);
}

std::vector<uint32_t> InvertedIndex::MatchAny(const KeywordSet& query) const {
  std::vector<uint32_t> out;
  for (TermId t : query.ToTerms()) {
    std::span<const uint32_t> plist = Postings(t);
    std::vector<uint32_t> merged;
    merged.reserve(out.size() + plist.size());
    std::set_union(out.begin(), out.end(), plist.begin(), plist.end(),
                   std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

std::vector<uint32_t> InvertedIndex::MatchAll(const KeywordSet& query) const {
  std::vector<TermId> terms = query.ToTerms();
  if (terms.empty()) return {};
  // Start from the rarest term to keep intermediate results small.
  std::sort(terms.begin(), terms.end(), [this](TermId a, TermId b) {
    return DocumentFrequency(a) < DocumentFrequency(b);
  });
  std::span<const uint32_t> first = Postings(terms[0]);
  std::vector<uint32_t> out(first.begin(), first.end());
  for (size_t i = 1; i < terms.size() && !out.empty(); ++i) {
    std::span<const uint32_t> plist = Postings(terms[i]);
    std::vector<uint32_t> narrowed;
    std::set_intersection(out.begin(), out.end(), plist.begin(), plist.end(),
                          std::back_inserter(narrowed));
    out = std::move(narrowed);
  }
  return out;
}

}  // namespace stpq
