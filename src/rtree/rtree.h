// R-tree substrate: Guttman insertion with quadratic split, bottom-up bulk
// packing, and pluggable entry augmentation.
//
// Both of the paper's feature indexes are R-trees in disguise:
//   * the SRT-index (Section 4) is an R-tree over the mapped 4-D space whose
//     entries carry {max score, aggregated keyword Hilbert value};
//   * the modified IR2-tree (Section 8) is a 2-D R-tree whose entries carry
//     {max score, keyword signature};
//   * the object index ("rtree" in the paper) is a plain 2-D R-tree.
// The shared mechanics live here; augmentation is a policy type with a
// Merge() so internal entries summarize their subtrees (e.s and e.W of
// Section 4.1 are exactly such summaries).
//
// Every node access is charged to a BufferPool to simulate disk residency.
#ifndef STPQ_RTREE_RTREE_H_
#define STPQ_RTREE_RTREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "geom/rect.h"
#include "storage/buffer_pool.h"
#include "util/logging.h"

namespace stpq {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();

/// Augmentation for plain R-trees (no extra per-entry payload).
struct NoAug {
  static NoAug Merge(const NoAug&, const NoAug&) { return {}; }
  static constexpr uint32_t kEntryBytes = 0;
};

/// R-tree sizing and storage knobs.
struct RTreeOptions {
  /// Maximum entries per node (fan-out).  Derive from the page size with
  /// FanOutForPage() to mirror a disk layout.
  uint32_t max_entries = 64;
  /// Minimum fill after a split, as a fraction of max_entries.
  double min_fill = 0.4;
  /// Pool charged on node access; may be nullptr (no I/O accounting).
  BufferPool* buffer_pool = nullptr;
  /// Page-id namespace offset so multiple indexes can share one pool.
  PageId page_base = 0;
};

/// Fan-out of a node stored on a page of `page_bytes`, with entries of
/// 2*D*8 rect bytes + 4 id bytes + `aug_bytes` augmentation bytes.
inline uint32_t FanOutForPage(uint32_t page_bytes, int dims,
                              uint32_t aug_bytes) {
  uint32_t entry_bytes = 2u * dims * 8u + 4u + aug_bytes;
  uint32_t header_bytes = 16;  // level, count, page metadata
  uint32_t fanout = (page_bytes - header_bytes) / entry_bytes;
  return std::max(fanout, 4u);
}

/// R-tree over D-dimensional rectangles with Aug-augmented entries.
///
/// Aug must provide `static Aug Merge(const Aug&, const Aug&)`.
template <int D, typename Aug = NoAug>
class RTree {
 public:
  struct Entry {
    Rect<D> rect;
    uint32_t id;  ///< child NodeId (internal) or caller's record id (leaf)
    Aug aug;
  };

  struct Node {
    uint16_t level = 0;  ///< 0 = leaf
    std::vector<Entry> entries;
    bool IsLeaf() const { return level == 0; }
  };

  explicit RTree(RTreeOptions options = {}) : options_(options) {
    STPQ_CHECK(options_.max_entries >= 4);
    min_entries_ = std::max<uint32_t>(
        2, static_cast<uint32_t>(options_.max_entries * options_.min_fill));
  }

  /// Number of indexed records.
  [[nodiscard]] uint64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] NodeId root_id() const { return root_; }
  [[nodiscard]] uint32_t height() const { return height_; }
  [[nodiscard]] uint32_t node_count() const {
    return static_cast<uint32_t>(nodes_.size());
  }
  /// Nodes currently on the free list (recycled by CondenseTree).
  [[nodiscard]] uint32_t free_node_count() const {
    return static_cast<uint32_t>(free_nodes_.size());
  }
  [[nodiscard]] uint32_t min_entries() const { return min_entries_; }
  [[nodiscard]] const RTreeOptions& options() const { return options_; }

  /// Reads a node, charging the buffer pool for the page access.
  const Node& ReadNode(NodeId id) const {
    STPQ_DCHECK(id < nodes_.size());
    if (node_decoder_) MaterializeNode(id);
    if (options_.buffer_pool != nullptr) {
      options_.buffer_pool->Access(options_.page_base + id);
    }
    return nodes_[id];
  }

  /// Reads a node without charging the buffer pool.  Used by the
  /// debug/validate.h validators (and tests) so a structural check does not
  /// distort I/O accounting.
  [[nodiscard]] const Node& PeekNode(NodeId id) const {
    STPQ_DCHECK(id < nodes_.size());
    if (node_decoder_) MaterializeNode(id);
    return nodes_[id];
  }

  /// Mutable node access for deliberate-corruption invariant tests only;
  /// library code never calls this.
  [[nodiscard]] Node& MutableNodeForTest(NodeId id) {
    STPQ_CHECK(id < nodes_.size());
    if (node_decoder_) MaterializeNode(id);
    return nodes_[id];
  }

  /// Serialization hooks (storage/index_file.*): the raw node array and
  /// free list.  Persisting both keeps NodeIds — and therefore page ids and
  /// golden I/O counts — identical across a save/load round trip.
  [[nodiscard]] const std::vector<Node>& nodes() const {
    MaterializeAll();
    return nodes_;
  }
  [[nodiscard]] const std::vector<NodeId>& free_nodes() const {
    return free_nodes_;
  }

  /// Replaces the tree structure wholesale with deserialized state
  /// (storage/index_file.*).  The caller is responsible for consistency
  /// (checksums at read time, deep validators after the engine is open);
  /// node ids are adopted exactly as given.
  void Restore(std::vector<Node> nodes, std::vector<NodeId> free_nodes,
               NodeId root, uint32_t height, uint64_t size) {
    nodes_ = std::move(nodes);
    free_nodes_ = std::move(free_nodes);
    root_ = root;
    height_ = height;
    size_ = size;
    path_.clear();
    node_decoder_ = nullptr;
    node_once_.reset();
    materialized_nodes_.reset();
  }

  /// Restore variant that defers node payloads: `decoder` fills node `id`
  /// on first access (one file slot read), so opening a large index does
  /// not pull every node segment into memory.  Decoding is memoized per
  /// node (std::call_once, safe under concurrent readers); structural
  /// mutation and whole-tree walks (Insert/Delete/nodes()/CheckInvariants)
  /// materialize everything first and drop back to eager mode.
  void RestoreLazy(uint32_t node_count, std::vector<NodeId> free_nodes,
                   NodeId root, uint32_t height, uint64_t size,
                   std::function<void(NodeId, Node*)> decoder) {
    nodes_.assign(node_count, Node{});
    free_nodes_ = std::move(free_nodes);
    root_ = root;
    height_ = height;
    size_ = size;
    path_.clear();
    node_decoder_ = std::move(decoder);
    node_once_ = node_count > 0 ? std::make_unique<std::once_flag[]>(node_count)
                                : nullptr;
    materialized_nodes_ = std::make_unique<std::atomic<uint64_t>>(0);
  }

  /// Nodes decoded so far on a lazily restored tree; equals node_count()
  /// once the tree is eager.  Test hook for the header-only-open contract.
  [[nodiscard]] uint64_t materialized_node_count() const {
    if (node_decoder_ && materialized_nodes_ != nullptr) {
      return materialized_nodes_->load(std::memory_order_relaxed);
    }
    return nodes_.size();
  }

  /// Inserts one record.
  void Insert(const Rect<D>& rect, uint32_t record_id, const Aug& aug = {}) {
    MaterializeAll();
    if (root_ == kInvalidNodeId) {
      root_ = NewNode(0);
      height_ = 1;
    }
    path_.clear();
    NodeId leaf = ChooseLeaf(rect);
    nodes_[leaf].entries.push_back(Entry{rect, record_id, aug});
    ++size_;
    PropagateUp(leaf);
    STPQ_DCHECK(nodes_[root_].level + 1u == height_);
  }

  /// Deletes the record with `record_id` stored under exactly `rect`
  /// (Guttman's Delete with CondenseTree re-insertion).  Returns false if
  /// no such record exists.
  bool Delete(const Rect<D>& rect, uint32_t record_id) {
    MaterializeAll();
    if (root_ == kInvalidNodeId) return false;
    path_.clear();
    if (!FindLeaf(root_, rect, record_id)) return false;
    NodeId leaf = path_.empty() ? root_
                                : nodes_[path_.back().first]
                                      .entries[path_.back().second]
                                      .id;
    std::vector<Entry>& entries = nodes_[leaf].entries;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].id == record_id && RectsEqual(entries[i].rect, rect)) {
        entries.erase(entries.begin() + i);
        break;
      }
    }
    --size_;
    CondenseTree(leaf);
    return true;
  }

  /// Bulk loads from records pre-sorted by the caller (e.g. by Hilbert key
  /// per Kamel & Faloutsos, or by STR tiles).  Replaces any existing content.
  /// `fill` is the target leaf/node occupancy fraction.
  void BulkLoadSorted(const std::vector<Entry>& sorted_records,
                      double fill = 1.0) {
    nodes_.clear();
    node_decoder_ = nullptr;
    node_once_.reset();
    materialized_nodes_.reset();
    root_ = kInvalidNodeId;
    height_ = 0;
    size_ = sorted_records.size();
    if (sorted_records.empty()) return;
    uint32_t per_node = std::max<uint32_t>(
        min_entries_,
        static_cast<uint32_t>(options_.max_entries * fill));
    per_node = std::min(per_node, options_.max_entries);

    // Pack the current level into parent entries, bottom-up.
    std::vector<Entry> level_entries;
    uint16_t level = 0;
    {
      const std::vector<Entry>& recs = sorted_records;
      for (size_t i = 0; i < recs.size(); i += per_node) {
        size_t end = std::min(recs.size(), i + per_node);
        NodeId nid = NewNode(0);
        nodes_[nid].entries.assign(recs.begin() + i, recs.begin() + end);
        level_entries.push_back(SummarizeNode(nid));
      }
    }
    while (level_entries.size() > 1) {
      ++level;
      std::vector<Entry> next;
      for (size_t i = 0; i < level_entries.size(); i += per_node) {
        size_t end = std::min(level_entries.size(), i + per_node);
        NodeId nid = NewNode(level);
        nodes_[nid].entries.assign(level_entries.begin() + i,
                                   level_entries.begin() + end);
        next.push_back(SummarizeNode(nid));
      }
      level_entries = std::move(next);
    }
    root_ = level_entries.front().id;
    height_ = level + 1;
  }

  /// Calls `fn(record_id, rect, aug)` for every leaf record whose rectangle
  /// intersects `range`.
  template <typename Fn>
  void ForEachInRange(const Rect<D>& range, Fn&& fn) const {
    if (root_ == kInvalidNodeId) return;
    // Iterative DFS; stack holds node ids whose MBR intersects the range.
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      NodeId nid = stack.back();
      stack.pop_back();
      const Node& node = ReadNode(nid);
      for (const Entry& e : node.entries) {
        if (!range.Intersects(e.rect)) continue;
        if (node.IsLeaf()) {
          fn(e.id, e.rect, e.aug);
        } else {
          stack.push_back(e.id);
        }
      }
    }
  }

  /// Recomputes and verifies every internal entry's MBR and augmentation
  /// (test hook).  `aug_equal` compares augmentation values.
  template <typename AugEq>
  bool CheckInvariants(AugEq&& aug_equal) const {
    MaterializeAll();
    if (root_ == kInvalidNodeId) return true;
    return CheckNode(root_, height_ - 1, aug_equal);
  }

 private:
  /// Decodes node `id` exactly once (safe under concurrent readers).
  void MaterializeNode(NodeId id) const {
    std::call_once(node_once_[id], [&] {
      node_decoder_(id, &nodes_[id]);
      materialized_nodes_->fetch_add(1, std::memory_order_relaxed);
    });
  }

  /// Decodes every node and drops back to eager mode, so structural
  /// mutation (which creates node ids beyond the once-flag array) is safe.
  /// Not safe concurrently with readers; callers are cold single-threaded
  /// paths (Save, validators, updates).
  void MaterializeAll() const {
    if (!node_decoder_) return;
    for (NodeId id = 0; id < nodes_.size(); ++id) MaterializeNode(id);
    node_decoder_ = nullptr;
    node_once_.reset();
  }
  NodeId NewNode(uint16_t level) {
    if (!free_nodes_.empty()) {
      NodeId id = free_nodes_.back();
      free_nodes_.pop_back();
      nodes_[id] = Node{level, {}};
      return id;
    }
    nodes_.push_back(Node{level, {}});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void FreeNode(NodeId id) {
    nodes_[id].entries.clear();
    free_nodes_.push_back(id);
  }

  static bool RectsEqual(const Rect<D>& a, const Rect<D>& b) {
    for (int d = 0; d < D; ++d) {
      if (a.lo[d] != b.lo[d] || a.hi[d] != b.hi[d]) return false;
    }
    return true;
  }

  /// Depth-first search for the leaf holding (rect, record_id); fills
  /// path_ with the descent on success.
  bool FindLeaf(NodeId nid, const Rect<D>& rect, uint32_t record_id) {
    const Node& node = nodes_[nid];
    if (node.IsLeaf()) {
      for (const Entry& e : node.entries) {
        if (e.id == record_id && RectsEqual(e.rect, rect)) return true;
      }
      return false;
    }
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (!node.entries[i].rect.ContainsRect(rect)) continue;
      path_.push_back({nid, i});
      if (FindLeaf(node.entries[i].id, rect, record_id)) return true;
      path_.pop_back();
    }
    return false;
  }

  /// Guttman's CondenseTree: walks the recorded path upward, dissolving
  /// underfull nodes and re-inserting their entries, then shrinks the root.
  void CondenseTree(NodeId changed) {
    std::vector<std::pair<Entry, uint16_t>> orphans;  // entry, node level
    while (!path_.empty()) {
      auto [parent, slot] = path_.back();
      path_.pop_back();
      if (nodes_[changed].entries.size() < min_entries_) {
        for (const Entry& e : nodes_[changed].entries) {
          orphans.push_back({e, nodes_[changed].level});
        }
        FreeNode(changed);
        nodes_[parent].entries.erase(nodes_[parent].entries.begin() + slot);
      } else {
        nodes_[parent].entries[slot] = SummarizeNode(changed);
      }
      changed = parent;
    }
    // Shrink the root while it is an internal node with a single child.
    while (root_ != kInvalidNodeId && !nodes_[root_].IsLeaf() &&
           nodes_[root_].entries.size() == 1) {
      NodeId old = root_;
      root_ = nodes_[root_].entries[0].id;
      FreeNode(old);
      --height_;
    }
    if (root_ != kInvalidNodeId && nodes_[root_].entries.empty()) {
      FreeNode(root_);
      root_ = kInvalidNodeId;
      height_ = 0;
    }
    // Re-insert orphans at their original level (leaf records via Insert,
    // which increments size_ — compensate since they were already counted).
    for (auto& [entry, level] : orphans) {
      if (level == 0) {
        Insert(entry.rect, entry.id, entry.aug);
        --size_;
      } else {
        InsertAtLevel(entry, level);
      }
    }
  }

  /// Inserts a subtree entry at a node of exactly `node_level`.  Falls back
  /// to record-level re-insertion when the tree is now too shallow.
  void InsertAtLevel(const Entry& entry, uint16_t node_level) {
    if (root_ == kInvalidNodeId || nodes_[root_].level < node_level) {
      // The tree shrank below the orphan's level: re-insert its records.
      ReinsertRecords(entry.id);
      FreeSubtree(entry.id);
      return;
    }
    path_.clear();
    NodeId cur = root_;
    while (nodes_[cur].level != node_level) {
      const Node& node = nodes_[cur];
      size_t best = 0;
      double best_enlarge = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        double enlarge = node.entries[i].rect.EnlargementArea(entry.rect);
        if (enlarge < best_enlarge) {
          best = i;
          best_enlarge = enlarge;
        }
      }
      path_.push_back({cur, best});
      cur = node.entries[best].id;
    }
    nodes_[cur].entries.push_back(entry);
    PropagateUp(cur);
  }

  /// Re-inserts every leaf record under node `nid` (fallback path).
  void ReinsertRecords(NodeId nid) {
    std::vector<Entry> records;
    std::vector<NodeId> stack{nid};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      const Node& node = nodes_[cur];
      for (const Entry& e : node.entries) {
        if (node.IsLeaf()) {
          records.push_back(e);
        } else {
          stack.push_back(e.id);
        }
      }
    }
    for (const Entry& e : records) {
      Insert(e.rect, e.id, e.aug);
      --size_;  // already counted
    }
  }

  /// Returns every node of the subtree rooted at `nid` to the free list.
  void FreeSubtree(NodeId nid) {
    std::vector<NodeId> stack{nid};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      if (!nodes_[cur].IsLeaf()) {
        for (const Entry& e : nodes_[cur].entries) stack.push_back(e.id);
      }
      FreeNode(cur);
    }
  }

  /// Parent entry summarizing node `nid` (MBR union + Aug merge).
  Entry SummarizeNode(NodeId nid) {
    const Node& node = nodes_[nid];
    STPQ_DCHECK(!node.entries.empty());
    Entry out;
    out.id = nid;
    out.rect = node.entries.front().rect;
    out.aug = node.entries.front().aug;
    for (size_t i = 1; i < node.entries.size(); ++i) {
      out.rect.Enlarge(node.entries[i].rect);
      out.aug = Aug::Merge(out.aug, node.entries[i].aug);
    }
    return out;
  }

  /// Descends to the leaf with minimal area enlargement, recording the path
  /// (node id, entry index within parent) for the upward adjustment pass.
  NodeId ChooseLeaf(const Rect<D>& rect) {
    NodeId cur = root_;
    while (!nodes_[cur].IsLeaf()) {
      const Node& node = nodes_[cur];
      size_t best = 0;
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        double enlarge = node.entries[i].rect.EnlargementArea(rect);
        double area = node.entries[i].rect.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = i;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
      path_.push_back({cur, best});
      cur = node.entries[best].id;
    }
    return cur;
  }

  /// Walks the recorded path upward: splits overflowing nodes and refreshes
  /// the parent entries' MBR/augmentation.
  void PropagateUp(NodeId changed) {
    while (true) {
      bool overflow = nodes_[changed].entries.size() > options_.max_entries;
      NodeId sibling = kInvalidNodeId;
      if (overflow) sibling = SplitNode(changed);

      if (path_.empty()) {
        if (sibling != kInvalidNodeId) {
          // Root split: grow the tree by one level.
          NodeId new_root = NewNode(nodes_[changed].level + 1);
          nodes_[new_root].entries.push_back(SummarizeNode(changed));
          nodes_[new_root].entries.push_back(SummarizeNode(sibling));
          root_ = new_root;
          ++height_;
        }
        return;
      }

      auto [parent, slot] = path_.back();
      path_.pop_back();
      nodes_[parent].entries[slot] = SummarizeNode(changed);
      if (sibling != kInvalidNodeId) {
        nodes_[parent].entries.push_back(SummarizeNode(sibling));
      }
      changed = parent;
    }
  }

  /// Quadratic split (Guttman).  Returns the new sibling's id.
  NodeId SplitNode(NodeId nid) {
    std::vector<Entry> all = std::move(nodes_[nid].entries);
    nodes_[nid].entries.clear();
    NodeId sid = NewNode(nodes_[nid].level);

    // Pick the pair of seeds wasting the most area together.
    size_t seed_a = 0, seed_b = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < all.size(); ++i) {
      for (size_t j = i + 1; j < all.size(); ++j) {
        Rect<D> joined = all[i].rect;
        joined.Enlarge(all[j].rect);
        double waste = joined.Area() - all[i].rect.Area() -
                       all[j].rect.Area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    std::vector<bool> assigned(all.size(), false);
    Rect<D> rect_a = all[seed_a].rect;
    Rect<D> rect_b = all[seed_b].rect;
    nodes_[nid].entries.push_back(all[seed_a]);
    nodes_[sid].entries.push_back(all[seed_b]);
    assigned[seed_a] = assigned[seed_b] = true;
    size_t remaining = all.size() - 2;

    while (remaining > 0) {
      size_t count_a = nodes_[nid].entries.size();
      size_t count_b = nodes_[sid].entries.size();
      // Force-assign if one side must take all the rest to reach min fill.
      if (count_a + remaining == min_entries_) {
        for (size_t i = 0; i < all.size(); ++i) {
          if (!assigned[i]) {
            nodes_[nid].entries.push_back(all[i]);
            rect_a.Enlarge(all[i].rect);
            assigned[i] = true;
          }
        }
        break;
      }
      if (count_b + remaining == min_entries_) {
        for (size_t i = 0; i < all.size(); ++i) {
          if (!assigned[i]) {
            nodes_[sid].entries.push_back(all[i]);
            rect_b.Enlarge(all[i].rect);
            assigned[i] = true;
          }
        }
        break;
      }
      // PickNext: the entry with the largest preference between groups.
      size_t pick = 0;
      double best_diff = -1.0;
      double d_a_pick = 0.0, d_b_pick = 0.0;
      for (size_t i = 0; i < all.size(); ++i) {
        if (assigned[i]) continue;
        double d_a = rect_a.EnlargementArea(all[i].rect);
        double d_b = rect_b.EnlargementArea(all[i].rect);
        double diff = std::abs(d_a - d_b);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          d_a_pick = d_a;
          d_b_pick = d_b;
        }
      }
      bool to_a;
      if (d_a_pick != d_b_pick) {
        to_a = d_a_pick < d_b_pick;
      } else if (rect_a.Area() != rect_b.Area()) {
        to_a = rect_a.Area() < rect_b.Area();
      } else {
        to_a = nodes_[nid].entries.size() <= nodes_[sid].entries.size();
      }
      if (to_a) {
        nodes_[nid].entries.push_back(all[pick]);
        rect_a.Enlarge(all[pick].rect);
      } else {
        nodes_[sid].entries.push_back(all[pick]);
        rect_b.Enlarge(all[pick].rect);
      }
      assigned[pick] = true;
      --remaining;
    }
    // Split postcondition: both halves meet the fill bounds (the parent
    // entry for `sid` is appended by PropagateUp right after this returns).
    STPQ_DCHECK(nodes_[nid].entries.size() >= min_entries_ &&
                nodes_[nid].entries.size() <= options_.max_entries);
    STPQ_DCHECK(nodes_[sid].entries.size() >= min_entries_ &&
                nodes_[sid].entries.size() <= options_.max_entries);
    return sid;
  }

  template <typename AugEq>
  bool CheckNode(NodeId nid, uint16_t expected_level, AugEq& aug_equal) const {
    const Node& node = nodes_[nid];
    if (node.level != expected_level) return false;
    if (node.IsLeaf()) return true;
    for (const Entry& e : node.entries) {
      const Node& child = nodes_[e.id];
      if (child.entries.empty()) return false;
      Rect<D> rect = child.entries.front().rect;
      Aug aug = child.entries.front().aug;
      for (size_t i = 1; i < child.entries.size(); ++i) {
        rect.Enlarge(child.entries[i].rect);
        aug = Aug::Merge(aug, child.entries[i].aug);
      }
      for (int d = 0; d < D; ++d) {
        if (rect.lo[d] != e.rect.lo[d] || rect.hi[d] != e.rect.hi[d]) {
          return false;
        }
      }
      if (!aug_equal(aug, e.aug)) return false;
      if (!CheckNode(e.id, expected_level - 1, aug_equal)) return false;
    }
    return true;
  }

  RTreeOptions options_;
  uint32_t min_entries_;
  /// Mutable so const readers of a lazily restored tree can decode node
  /// payloads in place (memoized via node_once_).
  mutable std::vector<Node> nodes_;
  /// Lazy-restore state (RestoreLazy); empty/null on eager trees.
  mutable std::function<void(NodeId, Node*)> node_decoder_;
  mutable std::unique_ptr<std::once_flag[]> node_once_;
  mutable std::unique_ptr<std::atomic<uint64_t>> materialized_nodes_;
  std::vector<NodeId> free_nodes_;
  NodeId root_ = kInvalidNodeId;
  uint32_t height_ = 0;
  uint64_t size_ = 0;
  // Descent path scratch (node id, entry slot in that node's parent role).
  std::vector<std::pair<NodeId, size_t>> path_;
};

/// Deserialized tree payload adopted by the index restore constructors
/// (storage/index_file.*).  When `decoder` is set the payload is lazy:
/// `nodes` stays empty, `node_count` sizes the tree, and the decoder fills
/// one node slot on first access (RTree::RestoreLazy); otherwise `nodes`
/// holds the materialized array (RTree::Restore).
template <int D, typename Aug = NoAug>
struct RestoredTreeData {
  std::vector<typename RTree<D, Aug>::Node> nodes;
  std::vector<NodeId> free_nodes;
  NodeId root = kInvalidNodeId;
  uint32_t height = 0;
  uint64_t size = 0;
  uint32_t node_count = 0;
  std::function<void(NodeId, typename RTree<D, Aug>::Node*)> decoder;
};

/// Routes a restored payload to Restore or RestoreLazy; the one call the
/// index restore constructors make.
template <int D, typename Aug>
void AdoptRestoredTree(RTree<D, Aug>* tree, RestoredTreeData<D, Aug> restored) {
  if (restored.decoder) {
    tree->RestoreLazy(restored.node_count, std::move(restored.free_nodes),
                      restored.root, restored.height, restored.size,
                      std::move(restored.decoder));
  } else {
    tree->Restore(std::move(restored.nodes), std::move(restored.free_nodes),
                  restored.root, restored.height, restored.size);
  }
}

}  // namespace stpq

#endif  // STPQ_RTREE_RTREE_H_
