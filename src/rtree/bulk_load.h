// Bulk-load orderings for RTree::BulkLoadSorted.
//
// The paper bulk loads the SRT-index with Hilbert packing (Kamel &
// Faloutsos [9]) over the mapped 4-D space; STR is provided for ablation
// (bench_ablation_srt compares the packings).
#ifndef STPQ_RTREE_BULK_LOAD_H_
#define STPQ_RTREE_BULK_LOAD_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "hilbert/hilbert.h"
#include "rtree/rtree.h"

namespace stpq {

/// Sorts records by the Hilbert key of their rectangle centers, quantized
/// within `domain`.  Requires D * bits_per_dim <= 64.
template <int D, typename Aug>
void SortByHilbertKey(std::vector<typename RTree<D, Aug>::Entry>* records,
                      const Rect<D>& domain, int bits_per_dim = 64 / D / 2) {
  struct Keyed {
    uint64_t key;
    size_t index;
  };
  std::vector<Keyed> keyed(records->size());
  for (size_t i = 0; i < records->size(); ++i) {
    double unit[D];
    for (int d = 0; d < D; ++d) {
      double extent = domain.hi[d] - domain.lo[d];
      unit[d] = extent > 0.0
                    ? ((*records)[i].rect.Center(d) - domain.lo[d]) / extent
                    : 0.0;
    }
    keyed[i] = {HilbertKeyFromUnit(unit, bits_per_dim, D), i};
  }
  // Tie-break on the input index: equal Hilbert keys (quantization
  // collisions) keep their original order, making the sort a total order
  // any implementation — including the external merge sort — reproduces.
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return a.key != b.key ? a.key < b.key : a.index < b.index;
  });
  std::vector<typename RTree<D, Aug>::Entry> out;
  out.reserve(records->size());
  for (const Keyed& k : keyed) out.push_back((*records)[k.index]);
  *records = std::move(out);
}

namespace internal {

/// Recursive Sort-Tile-Recursive pass over dimensions [dim, D).
template <int D, typename Entry>
void StrRecurse(Entry* begin, Entry* end, int dim, uint32_t leaf_capacity) {
  size_t n = static_cast<size_t>(end - begin);
  if (n <= leaf_capacity || dim >= D) return;
  std::sort(begin, end, [dim](const Entry& a, const Entry& b) {
    return a.rect.Center(dim) < b.rect.Center(dim);
  });
  // Number of slabs along this dimension: P^(1/(D-dim)) where P is the
  // number of leaves needed.
  double leaves = std::ceil(static_cast<double>(n) / leaf_capacity);
  size_t slabs = static_cast<size_t>(
      std::ceil(std::pow(leaves, 1.0 / (D - dim))));
  slabs = std::max<size_t>(1, slabs);
  size_t per_slab = (n + slabs - 1) / slabs;
  for (size_t i = 0; i < n; i += per_slab) {
    size_t hi = std::min(n, i + per_slab);
    StrRecurse<D>(begin + i, begin + hi, dim + 1, leaf_capacity);
  }
}

}  // namespace internal

/// Sort-Tile-Recursive ordering (Leutenegger et al.).
template <int D, typename Aug>
void SortSTR(std::vector<typename RTree<D, Aug>::Entry>* records,
             uint32_t leaf_capacity) {
  if (records->empty()) return;
  internal::StrRecurse<D>(records->data(), records->data() + records->size(),
                          0, leaf_capacity);
}

/// Computes the domain rectangle of a record set (union of all MBRs).
template <int D, typename Aug>
Rect<D> ComputeDomain(const std::vector<typename RTree<D, Aug>::Entry>& recs) {
  Rect<D> domain = Rect<D>::Empty();
  for (const auto& r : recs) domain.Enlarge(r.rect);
  return domain;
}

}  // namespace stpq

#endif  // STPQ_RTREE_BULK_LOAD_H_
