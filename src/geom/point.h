// 2-D points and Euclidean distance (the paper's dist(p, t)).
#ifndef STPQ_GEOM_POINT_H_
#define STPQ_GEOM_POINT_H_

#include <cmath>

namespace stpq {

/// A point in the normalized [0,1] x [0,1] space of the paper's datasets.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const = default;
};

/// Squared Euclidean distance (used to avoid sqrt in comparisons).
inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance, the paper's dist(p, t).
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace stpq

#endif  // STPQ_GEOM_POINT_H_
