#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

namespace stpq {

HalfPlane BisectorHalfPlane(const Point& keep, const Point& other) {
  // dist(p, keep) <= dist(p, other)
  //   <=>  2*(other - keep) . p  <=  |other|^2 - |keep|^2
  HalfPlane hp;
  hp.a = 2.0 * (other.x - keep.x);
  hp.b = 2.0 * (other.y - keep.y);
  hp.c = other.x * other.x + other.y * other.y - keep.x * keep.x -
         keep.y * keep.y;
  return hp;
}

ConvexPolygon ConvexPolygon::FromRect(const Rect2& r) {
  if (r.IsEmpty()) return ConvexPolygon();
  return ConvexPolygon({{r.lo[0], r.lo[1]},
                        {r.hi[0], r.lo[1]},
                        {r.hi[0], r.hi[1]},
                        {r.lo[0], r.hi[1]}});
}

void ConvexPolygon::Clip(const HalfPlane& hp) {
  if (IsEmpty()) return;
  std::vector<Point> out;
  out.reserve(vertices_.size() + 1);
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = vertices_[i];
    const Point& nxt = vertices_[(i + 1) % n];
    double fc = hp.Evaluate(cur);
    double fn = hp.Evaluate(nxt);
    if (fc <= 0.0) {
      out.push_back(cur);
      if (fn > 0.0) {
        // Edge exits the half-plane: add the crossing point.
        double s = fc / (fc - fn);
        out.push_back({cur.x + s * (nxt.x - cur.x),
                       cur.y + s * (nxt.y - cur.y)});
      }
    } else if (fn <= 0.0) {
      // Edge enters the half-plane: add the crossing point.
      double s = fc / (fc - fn);
      out.push_back(
          {cur.x + s * (nxt.x - cur.x), cur.y + s * (nxt.y - cur.y)});
    }
  }
  vertices_ = std::move(out);
  if (vertices_.size() < 3) vertices_.clear();
}

bool ConvexPolygon::Contains(const Point& p, double eps) const {
  if (IsEmpty()) return false;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    // CCW orientation: inside points have non-negative cross products.
    double cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (cross < -eps) return false;
  }
  return true;
}

Rect2 ConvexPolygon::BoundingBox() const {
  Rect2 box = Rect2::Empty();
  for (const Point& v : vertices_) box.EnlargePoint({v.x, v.y});
  return box;
}

double ConvexPolygon::MaxDistanceFrom(const Point& p) const {
  double best = 0.0;
  for (const Point& v : vertices_) {
    best = std::max(best, SquaredDistance(p, v));
  }
  return std::sqrt(best);
}

double ConvexPolygon::Area() const {
  if (IsEmpty()) return 0.0;
  double twice = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return 0.5 * std::abs(twice);
}

}  // namespace stpq
