// Axis-aligned D-dimensional rectangles (R-tree MBRs).
//
// The object R-tree and the IR2-tree use D=2; the SRT-index maps features to
// D=4 (x, y, score, normalized Hilbert keyword value), per Section 4.2.
#ifndef STPQ_GEOM_RECT_H_
#define STPQ_GEOM_RECT_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "geom/point.h"
#include "util/logging.h"

namespace stpq {

/// Minimum bounding rectangle in D dimensions.
template <int D>
struct Rect {
  std::array<double, D> lo;
  std::array<double, D> hi;

  /// An empty rectangle: enlarging it by any point yields that point.
  static Rect Empty() {
    Rect r;
    r.lo.fill(std::numeric_limits<double>::infinity());
    r.hi.fill(-std::numeric_limits<double>::infinity());
    return r;
  }

  /// Degenerate rectangle covering a single D-dimensional point.
  static Rect FromPoint(const std::array<double, D>& p) {
    return Rect{p, p};
  }

  bool IsEmpty() const { return lo[0] > hi[0]; }

  /// Grows this rectangle to cover `other`.
  void Enlarge(const Rect& other) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], other.lo[d]);
      hi[d] = std::max(hi[d], other.hi[d]);
    }
  }

  /// Grows this rectangle to cover the point `p`.
  void EnlargePoint(const std::array<double, D>& p) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  bool Contains(const std::array<double, D>& p) const {
    for (int d = 0; d < D; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  bool ContainsRect(const Rect& other) const {
    for (int d = 0; d < D; ++d) {
      if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
    }
    return true;
  }

  bool Intersects(const Rect& other) const {
    for (int d = 0; d < D; ++d) {
      if (other.hi[d] < lo[d] || other.lo[d] > hi[d]) return false;
    }
    return true;
  }

  /// Hyper-volume; 0 for degenerate rectangles.
  double Area() const {
    double a = 1.0;
    for (int d = 0; d < D; ++d) a *= std::max(0.0, hi[d] - lo[d]);
    return a;
  }

  /// Sum of side lengths (the R*-tree margin measure).
  double Margin() const {
    double m = 0.0;
    for (int d = 0; d < D; ++d) m += std::max(0.0, hi[d] - lo[d]);
    return m;
  }

  /// Area increase needed to cover `other` (R-tree ChooseSubtree metric).
  double EnlargementArea(const Rect& other) const {
    double a = 1.0;
    for (int d = 0; d < D; ++d) {
      a *= std::max(hi[d], other.hi[d]) - std::min(lo[d], other.lo[d]);
    }
    return a - Area();
  }

  /// Center coordinate along dimension d.
  double Center(int d) const {
    STPQ_DCHECK(d >= 0 && d < D);
    return 0.5 * (lo[d] + hi[d]);
  }
};

using Rect2 = Rect<2>;
using Rect4 = Rect<4>;

/// Builds a 2-D rectangle from two corner coordinates.
inline Rect2 MakeRect2(double x0, double y0, double x1, double y1) {
  return Rect2{{std::min(x0, x1), std::min(y0, y1)},
               {std::max(x0, x1), std::max(y0, y1)}};
}

/// Degenerate 2-D rectangle for a point.
inline Rect2 PointRect(const Point& p) { return Rect2{{p.x, p.y}, {p.x, p.y}}; }

/// Minimum squared distance from point `p` to rectangle `r` (0 if inside).
inline double MinSquaredDistance(const Point& p, const Rect2& r) {
  double dx = std::max({r.lo[0] - p.x, 0.0, p.x - r.hi[0]});
  double dy = std::max({r.lo[1] - p.y, 0.0, p.y - r.hi[1]});
  return dx * dx + dy * dy;
}

/// The classic R-tree mindist(p, e): lower bound of dist(p, t) for any
/// feature t inside entry e's MBR.
inline double MinDistance(const Point& p, const Rect2& r) {
  return std::sqrt(MinSquaredDistance(p, r));
}

/// Maximum distance from `p` to any point of `r` (upper bound of dist).
inline double MaxDistance(const Point& p, const Rect2& r) {
  double dx = std::max(std::abs(p.x - r.lo[0]), std::abs(p.x - r.hi[0]));
  double dy = std::max(std::abs(p.y - r.lo[1]), std::abs(p.y - r.hi[1]));
  return std::sqrt(dx * dx + dy * dy);
}

/// Minimum distance between two rectangles (0 if they intersect).
inline double MinDistance(const Rect2& a, const Rect2& b) {
  double dx = std::max({b.lo[0] - a.hi[0], 0.0, a.lo[0] - b.hi[0]});
  double dy = std::max({b.lo[1] - a.hi[1], 0.0, a.lo[1] - b.hi[1]});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace stpq

#endif  // STPQ_GEOM_RECT_H_
