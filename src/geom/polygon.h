// Convex polygons with half-plane clipping.
//
// Used by the nearest-neighbor variant (Section 7.2) to compute Voronoi
// cells incrementally: the cell of a feature t is the domain rectangle
// clipped by the perpendicular bisector of (t, t') for each nearby feature
// t', and the qualifying region of a combination is the intersection of its
// members' cells.
#ifndef STPQ_GEOM_POLYGON_H_
#define STPQ_GEOM_POLYGON_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace stpq {

/// Closed half-plane {p : a*p.x + b*p.y <= c}.
struct HalfPlane {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  /// Signed slack: negative values are strictly inside.
  double Evaluate(const Point& p) const { return a * p.x + b * p.y - c; }

  bool Contains(const Point& p, double eps = 1e-12) const {
    return Evaluate(p) <= eps;
  }
};

/// Half-plane of points at least as close to `keep` as to `other`
/// (the perpendicular-bisector side of `keep`).
HalfPlane BisectorHalfPlane(const Point& keep, const Point& other);

/// A convex polygon maintained as a counter-clockwise vertex list.
///
/// Supports Sutherland–Hodgman clipping by half-planes; clipping an empty
/// polygon stays empty.
class ConvexPolygon {
 public:
  /// Empty polygon.
  ConvexPolygon() = default;

  /// Rectangle as a polygon (the Voronoi domain bounding box).
  static ConvexPolygon FromRect(const Rect2& r);

  /// Clips the polygon by `hp`, keeping the inside part.
  void Clip(const HalfPlane& hp);

  bool IsEmpty() const { return vertices_.size() < 3; }

  /// Point-in-polygon test (boundary counts as inside).
  bool Contains(const Point& p, double eps = 1e-9) const;

  /// Axis-aligned bounding box; Rect2::Empty() if the polygon is empty.
  Rect2 BoundingBox() const;

  /// Maximum distance from `p` to any vertex.  For a convex polygon this is
  /// the maximum distance from `p` to any point of the polygon, which is the
  /// termination bound for incremental Voronoi-cell computation.
  double MaxDistanceFrom(const Point& p) const;

  const std::vector<Point>& vertices() const { return vertices_; }

  /// Polygon area (shoelace formula); 0 if empty.
  double Area() const;

 private:
  explicit ConvexPolygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  std::vector<Point> vertices_;
};

}  // namespace stpq

#endif  // STPQ_GEOM_POLYGON_H_
