#include "io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace stpq {

namespace {

std::atomic<AtomicFile::FailurePoint> g_failure_point{
    AtomicFile::FailurePoint::kNone};

bool Injected(AtomicFile::FailurePoint point) {
  return g_failure_point.load(std::memory_order_relaxed) == point;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + ": " + path + ": " + std::strerror(errno));
}

/// Parent directory of `path` ("." when the path has no separator).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void AtomicFile::SetFailurePointForTest(FailurePoint point) {
  g_failure_point.store(point, std::memory_order_relaxed);
}

Result<AtomicFile> AtomicFile::Create(const std::string& final_path) {
  std::string tmp_path = final_path + ".tmp";
  int fd = -1;
  do {
    fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot open for write: " + tmp_path + ": " +
                           std::strerror(errno));
  }
  return AtomicFile(final_path, std::move(tmp_path), fd);
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : final_path_(std::move(other.final_path_)),
      tmp_path_(std::move(other.tmp_path_)),
      fd_(other.fd_) {
  other.fd_ = -1;
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Abandon();
    final_path_ = std::move(other.final_path_);
    tmp_path_ = std::move(other.tmp_path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

AtomicFile::~AtomicFile() { Abandon(); }

Status AtomicFile::WriteAt(uint64_t offset, const void* data, uint64_t n) {
  if (Injected(FailurePoint::kWrite)) {
    return Status::IoError("write failed: " + tmp_path_ +
                           ": injected failure");
  }
  const char* p = static_cast<const char*>(data);
  uint64_t remaining = n;
  uint64_t position = offset;
  while (remaining > 0) {
    const ssize_t wrote =
        ::pwrite(fd_, p, remaining, static_cast<off_t>(position));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed", tmp_path_);
    }
    p += wrote;
    position += static_cast<uint64_t>(wrote);
    remaining -= static_cast<uint64_t>(wrote);
  }
  return Status::OK();
}

Status AtomicFile::ReadAt(uint64_t offset, void* data, uint64_t n) const {
  char* p = static_cast<char*>(data);
  uint64_t remaining = n;
  uint64_t position = offset;
  while (remaining > 0) {
    const ssize_t got = ::pread(fd_, p, remaining, static_cast<off_t>(position));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("read failed", tmp_path_);
    }
    if (got == 0) {
      return Status::IoError("short read: " + tmp_path_);
    }
    p += got;
    position += static_cast<uint64_t>(got);
    remaining -= static_cast<uint64_t>(got);
  }
  return Status::OK();
}

Status AtomicFile::Truncate(uint64_t size) {
  int rc = 0;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("truncate failed", tmp_path_);
  return Status::OK();
}

Status AtomicFile::Commit() {
  if (Injected(FailurePoint::kSyncFile) || ::fsync(fd_) != 0) {
    Status st = Injected(FailurePoint::kSyncFile)
                    ? Status::IoError("fsync failed: " + tmp_path_ +
                                      ": injected failure")
                    : Errno("fsync failed", tmp_path_);
    Abandon();
    return st;
  }
  ::close(fd_);
  fd_ = -1;
  if (Injected(FailurePoint::kRename) ||
      ::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    Status st = Injected(FailurePoint::kRename)
                    ? Status::IoError("rename failed: " + final_path_ +
                                      ": injected failure")
                    : Errno("rename failed", final_path_);
    ::unlink(tmp_path_.c_str());
    return st;
  }
  // The rename is durable only once the directory entry is synced; a
  // failure here leaves a complete, valid new file whose persistence is
  // not yet guaranteed across power loss.
  const std::string dir = ParentDir(final_path_);
  int dir_fd = -1;
  do {
    dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dir_fd < 0 && errno == EINTR);
  if (Injected(FailurePoint::kSyncDir)) {
    if (dir_fd >= 0) ::close(dir_fd);
    return Status::IoError("fsync failed: " + dir + ": injected failure");
  }
  if (dir_fd < 0) return Errno("cannot open directory", dir);
  if (::fsync(dir_fd) != 0) {
    Status st = Errno("fsync failed", dir);
    ::close(dir_fd);
    return st;
  }
  ::close(dir_fd);
  return Status::OK();
}

void AtomicFile::Abandon() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  ::unlink(tmp_path_.c_str());
}

}  // namespace stpq
