// On-disk .stpqx format primitives shared by the in-memory writer/reader
// (io/index_file.cc) and the external-memory bulk loader (io/bulk_load.cc).
//
// Everything here is layout: magic numbers, segment naming, checksums,
// byte-buffer serializers, the fixed-width node-slot geometry, and the
// per-index augmentation codecs.  Both writers must agree on these bit for
// bit — the external bulk loader's contract is that its output is
// byte-identical to Build + Save — so the definitions live in one place.
#ifndef STPQ_IO_INDEX_FORMAT_H_
#define STPQ_IO_INDEX_FORMAT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "hilbert/keyword_hilbert.h"
#include "index/ir2_tree.h"
#include "index/srt_index.h"
#include "rtree/rtree.h"

namespace stpq {
namespace index_format {

inline constexpr uint32_t kIndexMagic = 0x58515453;  // "STQX" little-endian
inline constexpr uint32_t kIndexVersion = 1;

/// Fixed superblock / catalog-entry widths; the catalog starts right after
/// the superblock, segments after the catalog (node segments page-aligned).
inline constexpr size_t kSuperblockBytes = 52;
inline constexpr size_t kCatalogEntryBytes = 56;

/// Sanity caps against absurd counts in damaged headers (checksums cover
/// the segments, these cover the header itself).
inline constexpr uint32_t kMaxTables = 4096;
inline constexpr uint32_t kMaxNodeCount = 1u << 28;
inline constexpr uint64_t kMaxRecordCount = uint64_t{1} << 33;

enum SegmentType : uint32_t {
  kSegObjects = 0,
  kSegVocabulary = 1,
  kSegFeatureTable = 2,
  kSegObjectTreeMeta = 3,
  kSegObjectTreeNodes = 4,
  kSegFeatureTreeMeta = 5,
  kSegFeatureTreeNodes = 6,
};

inline const char* SegmentName(uint32_t type) {
  switch (type) {
    case kSegObjects:
      return "objects";
    case kSegVocabulary:
      return "vocabulary";
    case kSegFeatureTable:
      return "feature_table";
    case kSegObjectTreeMeta:
      return "object_tree_meta";
    case kSegObjectTreeNodes:
      return "object_tree_nodes";
    case kSegFeatureTreeMeta:
      return "feature_tree_meta";
    case kSegFeatureTreeNodes:
      return "feature_tree_nodes";
  }
  return "unknown";
}

inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Incremental FNV-1a64: feeding a segment through Update in any chunking
/// yields the same digest as one Fnv1a64 call over the whole payload.
class Fnv1a64Stream {
 public:
  void Update(const char* data, size_t n) {
    uint64_t h = h_;
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<uint8_t>(data[i]);
      h *= 1099511628211ULL;
    }
    h_ = h;
  }
  uint64_t Digest() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ULL;
};

inline uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

// Byte-buffer writers, mirroring dataset_io's stream helpers.
template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void PutString(std::string* out, const std::string& s) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over one segment's bytes.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Pod(T* v) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!Pod(&n)) return false;
    if (n > (1u << 24) || size_ - pos_ < n) return false;  // sanity cap
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ------------------------------------------------- augmentation codecs
//
// Fixed-width per-entry payloads; the word counts are derivable from the
// superblock parameters and double-checked against the tree metadata.

struct NoAugCodec {
  uint32_t aug_bits() const { return 0; }
  uint32_t aug_words() const { return 0; }
  uint32_t payload_bytes() const { return 0; }
  void Write(std::string*, const NoAug&) const {}
  bool Read(ByteReader&, NoAug*) const { return true; }
};

/// SrtAug persists {max score, aggregated Hilbert words}; the decoded
/// keyword cache is re-derived on read (DecodeKeywords is the exact
/// inverse of the encoding, so the rebuilt aug is identical).
struct SrtAugCodec {
  uint32_t universe = 0;

  uint32_t aug_bits() const { return universe; }
  uint32_t aug_words() const { return (universe + 63) / 64; }
  uint32_t payload_bytes() const { return 8 + 8 * aug_words(); }

  void Write(std::string* out, const SrtAug& aug) const {
    PutPod(out, aug.max_score);
    const std::vector<uint64_t>& words = aug.keyword_hilbert.words();
    for (uint32_t w = 0; w < aug_words(); ++w) {
      PutPod<uint64_t>(out, w < words.size() ? words[w] : 0);
    }
  }

  bool Read(ByteReader& in, SrtAug* aug) const {
    if (!in.Pod(&aug->max_score)) return false;
    HilbertValue hv(universe);
    for (uint32_t w = 0; w < aug_words(); ++w) {
      uint64_t word = 0;
      if (!in.Pod(&word)) return false;
      if (w < hv.words().size()) hv.words()[w] = word;
    }
    aug->keywords = DecodeKeywords(hv, universe);
    aug->keyword_hilbert = std::move(hv);
    return true;
  }
};

/// Ir2Aug persists {max score, signature words}.
struct Ir2AugCodec {
  uint32_t signature_bits = 0;

  uint32_t aug_bits() const { return signature_bits; }
  uint32_t aug_words() const { return (signature_bits + 63) / 64; }
  uint32_t payload_bytes() const { return 8 + 8 * aug_words(); }

  void Write(std::string* out, const Ir2Aug& aug) const {
    PutPod(out, aug.max_score);
    const std::vector<uint64_t>& words = aug.signature.words();
    for (uint32_t w = 0; w < aug_words(); ++w) {
      PutPod<uint64_t>(out, w < words.size() ? words[w] : 0);
    }
  }

  bool Read(ByteReader& in, Ir2Aug* aug) const {
    if (!in.Pod(&aug->max_score)) return false;
    std::vector<uint64_t> words(aug_words(), 0);
    for (uint32_t w = 0; w < aug_words(); ++w) {
      if (!in.Pod(&words[w])) return false;
    }
    aug->signature = Signature::FromWords(signature_bits, std::move(words));
    return true;
  }
};

/// The IR2 signature width rule, mirrored from the index builder: explicit
/// when configured, else scaled to the vocabulary.
inline uint32_t EffectiveIr2SignatureBits(uint32_t configured_bits,
                                          uint32_t universe_size) {
  return configured_bits != 0 ? configured_bits
                              : std::max(64u, 2 * universe_size);
}

// ------------------------------------------------------- slot geometry

/// Serialized width of one tree entry: D lo-doubles, D hi-doubles, a
/// uint32 child/record id, then the codec payload.
inline uint32_t EntryBytes(int dims, uint32_t payload_bytes) {
  return 16u * static_cast<uint32_t>(dims) + 4u + payload_bytes;
}

/// Page-aligned fixed slot width for a node segment: the worst-case node
/// record (8-byte header + max_entries entries) rounded up to the page.
inline uint32_t SlotBytesFor(uint32_t max_entries, uint32_t entry_bytes,
                             uint32_t page_size) {
  const uint64_t max_node_bytes = 8ull + uint64_t{max_entries} * entry_bytes;
  return static_cast<uint32_t>(AlignUp(max_node_bytes, page_size));
}

// ------------------------------------------------------ header structs

struct CatalogEntry {
  uint32_t type = 0;
  uint32_t ordinal = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t first_page = 0;
  uint64_t slot_count = 0;
  uint32_t slot_bytes = 0;
  uint64_t checksum = 0;
};

/// Appends one 56-byte catalog row in file order.
inline void AppendCatalogEntry(std::string* out, const CatalogEntry& e) {
  PutPod<uint32_t>(out, e.type);
  PutPod<uint32_t>(out, e.ordinal);
  PutPod<uint64_t>(out, e.offset);
  PutPod<uint64_t>(out, e.bytes);
  PutPod<uint64_t>(out, e.first_page);
  PutPod<uint64_t>(out, e.slot_count);
  PutPod<uint32_t>(out, e.slot_bytes);
  PutPod<uint32_t>(out, 0u);  // reserved
  PutPod<uint64_t>(out, e.checksum);
}

/// Appends the 52-byte superblock.  `index_kind` / `bulk_load` are the raw
/// enum values so this header does not depend on io/index_file.h.
inline void AppendSuperblock(std::string* out, uint32_t page_size,
                             uint32_t index_kind, uint32_t bulk_load,
                             uint32_t signature_bits, uint32_t signature_hashes,
                             double fill, uint64_t object_count,
                             uint32_t table_count, uint32_t segment_count) {
  PutPod<uint32_t>(out, kIndexMagic);
  PutPod<uint32_t>(out, kIndexVersion);
  PutPod<uint32_t>(out, page_size);
  PutPod<uint32_t>(out, index_kind);
  PutPod<uint32_t>(out, bulk_load);
  PutPod<uint32_t>(out, signature_bits);
  PutPod<uint32_t>(out, signature_hashes);
  PutPod<double>(out, fill);
  PutPod<uint64_t>(out, object_count);
  PutPod<uint32_t>(out, table_count);
  PutPod<uint32_t>(out, segment_count);
}

/// Appends a tree-metadata payload: root, height, record count, node
/// count, fan-out, aug layout, then the free list.
inline void AppendTreeMeta(std::string* out, uint32_t root, uint32_t height,
                           uint64_t size, uint32_t node_count,
                           uint32_t max_entries, uint32_t aug_bits,
                           uint32_t aug_words,
                           const std::vector<uint32_t>& free_nodes) {
  PutPod<uint32_t>(out, root);
  PutPod<uint32_t>(out, height);
  PutPod<uint64_t>(out, size);
  PutPod<uint32_t>(out, node_count);
  PutPod<uint32_t>(out, max_entries);
  PutPod<uint32_t>(out, aug_bits);
  PutPod<uint32_t>(out, aug_words);
  PutPod<uint32_t>(out, static_cast<uint32_t>(free_nodes.size()));
  for (uint32_t id : free_nodes) PutPod<uint32_t>(out, id);
}

}  // namespace index_format
}  // namespace stpq

#endif  // STPQ_IO_INDEX_FORMAT_H_
