#include "io/dataset_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace stpq {

namespace {

constexpr uint32_t kMagic = 0x53545051;  // "STPQ"
constexpr uint32_t kVersion = 1;

/// Splits a CSV line, honoring no quoting (fields here never contain
/// commas: names are sanitized on write).
std::vector<std::string> SplitCsv(const std::string& line, char sep = ',') {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

std::string SanitizeField(const std::string& s) {
  std::string out = s;
  for (char& ch : out) {
    if (ch == ',' || ch == '|' || ch == '\n' || ch == '\r') ch = ' ';
  }
  return out;
}

Result<double> ParseDouble(const std::string& s, const char* what) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || end == nullptr) {
    return Status::InvalidArgument(std::string("bad ") + what + ": " + s);
  }
  return v;
}

// Binary helpers: all writes/reads go through these so sizes stay explicit.
template <typename T>
void PutPod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

void PutString(std::ostream& os, const std::string& s) {
  PutPod<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& is, std::string* s) {
  uint32_t n = 0;
  if (!GetPod(is, &n)) return false;
  if (n > (1u << 24)) return false;  // sanity cap
  s->resize(n);
  is.read(s->data(), n);
  return static_cast<bool>(is);
}

}  // namespace

Status WriteObjectsCsv(const std::string& path,
                       const std::vector<DataObject>& objects) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "id,x,y,name\n";
  for (const DataObject& o : objects) {
    out << o.id << ',' << o.pos.x << ',' << o.pos.y << ','
        << SanitizeField(o.name) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<DataObject>> ReadObjectsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<DataObject> objects;
  std::string line;
  bool first = true;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) continue;  // header
    }
    std::vector<std::string> f = SplitCsv(line);
    if (f.size() < 3) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected id,x,y[,name]");
    }
    DataObject o;
    o.id = static_cast<ObjectId>(std::strtoul(f[0].c_str(), nullptr, 10));
    Result<double> x = ParseDouble(f[1], "x");
    if (!x.ok()) return x.status();
    Result<double> y = ParseDouble(f[2], "y");
    if (!y.ok()) return y.status();
    o.pos = {x.value(), y.value()};
    if (f.size() > 3) o.name = f[3];
    objects.push_back(std::move(o));
  }
  return objects;
}

Status WriteFeaturesCsv(const std::string& path, const FeatureTable& table,
                        const Vocabulary& vocab) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "id,x,y,score,keywords,name\n";
  for (const FeatureObject& t : table.All()) {
    out << t.id << ',' << t.pos.x << ',' << t.pos.y << ',' << t.score << ',';
    bool sep = false;
    for (TermId id : t.keywords.ToTerms()) {
      if (sep) out << '|';
      out << SanitizeField(vocab.Term(id));
      sep = true;
    }
    out << ',' << SanitizeField(t.name) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<FeatureTable> ReadFeaturesCsv(const std::string& path,
                                     Vocabulary* vocab,
                                     uint32_t universe_size) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  struct Row {
    Point pos;
    double score;
    std::vector<TermId> terms;
    std::string name;
  };
  std::vector<Row> rows;
  std::string line;
  bool first = true;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) continue;
    }
    std::vector<std::string> f = SplitCsv(line);
    if (f.size() < 5) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": expected id,x,y,score,keywords[,name]");
    }
    Row row;
    Result<double> x = ParseDouble(f[1], "x");
    if (!x.ok()) return x.status();
    Result<double> y = ParseDouble(f[2], "y");
    if (!y.ok()) return y.status();
    Result<double> s = ParseDouble(f[3], "score");
    if (!s.ok()) return s.status();
    if (s.value() < 0.0 || s.value() > 1.0) {
      return Status::OutOfRange("line " + std::to_string(lineno) +
                                ": score must be in [0,1]");
    }
    row.pos = {x.value(), y.value()};
    row.score = s.value();
    for (const std::string& kw : SplitCsv(f[4], '|')) {
      if (!kw.empty()) row.terms.push_back(vocab->Intern(kw));
    }
    if (f.size() > 5) row.name = f[5];
    rows.push_back(std::move(row));
  }
  uint32_t universe = universe_size != 0 ? universe_size : vocab->size();
  if (universe < vocab->size()) {
    return Status::InvalidArgument(
        "universe_size smaller than the number of distinct keywords");
  }
  std::vector<FeatureObject> features;
  features.reserve(rows.size());
  for (Row& row : rows) {
    FeatureObject t;
    t.pos = row.pos;
    t.score = row.score;
    t.keywords = KeywordSet(universe);
    for (TermId id : row.terms) t.keywords.Insert(id);
    t.name = std::move(row.name);
    features.push_back(std::move(t));
  }
  return FeatureTable(std::move(features), universe);
}

Status WriteDatasetBinary(const std::string& path, const Dataset& dataset) {
  if (dataset.vocabularies.size() != dataset.feature_tables.size()) {
    return Status::InvalidArgument(
        "dataset must carry one vocabulary per feature table");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  PutPod(out, kMagic);
  PutPod(out, kVersion);
  PutPod<uint64_t>(out, dataset.objects.size());
  for (const DataObject& o : dataset.objects) {
    PutPod(out, o.id);
    PutPod(out, o.pos.x);
    PutPod(out, o.pos.y);
    PutString(out, o.name);
  }
  PutPod<uint32_t>(out, static_cast<uint32_t>(dataset.feature_tables.size()));
  for (size_t i = 0; i < dataset.feature_tables.size(); ++i) {
    const FeatureTable& table = dataset.feature_tables[i];
    const Vocabulary& vocab = dataset.vocabularies[i];
    PutPod<uint32_t>(out, vocab.size());
    for (uint32_t t = 0; t < vocab.size(); ++t) PutString(out, vocab.Term(t));
    PutPod<uint32_t>(out, table.universe_size());
    PutPod<uint64_t>(out, table.size());
    for (const FeatureObject& t : table.All()) {
      PutPod(out, t.id);
      PutPod(out, t.pos.x);
      PutPod(out, t.pos.y);
      PutPod(out, t.score);
      std::vector<TermId> terms = t.keywords.ToTerms();
      PutPod<uint32_t>(out, static_cast<uint32_t>(terms.size()));
      for (TermId id : terms) PutPod(out, id);
      PutString(out, t.name);
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  uint32_t magic = 0, version = 0;
  if (!GetPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a .stpq file: " + path);
  }
  if (!GetPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported .stpq version");
  }
  Dataset ds;
  uint64_t num_objects = 0;
  if (!GetPod(in, &num_objects)) return Status::IoError("truncated header");
  ds.objects.reserve(num_objects);
  for (uint64_t i = 0; i < num_objects; ++i) {
    DataObject o;
    if (!GetPod(in, &o.id) || !GetPod(in, &o.pos.x) ||
        !GetPod(in, &o.pos.y) || !GetString(in, &o.name)) {
      return Status::IoError("truncated object record");
    }
    ds.objects.push_back(std::move(o));
  }
  uint32_t num_tables = 0;
  if (!GetPod(in, &num_tables)) return Status::IoError("truncated");
  for (uint32_t ti = 0; ti < num_tables; ++ti) {
    Vocabulary vocab;
    uint32_t vocab_size = 0;
    if (!GetPod(in, &vocab_size)) return Status::IoError("truncated");
    for (uint32_t t = 0; t < vocab_size; ++t) {
      std::string term;
      if (!GetString(in, &term)) return Status::IoError("truncated term");
      vocab.Intern(term);
    }
    uint32_t universe = 0;
    uint64_t count = 0;
    if (!GetPod(in, &universe) || !GetPod(in, &count)) {
      return Status::IoError("truncated table header");
    }
    std::vector<FeatureObject> features;
    features.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      FeatureObject t;
      uint32_t nterms = 0;
      if (!GetPod(in, &t.id) || !GetPod(in, &t.pos.x) ||
          !GetPod(in, &t.pos.y) || !GetPod(in, &t.score) ||
          !GetPod(in, &nterms)) {
        return Status::IoError("truncated feature record");
      }
      if (nterms > universe) {
        return Status::InvalidArgument("feature has more terms than universe");
      }
      t.keywords = KeywordSet(universe);
      for (uint32_t j = 0; j < nterms; ++j) {
        TermId id = 0;
        if (!GetPod(in, &id)) return Status::IoError("truncated term id");
        if (id >= universe) {
          return Status::OutOfRange("term id beyond universe");
        }
        t.keywords.Insert(id);
      }
      if (!GetString(in, &t.name)) return Status::IoError("truncated name");
      features.push_back(std::move(t));
    }
    ds.feature_tables.emplace_back(std::move(features), universe);
    ds.vocabularies.push_back(std::move(vocab));
  }
  return ds;
}

// ------------------------------------------------------------- scanner

Result<DatasetBinaryScanner> DatasetBinaryScanner::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  uint32_t magic = 0, version = 0;
  if (!GetPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a .stpq file: " + path);
  }
  if (!GetPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported .stpq version");
  }
  DatasetBinaryScanner scanner(std::move(in));
  if (!GetPod(scanner.in_, &scanner.object_count_)) {
    return Status::IoError("truncated header");
  }
  return scanner;
}

Status DatasetBinaryScanner::ForEachObject(
    const std::function<void(const DataObject&)>& fn) {
  DataObject o;
  for (uint64_t i = 0; i < object_count_; ++i) {
    if (!GetPod(in_, &o.id) || !GetPod(in_, &o.pos.x) ||
        !GetPod(in_, &o.pos.y) || !GetString(in_, &o.name)) {
      return Status::IoError("truncated object record");
    }
    fn(o);
  }
  return Status::OK();
}

Result<uint32_t> DatasetBinaryScanner::ReadTableCount() {
  uint32_t num_tables = 0;
  if (!GetPod(in_, &num_tables)) return Status::IoError("truncated");
  return num_tables;
}

Status DatasetBinaryScanner::ForEachVocabTerm(
    const std::function<void(const std::string&)>& fn) {
  uint32_t vocab_size = 0;
  if (!GetPod(in_, &vocab_size)) return Status::IoError("truncated");
  std::string term;
  for (uint32_t t = 0; t < vocab_size; ++t) {
    if (!GetString(in_, &term)) return Status::IoError("truncated term");
    fn(term);
  }
  return Status::OK();
}

Result<DatasetBinaryScanner::TableHeader>
DatasetBinaryScanner::ReadTableHeader() {
  TableHeader h;
  if (!GetPod(in_, &h.universe) || !GetPod(in_, &h.feature_count)) {
    return Status::IoError("truncated table header");
  }
  return h;
}

Status DatasetBinaryScanner::ForEachFeature(
    uint32_t universe, uint64_t count,
    const std::function<void(const FeatureObject&)>& fn) {
  for (uint64_t i = 0; i < count; ++i) {
    FeatureObject t;
    uint32_t nterms = 0;
    if (!GetPod(in_, &t.id) || !GetPod(in_, &t.pos.x) ||
        !GetPod(in_, &t.pos.y) || !GetPod(in_, &t.score) ||
        !GetPod(in_, &nterms)) {
      return Status::IoError("truncated feature record");
    }
    if (nterms > universe) {
      return Status::InvalidArgument("feature has more terms than universe");
    }
    t.keywords = KeywordSet(universe);
    for (uint32_t j = 0; j < nterms; ++j) {
      TermId id = 0;
      if (!GetPod(in_, &id)) return Status::IoError("truncated term id");
      if (id >= universe) {
        return Status::OutOfRange("term id beyond universe");
      }
      t.keywords.Insert(id);
    }
    if (!GetString(in_, &t.name)) return Status::IoError("truncated name");
    fn(t);
  }
  return Status::OK();
}

}  // namespace stpq
