#include "io/index_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "hilbert/keyword_hilbert.h"

namespace stpq {

namespace {

constexpr uint32_t kIndexMagic = 0x58515453;  // "STQX" little-endian
constexpr uint32_t kIndexVersion = 1;

/// Fixed superblock / catalog-entry widths; the catalog starts right after
/// the superblock, segments after the catalog (node segments page-aligned).
constexpr size_t kSuperblockBytes = 52;
constexpr size_t kCatalogEntryBytes = 56;

/// Sanity caps against absurd counts in damaged headers (checksums cover
/// the segments, these cover the header itself).
constexpr uint32_t kMaxTables = 4096;
constexpr uint32_t kMaxNodeCount = 1u << 28;
constexpr uint64_t kMaxRecordCount = uint64_t{1} << 33;

enum SegmentType : uint32_t {
  kSegObjects = 0,
  kSegVocabulary = 1,
  kSegFeatureTable = 2,
  kSegObjectTreeMeta = 3,
  kSegObjectTreeNodes = 4,
  kSegFeatureTreeMeta = 5,
  kSegFeatureTreeNodes = 6,
};

const char* SegmentName(uint32_t type) {
  switch (type) {
    case kSegObjects:
      return "objects";
    case kSegVocabulary:
      return "vocabulary";
    case kSegFeatureTable:
      return "feature_table";
    case kSegObjectTreeMeta:
      return "object_tree_meta";
    case kSegObjectTreeNodes:
      return "object_tree_nodes";
    case kSegFeatureTreeMeta:
      return "feature_tree_meta";
    case kSegFeatureTreeNodes:
      return "feature_tree_nodes";
  }
  return "unknown";
}

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

// Byte-buffer writers, mirroring dataset_io's stream helpers.
template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void PutString(std::string* out, const std::string& s) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over one segment's bytes.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Pod(T* v) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!Pod(&n)) return false;
    if (n > (1u << 24) || size_ - pos_ < n) return false;  // sanity cap
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ------------------------------------------------- augmentation codecs
//
// Fixed-width per-entry payloads; the word counts are derivable from the
// superblock parameters and double-checked against the tree metadata.

struct NoAugCodec {
  uint32_t aug_bits() const { return 0; }
  uint32_t aug_words() const { return 0; }
  uint32_t payload_bytes() const { return 0; }
  void Write(std::string*, const NoAug&) const {}
  bool Read(ByteReader&, NoAug*) const { return true; }
};

/// SrtAug persists {max score, aggregated Hilbert words}; the decoded
/// keyword cache is re-derived on read (DecodeKeywords is the exact
/// inverse of the encoding, so the rebuilt aug is identical).
struct SrtAugCodec {
  uint32_t universe = 0;

  uint32_t aug_bits() const { return universe; }
  uint32_t aug_words() const { return (universe + 63) / 64; }
  uint32_t payload_bytes() const { return 8 + 8 * aug_words(); }

  void Write(std::string* out, const SrtAug& aug) const {
    PutPod(out, aug.max_score);
    const std::vector<uint64_t>& words = aug.keyword_hilbert.words();
    for (uint32_t w = 0; w < aug_words(); ++w) {
      PutPod<uint64_t>(out, w < words.size() ? words[w] : 0);
    }
  }

  bool Read(ByteReader& in, SrtAug* aug) const {
    if (!in.Pod(&aug->max_score)) return false;
    HilbertValue hv(universe);
    for (uint32_t w = 0; w < aug_words(); ++w) {
      uint64_t word = 0;
      if (!in.Pod(&word)) return false;
      if (w < hv.words().size()) hv.words()[w] = word;
    }
    aug->keywords = DecodeKeywords(hv, universe);
    aug->keyword_hilbert = std::move(hv);
    return true;
  }
};

/// Ir2Aug persists {max score, signature words}.
struct Ir2AugCodec {
  uint32_t signature_bits = 0;

  uint32_t aug_bits() const { return signature_bits; }
  uint32_t aug_words() const { return (signature_bits + 63) / 64; }
  uint32_t payload_bytes() const { return 8 + 8 * aug_words(); }

  void Write(std::string* out, const Ir2Aug& aug) const {
    PutPod(out, aug.max_score);
    const std::vector<uint64_t>& words = aug.signature.words();
    for (uint32_t w = 0; w < aug_words(); ++w) {
      PutPod<uint64_t>(out, w < words.size() ? words[w] : 0);
    }
  }

  bool Read(ByteReader& in, Ir2Aug* aug) const {
    if (!in.Pod(&aug->max_score)) return false;
    std::vector<uint64_t> words(aug_words(), 0);
    for (uint32_t w = 0; w < aug_words(); ++w) {
      if (!in.Pod(&words[w])) return false;
    }
    aug->signature = Signature::FromWords(signature_bits, std::move(words));
    return true;
  }
};

/// The IR2 signature width rule, mirrored from the index builder: explicit
/// when configured, else scaled to the vocabulary.
uint32_t EffectiveIr2SignatureBits(const IndexBuildParams& params,
                                   uint32_t universe_size) {
  return params.signature_bits != 0 ? params.signature_bits
                                    : std::max(64u, 2 * universe_size);
}

// ------------------------------------------------------ tree serializer

/// Serializes tree metadata + the node array.  Node records are laid out
/// in fixed-width slots (slot index == NodeId) whose width is the
/// page-aligned worst-case node size, so the reader and the FilePageStore
/// address node i at offset i * slot_bytes.
template <int D, typename Aug, typename Codec>
Status SerializeTree(const RTree<D, Aug>& tree, const Codec& codec,
                     uint32_t page_size, std::string* meta, std::string* nodes,
                     uint64_t* slot_count, uint32_t* slot_bytes_out) {
  const uint32_t entry_bytes =
      16u * static_cast<uint32_t>(D) + 4u + codec.payload_bytes();
  const uint64_t max_node_bytes =
      8ull + uint64_t{tree.options().max_entries} * entry_bytes;
  const uint32_t slot_bytes =
      static_cast<uint32_t>(AlignUp(max_node_bytes, page_size));

  PutPod<uint32_t>(meta, tree.root_id());
  PutPod<uint32_t>(meta, tree.height());
  PutPod<uint64_t>(meta, tree.size());
  PutPod<uint32_t>(meta, tree.node_count());
  PutPod<uint32_t>(meta, tree.options().max_entries);
  PutPod<uint32_t>(meta, codec.aug_bits());
  PutPod<uint32_t>(meta, codec.aug_words());
  PutPod<uint32_t>(meta, static_cast<uint32_t>(tree.free_nodes().size()));
  for (NodeId id : tree.free_nodes()) PutPod<uint32_t>(meta, id);

  nodes->reserve(uint64_t{tree.node_count()} * slot_bytes);
  for (const auto& node : tree.nodes()) {
    const size_t start = nodes->size();
    PutPod<uint16_t>(nodes, node.level);
    PutPod<uint16_t>(nodes, 0);
    PutPod<uint32_t>(nodes, static_cast<uint32_t>(node.entries.size()));
    for (const auto& e : node.entries) {
      for (int d = 0; d < D; ++d) PutPod(nodes, e.rect.lo[d]);
      for (int d = 0; d < D; ++d) PutPod(nodes, e.rect.hi[d]);
      PutPod<uint32_t>(nodes, e.id);
      codec.Write(nodes, e.aug);
    }
    if (nodes->size() - start > slot_bytes) {
      return Status::Internal("index node overflows its slot: " +
                              std::to_string(nodes->size() - start) + " > " +
                              std::to_string(slot_bytes) + " bytes");
    }
    nodes->resize(start + slot_bytes);  // zero-pad to the slot boundary
  }
  *slot_count = tree.node_count();
  *slot_bytes_out = slot_bytes;
  return Status::OK();
}

template <int D, typename Aug, typename Codec>
Status ParseTree(std::string_view meta, std::string_view nodes,
                 uint64_t slot_count, uint32_t slot_bytes, const Codec& codec,
                 uint32_t expected_max_entries, RestoredTreeData<D, Aug>* out) {
  ByteReader m(meta.data(), meta.size());
  uint32_t root = 0, height = 0, node_count = 0, max_entries = 0;
  uint32_t aug_bits = 0, aug_words = 0, free_count = 0;
  uint64_t size = 0;
  if (!m.Pod(&root) || !m.Pod(&height) || !m.Pod(&size) ||
      !m.Pod(&node_count) || !m.Pod(&max_entries) || !m.Pod(&aug_bits) ||
      !m.Pod(&aug_words) || !m.Pod(&free_count)) {
    return Status::Corruption("tree metadata segment too short");
  }
  if (aug_bits != codec.aug_bits() || aug_words != codec.aug_words()) {
    return Status::Corruption(
        "augmentation layout mismatch: file says " + std::to_string(aug_bits) +
        " bits / " + std::to_string(aug_words) + " words, parameters derive " +
        std::to_string(codec.aug_bits()) + " / " +
        std::to_string(codec.aug_words()));
  }
  if (max_entries != expected_max_entries) {
    return Status::Corruption(
        "node fan-out mismatch: file says " + std::to_string(max_entries) +
        ", page-size parameters derive " +
        std::to_string(expected_max_entries));
  }
  if (node_count > kMaxNodeCount || free_count > node_count) {
    return Status::Corruption("implausible tree node counts");
  }
  if (node_count != slot_count) {
    return Status::Corruption("tree metadata and catalog disagree on the "
                              "node count");
  }
  if (nodes.size() != slot_count * uint64_t{slot_bytes}) {
    return Status::Corruption("node segment size does not match its slots");
  }
  if (root != kInvalidNodeId && root >= node_count) {
    return Status::Corruption("tree root id out of range");
  }
  out->free_nodes.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    uint32_t id = 0;
    if (!m.Pod(&id)) return Status::Corruption("tree free list truncated");
    if (id >= node_count) {
      return Status::Corruption("free-list node id out of range");
    }
    out->free_nodes.push_back(id);
  }

  out->nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    ByteReader r(nodes.data() + i * slot_bytes, slot_bytes);
    uint16_t level = 0, reserved = 0;
    uint32_t count = 0;
    if (!r.Pod(&level) || !r.Pod(&reserved) || !r.Pod(&count)) {
      return Status::Corruption("node record header truncated");
    }
    if (count > max_entries) {
      return Status::Corruption("node " + std::to_string(i) + " claims " +
                                std::to_string(count) +
                                " entries, above the fan-out of " +
                                std::to_string(max_entries));
    }
    typename RTree<D, Aug>::Node node;
    node.level = level;
    node.entries.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      typename RTree<D, Aug>::Entry e;
      bool ok = true;
      for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.lo[d]);
      for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.hi[d]);
      ok = ok && r.Pod(&e.id) && codec.Read(r, &e.aug);
      if (!ok) {
        return Status::Corruption("node " + std::to_string(i) +
                                  " entry record truncated");
      }
      node.entries.push_back(std::move(e));
    }
    out->nodes.push_back(std::move(node));
  }
  out->root = root;
  out->height = height;
  out->size = size;
  return Status::OK();
}

// -------------------------------------------------------- file plumbing

struct SegmentBlob {
  uint32_t type = 0;
  uint32_t ordinal = 0;
  std::string payload;
  uint64_t first_page = 0;
  uint64_t slot_count = 0;
  uint32_t slot_bytes = 0;
  bool page_aligned = false;
  uint64_t offset = 0;  // assigned during layout
};

struct CatalogEntry {
  uint32_t type = 0;
  uint32_t ordinal = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t first_page = 0;
  uint64_t slot_count = 0;
  uint32_t slot_bytes = 0;
  uint64_t checksum = 0;
};

struct Superblock {
  uint32_t version = 0;
  IndexBuildParams params;
  uint64_t object_count = 0;
  uint32_t table_count = 0;
  uint32_t segment_count = 0;
};

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return data;
}

/// Parses superblock + catalog with bounds checks against `file_bytes`.
Status ParseHeader(const std::string& file, const std::string& path,
                   Superblock* sb, std::vector<CatalogEntry>* catalog) {
  if (file.size() < kSuperblockBytes) {
    return Status::IoError("truncated index file (no superblock): " + path);
  }
  ByteReader r(file.data(), file.size());
  uint32_t magic = 0, index_kind = 0, bulk_load = 0;
  r.Pod(&magic);
  if (magic != kIndexMagic) {
    return Status::InvalidArgument("not a stpq index file: " + path);
  }
  r.Pod(&sb->version);
  if (sb->version != kIndexVersion) {
    return Status::InvalidArgument("unsupported stpq index version " +
                                   std::to_string(sb->version));
  }
  r.Pod(&sb->params.page_size_bytes);
  r.Pod(&index_kind);
  r.Pod(&bulk_load);
  r.Pod(&sb->params.signature_bits);
  r.Pod(&sb->params.signature_hashes);
  r.Pod(&sb->params.fill);
  r.Pod(&sb->object_count);
  r.Pod(&sb->table_count);
  if (!r.Pod(&sb->segment_count)) {
    return Status::IoError("truncated index superblock: " + path);
  }
  if (index_kind > static_cast<uint32_t>(FeatureIndexKind::kIr2)) {
    return Status::Corruption("unknown feature index kind " +
                              std::to_string(index_kind));
  }
  if (bulk_load > static_cast<uint32_t>(BulkLoadKind::kInsert)) {
    return Status::Corruption("unknown bulk-load kind " +
                              std::to_string(bulk_load));
  }
  sb->params.index_kind = static_cast<FeatureIndexKind>(index_kind);
  sb->params.bulk_load = static_cast<BulkLoadKind>(bulk_load);
  if (sb->params.page_size_bytes == 0 || sb->table_count > kMaxTables ||
      sb->object_count > kMaxRecordCount) {
    return Status::Corruption("implausible index superblock counts");
  }
  const uint32_t expected_segments = 3 + 4 * sb->table_count;
  if (sb->segment_count != expected_segments) {
    return Status::Corruption(
        "superblock names " + std::to_string(sb->segment_count) +
        " segments; " + std::to_string(sb->table_count) + " tables need " +
        std::to_string(expected_segments));
  }
  const uint64_t header_bytes =
      kSuperblockBytes + uint64_t{sb->segment_count} * kCatalogEntryBytes;
  if (file.size() < header_bytes) {
    return Status::IoError("truncated index catalog: " + path);
  }
  catalog->reserve(sb->segment_count);
  for (uint32_t i = 0; i < sb->segment_count; ++i) {
    CatalogEntry e;
    uint32_t reserved = 0;
    r.Pod(&e.type);
    r.Pod(&e.ordinal);
    r.Pod(&e.offset);
    r.Pod(&e.bytes);
    r.Pod(&e.first_page);
    r.Pod(&e.slot_count);
    r.Pod(&e.slot_bytes);
    r.Pod(&reserved);
    if (!r.Pod(&e.checksum)) {
      return Status::IoError("truncated index catalog: " + path);
    }
    if (e.offset > file.size() || e.bytes > file.size() - e.offset) {
      return Status::IoError("truncated index file: segment '" +
                             std::string(SegmentName(e.type)) +
                             "' reaches past the end of " + path);
    }
    catalog->push_back(e);
  }
  return Status::OK();
}

/// Locates a segment and verifies its checksum.
Result<std::string_view> VerifiedSegment(const std::string& file,
                                         const std::vector<CatalogEntry>& cat,
                                         uint32_t type, uint32_t ordinal) {
  for (const CatalogEntry& e : cat) {
    if (e.type != type || e.ordinal != ordinal) continue;
    std::string_view sv(file.data() + e.offset, e.bytes);
    if (Fnv1a64(sv.data(), sv.size()) != e.checksum) {
      return Status::Corruption("checksum mismatch in segment '" +
                                std::string(SegmentName(type)) + "' #" +
                                std::to_string(ordinal));
    }
    return sv;
  }
  return Status::Corruption("missing segment '" +
                            std::string(SegmentName(type)) + "' #" +
                            std::to_string(ordinal));
}

const CatalogEntry* FindEntry(const std::vector<CatalogEntry>& cat,
                              uint32_t type, uint32_t ordinal) {
  for (const CatalogEntry& e : cat) {
    if (e.type == type && e.ordinal == ordinal) return &e;
  }
  return nullptr;
}

Status ParseObjects(std::string_view sv, uint64_t expected_count,
                    std::vector<DataObject>* out) {
  ByteReader r(sv.data(), sv.size());
  uint64_t count = 0;
  if (!r.Pod(&count) || count != expected_count ||
      count > kMaxRecordCount) {
    return Status::Corruption("objects segment header mismatch");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DataObject o;
    if (!r.Pod(&o.id) || !r.Pod(&o.pos.x) || !r.Pod(&o.pos.y) ||
        !r.Str(&o.name)) {
      return Status::Corruption("object record truncated");
    }
    out->push_back(std::move(o));
  }
  return Status::OK();
}

Status ParseVocabulary(std::string_view sv, Vocabulary* out) {
  ByteReader r(sv.data(), sv.size());
  uint32_t n = 0;
  if (!r.Pod(&n)) return Status::Corruption("vocabulary segment truncated");
  for (uint32_t i = 0; i < n; ++i) {
    std::string term;
    if (!r.Str(&term)) return Status::Corruption("vocabulary term truncated");
    out->Intern(term);
  }
  return Status::OK();
}

Status ParseFeatureTable(std::string_view sv, FeatureTable* out) {
  ByteReader r(sv.data(), sv.size());
  uint32_t universe = 0;
  uint64_t count = 0;
  if (!r.Pod(&universe) || !r.Pod(&count) || count > kMaxRecordCount) {
    return Status::Corruption("feature-table segment header truncated");
  }
  const uint32_t expected_blocks = (universe + 63) / 64;
  std::vector<FeatureObject> features;
  features.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FeatureObject f;
    uint32_t block_count = 0;
    if (!r.Pod(&f.id) || !r.Pod(&f.pos.x) || !r.Pod(&f.pos.y) ||
        !r.Pod(&f.score) || !r.Pod(&block_count)) {
      return Status::Corruption("feature record truncated");
    }
    if (block_count != expected_blocks) {
      return Status::Corruption("feature keyword blocks do not match the "
                                "universe size");
    }
    std::vector<uint64_t> blocks(block_count, 0);
    for (uint32_t b = 0; b < block_count; ++b) {
      if (!r.Pod(&blocks[b])) {
        return Status::Corruption("feature keyword blocks truncated");
      }
    }
    f.keywords = KeywordSet::FromBlocks(universe, std::move(blocks));
    if (!r.Str(&f.name)) {
      return Status::Corruption("feature name truncated");
    }
    features.push_back(std::move(f));
  }
  *out = FeatureTable(std::move(features), universe);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- writer

Status WriteIndexFile(const std::string& path,
                      const IndexFileWriteRequest& request) {
  if (request.objects == nullptr || request.feature_tables == nullptr ||
      request.vocabularies == nullptr || request.object_index == nullptr) {
    return Status::InvalidArgument("index write request is missing a part");
  }
  const size_t num_tables = request.feature_tables->size();
  if (request.vocabularies->size() != num_tables ||
      request.feature_indexes.size() != num_tables) {
    return Status::InvalidArgument(
        "index write request needs one vocabulary and one feature index per "
        "table");
  }
  if (num_tables > kMaxTables) {
    return Status::InvalidArgument("too many feature tables to persist");
  }
  const uint32_t page_size = request.params.page_size_bytes;
  if (page_size == 0) {
    return Status::InvalidArgument("page_size_bytes must be nonzero");
  }

  std::vector<SegmentBlob> segments;
  segments.reserve(3 + 4 * num_tables);

  {
    SegmentBlob s;
    s.type = kSegObjects;
    PutPod<uint64_t>(&s.payload, request.objects->size());
    for (const DataObject& o : *request.objects) {
      PutPod(&s.payload, o.id);
      PutPod(&s.payload, o.pos.x);
      PutPod(&s.payload, o.pos.y);
      PutString(&s.payload, o.name);
    }
    segments.push_back(std::move(s));
  }

  for (size_t i = 0; i < num_tables; ++i) {
    const Vocabulary& vocab = (*request.vocabularies)[i];
    SegmentBlob v;
    v.type = kSegVocabulary;
    v.ordinal = static_cast<uint32_t>(i);
    PutPod<uint32_t>(&v.payload, vocab.size());
    for (uint32_t t = 0; t < vocab.size(); ++t) {
      PutString(&v.payload, vocab.Term(t));
    }
    segments.push_back(std::move(v));

    const FeatureTable& table = (*request.feature_tables)[i];
    SegmentBlob s;
    s.type = kSegFeatureTable;
    s.ordinal = static_cast<uint32_t>(i);
    PutPod<uint32_t>(&s.payload, table.universe_size());
    PutPod<uint64_t>(&s.payload, table.size());
    for (const FeatureObject& f : table.All()) {
      PutPod(&s.payload, f.id);
      PutPod(&s.payload, f.pos.x);
      PutPod(&s.payload, f.pos.y);
      PutPod(&s.payload, f.score);
      const std::vector<uint64_t>& blocks = f.keywords.blocks();
      PutPod<uint32_t>(&s.payload, static_cast<uint32_t>(blocks.size()));
      for (uint64_t b : blocks) PutPod(&s.payload, b);
      PutString(&s.payload, f.name);
    }
    segments.push_back(std::move(s));
  }

  {
    SegmentBlob meta, nodes;
    meta.type = kSegObjectTreeMeta;
    nodes.type = kSegObjectTreeNodes;
    nodes.page_aligned = true;
    nodes.first_page = 0;
    STPQ_RETURN_NOT_OK((SerializeTree<2, NoAug>(
        request.object_index->tree(), NoAugCodec{}, page_size, &meta.payload,
        &nodes.payload, &nodes.slot_count, &nodes.slot_bytes)));
    segments.push_back(std::move(meta));
    segments.push_back(std::move(nodes));
  }

  for (size_t i = 0; i < num_tables; ++i) {
    SegmentBlob meta, nodes;
    meta.type = kSegFeatureTreeMeta;
    meta.ordinal = static_cast<uint32_t>(i);
    nodes.type = kSegFeatureTreeNodes;
    nodes.ordinal = static_cast<uint32_t>(i);
    nodes.page_aligned = true;
    nodes.first_page = kIndexPageStride * (i + 1);
    switch (request.params.index_kind) {
      case FeatureIndexKind::kSrt: {
        const auto* srt =
            dynamic_cast<const SrtIndex*>(request.feature_indexes[i]);
        if (srt == nullptr) {
          return Status::InvalidArgument(
              "feature index " + std::to_string(i) +
              " is not an SrtIndex but params say kind=srt");
        }
        SrtAugCodec codec{(*request.feature_tables)[i].universe_size()};
        STPQ_RETURN_NOT_OK((SerializeTree<4, SrtAug>(
            srt->tree(), codec, page_size, &meta.payload, &nodes.payload,
            &nodes.slot_count, &nodes.slot_bytes)));
        break;
      }
      case FeatureIndexKind::kIr2: {
        const auto* ir2 =
            dynamic_cast<const Ir2Tree*>(request.feature_indexes[i]);
        if (ir2 == nullptr) {
          return Status::InvalidArgument(
              "feature index " + std::to_string(i) +
              " is not an Ir2Tree but params say kind=ir2");
        }
        Ir2AugCodec codec{ir2->scheme().signature_bits()};
        STPQ_RETURN_NOT_OK((SerializeTree<2, Ir2Aug>(
            ir2->tree(), codec, page_size, &meta.payload, &nodes.payload,
            &nodes.slot_count, &nodes.slot_bytes)));
        break;
      }
    }
    segments.push_back(std::move(meta));
    segments.push_back(std::move(nodes));
  }

  // Layout: header, then segments in catalog order; node segments aligned
  // to the page size so slot offsets are page offsets.
  const uint64_t header_bytes =
      kSuperblockBytes + segments.size() * kCatalogEntryBytes;
  uint64_t cursor = header_bytes;
  for (SegmentBlob& s : segments) {
    if (s.page_aligned) cursor = AlignUp(cursor, page_size);
    s.offset = cursor;
    cursor += s.payload.size();
  }

  std::string header;
  header.reserve(header_bytes);
  PutPod<uint32_t>(&header, kIndexMagic);
  PutPod<uint32_t>(&header, kIndexVersion);
  PutPod<uint32_t>(&header, page_size);
  PutPod<uint32_t>(&header,
                   static_cast<uint32_t>(request.params.index_kind));
  PutPod<uint32_t>(&header, static_cast<uint32_t>(request.params.bulk_load));
  PutPod<uint32_t>(&header, request.params.signature_bits);
  PutPod<uint32_t>(&header, request.params.signature_hashes);
  PutPod<double>(&header, request.params.fill);
  PutPod<uint64_t>(&header, request.objects->size());
  PutPod<uint32_t>(&header, static_cast<uint32_t>(num_tables));
  PutPod<uint32_t>(&header, static_cast<uint32_t>(segments.size()));
  for (const SegmentBlob& s : segments) {
    PutPod<uint32_t>(&header, s.type);
    PutPod<uint32_t>(&header, s.ordinal);
    PutPod<uint64_t>(&header, s.offset);
    PutPod<uint64_t>(&header, static_cast<uint64_t>(s.payload.size()));
    PutPod<uint64_t>(&header, s.first_page);
    PutPod<uint64_t>(&header, s.slot_count);
    PutPod<uint32_t>(&header, s.slot_bytes);
    PutPod<uint32_t>(&header, 0u);  // reserved
    PutPod<uint64_t>(&header, Fnv1a64(s.payload.data(), s.payload.size()));
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const SegmentBlob& s : segments) {
    out.seekp(static_cast<std::streamoff>(s.offset));  // zero-fills the gap
    out.write(s.payload.data(),
              static_cast<std::streamsize>(s.payload.size()));
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

// ---------------------------------------------------------------- reader

Result<LoadedIndex> LoadIndexFile(const std::string& path) {
  Result<std::string> file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  const std::string file = file_r.TakeValue();

  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(file, path, &sb, &catalog));

  LoadedIndex out;
  out.params = sb.params;

  {
    Result<std::string_view> sv = VerifiedSegment(file, catalog, kSegObjects, 0);
    if (!sv.ok()) return sv.status();
    STPQ_RETURN_NOT_OK(ParseObjects(sv.value(), sb.object_count, &out.objects));
  }
  out.vocabularies.resize(sb.table_count);
  out.feature_tables.resize(sb.table_count);
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    Result<std::string_view> vv =
        VerifiedSegment(file, catalog, kSegVocabulary, i);
    if (!vv.ok()) return vv.status();
    STPQ_RETURN_NOT_OK(ParseVocabulary(vv.value(), &out.vocabularies[i]));
    Result<std::string_view> tv =
        VerifiedSegment(file, catalog, kSegFeatureTable, i);
    if (!tv.ok()) return tv.status();
    STPQ_RETURN_NOT_OK(ParseFeatureTable(tv.value(), &out.feature_tables[i]));
  }

  // Object tree.
  {
    Result<std::string_view> mv =
        VerifiedSegment(file, catalog, kSegObjectTreeMeta, 0);
    if (!mv.ok()) return mv.status();
    Result<std::string_view> nv =
        VerifiedSegment(file, catalog, kSegObjectTreeNodes, 0);
    if (!nv.ok()) return nv.status();
    const CatalogEntry* entry = FindEntry(catalog, kSegObjectTreeNodes, 0);
    STPQ_RETURN_NOT_OK((ParseTree<2, NoAug>(
        mv.value(), nv.value(), entry->slot_count, entry->slot_bytes,
        NoAugCodec{}, FanOutForPage(sb.params.page_size_bytes, 2, 0),
        &out.object_tree)));
    if (entry->slot_count > 0) {
      out.extents.push_back(FilePageStore::Extent{
          entry->first_page, entry->slot_count, entry->offset,
          entry->slot_bytes});
    }
  }

  // Feature trees, one per table, matching the persisted index kind.
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    Result<std::string_view> mv =
        VerifiedSegment(file, catalog, kSegFeatureTreeMeta, i);
    if (!mv.ok()) return mv.status();
    Result<std::string_view> nv =
        VerifiedSegment(file, catalog, kSegFeatureTreeNodes, i);
    if (!nv.ok()) return nv.status();
    const CatalogEntry* entry = FindEntry(catalog, kSegFeatureTreeNodes, i);
    const uint32_t universe = out.feature_tables[i].universe_size();
    if (entry->first_page != kIndexPageStride * (uint64_t{i} + 1)) {
      return Status::Corruption("feature node segment " + std::to_string(i) +
                                " has the wrong page-id base");
    }
    switch (sb.params.index_kind) {
      case FeatureIndexKind::kSrt: {
        SrtAugCodec codec{universe};
        RestoredTreeData<4, SrtAug> tree;
        const uint32_t aug_bytes = 8 + 8 * ((universe + 63) / 64);
        STPQ_RETURN_NOT_OK((ParseTree<4, SrtAug>(
            mv.value(), nv.value(), entry->slot_count, entry->slot_bytes,
            codec, FanOutForPage(sb.params.page_size_bytes, 4, aug_bytes),
            &tree)));
        out.srt_trees.push_back(std::move(tree));
        break;
      }
      case FeatureIndexKind::kIr2: {
        const uint32_t sig_bits =
            EffectiveIr2SignatureBits(sb.params, universe);
        Ir2AugCodec codec{sig_bits};
        RestoredTreeData<2, Ir2Aug> tree;
        const uint32_t aug_bytes = 8 + sig_bits / 8;
        STPQ_RETURN_NOT_OK((ParseTree<2, Ir2Aug>(
            mv.value(), nv.value(), entry->slot_count, entry->slot_bytes,
            codec, FanOutForPage(sb.params.page_size_bytes, 2, aug_bytes),
            &tree)));
        out.ir2_trees.push_back(std::move(tree));
        break;
      }
    }
    if (entry->slot_count > 0) {
      out.extents.push_back(FilePageStore::Extent{
          entry->first_page, entry->slot_count, entry->offset,
          entry->slot_bytes});
    }
  }
  return out;
}

Result<IndexFileInfo> ReadIndexFileInfo(const std::string& path) {
  Result<std::string> file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  const std::string file = file_r.TakeValue();
  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(file, path, &sb, &catalog));
  IndexFileInfo info;
  info.version = sb.version;
  info.params = sb.params;
  info.object_count = sb.object_count;
  info.table_count = sb.table_count;
  info.file_bytes = file.size();
  info.segments.reserve(catalog.size());
  for (const CatalogEntry& e : catalog) {
    IndexSegmentInfo s;
    s.name = SegmentName(e.type);
    s.ordinal = e.ordinal;
    s.bytes = e.bytes;
    s.slots = e.slot_count;
    s.slot_bytes = e.slot_bytes;
    info.segments.push_back(std::move(s));
  }
  return info;
}

Result<std::vector<Vocabulary>> ReadIndexVocabularies(
    const std::string& path) {
  Result<std::string> file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  const std::string file = file_r.TakeValue();
  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(file, path, &sb, &catalog));
  std::vector<Vocabulary> vocabs(sb.table_count);
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    Result<std::string_view> sv =
        VerifiedSegment(file, catalog, kSegVocabulary, i);
    if (!sv.ok()) return sv.status();
    STPQ_RETURN_NOT_OK(ParseVocabulary(sv.value(), &vocabs[i]));
  }
  return vocabs;
}

}  // namespace stpq
