#include "io/index_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "hilbert/keyword_hilbert.h"
#include "io/atomic_file.h"
#include "io/index_format.h"
#include "util/logging.h"

namespace stpq {

using namespace index_format;  // NOLINT(build/namespaces) format primitives

namespace {

/// Decoded superblock, reader side.
struct Superblock {
  uint32_t version = 0;
  IndexBuildParams params;
  uint64_t object_count = 0;
  uint32_t table_count = 0;
  uint32_t segment_count = 0;
};

// -------------------------------------------------------- file plumbing
//
// The reader never loads the whole file: it preads the superblock and
// catalog, then each small segment, and leaves the node segments on disk
// behind lazy per-node decoders.  The handle is shared (shared_ptr) with
// every decoder closure so the fd outlives the LoadedIndex parts.

class IndexFileHandle {
 public:
  [[nodiscard]] static Result<std::shared_ptr<IndexFileHandle>> Open(
      const std::string& path) {
    int fd = -1;
    do {
      fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return Status::IoError("cannot open: " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError("cannot open: " + path);
    }
    return std::shared_ptr<IndexFileHandle>(
        new IndexFileHandle(path, fd, static_cast<uint64_t>(st.st_size)));
  }

  ~IndexFileHandle() { ::close(fd_); }

  IndexFileHandle(const IndexFileHandle&) = delete;
  IndexFileHandle& operator=(const IndexFileHandle&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] uint64_t size() const { return size_; }

  /// Reads exactly [offset, offset + n), retrying EINTR; a persistent
  /// short read (concurrent truncation) or hard error is an IoError.
  [[nodiscard]] Status PreadExact(uint64_t offset, char* out,
                                  uint64_t n) const {
    uint64_t done = 0;
    while (done < n) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(n - done, size_t{1} << 30));
      const ssize_t got =
          ::pread(fd_, out + done, want, static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("read failed: " + path_);
      }
      if (got == 0) return Status::IoError("read failed: " + path_);
      done += static_cast<uint64_t>(got);
    }
    return Status::OK();
  }

 private:
  IndexFileHandle(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  const std::string path_;
  const int fd_;
  const uint64_t size_;
};

/// Preads and parses superblock + catalog with bounds checks against the
/// physical file size.
Status ParseHeader(const IndexFileHandle& file, Superblock* sb,
                   std::vector<CatalogEntry>* catalog) {
  const std::string& path = file.path();
  if (file.size() < kSuperblockBytes) {
    return Status::IoError("truncated index file (no superblock): " + path);
  }
  char super[kSuperblockBytes];
  STPQ_RETURN_NOT_OK(file.PreadExact(0, super, kSuperblockBytes));
  ByteReader r(super, kSuperblockBytes);
  uint32_t magic = 0, index_kind = 0, bulk_load = 0;
  r.Pod(&magic);
  if (magic != kIndexMagic) {
    return Status::InvalidArgument("not a stpq index file: " + path);
  }
  r.Pod(&sb->version);
  if (sb->version != kIndexVersion) {
    return Status::InvalidArgument("unsupported stpq index version " +
                                   std::to_string(sb->version));
  }
  r.Pod(&sb->params.page_size_bytes);
  r.Pod(&index_kind);
  r.Pod(&bulk_load);
  r.Pod(&sb->params.signature_bits);
  r.Pod(&sb->params.signature_hashes);
  r.Pod(&sb->params.fill);
  r.Pod(&sb->object_count);
  r.Pod(&sb->table_count);
  if (!r.Pod(&sb->segment_count)) {
    return Status::IoError("truncated index superblock: " + path);
  }
  if (index_kind > static_cast<uint32_t>(FeatureIndexKind::kIr2)) {
    return Status::Corruption("unknown feature index kind " +
                              std::to_string(index_kind));
  }
  if (bulk_load > static_cast<uint32_t>(BulkLoadKind::kInsert)) {
    return Status::Corruption("unknown bulk-load kind " +
                              std::to_string(bulk_load));
  }
  sb->params.index_kind = static_cast<FeatureIndexKind>(index_kind);
  sb->params.bulk_load = static_cast<BulkLoadKind>(bulk_load);
  if (sb->params.page_size_bytes == 0 || sb->table_count > kMaxTables ||
      sb->object_count > kMaxRecordCount) {
    return Status::Corruption("implausible index superblock counts");
  }
  const uint32_t expected_segments = 3 + 4 * sb->table_count;
  if (sb->segment_count != expected_segments) {
    return Status::Corruption(
        "superblock names " + std::to_string(sb->segment_count) +
        " segments; " + std::to_string(sb->table_count) + " tables need " +
        std::to_string(expected_segments));
  }
  const uint64_t catalog_bytes =
      uint64_t{sb->segment_count} * kCatalogEntryBytes;
  if (file.size() - kSuperblockBytes < catalog_bytes) {
    return Status::IoError("truncated index catalog: " + path);
  }
  std::string raw(catalog_bytes, '\0');
  STPQ_RETURN_NOT_OK(
      file.PreadExact(kSuperblockBytes, raw.data(), catalog_bytes));
  ByteReader c(raw.data(), raw.size());
  catalog->reserve(sb->segment_count);
  for (uint32_t i = 0; i < sb->segment_count; ++i) {
    CatalogEntry e;
    uint32_t reserved = 0;
    c.Pod(&e.type);
    c.Pod(&e.ordinal);
    c.Pod(&e.offset);
    c.Pod(&e.bytes);
    c.Pod(&e.first_page);
    c.Pod(&e.slot_count);
    c.Pod(&e.slot_bytes);
    c.Pod(&reserved);
    if (!c.Pod(&e.checksum)) {
      return Status::IoError("truncated index catalog: " + path);
    }
    if (e.offset > file.size() || e.bytes > file.size() - e.offset) {
      return Status::IoError("truncated index file: segment '" +
                             std::string(SegmentName(e.type)) +
                             "' reaches past the end of " + path);
    }
    catalog->push_back(e);
  }
  return Status::OK();
}

const CatalogEntry* FindEntry(const std::vector<CatalogEntry>& cat,
                              uint32_t type, uint32_t ordinal) {
  for (const CatalogEntry& e : cat) {
    if (e.type == type && e.ordinal == ordinal) return &e;
  }
  return nullptr;
}

Status MissingSegment(uint32_t type, uint32_t ordinal) {
  return Status::Corruption("missing segment '" +
                            std::string(SegmentName(type)) + "' #" +
                            std::to_string(ordinal));
}

Status ChecksumMismatch(uint32_t type, uint32_t ordinal) {
  return Status::Corruption("checksum mismatch in segment '" +
                            std::string(SegmentName(type)) + "' #" +
                            std::to_string(ordinal));
}

/// Locates a small segment, preads its payload and verifies the checksum.
Result<std::string> VerifiedSegment(const IndexFileHandle& file,
                                    const std::vector<CatalogEntry>& cat,
                                    uint32_t type, uint32_t ordinal) {
  const CatalogEntry* e = FindEntry(cat, type, ordinal);
  if (e == nullptr) return MissingSegment(type, ordinal);
  std::string payload(e->bytes, '\0');
  STPQ_RETURN_NOT_OK(file.PreadExact(e->offset, payload.data(), e->bytes));
  if (Fnv1a64(payload.data(), payload.size()) != e->checksum) {
    return ChecksumMismatch(type, ordinal);
  }
  return payload;
}

Status ParseObjects(std::string_view sv, uint64_t expected_count,
                    std::vector<DataObject>* out) {
  ByteReader r(sv.data(), sv.size());
  uint64_t count = 0;
  if (!r.Pod(&count) || count != expected_count ||
      count > kMaxRecordCount) {
    return Status::Corruption("objects segment header mismatch");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DataObject o;
    if (!r.Pod(&o.id) || !r.Pod(&o.pos.x) || !r.Pod(&o.pos.y) ||
        !r.Str(&o.name)) {
      return Status::Corruption("object record truncated");
    }
    out->push_back(std::move(o));
  }
  return Status::OK();
}

Status ParseVocabulary(std::string_view sv, Vocabulary* out) {
  ByteReader r(sv.data(), sv.size());
  uint32_t n = 0;
  if (!r.Pod(&n)) return Status::Corruption("vocabulary segment truncated");
  for (uint32_t i = 0; i < n; ++i) {
    std::string term;
    if (!r.Str(&term)) return Status::Corruption("vocabulary term truncated");
    out->Intern(term);
  }
  return Status::OK();
}

Status ParseFeatureTable(std::string_view sv, FeatureTable* out) {
  ByteReader r(sv.data(), sv.size());
  uint32_t universe = 0;
  uint64_t count = 0;
  if (!r.Pod(&universe) || !r.Pod(&count) || count > kMaxRecordCount) {
    return Status::Corruption("feature-table segment header truncated");
  }
  const uint32_t expected_blocks = (universe + 63) / 64;
  std::vector<FeatureObject> features;
  features.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FeatureObject f;
    uint32_t block_count = 0;
    if (!r.Pod(&f.id) || !r.Pod(&f.pos.x) || !r.Pod(&f.pos.y) ||
        !r.Pod(&f.score) || !r.Pod(&block_count)) {
      return Status::Corruption("feature record truncated");
    }
    if (block_count != expected_blocks) {
      return Status::Corruption("feature keyword blocks do not match the "
                                "universe size");
    }
    std::vector<uint64_t> blocks(block_count, 0);
    for (uint32_t b = 0; b < block_count; ++b) {
      if (!r.Pod(&blocks[b])) {
        return Status::Corruption("feature keyword blocks truncated");
      }
    }
    f.keywords = KeywordSet::FromBlocks(universe, std::move(blocks));
    if (!r.Str(&f.name)) {
      return Status::Corruption("feature name truncated");
    }
    features.push_back(std::move(f));
  }
  *out = FeatureTable(std::move(features), universe);
  return Status::OK();
}

// ------------------------------------------------------ tree serializer

/// Serializes tree metadata + the node array.  Node records are laid out
/// in fixed-width slots (slot index == NodeId) whose width is the
/// page-aligned worst-case node size, so the reader and the FilePageStore
/// address node i at offset i * slot_bytes.
template <int D, typename Aug, typename Codec>
Status SerializeTree(const RTree<D, Aug>& tree, const Codec& codec,
                     uint32_t page_size, std::string* meta, std::string* nodes,
                     uint64_t* slot_count, uint32_t* slot_bytes_out) {
  const uint32_t entry_bytes = EntryBytes(D, codec.payload_bytes());
  const uint32_t slot_bytes =
      SlotBytesFor(tree.options().max_entries, entry_bytes, page_size);

  std::vector<uint32_t> free_nodes(tree.free_nodes().begin(),
                                   tree.free_nodes().end());
  AppendTreeMeta(meta, tree.root_id(), tree.height(), tree.size(),
                 tree.node_count(), tree.options().max_entries,
                 codec.aug_bits(), codec.aug_words(), free_nodes);

  nodes->reserve(uint64_t{tree.node_count()} * slot_bytes);
  for (const auto& node : tree.nodes()) {
    const size_t start = nodes->size();
    PutPod<uint16_t>(nodes, node.level);
    PutPod<uint16_t>(nodes, 0);
    PutPod<uint32_t>(nodes, static_cast<uint32_t>(node.entries.size()));
    for (const auto& e : node.entries) {
      for (int d = 0; d < D; ++d) PutPod(nodes, e.rect.lo[d]);
      for (int d = 0; d < D; ++d) PutPod(nodes, e.rect.hi[d]);
      PutPod<uint32_t>(nodes, e.id);
      codec.Write(nodes, e.aug);
    }
    if (nodes->size() - start > slot_bytes) {
      return Status::Internal("index node overflows its slot: " +
                              std::to_string(nodes->size() - start) + " > " +
                              std::to_string(slot_bytes) + " bytes");
    }
    nodes->resize(start + slot_bytes);  // zero-pad to the slot boundary
  }
  *slot_count = tree.node_count();
  *slot_bytes_out = slot_bytes;
  return Status::OK();
}

// --------------------------------------------------------- tree reader
//
// Split in two: the metadata parse + one streaming verification pass over
// the node segment run eagerly at open (so a damaged file is rejected with
// the same typed errors as the old whole-file loader), while the node
// records themselves stay on disk behind a per-node decoder closure.

/// Parses the tree-metadata payload and cross-checks it against the node
/// segment's catalog entry.  Fills everything in `out` except `nodes`.
template <int D, typename Aug, typename Codec>
Status ParseTreeMeta(std::string_view meta, const CatalogEntry& nodes_entry,
                     const Codec& codec, uint32_t expected_max_entries,
                     uint32_t page_size, RestoredTreeData<D, Aug>* out) {
  ByteReader m(meta.data(), meta.size());
  uint32_t root = 0, height = 0, node_count = 0, max_entries = 0;
  uint32_t aug_bits = 0, aug_words = 0, free_count = 0;
  uint64_t size = 0;
  if (!m.Pod(&root) || !m.Pod(&height) || !m.Pod(&size) ||
      !m.Pod(&node_count) || !m.Pod(&max_entries) || !m.Pod(&aug_bits) ||
      !m.Pod(&aug_words) || !m.Pod(&free_count)) {
    return Status::Corruption("tree metadata segment too short");
  }
  if (aug_bits != codec.aug_bits() || aug_words != codec.aug_words()) {
    return Status::Corruption(
        "augmentation layout mismatch: file says " + std::to_string(aug_bits) +
        " bits / " + std::to_string(aug_words) + " words, parameters derive " +
        std::to_string(codec.aug_bits()) + " / " +
        std::to_string(codec.aug_words()));
  }
  if (max_entries != expected_max_entries) {
    return Status::Corruption(
        "node fan-out mismatch: file says " + std::to_string(max_entries) +
        ", page-size parameters derive " +
        std::to_string(expected_max_entries));
  }
  if (node_count > kMaxNodeCount || free_count > node_count) {
    return Status::Corruption("implausible tree node counts");
  }
  if (node_count != nodes_entry.slot_count) {
    return Status::Corruption("tree metadata and catalog disagree on the "
                              "node count");
  }
  if (nodes_entry.bytes !=
      nodes_entry.slot_count * uint64_t{nodes_entry.slot_bytes}) {
    return Status::Corruption("node segment size does not match its slots");
  }
  // The lazy decoder trusts the catalog's fixed slot width, so it must
  // equal the width the page-size parameters derive (the catalog itself
  // is not checksummed).
  const uint32_t expected_slot_bytes = SlotBytesFor(
      max_entries, EntryBytes(D, codec.payload_bytes()), page_size);
  if (nodes_entry.slot_bytes != expected_slot_bytes) {
    return Status::Corruption(
        "node slot width mismatch: catalog says " +
        std::to_string(nodes_entry.slot_bytes) +
        " bytes, page-size parameters derive " +
        std::to_string(expected_slot_bytes));
  }
  if (root != kInvalidNodeId && root >= node_count) {
    return Status::Corruption("tree root id out of range");
  }
  out->free_nodes.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    uint32_t id = 0;
    if (!m.Pod(&id)) return Status::Corruption("tree free list truncated");
    if (id >= node_count) {
      return Status::Corruption("free-list node id out of range");
    }
    out->free_nodes.push_back(id);
  }
  out->root = root;
  out->height = height;
  out->size = size;
  out->node_count = node_count;
  return Status::OK();
}

/// One streaming pass over a node segment: checksums every byte and
/// validates each slot header without retaining the payload.  A checksum
/// mismatch outranks a slot-header violation (the old whole-file loader
/// checksummed before parsing; damaged bytes usually trip both).
Status VerifyNodeSegment(const IndexFileHandle& file, const CatalogEntry& e,
                         uint32_t max_entries) {
  Fnv1a64Stream fnv;
  Status bad_slot = Status::OK();
  if (e.slot_count > 0) {
    const uint32_t slot_bytes = e.slot_bytes;
    const uint64_t chunk_slots =
        std::max<uint64_t>(1, (uint64_t{1} << 20) / slot_bytes);
    std::vector<char> buf(static_cast<size_t>(chunk_slots) * slot_bytes);
    for (uint64_t i = 0; i < e.slot_count;) {
      const uint64_t n = std::min(chunk_slots, e.slot_count - i);
      STPQ_RETURN_NOT_OK(file.PreadExact(e.offset + i * slot_bytes,
                                         buf.data(), n * slot_bytes));
      fnv.Update(buf.data(), static_cast<size_t>(n * slot_bytes));
      for (uint64_t j = 0; bad_slot.ok() && j < n; ++j) {
        uint32_t count = 0;
        std::memcpy(&count, buf.data() + j * slot_bytes + 4, sizeof(count));
        if (count > max_entries) {
          bad_slot = Status::Corruption(
              "node " + std::to_string(i + j) + " claims " +
              std::to_string(count) + " entries, above the fan-out of " +
              std::to_string(max_entries));
        }
      }
      i += n;
    }
  }
  if (fnv.Digest() != e.checksum) {
    return ChecksumMismatch(e.type, e.ordinal);
  }
  return bad_slot;
}

/// Builds the per-node decoder closure for RTree::RestoreLazy.  Decoding
/// cannot fail on a verified segment: slots are fixed-width, every slot
/// header was validated (count <= max_entries implies every fixed-width
/// entry fits the slot), and the codecs read exact widths — so a failure
/// here means the file changed underneath us, which is a crash, not a
/// Status.
template <int D, typename Aug, typename Codec>
std::function<void(NodeId, typename RTree<D, Aug>::Node*)> MakeNodeDecoder(
    std::shared_ptr<IndexFileHandle> file, const CatalogEntry& entry,
    Codec codec) {
  const uint64_t offset = entry.offset;
  const uint32_t slot_bytes = entry.slot_bytes;
  return [file = std::move(file), offset, slot_bytes,
          codec](NodeId id, typename RTree<D, Aug>::Node* node) {
    std::vector<char> buf(slot_bytes);
    const Status read =
        file->PreadExact(offset + uint64_t{id} * slot_bytes, buf.data(),
                         slot_bytes);
    STPQ_CHECK(read.ok() && "index node slot read failed");
    ByteReader r(buf.data(), slot_bytes);
    uint16_t level = 0, reserved = 0;
    uint32_t count = 0;
    STPQ_CHECK(r.Pod(&level) && r.Pod(&reserved) && r.Pod(&count));
    node->level = level;
    node->entries.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      typename RTree<D, Aug>::Entry e;
      bool ok = true;
      for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.lo[d]);
      for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.hi[d]);
      ok = ok && r.Pod(&e.id) && codec.Read(r, &e.aug);
      STPQ_CHECK(ok && "index node entry decode failed after verification");
      node->entries.push_back(std::move(e));
    }
  };
}

/// Eagerly verifies one tree (meta + node segment) and wires up its lazy
/// restore payload.
template <int D, typename Aug, typename Codec>
Status LoadTree(const std::shared_ptr<IndexFileHandle>& file,
                const std::vector<CatalogEntry>& catalog, uint32_t meta_type,
                uint32_t nodes_type, uint32_t ordinal, const Codec& codec,
                uint32_t expected_max_entries, uint32_t page_size,
                RestoredTreeData<D, Aug>* out,
                const CatalogEntry** nodes_entry_out) {
  Result<std::string> meta = VerifiedSegment(*file, catalog, meta_type,
                                             ordinal);
  if (!meta.ok()) return meta.status();
  const CatalogEntry* entry = FindEntry(catalog, nodes_type, ordinal);
  if (entry == nullptr) return MissingSegment(nodes_type, ordinal);
  STPQ_RETURN_NOT_OK((ParseTreeMeta<D, Aug>(meta.value(), *entry, codec,
                                            expected_max_entries, page_size,
                                            out)));
  STPQ_RETURN_NOT_OK(VerifyNodeSegment(*file, *entry, expected_max_entries));
  out->decoder = MakeNodeDecoder<D, Aug>(file, *entry, codec);
  *nodes_entry_out = entry;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- writer

Status WriteIndexFile(const std::string& path,
                      const IndexFileWriteRequest& request) {
  if (request.objects == nullptr || request.feature_tables == nullptr ||
      request.vocabularies == nullptr || request.object_index == nullptr) {
    return Status::InvalidArgument("index write request is missing a part");
  }
  const size_t num_tables = request.feature_tables->size();
  if (request.vocabularies->size() != num_tables ||
      request.feature_indexes.size() != num_tables) {
    return Status::InvalidArgument(
        "index write request needs one vocabulary and one feature index per "
        "table");
  }
  if (num_tables > kMaxTables) {
    return Status::InvalidArgument("too many feature tables to persist");
  }
  const uint32_t page_size = request.params.page_size_bytes;
  if (page_size == 0) {
    return Status::InvalidArgument("page_size_bytes must be nonzero");
  }

  struct SegmentBlob {
    uint32_t type = 0;
    uint32_t ordinal = 0;
    std::string payload;
    uint64_t first_page = 0;
    uint64_t slot_count = 0;
    uint32_t slot_bytes = 0;
    bool page_aligned = false;
    uint64_t offset = 0;  // assigned during layout
  };
  std::vector<SegmentBlob> segments;
  segments.reserve(3 + 4 * num_tables);

  {
    SegmentBlob s;
    s.type = kSegObjects;
    PutPod<uint64_t>(&s.payload, request.objects->size());
    for (const DataObject& o : *request.objects) {
      PutPod(&s.payload, o.id);
      PutPod(&s.payload, o.pos.x);
      PutPod(&s.payload, o.pos.y);
      PutString(&s.payload, o.name);
    }
    segments.push_back(std::move(s));
  }

  for (size_t i = 0; i < num_tables; ++i) {
    const Vocabulary& vocab = (*request.vocabularies)[i];
    SegmentBlob v;
    v.type = kSegVocabulary;
    v.ordinal = static_cast<uint32_t>(i);
    PutPod<uint32_t>(&v.payload, vocab.size());
    for (uint32_t t = 0; t < vocab.size(); ++t) {
      PutString(&v.payload, vocab.Term(t));
    }
    segments.push_back(std::move(v));

    const FeatureTable& table = (*request.feature_tables)[i];
    SegmentBlob s;
    s.type = kSegFeatureTable;
    s.ordinal = static_cast<uint32_t>(i);
    PutPod<uint32_t>(&s.payload, table.universe_size());
    PutPod<uint64_t>(&s.payload, table.size());
    for (const FeatureObject& f : table.All()) {
      PutPod(&s.payload, f.id);
      PutPod(&s.payload, f.pos.x);
      PutPod(&s.payload, f.pos.y);
      PutPod(&s.payload, f.score);
      const std::vector<uint64_t>& blocks = f.keywords.blocks();
      PutPod<uint32_t>(&s.payload, static_cast<uint32_t>(blocks.size()));
      for (uint64_t b : blocks) PutPod(&s.payload, b);
      PutString(&s.payload, f.name);
    }
    segments.push_back(std::move(s));
  }

  {
    SegmentBlob meta, nodes;
    meta.type = kSegObjectTreeMeta;
    nodes.type = kSegObjectTreeNodes;
    nodes.page_aligned = true;
    nodes.first_page = 0;
    STPQ_RETURN_NOT_OK((SerializeTree<2, NoAug>(
        request.object_index->tree(), NoAugCodec{}, page_size, &meta.payload,
        &nodes.payload, &nodes.slot_count, &nodes.slot_bytes)));
    segments.push_back(std::move(meta));
    segments.push_back(std::move(nodes));
  }

  for (size_t i = 0; i < num_tables; ++i) {
    SegmentBlob meta, nodes;
    meta.type = kSegFeatureTreeMeta;
    meta.ordinal = static_cast<uint32_t>(i);
    nodes.type = kSegFeatureTreeNodes;
    nodes.ordinal = static_cast<uint32_t>(i);
    nodes.page_aligned = true;
    nodes.first_page = kIndexPageStride * (i + 1);
    switch (request.params.index_kind) {
      case FeatureIndexKind::kSrt: {
        const auto* srt =
            dynamic_cast<const SrtIndex*>(request.feature_indexes[i]);
        if (srt == nullptr) {
          return Status::InvalidArgument(
              "feature index " + std::to_string(i) +
              " is not an SrtIndex but params say kind=srt");
        }
        SrtAugCodec codec{(*request.feature_tables)[i].universe_size()};
        STPQ_RETURN_NOT_OK((SerializeTree<4, SrtAug>(
            srt->tree(), codec, page_size, &meta.payload, &nodes.payload,
            &nodes.slot_count, &nodes.slot_bytes)));
        break;
      }
      case FeatureIndexKind::kIr2: {
        const auto* ir2 =
            dynamic_cast<const Ir2Tree*>(request.feature_indexes[i]);
        if (ir2 == nullptr) {
          return Status::InvalidArgument(
              "feature index " + std::to_string(i) +
              " is not an Ir2Tree but params say kind=ir2");
        }
        Ir2AugCodec codec{ir2->scheme().signature_bits()};
        STPQ_RETURN_NOT_OK((SerializeTree<2, Ir2Aug>(
            ir2->tree(), codec, page_size, &meta.payload, &nodes.payload,
            &nodes.slot_count, &nodes.slot_bytes)));
        break;
      }
    }
    segments.push_back(std::move(meta));
    segments.push_back(std::move(nodes));
  }

  // Layout: header, then segments in catalog order; node segments aligned
  // to the page size so slot offsets are page offsets.
  const uint64_t header_bytes =
      kSuperblockBytes + segments.size() * kCatalogEntryBytes;
  uint64_t cursor = header_bytes;
  for (SegmentBlob& s : segments) {
    if (s.page_aligned) cursor = AlignUp(cursor, page_size);
    s.offset = cursor;
    cursor += s.payload.size();
  }

  std::string header;
  header.reserve(header_bytes);
  AppendSuperblock(&header, page_size,
                   static_cast<uint32_t>(request.params.index_kind),
                   static_cast<uint32_t>(request.params.bulk_load),
                   request.params.signature_bits,
                   request.params.signature_hashes, request.params.fill,
                   request.objects->size(), static_cast<uint32_t>(num_tables),
                   static_cast<uint32_t>(segments.size()));
  for (const SegmentBlob& s : segments) {
    CatalogEntry e;
    e.type = s.type;
    e.ordinal = s.ordinal;
    e.offset = s.offset;
    e.bytes = s.payload.size();
    e.first_page = s.first_page;
    e.slot_count = s.slot_count;
    e.slot_bytes = s.slot_bytes;
    e.checksum = Fnv1a64(s.payload.data(), s.payload.size());
    AppendCatalogEntry(&header, e);
  }

  // Crash-safe publish: assemble the whole image in `<path>.tmp`, fsync
  // it, then atomically rename over the destination.  A crash or failure
  // at any point leaves the previous index untouched.
  Result<AtomicFile> out_r = AtomicFile::Create(path);
  if (!out_r.ok()) return out_r.status();
  AtomicFile out = out_r.TakeValue();
  STPQ_RETURN_NOT_OK(out.WriteAt(0, header.data(), header.size()));
  uint64_t file_end = header.size();
  for (const SegmentBlob& s : segments) {
    if (s.payload.empty()) continue;  // empty segments do not extend the file
    STPQ_RETURN_NOT_OK(
        out.WriteAt(s.offset, s.payload.data(), s.payload.size()));
    file_end = std::max(file_end, s.offset + s.payload.size());
  }
  STPQ_RETURN_NOT_OK(out.Truncate(file_end));
  return out.Commit();
}

// ---------------------------------------------------------------- reader

Result<LoadedIndex> LoadIndexFile(const std::string& path) {
  Result<std::shared_ptr<IndexFileHandle>> file_r = IndexFileHandle::Open(path);
  if (!file_r.ok()) return file_r.status();
  std::shared_ptr<IndexFileHandle> file = file_r.TakeValue();

  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(*file, &sb, &catalog));

  LoadedIndex out;
  out.params = sb.params;

  {
    Result<std::string> sv = VerifiedSegment(*file, catalog, kSegObjects, 0);
    if (!sv.ok()) return sv.status();
    STPQ_RETURN_NOT_OK(ParseObjects(sv.value(), sb.object_count, &out.objects));
  }
  out.vocabularies.resize(sb.table_count);
  out.feature_tables.resize(sb.table_count);
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    Result<std::string> vv =
        VerifiedSegment(*file, catalog, kSegVocabulary, i);
    if (!vv.ok()) return vv.status();
    STPQ_RETURN_NOT_OK(ParseVocabulary(vv.value(), &out.vocabularies[i]));
    Result<std::string> tv =
        VerifiedSegment(*file, catalog, kSegFeatureTable, i);
    if (!tv.ok()) return tv.status();
    STPQ_RETURN_NOT_OK(ParseFeatureTable(tv.value(), &out.feature_tables[i]));
  }

  // Object tree.
  {
    const CatalogEntry* entry = nullptr;
    STPQ_RETURN_NOT_OK((LoadTree<2, NoAug>(
        file, catalog, kSegObjectTreeMeta, kSegObjectTreeNodes, 0,
        NoAugCodec{}, FanOutForPage(sb.params.page_size_bytes, 2, 0),
        sb.params.page_size_bytes, &out.object_tree, &entry)));
    if (entry->slot_count > 0) {
      out.extents.push_back(FilePageStore::Extent{
          entry->first_page, entry->slot_count, entry->offset,
          entry->slot_bytes});
    }
  }

  // Feature trees, one per table, matching the persisted index kind.
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    const uint32_t universe = out.feature_tables[i].universe_size();
    const CatalogEntry* entry = nullptr;
    switch (sb.params.index_kind) {
      case FeatureIndexKind::kSrt: {
        SrtAugCodec codec{universe};
        RestoredTreeData<4, SrtAug> tree;
        const uint32_t aug_bytes = 8 + 8 * ((universe + 63) / 64);
        STPQ_RETURN_NOT_OK((LoadTree<4, SrtAug>(
            file, catalog, kSegFeatureTreeMeta, kSegFeatureTreeNodes, i,
            codec, FanOutForPage(sb.params.page_size_bytes, 4, aug_bytes),
            sb.params.page_size_bytes, &tree, &entry)));
        out.srt_trees.push_back(std::move(tree));
        break;
      }
      case FeatureIndexKind::kIr2: {
        const uint32_t sig_bits =
            EffectiveIr2SignatureBits(sb.params.signature_bits, universe);
        Ir2AugCodec codec{sig_bits};
        RestoredTreeData<2, Ir2Aug> tree;
        const uint32_t aug_bytes = 8 + sig_bits / 8;
        STPQ_RETURN_NOT_OK((LoadTree<2, Ir2Aug>(
            file, catalog, kSegFeatureTreeMeta, kSegFeatureTreeNodes, i,
            codec, FanOutForPage(sb.params.page_size_bytes, 2, aug_bytes),
            sb.params.page_size_bytes, &tree, &entry)));
        out.ir2_trees.push_back(std::move(tree));
        break;
      }
    }
    if (entry->first_page != kIndexPageStride * (uint64_t{i} + 1)) {
      return Status::Corruption("feature node segment " + std::to_string(i) +
                                " has the wrong page-id base");
    }
    if (entry->slot_count > 0) {
      out.extents.push_back(FilePageStore::Extent{
          entry->first_page, entry->slot_count, entry->offset,
          entry->slot_bytes});
    }
  }
  return out;
}

Result<IndexFileInfo> ReadIndexFileInfo(const std::string& path) {
  Result<std::shared_ptr<IndexFileHandle>> file_r = IndexFileHandle::Open(path);
  if (!file_r.ok()) return file_r.status();
  const std::shared_ptr<IndexFileHandle> file = file_r.TakeValue();
  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(*file, &sb, &catalog));
  IndexFileInfo info;
  info.version = sb.version;
  info.params = sb.params;
  info.object_count = sb.object_count;
  info.table_count = sb.table_count;
  info.file_bytes = file->size();
  info.segments.reserve(catalog.size());
  for (const CatalogEntry& e : catalog) {
    IndexSegmentInfo s;
    s.name = SegmentName(e.type);
    s.ordinal = e.ordinal;
    s.offset = e.offset;
    s.bytes = e.bytes;
    s.slots = e.slot_count;
    s.slot_bytes = e.slot_bytes;
    info.segments.push_back(std::move(s));
  }
  return info;
}

Result<std::vector<Vocabulary>> ReadIndexVocabularies(
    const std::string& path) {
  Result<std::shared_ptr<IndexFileHandle>> file_r = IndexFileHandle::Open(path);
  if (!file_r.ok()) return file_r.status();
  const std::shared_ptr<IndexFileHandle> file = file_r.TakeValue();
  Superblock sb;
  std::vector<CatalogEntry> catalog;
  STPQ_RETURN_NOT_OK(ParseHeader(*file, &sb, &catalog));
  std::vector<Vocabulary> vocabs(sb.table_count);
  for (uint32_t i = 0; i < sb.table_count; ++i) {
    Result<std::string> sv =
        VerifiedSegment(*file, catalog, kSegVocabulary, i);
    if (!sv.ok()) return sv.status();
    STPQ_RETURN_NOT_OK(ParseVocabulary(sv.value(), &vocabs[i]));
  }
  return vocabs;
}

}  // namespace stpq
