// Crash-safe file replacement: write to `<path>.tmp`, fsync the file,
// atomically rename over the destination, then fsync the directory.
//
// The guarantee (DESIGN.md §17): after Commit returns OK the new contents
// are durably visible under the final path; after any failure or crash
// before the rename the previous file is untouched.  A crash between the
// rename and the directory fsync can only expose either the complete old
// file or the complete new file — never a torn mix.
//
// Writes go through pwrite at arbitrary offsets (the index writer lays
// segments out non-sequentially); unwritten gaps read back as zeroes,
// matching the zero-fill semantics of the seekp-based writer this
// replaces.
#ifndef STPQ_IO_ATOMIC_FILE_H_
#define STPQ_IO_ATOMIC_FILE_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace stpq {

class AtomicFile {
 public:
  /// Failure-injection points for the crash-safety test suite.  When armed
  /// (SetFailurePointForTest), the matching step fails with an IoError
  /// exactly as if the syscall had failed; kRename fails *before* the
  /// rename (old file intact), kSyncDir fails *after* it (new file in
  /// place but its durability not yet guaranteed).
  enum class FailurePoint { kNone, kWrite, kSyncFile, kRename, kSyncDir };
  static void SetFailurePointForTest(FailurePoint point);

  /// Opens `<final_path>.tmp` truncated for writing.
  [[nodiscard]] static Result<AtomicFile> Create(const std::string& final_path);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  /// Uncommitted temp files are unlinked on destruction.
  ~AtomicFile();

  /// Full write of `n` bytes at `offset`, retrying EINTR.
  [[nodiscard]] Status WriteAt(uint64_t offset, const void* data, uint64_t n);

  /// Reads back `n` bytes at `offset` from the (still uncommitted) temp
  /// file; used for the post-pass that checksums out-of-order writes.
  [[nodiscard]] Status ReadAt(uint64_t offset, void* data, uint64_t n) const;

  /// Sets the final file size (pwrite gaps already read as zero; this
  /// pins the exact end-of-file).
  [[nodiscard]] Status Truncate(uint64_t size);

  /// fsync + rename over the final path + directory fsync.  The object is
  /// finished afterwards whether or not this succeeds.
  [[nodiscard]] Status Commit();

  /// Drops the temp file without touching the destination.
  void Abandon();

  const std::string& tmp_path() const { return tmp_path_; }

 private:
  AtomicFile(std::string final_path, std::string tmp_path, int fd)
      : final_path_(std::move(final_path)),
        tmp_path_(std::move(tmp_path)),
        fd_(fd) {}

  std::string final_path_;
  std::string tmp_path_;
  int fd_ = -1;
};

}  // namespace stpq

#endif  // STPQ_IO_ATOMIC_FILE_H_
