// External-memory bulk loader: builds a .stpqx index file directly from a
// .stpq dataset in bounded memory.
//
// The in-memory path (Engine::Build + Engine::Save) materializes every
// record and every tree node before serializing; this loader never does.
// It streams the dataset twice:
//
//   survey pass    counts, name/term byte totals and the spatial domains —
//                  enough to derive every tree's geometry (fan-out, nodes
//                  per level, node ids) and the complete segment layout
//                  up front.
//   content pass   streams the record segments into place, feeding each
//                  tree's leaf entries through an external merge sort
//                  keyed by the same Hilbert order the in-memory builder
//                  uses, then packs leaf and internal node levels
//                  bottom-up, writing each fixed-width slot as soon as it
//                  closes.  Propagated augmentations (max score, OR-folded
//                  Hilbert keyword summaries, IR2 signatures) are computed
//                  on the fly as each level closes.
//
// Contract: the output is byte-identical to WriteIndexFile over the same
// dataset and parameters — same superblock, catalog, segment bytes, node
// ids and checksums — so golden I/O counts and query results match the
// in-memory build exactly (tests/bulk_load_test.cc pins this).
#ifndef STPQ_IO_BULK_LOAD_H_
#define STPQ_IO_BULK_LOAD_H_

#include <cstdint>
#include <string>

#include "io/index_file.h"
#include "util/result.h"
#include "util/status.h"

namespace stpq {

/// Knobs for BuildIndexFileExternal.
struct ExternalBuildOptions {
  /// Same parameters the in-memory writer records in the superblock.
  /// Only bulk_load == kHilbert is supported (the sort order must be a
  /// key the merge sort can reproduce).
  IndexBuildParams params;
  /// Approximate ceiling on working memory: bounds the sort buffer and
  /// the merge fan-in read buffers.  Must be at least 4096 bytes; small
  /// values force runs to spill, which the tests use to exercise the
  /// multi-pass merge.
  uint64_t memory_budget_bytes = uint64_t{256} << 20;
  /// Where sorted runs spill; empty = next to the output index.
  std::string temp_dir;
};

/// What the build did; surfaced by `stpq_cli build --external` and
/// mirrored into the stpq_bulk_* metrics.
struct ExternalBuildStats {
  uint64_t objects = 0;
  uint64_t features = 0;  ///< across all tables
  uint32_t tables = 0;
  uint64_t runs_written = 0;   ///< sorted run files (spills + merges)
  uint64_t merge_passes = 0;   ///< merge rounds, including the final one
  uint64_t spilled_bytes = 0;  ///< bytes written to run files
  uint64_t output_bytes = 0;   ///< final .stpqx size
};

/// Builds `index_path` from the .stpq dataset at `dataset_path` without
/// materializing the dataset or any tree in memory.  The write is
/// crash-safe (AtomicFile: tmp + fsync + rename).  Typed errors:
/// InvalidArgument for unsupported parameters or a malformed dataset,
/// IoError for read/write failures.
[[nodiscard]] Result<ExternalBuildStats> BuildIndexFileExternal(
    const std::string& dataset_path, const std::string& index_path,
    const ExternalBuildOptions& options);

}  // namespace stpq

#endif  // STPQ_IO_BULK_LOAD_H_
