// Persistent index storage: one versioned file holding a whole index set.
//
// A .stpqx file packages everything an engine needs to answer queries
// without rebuilding (DESIGN.md §16): the data objects, every feature
// table, the vocabularies, and the exact node arrays of the object R-tree
// and the per-table feature indexes (SRT or IR2).  Node segments are laid
// out in page-aligned fixed-width slots where slot index == NodeId, so a
// reopened engine reproduces the builder's page ids — and therefore its
// golden I/O counts — bit for bit, and a FilePageStore can serve a
// buffer-pool miss with one slot read.
//
// Layout (little-endian throughout, like the .stpq dataset format):
//
//   superblock   magic "STQX", version, build parameters, counts
//   catalog      one entry per segment: type, ordinal, offset, length,
//                page-id range + slot width (node segments), FNV-1a64
//                checksum
//   segments     objects | vocabulary/i | feature_table/i |
//                tree meta + page-aligned tree nodes (object tree and one
//                pair per feature table)
//
// Versioning policy: the major version is bumped on any change a v1 reader
// cannot skip; readers reject files whose version they do not know
// (InvalidArgument), bad magic (InvalidArgument), short reads (IoError),
// and checksum mismatches (Corruption).
#ifndef STPQ_IO_INDEX_FILE_H_
#define STPQ_IO_INDEX_FILE_H_

#include <string>
#include <vector>

#include "index/feature_index.h"
#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "storage/page_store.h"
#include "text/vocabulary.h"
#include "util/result.h"
#include "util/status.h"

namespace stpq {

/// Build-time parameters recorded in the superblock: everything needed to
/// re-derive fan-outs, signature schemes and page layout when reopening.
struct IndexBuildParams {
  FeatureIndexKind index_kind = FeatureIndexKind::kSrt;
  BulkLoadKind bulk_load = BulkLoadKind::kHilbert;
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  double fill = 1.0;
  uint32_t signature_bits = 0;
  uint32_t signature_hashes = 3;
};

/// Borrowed views of everything WriteIndexFile persists.  The feature
/// indexes must match `params.index_kind` (SrtIndex / Ir2Tree), one per
/// table, in table order; `vocabularies` needs one entry per table.
struct IndexFileWriteRequest {
  IndexBuildParams params;
  const std::vector<DataObject>* objects = nullptr;
  const std::vector<FeatureTable>* feature_tables = nullptr;
  const std::vector<Vocabulary>* vocabularies = nullptr;
  const ObjectIndex* object_index = nullptr;
  std::vector<const FeatureIndex*> feature_indexes;
};

/// Serializes the whole index set to `path` (overwriting).  Typed errors:
/// InvalidArgument on a malformed request, IoError on write failure.
[[nodiscard]] Status WriteIndexFile(const std::string& path,
                                    const IndexFileWriteRequest& request);

/// Everything LoadIndexFile recovers.  Exactly one of srt_trees /
/// ir2_trees is populated, matching params.index_kind; `extents` maps the
/// node segments into the engine's page-id namespace (object tree at 0,
/// feature index i at kIndexPageStride * (i + 1)) for FilePageStore.
struct LoadedIndex {
  IndexBuildParams params;
  std::vector<DataObject> objects;
  std::vector<FeatureTable> feature_tables;
  std::vector<Vocabulary> vocabularies;
  RestoredTreeData<2, NoAug> object_tree;
  std::vector<RestoredTreeData<4, SrtAug>> srt_trees;
  std::vector<RestoredTreeData<2, Ir2Aug>> ir2_trees;
  std::vector<FilePageStore::Extent> extents;
};

/// Reads and verifies a file written by WriteIndexFile.  Every segment's
/// checksum is validated before parsing; see the file comment for the
/// error taxonomy.
[[nodiscard]] Result<LoadedIndex> LoadIndexFile(const std::string& path);

/// One catalog row, decoded for display (`stpq_cli load`) and for the
/// crash-safety tests' segment-boundary truncation sweeps.
struct IndexSegmentInfo {
  std::string name;      ///< "objects", "feature_table", "srt_nodes", ...
  uint32_t ordinal = 0;  ///< table index for per-table segments
  uint64_t offset = 0;   ///< byte offset of the segment payload
  uint64_t bytes = 0;
  uint64_t slots = 0;       ///< node segments: slot (node) count
  uint32_t slot_bytes = 0;  ///< node segments: page-aligned slot width
};

/// Superblock + catalog summary without loading any segment payloads.
struct IndexFileInfo {
  uint32_t version = 0;
  IndexBuildParams params;
  uint64_t object_count = 0;
  uint32_t table_count = 0;
  uint64_t file_bytes = 0;
  std::vector<IndexSegmentInfo> segments;
};

[[nodiscard]] Result<IndexFileInfo> ReadIndexFileInfo(const std::string& path);

/// Reads only the vocabulary segments (checksum-verified): what a CLI
/// needs to parse query keywords against a prebuilt index.
[[nodiscard]] Result<std::vector<Vocabulary>> ReadIndexVocabularies(
    const std::string& path);

}  // namespace stpq

#endif  // STPQ_IO_INDEX_FILE_H_
