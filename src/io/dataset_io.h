// Dataset serialization: CSV for interchange, a binary format for speed.
//
// The paper's corpora (factual.com extracts, synthetic sets) are flat
// tables; these readers/writers let users bring their own data instead of
// the built-in generators:
//
//   objects CSV:   id,x,y,name
//   features CSV:  id,x,y,score,keywords,name    (keywords = 'a|b|c')
//
// The binary format (.stpq) stores a whole Dataset (objects + all feature
// tables + vocabularies) with a magic/version header and explicit sizes;
// it is byte-order dependent (little-endian hosts) like most page formats.
#ifndef STPQ_IO_DATASET_IO_H_
#define STPQ_IO_DATASET_IO_H_

#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "gen/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace stpq {

// ---------------------------------------------------------------- CSV

/// Writes data objects as CSV (with header).
[[nodiscard]] Status WriteObjectsCsv(const std::string& path,
                       const std::vector<DataObject>& objects);

/// Reads data objects from CSV produced by WriteObjectsCsv (or compatible).
[[nodiscard]] Result<std::vector<DataObject>> ReadObjectsCsv(const std::string& path);

/// Writes one feature table as CSV; keyword ids are rendered through
/// `vocab` and joined with '|'.
[[nodiscard]] Status WriteFeaturesCsv(const std::string& path, const FeatureTable& table,
                        const Vocabulary& vocab);

/// Reads a feature table from CSV.  Keywords are interned into `vocab`
/// (which may start empty); the resulting table's universe is
/// `universe_size` if nonzero, else the final vocabulary size.
[[nodiscard]] Result<FeatureTable> ReadFeaturesCsv(const std::string& path,
                                     Vocabulary* vocab,
                                     uint32_t universe_size = 0);

// -------------------------------------------------------------- binary

/// Serializes a whole dataset to a .stpq binary file.
[[nodiscard]] Status WriteDatasetBinary(const std::string& path, const Dataset& dataset);

/// Loads a dataset written by WriteDatasetBinary; rejects bad magic,
/// unsupported versions, and truncated files.
[[nodiscard]] Result<Dataset> ReadDatasetBinary(const std::string& path);

/// Streaming cursor over a .stpq binary file: one sequential pass, record
/// by record, without ever materializing the Dataset.  The external bulk
/// loader opens two of these (a survey pass for counts/domains, then a
/// content pass), so its resident set stays bounded by its sort buffers.
///
/// Methods must be called in file order:
///
///   Open -> ForEachObject -> ReadTableCount ->
///   per table: ForEachVocabTerm -> ReadTableHeader -> ForEachFeature
///
/// Error codes and messages match ReadDatasetBinary exactly (it is the
/// same grammar, just pull- instead of load-driven).
class DatasetBinaryScanner {
 public:
  struct TableHeader {
    uint32_t universe = 0;
    uint64_t feature_count = 0;
  };

  /// Opens `path` and consumes the magic/version/object-count header.
  [[nodiscard]] static Result<DatasetBinaryScanner> Open(
      const std::string& path);

  DatasetBinaryScanner(DatasetBinaryScanner&&) = default;
  DatasetBinaryScanner& operator=(DatasetBinaryScanner&&) = default;

  [[nodiscard]] uint64_t object_count() const { return object_count_; }

  /// Streams every object record through `fn` (the record is reused).
  [[nodiscard]] Status ForEachObject(
      const std::function<void(const DataObject&)>& fn);

  /// Reads the table count that follows the object records.
  [[nodiscard]] Result<uint32_t> ReadTableCount();

  /// Streams the next table's vocabulary terms, in TermId order.
  [[nodiscard]] Status ForEachVocabTerm(
      const std::function<void(const std::string&)>& fn);

  /// Reads the universe size + feature count of the next table.
  [[nodiscard]] Result<TableHeader> ReadTableHeader();

  /// Streams the table's feature records; call with the header values
  /// ReadTableHeader just returned.
  [[nodiscard]] Status ForEachFeature(
      uint32_t universe, uint64_t count,
      const std::function<void(const FeatureObject&)>& fn);

 private:
  explicit DatasetBinaryScanner(std::ifstream in) : in_(std::move(in)) {}

  std::ifstream in_;
  uint64_t object_count_ = 0;
};

}  // namespace stpq

#endif  // STPQ_IO_DATASET_IO_H_
