// Dataset serialization: CSV for interchange, a binary format for speed.
//
// The paper's corpora (factual.com extracts, synthetic sets) are flat
// tables; these readers/writers let users bring their own data instead of
// the built-in generators:
//
//   objects CSV:   id,x,y,name
//   features CSV:  id,x,y,score,keywords,name    (keywords = 'a|b|c')
//
// The binary format (.stpq) stores a whole Dataset (objects + all feature
// tables + vocabularies) with a magic/version header and explicit sizes;
// it is byte-order dependent (little-endian hosts) like most page formats.
#ifndef STPQ_IO_DATASET_IO_H_
#define STPQ_IO_DATASET_IO_H_

#include <string>
#include <vector>

#include "gen/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace stpq {

// ---------------------------------------------------------------- CSV

/// Writes data objects as CSV (with header).
[[nodiscard]] Status WriteObjectsCsv(const std::string& path,
                       const std::vector<DataObject>& objects);

/// Reads data objects from CSV produced by WriteObjectsCsv (or compatible).
[[nodiscard]] Result<std::vector<DataObject>> ReadObjectsCsv(const std::string& path);

/// Writes one feature table as CSV; keyword ids are rendered through
/// `vocab` and joined with '|'.
[[nodiscard]] Status WriteFeaturesCsv(const std::string& path, const FeatureTable& table,
                        const Vocabulary& vocab);

/// Reads a feature table from CSV.  Keywords are interned into `vocab`
/// (which may start empty); the resulting table's universe is
/// `universe_size` if nonzero, else the final vocabulary size.
[[nodiscard]] Result<FeatureTable> ReadFeaturesCsv(const std::string& path,
                                     Vocabulary* vocab,
                                     uint32_t universe_size = 0);

// -------------------------------------------------------------- binary

/// Serializes a whole dataset to a .stpq binary file.
[[nodiscard]] Status WriteDatasetBinary(const std::string& path, const Dataset& dataset);

/// Loads a dataset written by WriteDatasetBinary; rejects bad magic,
/// unsupported versions, and truncated files.
[[nodiscard]] Result<Dataset> ReadDatasetBinary(const std::string& path);

}  // namespace stpq

#endif  // STPQ_IO_DATASET_IO_H_
