#include "io/bulk_load.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "geom/rect.h"
#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "index/ir2_tree.h"
#include "index/srt_index.h"
#include "io/atomic_file.h"
#include "io/dataset_io.h"
#include "io/index_format.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "rtree/rtree.h"
#include "text/signature.h"
#include "util/logging.h"

namespace stpq {

using namespace index_format;  // NOLINT(build/namespaces) format primitives

namespace {

constexpr uint32_t kMinExternalPageSize = 64;  // engine.cc kMinPageSizeBytes
constexpr uint64_t kMinMemoryBudget = 4096;
constexpr size_t kStreamBufferBytes = size_t{1} << 20;

// --------------------------------------------------------- tree geometry
//
// BulkLoadSorted's shape is fully determined by (entry count, fan-out,
// fill): leaves take `per_node` sorted records each, every parent level
// chunks its children `per_node` at a time, node ids are assigned level by
// level bottom-up.  Computing that shape up front lets the packer write
// every slot at its final id the moment the node closes.

struct TreeLayout {
  uint64_t entry_count = 0;
  uint32_t max_entries = 0;
  uint32_t per_node = 0;
  uint32_t entry_bytes = 0;
  uint32_t slot_bytes = 0;
  std::vector<uint64_t> level_counts;  ///< nodes per level, leaves first
  std::vector<uint64_t> level_base;    ///< first node id of each level
  uint64_t node_count = 0;
  uint32_t height = 0;
  uint32_t root = kInvalidNodeId;
};

TreeLayout ComputeTreeLayout(uint64_t entry_count, uint32_t max_entries,
                             double fill, uint32_t entry_bytes,
                             uint32_t page_size) {
  TreeLayout l;
  l.entry_count = entry_count;
  l.max_entries = max_entries;
  l.entry_bytes = entry_bytes;
  l.slot_bytes = SlotBytesFor(max_entries, entry_bytes, page_size);
  // Mirrors RTree: min_entries = max(2, max_entries * min_fill) with the
  // default min_fill of 0.4, then per_node clamped into [min, max].
  const uint32_t min_entries =
      std::max<uint32_t>(2, static_cast<uint32_t>(max_entries * 0.4));
  uint32_t per_node = std::max<uint32_t>(
      min_entries, static_cast<uint32_t>(max_entries * fill));
  l.per_node = std::min(per_node, max_entries);
  if (entry_count == 0) return l;  // root stays invalid, height 0
  l.level_counts.push_back((entry_count + l.per_node - 1) / l.per_node);
  while (l.level_counts.back() > 1) {
    const uint64_t prev = l.level_counts.back();
    l.level_counts.push_back((prev + l.per_node - 1) / l.per_node);
  }
  l.level_base.resize(l.level_counts.size());
  uint64_t base = 0;
  for (size_t i = 0; i < l.level_counts.size(); ++i) {
    l.level_base[i] = base;
    base += l.level_counts[i];
  }
  l.node_count = base;
  l.height = static_cast<uint32_t>(l.level_counts.size());
  l.root = static_cast<uint32_t>(l.node_count - 1);
  return l;
}

/// Hilbert key of a rectangle center within `domain`, exactly as
/// SortByHilbertKey computes it (bits_per_dim = 16 in every builder).
template <int D>
uint64_t HilbertKeyForRect(const Rect<D>& rect, const Rect<D>& domain) {
  double unit[D];
  for (int d = 0; d < D; ++d) {
    const double extent = domain.hi[d] - domain.lo[d];
    unit[d] =
        extent > 0.0 ? (rect.Center(d) - domain.lo[d]) / extent : 0.0;
  }
  return HilbertKeyFromUnit(unit, /*b=*/16, D);
}

// -------------------------------------------------------- external sort
//
// Fixed-width records [key u64][seq u64][entry blob]; `seq` is the
// record's arrival position, so the (key, seq) order is exactly
// SortByHilbertKey's (key, original index) total order.  Records
// accumulate in a bounded buffer; full buffers sort and spill to run
// files, runs merge with a bounded fan-in until one streaming pass can
// feed the consumer.

class ExternalSorter {
 public:
  ExternalSorter(uint32_t blob_bytes, uint64_t memory_budget,
                 std::string run_prefix)
      : blob_bytes_(blob_bytes),
        rec_bytes_(16 + blob_bytes),
        budget_(memory_budget),
        run_prefix_(std::move(run_prefix)) {
    const uint64_t sort_budget = std::max<uint64_t>(budget_ / 2, 4096);
    records_per_spill_ = std::clamp<uint64_t>(sort_budget / rec_bytes_, 1,
                                              uint64_t{1} << 30);
    buffer_.reserve(static_cast<size_t>(
        std::min<uint64_t>(records_per_spill_ * rec_bytes_, sort_budget)));
  }

  ~ExternalSorter() {
    for (const std::string& run : runs_) std::remove(run.c_str());
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  [[nodiscard]] Status Add(uint64_t key, const char* blob) {
    const uint64_t seq = seq_++;
    buffer_.append(reinterpret_cast<const char*>(&key), 8);
    buffer_.append(reinterpret_cast<const char*>(&seq), 8);
    buffer_.append(blob, blob_bytes_);
    ++buffered_;
    if (buffered_ >= records_per_spill_) return SpillRun();
    return Status::OK();
  }

  /// Streams every record's blob in (key, seq) order.
  [[nodiscard]] Status Drain(
      const std::function<Status(const char*)>& fn) {
    if (runs_.empty()) {
      const std::vector<uint32_t> order = SortedOrder();
      for (uint32_t idx : order) {
        STPQ_RETURN_NOT_OK(fn(buffer_.data() + size_t{idx} * rec_bytes_ + 16));
      }
      buffer_.clear();
      buffered_ = 0;
      return Status::OK();
    }
    if (buffered_ > 0) STPQ_RETURN_NOT_OK(SpillRun());
    const size_t fan_in = static_cast<size_t>(
        std::clamp<uint64_t>(budget_ / (64 * 1024), 2, 64));
    // Reduction rounds: merge groups of fan_in runs into single runs
    // until one streaming pass can take them all.
    while (runs_.size() > fan_in) {
      std::vector<std::string> next;
      for (size_t i = 0; i < runs_.size(); i += fan_in) {
        const size_t end = std::min(runs_.size(), i + fan_in);
        if (end - i == 1) {
          next.push_back(runs_[i]);
          continue;
        }
        std::vector<std::string> group(runs_.begin() + i, runs_.begin() + end);
        std::string merged = NextRunPath();
        STPQ_RETURN_NOT_OK(MergeToRun(group, merged));
        next.push_back(std::move(merged));
      }
      runs_ = std::move(next);
      ++merge_passes_;
    }
    ++merge_passes_;  // the final streaming merge
    std::vector<std::string> last = std::move(runs_);
    runs_.clear();
    return MergeToSink(last, fn);
  }

  [[nodiscard]] uint64_t runs_written() const { return runs_written_; }
  [[nodiscard]] uint64_t merge_passes() const { return merge_passes_; }
  [[nodiscard]] uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  /// Buffered reader over one sorted run file.
  class RunReader {
   public:
    RunReader(std::string path, uint32_t rec_bytes, size_t buf_records)
        : path_(std::move(path)),
          rec_bytes_(rec_bytes),
          in_(path_, std::ios::binary),
          buf_(std::max<size_t>(1, buf_records) * rec_bytes) {}

    [[nodiscard]] Status Open() {
      if (!in_.is_open()) {
        return Status::IoError("cannot open bulk-load run: " + path_);
      }
      return Refill();
    }

    [[nodiscard]] bool HasRecord() const { return pos_ < filled_; }
    [[nodiscard]] const char* Record() const { return buf_.data() + pos_; }
    [[nodiscard]] uint64_t Key() const { return PodAt(0); }
    [[nodiscard]] uint64_t Seq() const { return PodAt(8); }

    [[nodiscard]] Status Advance() {
      pos_ += rec_bytes_;
      if (pos_ >= filled_) return Refill();
      return Status::OK();
    }

    const std::string& path() const { return path_; }

   private:
    uint64_t PodAt(size_t off) const {
      uint64_t v = 0;
      std::memcpy(&v, buf_.data() + pos_ + off, 8);
      return v;
    }

    [[nodiscard]] Status Refill() {
      pos_ = 0;
      filled_ = 0;
      if (in_.eof()) return Status::OK();
      in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      if (in_.bad()) {
        return Status::IoError("bulk-load run read failed: " + path_);
      }
      filled_ = static_cast<size_t>(in_.gcount());
      if (filled_ % rec_bytes_ != 0) {
        return Status::IoError("bulk-load run truncated: " + path_);
      }
      return Status::OK();
    }

    std::string path_;
    uint32_t rec_bytes_;
    std::ifstream in_;
    std::vector<char> buf_;
    size_t pos_ = 0;
    size_t filled_ = 0;
  };

  std::string NextRunPath() {
    return run_prefix_ + ".run" + std::to_string(run_counter_++) + ".tmp";
  }

  std::vector<uint32_t> SortedOrder() const {
    std::vector<uint32_t> order(buffered_);
    for (uint64_t i = 0; i < buffered_; ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    const char* base = buffer_.data();
    const uint32_t rec = rec_bytes_;
    std::sort(order.begin(), order.end(), [base, rec](uint32_t a, uint32_t b) {
      uint64_t ka = 0, kb = 0, sa = 0, sb = 0;
      std::memcpy(&ka, base + size_t{a} * rec, 8);
      std::memcpy(&kb, base + size_t{b} * rec, 8);
      if (ka != kb) return ka < kb;
      std::memcpy(&sa, base + size_t{a} * rec + 8, 8);
      std::memcpy(&sb, base + size_t{b} * rec + 8, 8);
      return sa < sb;
    });
    return order;
  }

  [[nodiscard]] Status SpillRun() {
    const std::vector<uint32_t> order = SortedOrder();
    const std::string path = NextRunPath();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot create bulk-load run: " + path);
    }
    for (uint32_t idx : order) {
      out.write(buffer_.data() + size_t{idx} * rec_bytes_, rec_bytes_);
    }
    out.flush();
    if (!out.good()) {
      std::remove(path.c_str());
      return Status::IoError("bulk-load run write failed: " + path);
    }
    runs_.push_back(path);
    ++runs_written_;
    spilled_bytes_ += buffered_ * uint64_t{rec_bytes_};
    buffer_.clear();
    buffered_ = 0;
    return Status::OK();
  }

  /// K-way merge of sorted runs into `fn`, smallest (key, seq) first.
  [[nodiscard]] Status MergeToSink(
      const std::vector<std::string>& inputs,
      const std::function<Status(const char*)>& fn) {
    const size_t per_reader_bytes = static_cast<size_t>(std::max<uint64_t>(
        rec_bytes_,
        std::min<uint64_t>(budget_ / (2 * std::max<size_t>(1, inputs.size())),
                           uint64_t{4} << 20)));
    std::vector<RunReader> readers;
    readers.reserve(inputs.size());
    for (const std::string& path : inputs) {
      readers.emplace_back(path, rec_bytes_, per_reader_bytes / rec_bytes_);
      STPQ_RETURN_NOT_OK(readers.back().Open());
    }
    struct HeapItem {
      uint64_t key;
      uint64_t seq;
      size_t src;
    };
    // Min-heap on (key, seq) via the standard heap algorithms with a
    // reversed comparator.
    const auto later = [](const HeapItem& a, const HeapItem& b) {
      return a.key != b.key ? a.key > b.key : a.seq > b.seq;
    };
    std::vector<HeapItem> heap;
    heap.reserve(readers.size());
    for (size_t i = 0; i < readers.size(); ++i) {
      if (readers[i].HasRecord()) {
        heap.push_back({readers[i].Key(), readers[i].Seq(), i});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const size_t src = heap.back().src;
      heap.pop_back();
      RunReader& reader = readers[src];
      STPQ_RETURN_NOT_OK(fn(reader.Record() + 16));
      STPQ_RETURN_NOT_OK(reader.Advance());
      if (reader.HasRecord()) {
        heap.push_back({reader.Key(), reader.Seq(), src});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    for (const std::string& path : inputs) std::remove(path.c_str());
    return Status::OK();
  }

  [[nodiscard]] Status MergeToRun(const std::vector<std::string>& inputs,
                                  const std::string& out_path) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot create bulk-load run: " + out_path);
    }
    uint64_t merged_bytes = 0;
    Status st = MergeToSink(inputs, [&](const char* blob) -> Status {
      // The sink gets the blob; the run needs the full record.  The key
      // and seq sit immediately before the blob in the reader's buffer.
      out.write(blob - 16, rec_bytes_);
      if (!out.good()) {
        return Status::IoError("bulk-load run write failed: " + out_path);
      }
      merged_bytes += rec_bytes_;
      return Status::OK();
    });
    if (!st.ok()) {
      std::remove(out_path.c_str());
      return st;
    }
    out.flush();
    if (!out.good()) {
      std::remove(out_path.c_str());
      return Status::IoError("bulk-load run write failed: " + out_path);
    }
    ++runs_written_;
    spilled_bytes_ += merged_bytes;  // intermediate merges re-spill
    return Status::OK();
  }

  const uint32_t blob_bytes_;
  const uint32_t rec_bytes_;
  const uint64_t budget_;
  const std::string run_prefix_;
  uint64_t records_per_spill_ = 0;

  std::string buffer_;
  uint64_t buffered_ = 0;
  uint64_t seq_ = 0;
  std::vector<std::string> runs_;
  uint64_t run_counter_ = 0;
  uint64_t runs_written_ = 0;
  uint64_t merge_passes_ = 0;
  uint64_t spilled_bytes_ = 0;
};

// --------------------------------------------------------- level packer
//
// Consumes leaf entries in sorted order and emits finished node slots
// bottom-up: a node closes the moment it holds `per_node` entries, its
// summary entry (MBR union + Aug merge, exactly RTree::SummarizeNode)
// cascades into the parent level's buffer.  Node ids come from the
// precomputed level bases, so the interleaved close order still writes
// every slot exactly where BulkLoadSorted's level-synchronous pass would.

template <int D, typename Aug, typename Codec>
class LevelPacker {
 public:
  using Entry = typename RTree<D, Aug>::Entry;

  LevelPacker(AtomicFile* out, uint64_t seg_offset, const TreeLayout* layout,
              Codec codec)
      : out_(out),
        seg_offset_(seg_offset),
        layout_(layout),
        codec_(std::move(codec)),
        buffers_(layout->height),
        closed_(layout->height, 0) {
    for (auto& b : buffers_) b.reserve(layout->per_node);
  }

  /// Parses one serialized leaf entry (the sorter blob) and adds it.
  [[nodiscard]] Status AddLeafBlob(const char* blob) {
    ByteReader r(blob, layout_->entry_bytes);
    Entry e;
    bool ok = true;
    for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.lo[d]);
    for (int d = 0; d < D && ok; ++d) ok = r.Pod(&e.rect.hi[d]);
    ok = ok && r.Pod(&e.id) && codec_.Read(r, &e.aug);
    STPQ_CHECK(ok && "bulk-load entry blob decode failed");
    ++leaves_added_;
    return AddEntry(0, std::move(e));
  }

  /// Flushes every partially filled level, cascading summaries upward.
  [[nodiscard]] Status Finish() {
    if (leaves_added_ != layout_->entry_count) {
      return Status::Internal("bulk load fed " +
                              std::to_string(leaves_added_) +
                              " records to a tree laid out for " +
                              std::to_string(layout_->entry_count));
    }
    for (uint32_t level = 0; level < layout_->height; ++level) {
      if (!buffers_[level].empty()) STPQ_RETURN_NOT_OK(CloseNode(level));
    }
    for (uint32_t level = 0; level < layout_->height; ++level) {
      if (closed_[level] != layout_->level_counts[level]) {
        return Status::Internal("bulk load closed " +
                                std::to_string(closed_[level]) +
                                " nodes at level " + std::to_string(level) +
                                ", layout expects " +
                                std::to_string(layout_->level_counts[level]));
      }
    }
    return Status::OK();
  }

 private:
  [[nodiscard]] Status AddEntry(uint32_t level, Entry e) {
    buffers_[level].push_back(std::move(e));
    if (buffers_[level].size() == layout_->per_node) return CloseNode(level);
    return Status::OK();
  }

  [[nodiscard]] Status CloseNode(uint32_t level) {
    std::vector<Entry>& buf = buffers_[level];
    const uint64_t id = layout_->level_base[level] + closed_[level];
    ++closed_[level];
    slot_.clear();
    PutPod<uint16_t>(&slot_, static_cast<uint16_t>(level));
    PutPod<uint16_t>(&slot_, 0);
    PutPod<uint32_t>(&slot_, static_cast<uint32_t>(buf.size()));
    for (const Entry& e : buf) {
      for (int d = 0; d < D; ++d) PutPod(&slot_, e.rect.lo[d]);
      for (int d = 0; d < D; ++d) PutPod(&slot_, e.rect.hi[d]);
      PutPod<uint32_t>(&slot_, e.id);
      codec_.Write(&slot_, e.aug);
    }
    if (slot_.size() > layout_->slot_bytes) {
      return Status::Internal("index node overflows its slot: " +
                              std::to_string(slot_.size()) + " > " +
                              std::to_string(layout_->slot_bytes) + " bytes");
    }
    slot_.resize(layout_->slot_bytes);  // zero-pad to the slot boundary
    STPQ_RETURN_NOT_OK(out_->WriteAt(seg_offset_ + id * layout_->slot_bytes,
                                     slot_.data(), slot_.size()));
    Entry summary;
    summary.id = static_cast<uint32_t>(id);
    summary.rect = buf.front().rect;
    summary.aug = buf.front().aug;
    for (size_t i = 1; i < buf.size(); ++i) {
      summary.rect.Enlarge(buf[i].rect);
      summary.aug = Aug::Merge(summary.aug, buf[i].aug);
    }
    buf.clear();
    if (level + 1 < layout_->height) {
      return AddEntry(level + 1, std::move(summary));
    }
    return Status::OK();  // the root's summary has no parent
  }

  AtomicFile* out_;
  const uint64_t seg_offset_;
  const TreeLayout* layout_;
  const Codec codec_;
  std::vector<std::vector<Entry>> buffers_;
  std::vector<uint64_t> closed_;
  std::string slot_;
  uint64_t leaves_added_ = 0;
};

// ------------------------------------------------------ segment writing

/// Buffered appender for one record segment: accumulates bytes, flushes to
/// the AtomicFile at a running offset, and folds everything written into
/// the segment checksum.  Errors are sticky and surface at Finish.
class SegmentWriter {
 public:
  SegmentWriter(AtomicFile* out, uint64_t offset)
      : out_(out), offset_(offset) {}

  template <typename T>
  void Pod(const T& v) {
    PutPod(&buf_, v);
    MaybeFlush();
  }

  void Str(const std::string& s) {
    PutString(&buf_, s);
    MaybeFlush();
  }

  [[nodiscard]] Status Finish(uint64_t* bytes, uint64_t* checksum) {
    Flush();
    STPQ_RETURN_NOT_OK(status_);
    *bytes = written_;
    *checksum = fnv_.Digest();
    return Status::OK();
  }

 private:
  void MaybeFlush() {
    if (buf_.size() >= kStreamBufferBytes) Flush();
  }

  void Flush() {
    if (buf_.empty()) return;
    if (status_.ok()) {
      status_ = out_->WriteAt(offset_ + written_, buf_.data(), buf_.size());
      fnv_.Update(buf_.data(), buf_.size());
      written_ += buf_.size();
    }
    buf_.clear();
  }

  AtomicFile* out_;
  const uint64_t offset_;
  std::string buf_;
  Status status_ = Status::OK();
  Fnv1a64Stream fnv_;
  uint64_t written_ = 0;
};

/// Checksums `[offset, offset + bytes)` of the temp file by reading it
/// back in chunks — node slots are written out of level order, so their
/// segment digest is only computable after the fact.  Doubles as a
/// read-back verification of every node write.
Result<uint64_t> ChecksumRange(const AtomicFile& out, uint64_t offset,
                               uint64_t bytes) {
  Fnv1a64Stream fnv;
  std::vector<char> buf(kStreamBufferBytes);
  uint64_t done = 0;
  while (done < bytes) {
    const uint64_t n = std::min<uint64_t>(buf.size(), bytes - done);
    STPQ_RETURN_NOT_OK(out.ReadAt(offset + done, buf.data(), n));
    fnv.Update(buf.data(), static_cast<size_t>(n));
    done += n;
  }
  return fnv.Digest();
}

// ------------------------------------------------------- survey + plan

struct TableSurvey {
  uint32_t universe = 0;
  uint64_t feature_count = 0;
  uint32_t vocab_terms = 0;
  uint64_t vocab_bytes = 0;  ///< vocabulary segment payload size
  uint64_t table_bytes = 0;  ///< feature_table segment payload size
  Rect4 srt_domain = Rect4::Empty();
  Rect2 ir2_domain = Rect2::Empty();
};

struct Survey {
  uint64_t object_count = 0;
  uint64_t objects_bytes = 0;
  Rect2 object_domain = Rect2::Empty();
  uint32_t table_count = 0;
  std::vector<TableSurvey> tables;
};

/// First pass: counts, serialized segment sizes, and sort domains.  The
/// domains fold in dataset order, matching the in-memory builders'
/// ComputeDomain folds bit for bit.
Status RunSurvey(const std::string& dataset_path,
                 const IndexBuildParams& params, Survey* survey) {
  Result<DatasetBinaryScanner> scan_r = DatasetBinaryScanner::Open(dataset_path);
  if (!scan_r.ok()) return scan_r.status();
  DatasetBinaryScanner scan = scan_r.TakeValue();
  survey->object_count = scan.object_count();
  survey->objects_bytes = 8;
  STPQ_RETURN_NOT_OK(scan.ForEachObject([&](const DataObject& o) {
    survey->objects_bytes += 4 + 8 + 8 + 4 + o.name.size();
    survey->object_domain.EnlargePoint({o.pos.x, o.pos.y});
  }));
  Result<uint32_t> tables_r = scan.ReadTableCount();
  if (!tables_r.ok()) return tables_r.status();
  survey->table_count = tables_r.value();
  if (survey->table_count > kMaxTables) {
    return Status::InvalidArgument("too many feature tables to persist");
  }
  survey->tables.resize(survey->table_count);
  for (uint32_t i = 0; i < survey->table_count; ++i) {
    TableSurvey& t = survey->tables[i];
    t.vocab_bytes = 4;
    STPQ_RETURN_NOT_OK(scan.ForEachVocabTerm([&](const std::string& term) {
      ++t.vocab_terms;
      t.vocab_bytes += 4 + term.size();
    }));
    Result<DatasetBinaryScanner::TableHeader> h = scan.ReadTableHeader();
    if (!h.ok()) return h.status();
    t.universe = h.value().universe;
    t.feature_count = h.value().feature_count;
    if (t.feature_count > kMaxRecordCount) {
      return Status::InvalidArgument("feature table too large to persist");
    }
    const uint64_t blocks = (t.universe + 63) / 64;
    t.table_bytes = 4 + 8;
    const bool srt = params.index_kind == FeatureIndexKind::kSrt;
    STPQ_RETURN_NOT_OK(scan.ForEachFeature(
        t.universe, t.feature_count, [&](const FeatureObject& f) {
          t.table_bytes += 4 + 8 + 8 + 8 + 4 + 8 * blocks + 4 + f.name.size();
          if (srt) {
            const HilbertValue hv = EncodeKeywords(f.keywords);
            t.srt_domain.EnlargePoint(
                {f.pos.x, f.pos.y, f.score, hv.ToUnitDouble()});
          } else {
            t.ir2_domain.EnlargePoint({f.pos.x, f.pos.y});
          }
        }));
  }
  return Status::OK();
}

struct SegmentPlan {
  uint32_t type = 0;
  uint32_t ordinal = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t first_page = 0;
  uint64_t slot_count = 0;
  uint32_t slot_bytes = 0;
  uint64_t checksum = 0;  // filled during the content pass
  bool page_aligned = false;
};

constexpr uint64_t kTreeMetaBytes = 36;  // AppendTreeMeta, empty free list

struct BuildPlan {
  std::vector<SegmentPlan> segments;
  TreeLayout object_layout;
  std::vector<TreeLayout> feature_layouts;
  uint64_t header_bytes = 0;
  uint64_t file_end = 0;
  // Catalog positions (segment order is fixed by the in-memory writer).
  size_t objects_seg = 0;
  size_t obj_meta_seg = 0;
  size_t obj_nodes_seg = 0;
  size_t VocabSeg(uint32_t i) const { return 1 + 2 * size_t{i}; }
  size_t TableSeg(uint32_t i) const { return 2 + 2 * size_t{i}; }
  size_t FeatMetaSeg(uint32_t i) const {
    return obj_nodes_seg + 1 + 2 * size_t{i};
  }
  size_t FeatNodesSeg(uint32_t i) const {
    return obj_nodes_seg + 2 + 2 * size_t{i};
  }
};

/// Lays out every segment at its final offset, exactly reproducing the
/// in-memory writer's catalog order and alignment walk.
Status ComputePlan(const Survey& survey, const IndexBuildParams& params,
                   BuildPlan* plan) {
  const uint32_t page = params.page_size_bytes;
  const uint32_t T = survey.table_count;
  auto& segs = plan->segments;
  segs.reserve(3 + 4 * size_t{T});

  plan->objects_seg = segs.size();
  segs.push_back({kSegObjects, 0, 0, survey.objects_bytes});
  for (uint32_t i = 0; i < T; ++i) {
    segs.push_back({kSegVocabulary, i, 0, survey.tables[i].vocab_bytes});
    segs.push_back({kSegFeatureTable, i, 0, survey.tables[i].table_bytes});
  }

  // Object tree geometry.
  plan->object_layout = ComputeTreeLayout(
      survey.object_count, FanOutForPage(page, 2, 0), params.fill,
      EntryBytes(2, 0), page);
  if (plan->object_layout.node_count > kMaxNodeCount) {
    return Status::InvalidArgument("object tree too large to persist");
  }
  plan->obj_meta_seg = segs.size();
  segs.push_back({kSegObjectTreeMeta, 0, 0, kTreeMetaBytes});
  plan->obj_nodes_seg = segs.size();
  {
    SegmentPlan nodes{kSegObjectTreeNodes, 0, 0,
                      plan->object_layout.node_count *
                          uint64_t{plan->object_layout.slot_bytes}};
    nodes.first_page = 0;
    nodes.slot_count = plan->object_layout.node_count;
    nodes.slot_bytes = plan->object_layout.slot_bytes;
    nodes.page_aligned = true;
    segs.push_back(nodes);
  }

  plan->feature_layouts.resize(T);
  for (uint32_t i = 0; i < T; ++i) {
    const TableSurvey& t = survey.tables[i];
    TreeLayout& layout = plan->feature_layouts[i];
    switch (params.index_kind) {
      case FeatureIndexKind::kSrt: {
        const uint32_t aug_bytes = 8 + 8 * ((t.universe + 63) / 64);
        layout = ComputeTreeLayout(t.feature_count,
                                   FanOutForPage(page, 4, aug_bytes),
                                   params.fill, EntryBytes(4, aug_bytes), page);
        break;
      }
      case FeatureIndexKind::kIr2: {
        const uint32_t sig_bits =
            EffectiveIr2SignatureBits(params.signature_bits, t.universe);
        // Fan-out charges the raw signature bytes; the serialized payload
        // is word-padded (Ir2AugCodec) — the same split LoadIndexFile uses.
        const uint32_t fanout_aug = 8 + sig_bits / 8;
        Ir2AugCodec codec{sig_bits};
        layout = ComputeTreeLayout(
            t.feature_count, FanOutForPage(page, 2, fanout_aug), params.fill,
            EntryBytes(2, codec.payload_bytes()), page);
        break;
      }
    }
    if (layout.node_count > kMaxNodeCount) {
      return Status::InvalidArgument("feature tree too large to persist");
    }
    segs.push_back({kSegFeatureTreeMeta, i, 0, kTreeMetaBytes});
    SegmentPlan nodes{kSegFeatureTreeNodes, i, 0,
                      layout.node_count * uint64_t{layout.slot_bytes}};
    nodes.first_page = kIndexPageStride * (uint64_t{i} + 1);
    nodes.slot_count = layout.node_count;
    nodes.slot_bytes = layout.slot_bytes;
    nodes.page_aligned = true;
    segs.push_back(nodes);
  }

  plan->header_bytes =
      kSuperblockBytes + segs.size() * kCatalogEntryBytes;
  uint64_t cursor = plan->header_bytes;
  for (SegmentPlan& s : segs) {
    if (s.page_aligned) cursor = AlignUp(cursor, page);
    s.offset = cursor;
    cursor += s.bytes;
  }
  plan->file_end = plan->header_bytes;
  for (const SegmentPlan& s : segs) {
    if (s.bytes > 0) {
      plan->file_end = std::max(plan->file_end, s.offset + s.bytes);
    }
  }
  return Status::OK();
}

// -------------------------------------------------------- content pass

Status DatasetDrifted(const std::string& dataset_path) {
  return Status::IoError("dataset changed between bulk-load passes: " +
                         dataset_path);
}

std::string RunPrefix(const std::string& index_path,
                      const std::string& temp_dir, uint32_t ordinal) {
  std::string base = index_path;
  if (!temp_dir.empty()) {
    const size_t slash = index_path.find_last_of('/');
    base = temp_dir + "/" +
           (slash == std::string::npos ? index_path
                                       : index_path.substr(slash + 1));
  }
  return base + ".s" + std::to_string(ordinal);
}

template <int D, typename Aug, typename Codec>
void SerializeEntryBlob(const typename RTree<D, Aug>::Entry& e,
                        const Codec& codec, std::string* out) {
  out->clear();
  for (int d = 0; d < D; ++d) PutPod(out, e.rect.lo[d]);
  for (int d = 0; d < D; ++d) PutPod(out, e.rect.hi[d]);
  PutPod<uint32_t>(out, e.id);
  codec.Write(out, e.aug);
}

/// Drains a sorter into a packer, then writes the tree-metadata segment
/// and back-fills both segments' checksums.
template <int D, typename Aug, typename Codec>
Status PackTree(ExternalSorter* sorter, AtomicFile* out,
                const TreeLayout& layout, const Codec& codec,
                SegmentPlan* meta_seg, SegmentPlan* nodes_seg) {
  LevelPacker<D, Aug, Codec> packer(out, nodes_seg->offset, &layout, codec);
  STPQ_RETURN_NOT_OK(sorter->Drain(
      [&packer](const char* blob) { return packer.AddLeafBlob(blob); }));
  STPQ_RETURN_NOT_OK(packer.Finish());

  std::string meta;
  AppendTreeMeta(&meta, layout.root, layout.height, layout.entry_count,
                 static_cast<uint32_t>(layout.node_count), layout.max_entries,
                 codec.aug_bits(), codec.aug_words(), {});
  STPQ_CHECK(meta.size() == meta_seg->bytes);
  STPQ_RETURN_NOT_OK(out->WriteAt(meta_seg->offset, meta.data(), meta.size()));
  meta_seg->checksum = Fnv1a64(meta.data(), meta.size());

  Result<uint64_t> sum = ChecksumRange(*out, nodes_seg->offset,
                                       nodes_seg->bytes);
  if (!sum.ok()) return sum.status();
  nodes_seg->checksum = sum.value();
  return Status::OK();
}

}  // namespace

Result<ExternalBuildStats> BuildIndexFileExternal(
    const std::string& dataset_path, const std::string& index_path,
    const ExternalBuildOptions& options) {
  const IndexBuildParams& params = options.params;
  if (params.bulk_load != BulkLoadKind::kHilbert) {
    return Status::InvalidArgument(
        "external build supports only the hilbert bulk-load order");
  }
  if (params.page_size_bytes < kMinExternalPageSize) {
    return Status::InvalidArgument(
        "page_size_bytes must be >= " + std::to_string(kMinExternalPageSize));
  }
  if (options.memory_budget_bytes < kMinMemoryBudget) {
    return Status::InvalidArgument(
        "memory_budget_bytes must be at least " +
        std::to_string(kMinMemoryBudget));
  }

  ExternalBuildStats stats;

  // Phase 0: survey the dataset (counts, segment sizes, sort domains).
  Survey survey;
  {
    STPQ_TRACE_SPAN(TraceEventType::kBuildPhase, 0, 0);
    STPQ_RETURN_NOT_OK(RunSurvey(dataset_path, params, &survey));
  }
  if (survey.object_count > kMaxRecordCount) {
    return Status::InvalidArgument("too many objects to persist");
  }
  stats.objects = survey.object_count;
  stats.tables = survey.table_count;
  for (const TableSurvey& t : survey.tables) stats.features += t.feature_count;

  BuildPlan plan;
  STPQ_RETURN_NOT_OK(ComputePlan(survey, params, &plan));

  Result<AtomicFile> out_r = AtomicFile::Create(index_path);
  if (!out_r.ok()) return out_r.status();
  AtomicFile out = out_r.TakeValue();

  const uint64_t budget = options.memory_budget_bytes;
  uint32_t sorter_ordinal = 0;
  auto account = [&stats](const ExternalSorter& sorter) {
    stats.runs_written += sorter.runs_written();
    stats.merge_passes += sorter.merge_passes();
    stats.spilled_bytes += sorter.spilled_bytes();
  };

  // The content pass re-scans the dataset once; one sequential scanner
  // feeds phase 1 (objects) and phase 2 (tables) in file order.
  Result<DatasetBinaryScanner> scan_r =
      DatasetBinaryScanner::Open(dataset_path);
  if (!scan_r.ok()) return scan_r.status();
  DatasetBinaryScanner scan = scan_r.TakeValue();
  if (scan.object_count() != survey.object_count) {
    return DatasetDrifted(dataset_path);
  }

  // Phase 1: stream the objects segment and pack the object tree.
  {
    STPQ_TRACE_SPAN(TraceEventType::kBuildPhase, 1, survey.object_count);
    SegmentPlan& objects_seg = plan.segments[plan.objects_seg];
    SegmentWriter seg(&out, objects_seg.offset);
    ExternalSorter sorter(
        plan.object_layout.entry_bytes, budget,
        RunPrefix(index_path, options.temp_dir, sorter_ordinal++));
    seg.Pod<uint64_t>(survey.object_count);
    uint64_t position = 0;
    std::string blob;
    Status feed = Status::OK();
    STPQ_RETURN_NOT_OK(scan.ForEachObject([&](const DataObject& o) {
      if (!feed.ok()) return;
      // Ids are reassigned to positions, as Engine::Build does before Save.
      const uint32_t id = static_cast<uint32_t>(position++);
      seg.Pod<uint32_t>(id);
      seg.Pod(o.pos.x);
      seg.Pod(o.pos.y);
      seg.Str(o.name);
      RTree<2, NoAug>::Entry e{PointRect(o.pos), id, {}};
      SerializeEntryBlob<2, NoAug>(e, NoAugCodec{}, &blob);
      feed = sorter.Add(HilbertKeyForRect(e.rect, survey.object_domain),
                        blob.data());
    }));
    STPQ_RETURN_NOT_OK(feed);
    if (position != survey.object_count) return DatasetDrifted(dataset_path);
    uint64_t written = 0;
    STPQ_RETURN_NOT_OK(seg.Finish(&written, &objects_seg.checksum));
    if (written != objects_seg.bytes) return DatasetDrifted(dataset_path);

    STPQ_RETURN_NOT_OK((PackTree<2, NoAug>(
        &sorter, &out, plan.object_layout, NoAugCodec{},
        &plan.segments[plan.obj_meta_seg],
        &plan.segments[plan.obj_nodes_seg])));
    account(sorter);
  }

  // Phase 2: per table, stream vocabulary + feature records and pack the
  // feature tree.  One sorter lives at a time, so each gets the whole
  // budget.
  {
    STPQ_TRACE_SPAN(TraceEventType::kBuildPhase, 2, stats.features);
    Result<uint32_t> tables_r = scan.ReadTableCount();
    if (!tables_r.ok()) return tables_r.status();
    if (tables_r.value() != survey.table_count) {
      return DatasetDrifted(dataset_path);
    }
    for (uint32_t i = 0; i < survey.table_count; ++i) {
      const TableSurvey& t = survey.tables[i];

      SegmentPlan& vocab_seg = plan.segments[plan.VocabSeg(i)];
      SegmentWriter vocab(&out, vocab_seg.offset);
      vocab.Pod<uint32_t>(t.vocab_terms);
      uint32_t terms = 0;
      STPQ_RETURN_NOT_OK(scan.ForEachVocabTerm([&](const std::string& term) {
        ++terms;
        vocab.Str(term);
      }));
      if (terms != t.vocab_terms) return DatasetDrifted(dataset_path);
      uint64_t written = 0;
      STPQ_RETURN_NOT_OK(vocab.Finish(&written, &vocab_seg.checksum));
      if (written != vocab_seg.bytes) return DatasetDrifted(dataset_path);

      Result<DatasetBinaryScanner::TableHeader> h = scan.ReadTableHeader();
      if (!h.ok()) return h.status();
      if (h.value().universe != t.universe ||
          h.value().feature_count != t.feature_count) {
        return DatasetDrifted(dataset_path);
      }

      SegmentPlan& table_seg = plan.segments[plan.TableSeg(i)];
      SegmentWriter table(&out, table_seg.offset);
      table.Pod<uint32_t>(t.universe);
      table.Pod<uint64_t>(t.feature_count);

      const TreeLayout& layout = plan.feature_layouts[i];
      ExternalSorter sorter(
          layout.entry_bytes, budget,
          RunPrefix(index_path, options.temp_dir, sorter_ordinal++));
      const bool srt = params.index_kind == FeatureIndexKind::kSrt;
      SrtAugCodec srt_codec{t.universe};
      const uint32_t sig_bits =
          EffectiveIr2SignatureBits(params.signature_bits, t.universe);
      Ir2AugCodec ir2_codec{sig_bits};
      const SignatureScheme scheme(sig_bits, params.signature_hashes);

      uint64_t position = 0;
      std::string blob;
      Status feed = Status::OK();
      STPQ_RETURN_NOT_OK(scan.ForEachFeature(
          t.universe, t.feature_count, [&](const FeatureObject& f) {
            if (!feed.ok()) return;
            // FeatureTable reassigns ids to positions on construction.
            const uint32_t id = static_cast<uint32_t>(position++);
            table.Pod<uint32_t>(id);
            table.Pod(f.pos.x);
            table.Pod(f.pos.y);
            table.Pod(f.score);
            const std::vector<uint64_t>& blocks = f.keywords.blocks();
            table.Pod<uint32_t>(static_cast<uint32_t>(blocks.size()));
            for (uint64_t b : blocks) table.Pod(b);
            table.Str(f.name);
            if (srt) {
              HilbertValue hv = EncodeKeywords(f.keywords);
              const std::array<double, 4> p{f.pos.x, f.pos.y, f.score,
                                            hv.ToUnitDouble()};
              RTree<4, SrtAug>::Entry e{
                  Rect4::FromPoint(p), id,
                  SrtAug{f.score, std::move(hv), f.keywords}};
              SerializeEntryBlob<4, SrtAug>(e, srt_codec, &blob);
              feed = sorter.Add(HilbertKeyForRect(e.rect, t.srt_domain),
                                blob.data());
            } else {
              RTree<2, Ir2Aug>::Entry e{
                  PointRect(f.pos), id,
                  Ir2Aug{f.score, scheme.SetSignature(f.keywords)}};
              SerializeEntryBlob<2, Ir2Aug>(e, ir2_codec, &blob);
              feed = sorter.Add(HilbertKeyForRect(e.rect, t.ir2_domain),
                                blob.data());
            }
          }));
      STPQ_RETURN_NOT_OK(feed);
      if (position != t.feature_count) return DatasetDrifted(dataset_path);
      STPQ_RETURN_NOT_OK(table.Finish(&written, &table_seg.checksum));
      if (written != table_seg.bytes) return DatasetDrifted(dataset_path);

      if (srt) {
        STPQ_RETURN_NOT_OK((PackTree<4, SrtAug>(
            &sorter, &out, layout, srt_codec,
            &plan.segments[plan.FeatMetaSeg(i)],
            &plan.segments[plan.FeatNodesSeg(i)])));
      } else {
        STPQ_RETURN_NOT_OK((PackTree<2, Ir2Aug>(
            &sorter, &out, layout, ir2_codec,
            &plan.segments[plan.FeatMetaSeg(i)],
            &plan.segments[plan.FeatNodesSeg(i)])));
      }
      account(sorter);
    }
  }

  // Phase 3: header (superblock + catalog with the final checksums),
  // exact file size, durable commit.
  {
    STPQ_TRACE_SPAN(TraceEventType::kBuildPhase, 3, 0);
    std::string header;
    header.reserve(plan.header_bytes);
    AppendSuperblock(&header, params.page_size_bytes,
                     static_cast<uint32_t>(params.index_kind),
                     static_cast<uint32_t>(params.bulk_load),
                     params.signature_bits, params.signature_hashes,
                     params.fill, survey.object_count, survey.table_count,
                     static_cast<uint32_t>(plan.segments.size()));
    for (const SegmentPlan& s : plan.segments) {
      CatalogEntry e;
      e.type = s.type;
      e.ordinal = s.ordinal;
      e.offset = s.offset;
      e.bytes = s.bytes;
      e.first_page = s.first_page;
      e.slot_count = s.slot_count;
      e.slot_bytes = s.slot_bytes;
      e.checksum = s.checksum;
      AppendCatalogEntry(&header, e);
    }
    STPQ_CHECK(header.size() == plan.header_bytes);
    STPQ_RETURN_NOT_OK(out.Truncate(plan.file_end));
    STPQ_RETURN_NOT_OK(out.WriteAt(0, header.data(), header.size()));
    STPQ_RETURN_NOT_OK(out.Commit());
  }
  stats.output_bytes = plan.file_end;

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics
      .GetCounter("stpq_bulk_runs_written_total",
                  "Sorted run files written by external bulk loads")
      .Increment(stats.runs_written);
  metrics
      .GetCounter("stpq_bulk_merge_passes_total",
                  "Merge passes performed by external bulk loads")
      .Increment(stats.merge_passes);
  metrics
      .GetCounter("stpq_bulk_spilled_bytes_total",
                  "Bytes spilled to sorted runs by external bulk loads")
      .Increment(stats.spilled_bytes);
  return stats;
}

}  // namespace stpq
