// Time-series metrics recording (DESIGN.md §18).
//
// Every surface rendered from MetricsRegistry so far is cumulative: a
// /metrics scrape or a --metrics file shows counters since process start,
// so a long-running workload's *current* behavior (this second's QPS, this
// second's p99) is invisible without an external scraper doing the
// differencing.  MetricsRecorder does the differencing in-process: a
// background sampler snapshots the whole registry every interval_ms and
// keeps the per-interval deltas — counter differences, gauge values, and
// histogram bucket deltas (LatencyHistogram::Delta) — in a fixed-capacity
// ring.  The admin server's /varz endpoint and the CLI's
// --metrics-interval flag read the ring; nothing here ever touches a
// query thread, so an armed recorder costs the query path exactly zero.
//
// Consistency: a sample may straddle concurrent updates by one event per
// instrument (see MetricsRegistry::Snapshot); interval edges are steady-
// clock timestamps taken on the sampler thread.  Deltas saturate at zero
// (SaturatingCounterDelta / LatencyHistogram::Delta), so a registry reset
// between samples yields an empty interval instead of garbage.
#ifndef STPQ_OBS_TIMESERIES_H_
#define STPQ_OBS_TIMESERIES_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "util/thread_annotations.h"

namespace stpq {

/// Sampler knobs.
struct MetricsRecorderOptions {
  /// Milliseconds between background samples.
  uint64_t interval_ms = 250;
  /// Retained interval samples (ring; oldest dropped first).
  size_t capacity = 512;
  /// Registry to sample; nullptr = MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
};

/// One interval: everything that changed between two consecutive registry
/// snapshots, plus the wall-time edges of the interval.
struct IntervalSample {
  /// Interval edges in milliseconds since the recorder's Start() (steady
  /// clock; monotone across samples).
  double start_ms = 0.0;
  double end_ms = 0.0;

  std::map<std::string, uint64_t> counter_deltas;
  /// Gauge values at the end edge (gauges are levels, not totals).
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHistogram> histogram_deltas;

  double seconds() const { return (end_ms - start_ms) / 1000.0; }

  /// Delta of a counter over the interval (0 when absent).
  uint64_t CounterDelta(const std::string& name) const;

  /// Counter delta per second over the interval (0 for empty intervals).
  double Rate(const std::string& name) const;

  /// Histogram of samples recorded during the interval, or nullptr.
  const LatencyHistogram* Histogram(const std::string& name) const;

  /// Interval queries/sec (stpq_queries_total).
  double QueriesPerSec() const { return Rate("stpq_queries_total"); }

  /// Buffer-pool hit rate over the interval: hits / (hits + reads) from
  /// stpq_buffer_hits_total and stpq_pages_read_total; 0 when idle.
  double PoolHitRate() const;
};

/// Background sampler over a MetricsRegistry.  Start() spawns the sampler
/// thread; SampleNow() is public so tests (and the CLI's final flush)
/// can drive interval boundaries deterministically.
class MetricsRecorder {
 public:
  explicit MetricsRecorder(MetricsRecorderOptions options = {});
  ~MetricsRecorder();

  MetricsRecorder(const MetricsRecorder&) = delete;
  MetricsRecorder& operator=(const MetricsRecorder&) = delete;

  /// Takes the baseline snapshot and spawns the sampler thread.  Calling
  /// Start on a running recorder is a no-op.
  void Start();

  /// Stops and joins the sampler thread; retained samples stay readable.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  uint64_t interval_ms() const { return options_.interval_ms; }

  /// Closes the current interval right now: snapshots the registry and
  /// appends the delta against the previous snapshot.  Called by the
  /// sampler thread every interval_ms; safe to call concurrently with it.
  void SampleNow() STPQ_EXCLUDES(mu_);

  /// Retained samples, oldest first.  `window_s` > 0 keeps only samples
  /// whose end edge lies within the trailing window.
  std::vector<IntervalSample> Recent(double window_s = 0.0) const
      STPQ_EXCLUDES(mu_);

  size_t sample_count() const STPQ_EXCLUDES(mu_);

 private:
  void SamplerLoop();

  /// Milliseconds since Start() on the steady clock.
  double NowMs() const;

  const MetricsRecorderOptions options_;
  MetricsRegistry* registry_;  ///< never null after construction

  mutable Mutex mu_;
  std::deque<IntervalSample> ring_ STPQ_GUARDED_BY(mu_);
  MetricsSnapshot last_snapshot_ STPQ_GUARDED_BY(mu_);
  double last_edge_ms_ STPQ_GUARDED_BY(mu_) = 0.0;
  bool have_baseline_ STPQ_GUARDED_BY(mu_) = false;

  std::atomic<bool> running_{false};
  std::thread sampler_;
  /// Companion pair for the sampler's interruptible sleep; guards only
  /// the stop_requested_ flag below (std::condition_variable needs the
  /// raw std::mutex, so stpq::Mutex cannot be used here).
  std::mutex wake_mu_;  // stpq-lint: allow(mutex-guard) condvar companion
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;  ///< guarded by wake_mu_
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace stpq

#endif  // STPQ_OBS_TIMESERIES_H_
