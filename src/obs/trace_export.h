// Chrome trace-event export for collected trace rings (DESIGN.md §14).
//
// RenderChromeTrace produces the JSON object format of the Trace Event
// specification — {"traceEvents": [...], ...} — loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing.  Spans render as B/E pairs,
// instants as "i" events; timestamps are microseconds on one shared
// steady-clock timeline, pid is fixed and tid is the ring's thread
// ordinal.  The renderer sanitizes ring truncation: end events whose
// begin was dropped are skipped, and spans left open at the end of a ring
// are closed at the ring's last timestamp, so the output always balances.
// The total drop count is exported under otherData.droppedEvents.
#ifndef STPQ_OBS_TRACE_EXPORT_H_
#define STPQ_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/trace.h"
#include "util/result.h"

namespace stpq {

/// Renders `collection` as a Chrome trace-event JSON document.
std::string RenderChromeTrace(const TraceCollection& collection);

/// Renders and writes to `path`; fails with an IO error on fopen/write
/// problems.
[[nodiscard]] Status WriteChromeTraceFile(const TraceCollection& collection,
                            const std::string& path);

/// Folds slow-query capture records into a collection renderable by
/// RenderChromeTrace: each record's events keep their original thread
/// ordinal grouping.
TraceCollection CollectionFromSlowQueries(
    const std::vector<SlowQueryRecord>& records, uint64_t dropped);

}  // namespace stpq

#endif  // STPQ_OBS_TRACE_EXPORT_H_
