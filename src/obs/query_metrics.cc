#include "obs/query_metrics.h"

#include <string>

namespace stpq {

// stpq-lint: allow(hot-alloc) leaky singleton: one allocation per process
QueryMetrics& QueryMetrics::Global() {
  static QueryMetrics* metrics = new QueryMetrics(MetricsRegistry::Global());
  return *metrics;
}

// stpq-lint: allow(hot-alloc) runs once, registering metric names at startup
QueryMetrics::QueryMetrics(MetricsRegistry& registry)
    : queries_total(registry.GetCounter(
          "stpq_queries_total", "Queries executed to completion")),
      rejected_total(registry.GetCounter(
          "stpq_queries_rejected_total",
          "Queries rejected by validation before execution")),
      pages_read_total(registry.GetCounter(
          "stpq_pages_read_total", "Simulated page reads (buffer misses)")),
      buffer_hits_total(registry.GetCounter(
          "stpq_buffer_hits_total", "Buffer-pool hits (no I/O charged)")),
      heap_pushes_total(registry.GetCounter(
          "stpq_heap_pushes_total", "Entries pushed on any search heap")),
      features_retrieved_total(registry.GetCounter(
          "stpq_features_retrieved_total",
          "Feature objects retrieved in sorted score order")),
      combinations_emitted_total(registry.GetCounter(
          "stpq_combinations_emitted_total",
          "Combinations emitted by Algorithm 4's iterator")),
      objects_scored_total(registry.GetCounter(
          "stpq_objects_scored_total", "Data objects scored or fetched")),
      voronoi_cells_total(registry.GetCounter(
          "stpq_voronoi_cells_total", "Voronoi cells computed (NN variant)")),
      voronoi_cache_hits_total(registry.GetCounter(
          "stpq_voronoi_cache_hits_total",
          "Voronoi cells served from the shared cache")),
      object_tree_nodes_visited_total(registry.GetCounter(
          "stpq_object_tree_nodes_visited_total",
          "Object R-tree nodes expanded by query traversals")),
      object_tree_entries_pruned_total(registry.GetCounter(
          "stpq_object_tree_entries_pruned_total",
          "Object R-tree child entries pruned during traversal")),
      object_tree_entries_descended_total(registry.GetCounter(
          "stpq_object_tree_entries_descended_total",
          "Object R-tree child entries descended into or accepted")),
      feature_tree_nodes_visited_total(registry.GetCounter(
          "stpq_feature_tree_nodes_visited_total",
          "Feature-index nodes expanded by query traversals")),
      feature_tree_entries_pruned_total(registry.GetCounter(
          "stpq_feature_tree_entries_pruned_total",
          "Feature-index child entries pruned during traversal")),
      feature_tree_entries_descended_total(registry.GetCounter(
          "stpq_feature_tree_entries_descended_total",
          "Feature-index child entries descended into or accepted")),
      query_cpu_ms(registry.GetHistogram(
          "stpq_query_cpu_ms", "Per-query CPU time in milliseconds")),
      object_pool_resident_pages(registry.GetGauge(
          "stpq_object_pool_resident_pages",
          "Pages resident in the object-index buffer pool")),
      feature_pool_resident_pages(registry.GetGauge(
          "stpq_feature_pool_resident_pages",
          "Pages resident in the shared feature-index buffer pool")),
      voronoi_cache_cells(registry.GetGauge(
          "stpq_voronoi_cache_cells",
          "Cells memoized in the cross-query Voronoi cache")) {
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    const char* phase = QueryPhaseName(static_cast<QueryPhase>(i));
    phase_us_total[i] = &registry.GetCounter(
        std::string("stpq_phase_") + phase + "_us_total",
        std::string("Self-time spent in the ") + phase +
            " phase, microseconds");
  }
}

void QueryMetrics::RecordQuery(const QueryStats& stats) {
  queries_total.Increment();
  pages_read_total.Increment(stats.TotalReads());
  buffer_hits_total.Increment(stats.buffer_hits);
  heap_pushes_total.Increment(stats.heap_pushes);
  features_retrieved_total.Increment(stats.features_retrieved);
  combinations_emitted_total.Increment(stats.combinations_emitted);
  objects_scored_total.Increment(stats.objects_scored);
  voronoi_cells_total.Increment(stats.voronoi_cells);
  voronoi_cache_hits_total.Increment(stats.voronoi_cache_hits);
  object_tree_nodes_visited_total.Increment(
      stats.traversal.object_tree.TotalVisited());
  object_tree_entries_pruned_total.Increment(
      stats.traversal.object_tree.TotalPruned());
  object_tree_entries_descended_total.Increment(
      stats.traversal.object_tree.TotalDescended());
  feature_tree_nodes_visited_total.Increment(stats.traversal.FeatureVisited());
  feature_tree_entries_pruned_total.Increment(stats.traversal.FeaturePruned());
  feature_tree_entries_descended_total.Increment(
      stats.traversal.FeatureDescended());
  query_cpu_ms.Record(stats.cpu_ms);
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    phase_us_total[i]->Increment(
        static_cast<uint64_t>(stats.phase_ms[i] * 1000.0));
  }
}

void QueryMetrics::RecordRejected() { rejected_total.Increment(); }

}  // namespace stpq
