// The engine's standard metric set over the global MetricsRegistry.
//
// One QueryMetrics instance caches the instrument handles for every
// stpq_* metric the engine exports, so the per-query feeding cost is a
// fixed set of relaxed atomic adds — no registry lookups, no locks, no
// allocation.  Engine::Execute calls RecordQuery() with the final
// QueryStats of each completed query (and RecordRejected() for queries
// that fail validation); the engine's resource gauges (buffer-pool
// residency, Voronoi cache size) are refreshed alongside.
#ifndef STPQ_OBS_QUERY_METRICS_H_
#define STPQ_OBS_QUERY_METRICS_H_

#include "obs/metrics_registry.h"
#include "util/metrics.h"

namespace stpq {

class QueryMetrics {
 public:
  /// Handles into MetricsRegistry::Global() (registered on first call).
  static QueryMetrics& Global();

  /// Instruments over `registry` (tests can use a private registry).
  explicit QueryMetrics(MetricsRegistry& registry);

  /// Folds one completed query's counters into the process totals.
  void RecordQuery(const QueryStats& stats);

  /// Counts a query rejected by validation.
  void RecordRejected();

  Counter& queries_total;
  Counter& rejected_total;
  Counter& pages_read_total;
  Counter& buffer_hits_total;
  Counter& heap_pushes_total;
  Counter& features_retrieved_total;
  Counter& combinations_emitted_total;
  Counter& objects_scored_total;
  Counter& voronoi_cells_total;
  Counter& voronoi_cache_hits_total;
  // Traversal-profile totals (tentpole of DESIGN.md §14): node expansions
  // and per-entry prune/descend verdicts, split object tree vs feature
  // trees.
  Counter& object_tree_nodes_visited_total;
  Counter& object_tree_entries_pruned_total;
  Counter& object_tree_entries_descended_total;
  Counter& feature_tree_nodes_visited_total;
  Counter& feature_tree_entries_pruned_total;
  Counter& feature_tree_entries_descended_total;
  HistogramMetric& query_cpu_ms;
  /// Per-phase self-time totals, indexed by QueryPhase.
  Counter* phase_us_total[kNumQueryPhases];

  // Resource gauges refreshed by the engine after each query.
  Gauge& object_pool_resident_pages;
  Gauge& feature_pool_resident_pages;
  Gauge& voronoi_cache_cells;
};

}  // namespace stpq

#endif  // STPQ_OBS_QUERY_METRICS_H_
