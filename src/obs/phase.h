// Phase tracing: attributes query wall-time to the named phases of
// QueryPhase (util/metrics.h) with zero heap allocation on the hot path.
//
// A PhaseTimer is a stack-only RAII span.  Timers nest: each one keeps a
// pointer to the timer it preempted through a thread-local "current" slot,
// and on destruction attributes its *self time* (elapsed minus time spent
// in nested timers) to its phase.  Self-time attribution means the
// phase_ms entries of a QueryStats never double-count and sum to at most
// the query's total CPU time; the remainder (driver loops, result
// assembly) is reported as "other" by QueryStats::UntracedMillis().
//
// Cost: two steady_clock reads and a handful of pointer writes per span.
// Spans are placed at algorithmic boundaries (one per component-score
// search, per combination emitted, per retrieval batch), not per heap
// operation, so tracing adds <5% to query execution (DESIGN.md §12 quotes
// the measurement).  Defining STPQ_DISABLE_PHASE_TRACING compiles the
// STPQ_TRACE_PHASE macro away entirely.
#ifndef STPQ_OBS_PHASE_H_
#define STPQ_OBS_PHASE_H_

#include <chrono>

#include "util/metrics.h"

namespace stpq {

/// RAII span attributing self-time to `stats.phase_ms[phase]`.
///
/// Timers must be destroyed in LIFO order on the thread that created them
/// (automatic with block scope).  A timer may nest under a timer writing
/// to a *different* QueryStats (e.g. a cursor drained inside another
/// query's execution): each writes to its own stats, and the parent still
/// excludes the nested span's time from its self-time.
class PhaseTimer {
 public:
  PhaseTimer(QueryStats& stats, QueryPhase phase)
      : stats_(stats), phase_(phase), parent_(current_), start_(Now()) {
    current_ = this;
  }

  ~PhaseTimer() {
    const double elapsed = MillisSince(start_);
    stats_.phase_ms[static_cast<size_t>(phase_)] +=
        elapsed > child_ms_ ? elapsed - child_ms_ : 0.0;
    if (parent_ != nullptr) parent_->child_ms_ += elapsed;
    current_ = parent_;
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  static Clock::time_point Now() { return Clock::now(); }
  static double MillisSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  }

  /// Innermost live timer on this thread (nullptr outside any span).
  static thread_local PhaseTimer* current_;

  QueryStats& stats_;
  QueryPhase phase_;
  PhaseTimer* parent_;
  double child_ms_ = 0.0;  ///< time consumed by timers nested in this one
  Clock::time_point start_;
};

}  // namespace stpq

// Opens a phase span for the rest of the enclosing block.
#if defined(STPQ_DISABLE_PHASE_TRACING)
#define STPQ_TRACE_PHASE(stats, phase) \
  do {                                 \
  } while (false)
#else
#define STPQ_TRACE_PHASE_CAT2(a, b) a##b
#define STPQ_TRACE_PHASE_CAT(a, b) STPQ_TRACE_PHASE_CAT2(a, b)
#define STPQ_TRACE_PHASE(stats, phase)                          \
  ::stpq::PhaseTimer STPQ_TRACE_PHASE_CAT(stpq_phase_timer_,    \
                                          __LINE__)(stats, phase)
#endif

#endif  // STPQ_OBS_PHASE_H_
