#include "obs/metrics_registry.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace stpq {

namespace {

/// Prometheus renders +Inf bucket bounds literally.
std::string FormatLe(double upper) {
  if (std::isinf(upper)) return "+Inf";
  std::ostringstream os;
  os << upper;
  return os.str();
}

/// Text-format 0.0.4 HELP escaping: backslash and newline must be escaped
/// so multi-line help text cannot break the exposition framing.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void HistogramMetric::Record(double ms) {
  if (std::isnan(ms) || ms < 0.0) ms = 0.0;
  buckets_[LatencyBuckets::IndexFor(ms)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                    std::memory_order_relaxed);
}

LatencyHistogram HistogramMetric::Snapshot() const {
  LatencyHistogram out;
  for (size_t i = 0; i < LatencyBuckets::kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    // Replay the bucket at its upper bound (max for the overflow bucket is
    // unknown; use the bound of the previous bucket as a floor).
    const double at = i + 1 < LatencyBuckets::kNumBuckets
                          ? LatencyBuckets::UpperBoundMs(i)
                          : LatencyBuckets::UpperBoundMs(i - 1);
    for (uint64_t k = 0; k < n; ++k) out.Record(at);
  }
  return out;
}

// stpq-lint: allow(hot-alloc) leaky singleton: one allocation per process
MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<HistogramMetric>();
        break;
    }
    it = entries_.emplace(name, std::move(entry)).first;
  }
  STPQ_CHECK(it->second.kind == kind &&
             "metric re-registered with a different kind");
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return *GetEntry(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return *GetEntry(name, help, Kind::kGauge).gauge;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help) {
  return *GetEntry(name, help, Kind::kHistogram).histogram;
}

std::string MetricsRegistry::RenderPrometheusText() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    os << "# HELP " << name << " " << EscapeHelp(entry.help) << "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << entry.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < LatencyBuckets::kNumBuckets; ++i) {
          cumulative += entry.histogram->buckets_[i].load(
              std::memory_order_relaxed);
          os << name << "_bucket{le=\""
             << FormatLe(LatencyBuckets::UpperBoundMs(i)) << "\"} "
             << cumulative << "\n";
        }
        os << name << "_sum "
           << static_cast<double>(entry.histogram->sum_ns_.load(
                  std::memory_order_relaxed)) /
                  1e6
           << "\n";
        os << name << "_count "
           << entry.histogram->count_.load(std::memory_order_relaxed)
           << "\n";
        break;
      }
    }
  }
  return os.str();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out.counters.emplace(name, entry.counter->value());
        break;
      case Kind::kGauge:
        out.gauges.emplace(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        out.histograms.emplace(name, entry.histogram->Snapshot());
        break;
    }
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  // Zero in place: handles returned by GetX() must stay valid.
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->value_.store(0, std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        entry.gauge->value_.store(0.0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram:
        for (auto& b : entry.histogram->buckets_) {
          b.store(0, std::memory_order_relaxed);
        }
        entry.histogram->count_.store(0, std::memory_order_relaxed);
        entry.histogram->sum_ns_.store(0, std::memory_order_relaxed);
        break;
    }
  }
}

}  // namespace stpq
