#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace stpq {

double LatencyBuckets::UpperBoundMs(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return kMinUpperMs * std::pow(2.0, static_cast<double>(i) / 2.0);
}

size_t LatencyBuckets::IndexFor(double ms) {
  if (!(ms > kMinUpperMs)) return 0;  // also catches NaN and negatives
  // Bucket i covers (kMinUpperMs * 2^((i-1)/2), kMinUpperMs * 2^(i/2)].
  const double idx = std::ceil(2.0 * std::log2(ms / kMinUpperMs));
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

void LatencyHistogram::Record(double ms) {
  if (std::isnan(ms) || ms < 0.0) ms = 0.0;
  ++buckets_[LatencyBuckets::IndexFor(ms)];
  ++count_;
  sum_ms_ += ms;
  max_ms_ = std::max(max_ms_, ms);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ms_ += other.sum_ms_;
  max_ms_ = std::max(max_ms_, other.max_ms_);
}

LatencyHistogram LatencyHistogram::Delta(const LatencyHistogram& older) const {
  LatencyHistogram out;
  uint64_t count = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t d = buckets_[i] >= older.buckets_[i]
                           ? buckets_[i] - older.buckets_[i]
                           : 0;
    out.buckets_[i] = d;
    count += d;
  }
  out.count_ = count;
  if (count > 0) {
    out.sum_ms_ = sum_ms_ >= older.sum_ms_ ? sum_ms_ - older.sum_ms_ : 0.0;
    out.max_ms_ = max_ms_;  // upper bound; the interval max is not tracked
  }
  return out;
}

double LatencyHistogram::PercentileMs(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, nearest-rank with interpolation).
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double lower = i == 0 ? 0.0 : LatencyBuckets::UpperBoundMs(i - 1);
      double upper = LatencyBuckets::UpperBoundMs(i);
      // The overflow bucket has no finite upper bound; the recorded
      // maximum does.  Clamping also keeps every estimate <= max_ms_.
      upper = std::min(upper, max_ms_);
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      return std::min(lower + (upper - lower) * std::clamp(within, 0.0, 1.0),
                      max_ms_);
    }
    cumulative = next;
  }
  return max_ms_;
}

std::string LatencyHistogram::SummaryString() const {
  std::ostringstream os;
  os << "p50=" << PercentileMs(0.50) << " p90=" << PercentileMs(0.90)
     << " p95=" << PercentileMs(0.95) << " p99=" << PercentileMs(0.99)
     << " max=" << max_ms_ << " (n=" << count_ << ")";
  return os.str();
}

}  // namespace stpq
