// Fixed-bucket log-scale latency histograms (DESIGN.md §12).
//
// LatencyHistogram is the single-writer accumulator used on the query
// path: a fixed array of 64 buckets whose upper bounds grow by a factor of
// sqrt(2) from 1 microsecond (bucket 0 is [0, 0.001 ms); bucket 63 is the
// overflow bucket, reaching past 2000 seconds), so any latency is captured
// with <= 41% relative bucket width and no allocation.  Recording is O(1);
// percentiles are extracted by walking the cumulative counts with linear
// interpolation inside the bucket.
//
// The parallel workload runner gives each worker thread its own
// LatencyHistogram and merges them with Merge() after the threads have
// been joined — merging is plain element-wise addition, no locks or
// atomics anywhere on the recording path.  For the process-wide,
// concurrently written variant, see HistogramMetric in
// obs/metrics_registry.h, which shares this bucket layout.
#ifndef STPQ_OBS_HISTOGRAM_H_
#define STPQ_OBS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace stpq {

/// Shared bucket layout: kNumBuckets log-scale buckets, upper bounds
/// kMinUpperMs * sqrt(2)^i; the final bucket absorbs everything larger.
struct LatencyBuckets {
  static constexpr size_t kNumBuckets = 64;
  static constexpr double kMinUpperMs = 0.001;  // 1 microsecond

  /// Upper bound of bucket `i` in milliseconds (infinity for the last).
  static double UpperBoundMs(size_t i);

  /// Index of the bucket that holds a latency of `ms` milliseconds.
  static size_t IndexFor(double ms);
};

/// Saturating counter difference: subtracting a newer snapshot from an
/// older one (a caller bug, or counters reset between snapshots) yields 0
/// instead of wrapping to ~2^64 bogus events — same contract as
/// BufferPoolStats::operator-.  The building block for every interval
/// delta the MetricsRecorder (obs/timeseries.h) reports.
inline uint64_t SaturatingCounterDelta(uint64_t newer, uint64_t older) {
  return newer >= older ? newer - older : 0;
}

/// Single-writer latency accumulator with percentile extraction.
class LatencyHistogram {
 public:
  void Record(double ms);

  /// Element-wise addition of another histogram (post-join merging).
  void Merge(const LatencyHistogram& other);

  /// The histogram of samples recorded between `older` (an earlier
  /// snapshot of this same series) and now: per-bucket saturating
  /// subtraction, count recomputed from the bucket deltas so the
  /// bucket-sum == count invariant holds even if the two snapshots
  /// straddled a concurrent Record.  The delta's max is unknowable from
  /// two maxima alone, so it carries this snapshot's max as an upper
  /// bound (0 when the delta is empty).  Useful standalone for A/B bench
  /// comparisons: Delta of "after" vs "before" isolates the B phase.
  LatencyHistogram Delta(const LatencyHistogram& older) const;

  uint64_t count() const { return count_; }
  double sum_ms() const { return sum_ms_; }
  double max_ms() const { return max_ms_; }
  double mean_ms() const {
    return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
  }
  uint64_t bucket_count(size_t i) const { return buckets_[i]; }

  /// Latency at quantile `q` in [0, 1] (0.5 = median), interpolated
  /// linearly within the bucket; 0 when empty.  The estimate is exact to
  /// within the bucket's width and never exceeds the recorded maximum.
  double PercentileMs(double q) const;

  /// "p50=… p90=… p95=… p99=… max=…" one-liner for reports.
  std::string SummaryString() const;

 private:
  std::array<uint64_t, LatencyBuckets::kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

}  // namespace stpq

#endif  // STPQ_OBS_HISTOGRAM_H_
