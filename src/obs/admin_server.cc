#include "obs/admin_server.h"

#include <fcntl.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/timer.h"

namespace stpq {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

AdminResponse Json(int status, std::string body) {
  return {status, "application/json", std::move(body)};
}

AdminResponse JsonError(int status, const std::string& message) {
  return Json(status, "{\"error\":\"" + JsonEscape(message) + "\"}\n");
}

/// Endpoint ordinal stamped into the kAdminRequest span's arg_c.
uint32_t EndpointOrdinal(const std::string& path) {
  if (path == "/metrics") return 0;
  if (path == "/healthz") return 1;
  if (path == "/statusz") return 2;
  if (path == "/slowz") return 3;
  if (path == "/tracez") return 4;
  if (path == "/varz") return 5;
  return 0xff;
}

/// "window=30s" / "window=30" -> seconds; 0 (= everything) when absent
/// or unparsable.
double ParseWindowSeconds(const std::string& query_string) {
  const std::string key = "window=";
  size_t pos = 0;
  while (pos < query_string.size()) {
    size_t amp = query_string.find('&', pos);
    if (amp == std::string::npos) amp = query_string.size();
    const std::string param = query_string.substr(pos, amp - pos);
    if (param.rfind(key, 0) == 0) {
      std::string value = param.substr(key.size());
      if (!value.empty() && (value.back() == 's' || value.back() == 'S')) {
        value.pop_back();
      }
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end != nullptr && *end == '\0' && v > 0.0) return v;
      return 0.0;
    }
    pos = amp + 1;
  }
  return 0.0;
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &MetricsRegistry::Global()),
      requests_total_(&registry_->GetCounter(
          "stpq_admin_requests_total",
          "Admin HTTP requests served (any status)")),
      errors_total_(&registry_->GetCounter(
          "stpq_admin_errors_total",
          "Admin HTTP requests answered with a non-2xx status")),
      request_ms_(&registry_->GetHistogram(
          "stpq_admin_request_ms",
          "Admin HTTP request handling latency in milliseconds")),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
}

AdminServer::~AdminServer() { Stop(); }

double AdminServer::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

Status AdminServer::Start() {
  if (running()) {
    return Status::FailedPrecondition("admin server already running");
  }
  Result<UniqueFd> listener = ListenTcp(options_.port);
  if (!listener.ok()) return listener.status();
  // Non-blocking listener: all workers poll it, so the one that loses the
  // accept race must get EAGAIN instead of blocking in accept(2).
  const int flags = ::fcntl(listener.value().get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(listener.value().get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError("fcntl(O_NONBLOCK) on admin listener failed");
  }
  Result<uint16_t> port = LocalPort(listener.value().get());
  if (!port.ok()) return port.status();
  Result<SelfPipe> pipe = MakeSelfPipe();
  if (!pipe.ok()) return pipe.status();

  listener_ = listener.TakeValue();
  shutdown_pipe_ = pipe.TakeValue();
  port_.store(port.value(), std::memory_order_release);
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back(&AdminServer::WorkerLoop, this);
  }
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_pipe_.Notify();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  listener_.Reset();
  shutdown_pipe_ = SelfPipe{};
  port_.store(0, std::memory_order_release);
}

void AdminServer::WorkerLoop() {
  const int listen_fd = listener_.get();
  const int wake_fd = shutdown_pipe_.read_end.get();
  while (running_.load(std::memory_order_acquire)) {
    Result<int> which = WaitEitherReadable(listen_fd, wake_fd, 1000);
    if (!which.ok()) return;          // poll failed: fd torn down
    if (which.value() == 1) return;   // shutdown pipe
    if (which.value() != 0) continue; // periodic timeout re-checks running_
    Result<UniqueFd> conn = AcceptConn(listen_fd);
    if (!conn.ok()) continue;  // EAGAIN: another worker won the race
    ServeConnection(conn.value().get());
  }
}

void AdminServer::ServeConnection(int fd) {
  const int wake_fd = shutdown_pipe_.read_end.get();
  std::string request;
  bool timed_out = false;
  // Read until the header terminator; a request longer than the cap or
  // slower than the timeout is answered with an error instead of holding
  // the worker hostage.  The poll watches the shutdown pipe too, so Stop
  // interrupts even a worker stuck on a silent client.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() <= options_.max_request_bytes) {
    Result<int> which =
        WaitEitherReadable(fd, wake_fd, options_.read_timeout_ms);
    if (!which.ok() || which.value() != 0) {
      timed_out = true;
      break;
    }
    Result<size_t> n =
        ReadSome(fd, &request, options_.max_request_bytes + 1 - request.size());
    if (!n.ok() || n.value() == 0) break;  // error or premature EOF
  }

  Timer handle_timer;
  AdminResponse response;
  std::string method, target;
  if (timed_out || request.find("\r\n\r\n") == std::string::npos) {
    response = request.size() > options_.max_request_bytes
                   ? JsonError(431, "request headers exceed " +
                                        std::to_string(
                                            options_.max_request_bytes) +
                                        " bytes")
                   : JsonError(400, "incomplete request");
  } else {
    // Request line: METHOD SP TARGET SP HTTP/1.x
    const size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
      response = JsonError(400, "malformed request line");
    } else {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      response = Route(method, target);
    }
  }

  requests_total_->Increment();
  if (response.status >= 300) errors_total_->Increment();
  request_ms_->Record(handle_timer.ElapsedMillis());

  std::ostringstream head;
  head << "HTTP/1.1 " << response.status << " "
       << ReasonPhrase(response.status) << "\r\n"
       << "Content-Type: " << response.content_type << "\r\n"
       << "Content-Length: " << response.body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  std::string wire = head.str();
  const bool head_only = method == "HEAD";
  if (!head_only) wire += response.body;
  Status st = WriteAll(fd, wire);
  (void)st;  // the peer may have hung up; nothing to do about it
}

AdminResponse AdminServer::Route(const std::string& method,
                                 const std::string& target) {
  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query_string =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  STPQ_TRACE_SPAN(TraceEventType::kAdminRequest, EndpointOrdinal(path), 0);

  if (method != "GET" && method != "HEAD") {
    return JsonError(405, "only GET is supported on the admin plane");
  }
  if (path == "/metrics") return RenderMetrics();
  if (path == "/healthz") return RenderHealthz();
  if (path == "/statusz") return RenderStatusz();
  if (path == "/slowz") return RenderSlowz();
  if (path == "/tracez") return RenderTracez();
  if (path == "/varz") return RenderVarz(query_string);
  if (path == "/") {
    return {200, "text/plain; charset=utf-8",
            "stpq admin endpoints: /metrics /healthz /statusz /slowz "
            "/tracez /varz?window=Ns\n"};
  }
  return JsonError(404, "unknown endpoint " + path);
}

AdminResponse AdminServer::RenderMetrics() {
  return {200, "text/plain; version=0.0.4; charset=utf-8",
          registry_->RenderPrometheusText()};
}

AdminResponse AdminServer::RenderHealthz() {
  std::string detail;
  const bool healthy =
      !options_.health_provider || options_.health_provider(&detail);
  std::string body = "{\"status\":\"";
  body += healthy ? "ok" : "unhealthy";
  body += "\",\"uptime_s\":";
  AppendJsonDouble(&body, UptimeSeconds());
  if (!detail.empty()) {
    body += ",\"detail\":\"" + JsonEscape(detail) + "\"";
  }
  body += "}\n";
  return Json(healthy ? 200 : 503, std::move(body));
}

AdminResponse AdminServer::RenderStatusz() {
  std::string body = "{\"server\":{\"uptime_s\":";
  AppendJsonDouble(&body, UptimeSeconds());
  body += ",\"port\":" + std::to_string(port());
  body += ",\"workers\":" + std::to_string(options_.worker_threads);
  body += ",\"requests\":" + std::to_string(requests_total_->value());
  body += ",\"errors\":" + std::to_string(errors_total_->value());
  body += "},\"build\":{\"compiler\":\"";
  body += JsonEscape(__VERSION__);
  body += "\"";
#if defined(NDEBUG)
  body += ",\"assertions\":false";
#else
  body += ",\"assertions\":true";
#endif
#if defined(STPQ_DISABLE_TRACING)
  body += ",\"tracing_compiled\":false";
#else
  body += ",\"tracing_compiled\":true";
#endif
  body += "},\"sampler\":{";
  if (options_.recorder != nullptr) {
    body += "\"armed\":true,\"interval_ms\":" +
            std::to_string(options_.recorder->interval_ms()) +
            ",\"samples\":" +
            std::to_string(options_.recorder->sample_count());
  } else {
    body += "\"armed\":false";
  }
  body += "}";
  if (options_.status_provider) {
    body += ",\"status\":{";
    bool first = true;
    for (const auto& [key, value] : options_.status_provider()) {
      if (!first) body += ",";
      first = false;
      body += "\"";
      body += JsonEscape(key);
      body += "\":\"";
      body += JsonEscape(value);
      body += "\"";
    }
    body += "}";
  }
  body += "}\n";
  return Json(200, std::move(body));
}

AdminResponse AdminServer::RenderSlowz() {
  if (options_.slow_log == nullptr) {
    return Json(200,
                "{\"armed\":false,\"queries\":[]}\n");
  }
  const std::vector<SlowQueryRecord> records = options_.slow_log->Snapshot();
  std::string body = "{\"armed\":true,\"threshold_ms\":";
  AppendJsonDouble(&body, options_.slow_log->threshold_ms());
  body += ",\"count\":" + std::to_string(records.size());
  body += ",\"queries\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const SlowQueryRecord& r = records[i];
    if (i > 0) body += ",";
    body += "{\"trace_id\":" + std::to_string(r.trace_id);
    body += ",\"thread\":" + std::to_string(r.thread_ordinal);
    body += ",\"elapsed_ms\":";
    AppendJsonDouble(&body, r.elapsed_ms);
    body += ",\"cpu_ms\":";
    AppendJsonDouble(&body, r.stats.cpu_ms);
    body += ",\"page_reads\":" + std::to_string(r.stats.TotalReads());
    body += ",\"events\":" + std::to_string(r.events.size());
    body += "}";
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

AdminResponse AdminServer::RenderTracez() {
  // A consuming read of the process tracer: drained events are folded
  // into the rolling summary below and are no longer available to other
  // consumers (trace-out export, slow-query capture).  Documented in the
  // endpoint table; the CLI only wires /tracez users who accept that.
  TraceCollection collection = Tracer::Global().Collect();

  MutexLock lock(tracez_mu_);
  tracez_dropped_total_ += collection.dropped;
  for (const TraceThreadEvents& thread : collection.threads) {
    // Per-type open-span begin timestamps; ring truncation can only lose
    // the newest events, so an unmatched end (begin consumed by an
    // earlier drain) is skipped rather than mispaired.
    std::vector<uint64_t> open_begin_ns[kNumTraceEventTypes];
    std::vector<uint32_t> open_trace_id[kNumTraceEventTypes];
    for (const TraceEvent& e : thread.events) {
      ++tracez_events_total_;
      const size_t t = static_cast<size_t>(e.type);
      if (t >= kNumTraceEventTypes) continue;
      switch (e.mark) {
        case TraceMark::kInstant:
          ++tracez_types_[t].instants;
          break;
        case TraceMark::kBegin:
          open_begin_ns[t].push_back(e.ts_ns);
          open_trace_id[t].push_back(
              e.type == TraceEventType::kQuery ? e.arg_c : e.trace_id);
          break;
        case TraceMark::kEnd: {
          if (open_begin_ns[t].empty()) break;  // orphan end
          const double ms = static_cast<double>(e.ts_ns -
                                                open_begin_ns[t].back()) /
                            1e6;
          ++tracez_types_[t].spans_closed;
          tracez_types_[t].span_total_ms += ms;
          if (e.type == TraceEventType::kQuery) {
            tracez_recent_queries_.emplace_back(open_trace_id[t].back(), ms);
            while (tracez_recent_queries_.size() > 32) {
              tracez_recent_queries_.pop_front();
            }
          }
          open_begin_ns[t].pop_back();
          open_trace_id[t].pop_back();
          break;
        }
      }
    }
  }

  std::string body = "{\"armed\":";
  body += Tracer::Active() ? "true" : "false";
  body += ",\"events_total\":" + std::to_string(tracez_events_total_);
  body += ",\"dropped_total\":" + std::to_string(tracez_dropped_total_);
  body += ",\"types\":[";
  bool first = true;
  for (size_t t = 0; t < kNumTraceEventTypes; ++t) {
    const TraceTypeSummary& s = tracez_types_[t];
    if (s.instants == 0 && s.spans_closed == 0) continue;
    if (!first) body += ",";
    first = false;
    body += "{\"type\":\"";
    body += TraceEventTypeName(static_cast<TraceEventType>(t));
    body += "\",\"instants\":" + std::to_string(s.instants);
    body += ",\"spans\":" + std::to_string(s.spans_closed);
    body += ",\"span_total_ms\":";
    AppendJsonDouble(&body, s.span_total_ms);
    body += "}";
  }
  body += "],\"recent_queries\":[";
  for (size_t i = 0; i < tracez_recent_queries_.size(); ++i) {
    if (i > 0) body += ",";
    body += "{\"trace_id\":" +
            std::to_string(tracez_recent_queries_[i].first) + ",\"ms\":";
    AppendJsonDouble(&body, tracez_recent_queries_[i].second);
    body += "}";
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

AdminResponse AdminServer::RenderVarz(const std::string& query_string) {
  if (options_.recorder == nullptr) {
    return Json(200, "{\"armed\":false,\"samples\":[]}\n");
  }
  const double window_s = ParseWindowSeconds(query_string);
  const std::vector<IntervalSample> samples =
      options_.recorder->Recent(window_s);
  std::string body = "{\"armed\":true,\"interval_ms\":" +
                     std::to_string(options_.recorder->interval_ms());
  body += ",\"window_s\":";
  AppendJsonDouble(&body, window_s);
  body += ",\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const IntervalSample& s = samples[i];
    if (i > 0) body += ",";
    body += "{\"start_ms\":";
    AppendJsonDouble(&body, s.start_ms);
    body += ",\"end_ms\":";
    AppendJsonDouble(&body, s.end_ms);
    body += ",\"queries\":" +
            std::to_string(s.CounterDelta("stpq_queries_total"));
    body += ",\"qps\":";
    AppendJsonDouble(&body, s.QueriesPerSec());
    body += ",\"page_reads\":" +
            std::to_string(s.CounterDelta("stpq_pages_read_total"));
    body += ",\"pool_hit_rate\":";
    AppendJsonDouble(&body, s.PoolHitRate());
    const LatencyHistogram* lat = s.Histogram("stpq_query_cpu_ms");
    body += ",\"interval_p50_ms\":";
    AppendJsonDouble(&body, lat != nullptr ? lat->PercentileMs(0.50) : 0.0);
    body += ",\"interval_p99_ms\":";
    AppendJsonDouble(&body, lat != nullptr ? lat->PercentileMs(0.99) : 0.0);
    body += "}";
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

}  // namespace stpq
