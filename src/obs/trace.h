// Per-query event tracing (DESIGN.md §14).
//
// Every worker thread owns one fixed-capacity SPSC ring of 32-byte POD
// trace events.  Emission is wait-free and allocation-free after the
// thread's first event (which registers the ring): one relaxed flag load
// when the tracer is idle, plus a bounds check and a store when it is
// recording.  When a ring fills, new events are *dropped and counted* —
// recording never blocks and never reallocates, so the alloc_test and
// golden-I/O guarantees of §13 hold with tracing active.
//
// Span events (query, component-score search, combination round, retrieval
// batch, Voronoi construction) are emitted as begin/end pairs by the RAII
// TraceSpan; instant events record individual node visits (tree, level,
// prune/descend verdicts), buffer-pool hits/misses/evictions, and search
// heap high-water marks.  Each event carries the per-query trace id
// assigned by TraceQueryScope in Engine::Execute, so one ring can hold
// interleaved queries and the exporter (obs/trace_export.h) can still
// attribute every event.
//
// Defining STPQ_DISABLE_TRACING compiles every emission point away (the
// macros expand to nothing and TraceSpan/TraceQueryScope become empty);
// the TraversalProfile counters in QueryStats are *not* part of tracing
// and stay on in every build.
#ifndef STPQ_OBS_TRACE_H_
#define STPQ_OBS_TRACE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "util/metrics.h"
#include "util/thread_annotations.h"

namespace stpq {

/// What a trace event describes.  The first five and kBuildPhase are span
/// types (begin/end pairs); the rest are instants.
enum class TraceEventType : uint8_t {
  kQuery = 0,          ///< one Engine::Execute call
  kComponentScore,     ///< one tau_i(p) search / batch search
  kCombinationRound,   ///< one CombinationIterator::Next call
  kRetrievalBatch,     ///< one data-object retrieval traversal
  kVoronoiCell,        ///< one Voronoi cell construction
  kNodeVisit,          ///< one index-node expansion (instant)
  kPoolHit,            ///< buffer-pool hit (instant)
  kPoolMiss,           ///< buffer-pool miss = simulated read (instant)
  kPoolEvict,          ///< buffer-pool eviction (instant)
  kHeapHighWater,      ///< search-heap high-water mark (instant)
  kBuildPhase,         ///< one external bulk-load phase (span)
  kAdminRequest,       ///< one admin-server HTTP request (span)
};

inline constexpr size_t kNumTraceEventTypes = 12;

/// Stable lowercase name ("query", "node_visit", ...), used as the Chrome
/// trace event name.
const char* TraceEventTypeName(TraceEventType type);

/// Span phase of an event.
enum class TraceMark : uint8_t {
  kBegin = 0,
  kEnd,
  kInstant,
};

/// `tree` value of a kNodeVisit event addressing the object R-tree (other
/// values are feature-set ordinals).
inline constexpr uint8_t kTraceObjectTree = 0xff;

/// One ring slot.  Arg semantics depend on `type`:
///   kQuery:          arg_c = trace id
///   kComponentScore: arg_c = feature set ordinal
///   kNodeVisit:      arg_a = tree (kTraceObjectTree or set ordinal),
///                    arg_b = node level (0 = leaf),
///                    arg_c = (pruned << 16) | descended (each capped),
///                    arg_d = node id
///   kPool*:          arg_d = page id;
///                    kPoolMiss: arg_a = storage backend tag
///                    (static_cast<uint8_t>(StorageBackend), 0 = simulated)
///   kHeapHighWater:  arg_d = max heap size observed by the span
struct TraceEvent {
  uint64_t ts_ns = 0;    ///< steady-clock nanos since the tracer epoch
  uint32_t trace_id = 0; ///< per-query id (0 = outside any query)
  TraceEventType type = TraceEventType::kQuery;
  TraceMark mark = TraceMark::kInstant;
  uint8_t arg_a = 0;
  uint8_t arg_b = 0;
  uint32_t arg_c = 0;
  uint64_t arg_d = 0;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay one cache "
                                        "half-line: fix the field packing");

/// Single-producer single-consumer ring of trace events.  The producer is
/// the owning thread (TryEmit); consumers (Collect, slow-query capture)
/// serialize against each other on an internal mutex the producer never
/// touches.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two; allocation happens here
  /// and never again.
  TraceRing(uint32_t thread_ordinal, size_t capacity);

  /// Appends `e`; returns false (and counts a drop) when full.  Producer
  /// thread only.  Never allocates.
  bool TryEmit(const TraceEvent& e);

  /// Consumes every pending event.  Events are appended to `out` (may be
  /// nullptr to discard); when `keep_all` is false only events whose
  /// trace id equals `filter_trace_id` are kept.
  void Drain(bool keep_all, uint32_t filter_trace_id,
             std::vector<TraceEvent>* out) STPQ_EXCLUDES(consume_mu_);

  /// Drops recorded since the last TakeDropped call.
  uint64_t TakeDropped() {
    return dropped_.exchange(0, std::memory_order_relaxed);
  }

  uint32_t thread_ordinal() const { return thread_ordinal_; }

 private:
  const uint32_t thread_ordinal_;
  size_t mask_;
  std::vector<TraceEvent> buf_;
  /// Serializes concurrent consumers (Collect vs. slow-query capture);
  /// the ring state itself is the SPSC atomic head_/tail_ pair, which the
  /// lock-free producer also touches, so no member can be GUARDED_BY it.
  // stpq-lint: allow(mutex-guard) consumer-ordering lock over atomics
  Mutex consume_mu_;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< next slot to write
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< next slot to read
  std::atomic<uint64_t> dropped_{0};
};

/// Events drained from one ring, tagged with the owning thread's ordinal.
struct TraceThreadEvents {
  uint32_t thread_ordinal = 0;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

/// Everything collected from the tracer at one point in time.
struct TraceCollection {
  std::vector<TraceThreadEvents> threads;
  uint64_t dropped = 0;  ///< sum over threads

  size_t TotalEvents() const {
    size_t n = 0;
    for (const TraceThreadEvents& t : threads) n += t.events.size();
    return n;
  }
  bool Empty() const { return TotalEvents() == 0; }
};

/// The process-wide tracer.  Start() arms recording; rings register
/// lazily on each thread's first emission and live for the process
/// lifetime (reused if the same thread traces again).
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = size_t{1} << 16;

  static Tracer& Global();

  /// Arms recording.  `ring_capacity` applies to rings created after this
  /// call; existing rings keep their size.
  void Start(size_t ring_capacity = kDefaultRingCapacity) STPQ_EXCLUDES(mu_);

  /// Disarms recording; already-recorded events stay collectable.
  void Stop();

  /// Whether emission points should record.  One relaxed atomic load.
  static bool Active() {
    return active_.load(std::memory_order_relaxed);
  }

  /// Allocates a fresh nonzero per-query trace id.
  uint32_t NextTraceId() {
    uint32_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    return id == 0 ? next_trace_id_.fetch_add(1, std::memory_order_relaxed)
                   : id;
  }

  /// Drains every ring into a collection (consumes the events).
  TraceCollection Collect() STPQ_EXCLUDES(mu_);

  /// Discards all pending events and drop counts (tests / re-arming).
  void Discard() STPQ_EXCLUDES(mu_);

  /// Records one event on the calling thread's ring.  No-op when the
  /// tracer is idle.  The first call on a thread allocates its ring.
  static void Emit(TraceEventType type, TraceMark mark, uint8_t arg_a,
                   uint8_t arg_b, uint32_t arg_c, uint64_t arg_d);

  /// Consumes the calling thread's pending events, keeping those with
  /// `trace_id` (slow-query capture).  Nothing happens if the thread has
  /// never emitted.
  static void DrainCurrentThread(uint32_t trace_id,
                                 std::vector<TraceEvent>* out);

  /// The trace id stamped on events emitted by this thread.
  static uint32_t CurrentTraceId() { return tls_trace_id_; }
  static void SetCurrentTraceId(uint32_t id) { tls_trace_id_ = id; }

  /// Ordinal of the calling thread's ring (0 before the first emission).
  static uint32_t CurrentThreadOrdinal() {
    return tls_ring_ != nullptr ? tls_ring_->thread_ordinal() : 0;
  }

  /// Nanoseconds since the tracer epoch (process start).
  static uint64_t NowNs();

 private:
  Tracer() = default;

  TraceRing* RingForThisThread() STPQ_EXCLUDES(mu_);

  Mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_ STPQ_GUARDED_BY(mu_);
  size_t ring_capacity_ STPQ_GUARDED_BY(mu_) = kDefaultRingCapacity;
  std::atomic<uint32_t> next_trace_id_{1};

  static std::atomic<bool> active_;
  static thread_local TraceRing* tls_ring_;
  static thread_local uint32_t tls_trace_id_;
};

#if !defined(STPQ_DISABLE_TRACING)

/// RAII span: emits a begin event now and the matching end event at scope
/// exit.  When the tracer is idle both ends cost one branch.
class TraceSpan {
 public:
  explicit TraceSpan(TraceEventType type, uint32_t arg_c = 0,
                     uint64_t arg_d = 0)
      : type_(type), active_(Tracer::Active()) {
    if (active_) {
      Tracer::Emit(type_, TraceMark::kBegin, 0, 0, arg_c, arg_d);
    }
  }

  ~TraceSpan() {
    if (active_) Tracer::Emit(type_, TraceMark::kEnd, 0, 0, 0, 0);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceEventType type_;
  bool active_;
};

/// RAII query scope: assigns a trace id, stamps it on the thread, and
/// brackets the query in a kQuery span.  End() may be called early so the
/// end event lands before slow-query capture drains the ring.
class TraceQueryScope {
 public:
  TraceQueryScope() {
    if (Tracer::Active()) {
      id_ = Tracer::Global().NextTraceId();
      prev_ = Tracer::CurrentTraceId();
      Tracer::SetCurrentTraceId(id_);
      Tracer::Emit(TraceEventType::kQuery, TraceMark::kBegin, 0, 0, id_, 0);
    }
  }

  ~TraceQueryScope() { End(); }

  void End() {
    if (id_ != 0 && !ended_) {
      ended_ = true;
      Tracer::Emit(TraceEventType::kQuery, TraceMark::kEnd, 0, 0, id_, 0);
      Tracer::SetCurrentTraceId(prev_);
    }
  }

  /// The query's trace id (0 when the tracer was idle at construction).
  uint32_t id() const { return id_; }

  TraceQueryScope(const TraceQueryScope&) = delete;
  TraceQueryScope& operator=(const TraceQueryScope&) = delete;

 private:
  uint32_t id_ = 0;
  uint32_t prev_ = 0;
  bool ended_ = false;
};

/// Tracks a search heap's high-water mark and emits one kHeapHighWater
/// instant at scope exit.  Recording is latched at construction, so an
/// idle tracer costs one branch per Observe call and nothing at exit.
class HeapWatermark {
 public:
  HeapWatermark() : active_(Tracer::Active()) {}

  void Observe(size_t size) {
    if (active_ && size > high_water_) high_water_ = size;
  }

  ~HeapWatermark() {
    if (active_ && high_water_ > 0) {
      Tracer::Emit(TraceEventType::kHeapHighWater, TraceMark::kInstant, 0, 0,
                   0, high_water_);
    }
  }

  HeapWatermark(const HeapWatermark&) = delete;
  HeapWatermark& operator=(const HeapWatermark&) = delete;

 private:
  bool active_;
  size_t high_water_ = 0;
};

#else  // STPQ_DISABLE_TRACING

class TraceSpan {
 public:
  explicit TraceSpan(TraceEventType, uint32_t = 0, uint64_t = 0) {}
};

class TraceQueryScope {
 public:
  void End() {}
  uint32_t id() const { return 0; }
};

class HeapWatermark {
 public:
  void Observe(size_t) {}
};

#endif  // STPQ_DISABLE_TRACING

/// kNodeVisit `tree` value for feature set `ordinal` (clamped below the
/// object-tree sentinel; real ordinals are bounded by kMaxFeatureSets).
inline uint8_t TraceTreeForSet(uint32_t ordinal) {
  return static_cast<uint8_t>(
      ordinal < kTraceObjectTree ? ordinal : kTraceObjectTree - 1);
}

/// Records one node expansion in the query's traversal profile and, when
/// the tracer is recording, as a kNodeVisit instant.  `tree` is
/// kTraceObjectTree or a feature-set ordinal; `pruned`/`descended` count
/// the verdicts over the node's child entries.
inline void RecordNodeVisit(QueryStats& stats, uint8_t tree, unsigned level,
                            uint64_t node_id, uint32_t pruned,
                            uint32_t descended) {
  TreeTraversalCounts& counts = tree == kTraceObjectTree
                                    ? stats.traversal.object_tree
                                    : stats.traversal.FeatureTree(tree);
  counts.RecordVisit(level, pruned, descended);
#if !defined(STPQ_DISABLE_TRACING)
  if (Tracer::Active()) {
    const uint32_t verdicts =
        (std::min<uint32_t>(pruned, 0xffff) << 16) |
        std::min<uint32_t>(descended, 0xffff);
    Tracer::Emit(TraceEventType::kNodeVisit, TraceMark::kInstant, tree,
                 static_cast<uint8_t>(level < 0xff ? level : 0xff), verdicts,
                 node_id);
  }
#endif
}

/// One captured slow query: its trace id, latency, final stats, and the
/// events its executing thread recorded for it (empty when the tracer was
/// idle).
struct SlowQueryRecord {
  uint32_t trace_id = 0;
  uint32_t thread_ordinal = 0;  ///< ring the events came from
  double elapsed_ms = 0.0;
  QueryStats stats;
  std::vector<TraceEvent> events;
};

/// Thread-safe bounded retention of the most recent queries at or above a
/// latency threshold.  Engine::Execute offers every completed query; the
/// offer additionally drains the executing thread's ring (keeping only the
/// offered query's events), which doubles as per-query ring hygiene during
/// long captures.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(double threshold_ms, size_t max_records = 32)
      : threshold_ms_(threshold_ms), max_records_(max_records) {}

  /// Called on the thread that executed the query, after completion.
  void Offer(uint32_t trace_id, double elapsed_ms, const QueryStats& stats)
      STPQ_EXCLUDES(mu_);

  /// Copies the retained records, most recent last.
  std::vector<SlowQueryRecord> Snapshot() const STPQ_EXCLUDES(mu_);

  size_t size() const STPQ_EXCLUDES(mu_);
  double threshold_ms() const { return threshold_ms_; }

 private:
  const double threshold_ms_;
  const size_t max_records_;
  mutable Mutex mu_;
  std::deque<SlowQueryRecord> records_ STPQ_GUARDED_BY(mu_);
};

}  // namespace stpq

// Emission macros.  All expand to nothing under STPQ_DISABLE_TRACING.
#if defined(STPQ_DISABLE_TRACING)

#define STPQ_TRACE_ACTIVE() false
#define STPQ_TRACE_SPAN(type, arg_c, arg_d) \
  do {                                      \
  } while (false)
#define STPQ_TRACE_INSTANT(type, arg_a, arg_b, arg_c, arg_d) \
  do {                                                       \
  } while (false)

#else

#define STPQ_TRACE_CAT2(a, b) a##b
#define STPQ_TRACE_CAT(a, b) STPQ_TRACE_CAT2(a, b)

/// Whether the tracer is recording (hoist out of hot loops).
#define STPQ_TRACE_ACTIVE() (::stpq::Tracer::Active())

/// Opens a trace span for the rest of the enclosing block.
#define STPQ_TRACE_SPAN(type, arg_c, arg_d)                 \
  ::stpq::TraceSpan STPQ_TRACE_CAT(stpq_trace_span_,        \
                                   __LINE__)(type, arg_c, arg_d)

/// Records one instant event when the tracer is recording.
#define STPQ_TRACE_INSTANT(type, arg_a, arg_b, arg_c, arg_d)               \
  do {                                                                     \
    if (::stpq::Tracer::Active()) {                                        \
      ::stpq::Tracer::Emit(type, ::stpq::TraceMark::kInstant, arg_a,       \
                           arg_b, arg_c, arg_d);                           \
    }                                                                      \
  } while (false)

#endif  // STPQ_DISABLE_TRACING

#endif  // STPQ_OBS_TRACE_H_
