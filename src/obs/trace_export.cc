#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace stpq {

namespace {

/// Microsecond timestamp with nanosecond fraction, the unit Chrome trace
/// JSON expects.
void AppendTs(std::string* out, uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

/// Common prefix of one JSON event: name, phase, pid/tid, ts.
void OpenEvent(std::string* out, const TraceEvent& e, char phase,
               uint32_t tid, uint64_t ts_ns) {
  out->append("{\"name\":\"");
  out->append(TraceEventTypeName(e.type));
  out->append("\",\"cat\":\"stpq\",\"ph\":\"");
  out->push_back(phase);
  out->append("\",\"pid\":1,\"tid\":");
  AppendUint(out, tid);
  out->append(",\"ts\":");
  AppendTs(out, ts_ns);
}

void AppendArgs(std::string* out, const TraceEvent& e) {
  out->append(",\"args\":{\"trace_id\":");
  AppendUint(out, e.trace_id);
  switch (e.type) {
    case TraceEventType::kNodeVisit:
      out->append(",\"tree\":");
      if (e.arg_a == kTraceObjectTree) {
        out->append("\"object\"");
      } else {
        AppendUint(out, e.arg_a);
      }
      out->append(",\"level\":");
      AppendUint(out, e.arg_b);
      out->append(",\"pruned\":");
      AppendUint(out, e.arg_c >> 16);
      out->append(",\"descended\":");
      AppendUint(out, e.arg_c & 0xffff);
      out->append(",\"node\":");
      AppendUint(out, e.arg_d);
      break;
    case TraceEventType::kPoolHit:
    case TraceEventType::kPoolMiss:
    case TraceEventType::kPoolEvict:
      out->append(",\"page\":");
      AppendUint(out, e.arg_d);
      break;
    case TraceEventType::kHeapHighWater:
      out->append(",\"size\":");
      AppendUint(out, e.arg_d);
      break;
    case TraceEventType::kComponentScore:
      if (e.mark == TraceMark::kBegin) {
        out->append(",\"set\":");
        AppendUint(out, e.arg_c);
      }
      break;
    default:
      break;
  }
  out->append("}");
}

void RenderThread(std::string* out, const TraceThreadEvents& thread,
                  bool* first) {
  const uint32_t tid = thread.thread_ordinal;
  // Open-span stack for B/E balancing; ring truncation can only lose the
  // *newest* events, so orphans are either dangling begins (end dropped —
  // closed below at the last timestamp) or ends whose begin was consumed
  // by an earlier collection (skipped).
  std::vector<TraceEventType> open;
  uint64_t last_ts = 0;
  for (const TraceEvent& e : thread.events) {
    if (e.ts_ns > last_ts) last_ts = e.ts_ns;
    char phase = 'i';
    switch (e.mark) {
      case TraceMark::kBegin:
        phase = 'B';
        open.push_back(e.type);
        break;
      case TraceMark::kEnd:
        if (open.empty() || open.back() != e.type) continue;  // orphan end
        open.pop_back();
        phase = 'E';
        break;
      case TraceMark::kInstant:
        phase = 'i';
        break;
    }
    if (!*first) out->append(",\n");
    *first = false;
    OpenEvent(out, e, phase, tid, e.ts_ns);
    if (phase == 'i') out->append(",\"s\":\"t\"");
    if (phase != 'E') AppendArgs(out, e);
    out->append("}");
  }
  // Close spans whose end event was dropped.
  while (!open.empty()) {
    TraceEvent synthetic;
    synthetic.type = open.back();
    open.pop_back();
    if (!*first) out->append(",\n");
    *first = false;
    OpenEvent(out, synthetic, 'E', tid, last_ts);
    out->append("}");
  }
}

}  // namespace

std::string RenderChromeTrace(const TraceCollection& collection) {
  std::string out;
  out.reserve(128 + collection.TotalEvents() * 96);
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  for (const TraceThreadEvents& thread : collection.threads) {
    // Name the lane after the ring so Perfetto shows stable track labels.
    if (!first) out.append(",\n");
    first = false;
    out.append(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    AppendUint(&out, thread.thread_ordinal);
    out.append(",\"args\":{\"name\":\"stpq-ring-");
    AppendUint(&out, thread.thread_ordinal);
    out.append("\"}}");
    RenderThread(&out, thread, &first);
  }
  out.append("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
  out.append("\"droppedEvents\":");
  AppendUint(&out, collection.dropped);
  out.append("}}\n");
  return out;
}

Status WriteChromeTraceFile(const TraceCollection& collection,
                            const std::string& path) {
  const std::string json = RenderChromeTrace(collection);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceCollection CollectionFromSlowQueries(
    const std::vector<SlowQueryRecord>& records, uint64_t dropped) {
  TraceCollection out;
  out.dropped = dropped;
  // Group by originating ring; records arrive in completion order, so the
  // per-ring concatenation stays in timestamp order.
  std::map<uint32_t, std::vector<TraceEvent>> by_thread;
  for (const SlowQueryRecord& r : records) {
    std::vector<TraceEvent>& lane = by_thread[r.thread_ordinal];
    lane.insert(lane.end(), r.events.begin(), r.events.end());
  }
  for (auto& [ordinal, events] : by_thread) {
    TraceThreadEvents t;
    t.thread_ordinal = ordinal;
    t.events = std::move(events);
    out.threads.push_back(std::move(t));
  }
  return out;
}

}  // namespace stpq
