// Embedded admin HTTP server: live introspection endpoints (DESIGN.md §18).
//
// Every observability surface before this one (Prometheus files, Chrome
// traces, the slow-query log, traversal profiles) is rendered post-hoc: a
// long-running workload is a black box until it finishes.  AdminServer
// makes the obs subsystem scrapeable while queries run: a small,
// dependency-free HTTP/1.1 server on a loopback port, serving
//
//   GET /metrics   Prometheus text (MetricsRegistry::RenderPrometheusText)
//   GET /healthz   liveness JSON (+ optional engine health callback)
//   GET /statusz   build info, uptime, server + engine/storage status rows
//   GET /slowz     JSON snapshot of the SlowQueryLog
//   GET /tracez    rolling span/event summary drained from the Tracer
//   GET /varz      interval deltas from the MetricsRecorder
//                  (?window=Ns trims to the trailing N seconds)
//
// Architecture: N worker threads share one non-blocking listening socket;
// each loops { poll {listener, shutdown pipe} -> accept -> handle one
// request -> close }.  The pool is the accept loop, so concurrency is
// bounded by the worker count with no handoff queue, and Stop() wakes
// every poller at once through the self-pipe (util/net.h) — including
// workers mid-read on a stalled connection, whose per-connection poll
// watches the same pipe.  Connections are Connection: close; an admin
// scrape is one request, and keeping the protocol surface minimal keeps
// the parser honest.
//
// The server knows nothing about the engine: /statusz and /healthz detail
// comes from caller-supplied callbacks, so the CLI wires an Engine in and
// ROADMAP item 1's shard router can wire a router in, against this same
// admin plane.  The server's own handling is observable too: it counts
// stpq_admin_* metrics into the same registry it serves and brackets each
// request in a kAdminRequest trace span.
#ifndef STPQ_OBS_ADMIN_SERVER_H_
#define STPQ_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/net.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace stpq {

/// Key/value rows a host application contributes to /statusz.
using AdminStatusRows = std::vector<std::pair<std::string, std::string>>;

/// Server construction knobs and data sources.  All pointers are borrowed
/// and must outlive the server; null sources make the corresponding
/// endpoint report "not armed" instead of failing.
struct AdminServerOptions {
  /// Loopback port to bind (0 = kernel-assigned; read back with port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently served requests.
  size_t worker_threads = 4;
  /// Per-connection read patience before the request is abandoned.
  int read_timeout_ms = 5000;
  /// Request header cap; longer requests are rejected with 431.
  size_t max_request_bytes = 8192;

  /// Metrics source for /metrics (and the server's own stpq_admin_*
  /// instruments); nullptr = MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Interval-delta source for /varz (optional).
  MetricsRecorder* recorder = nullptr;
  /// Slow-query source for /slowz (optional).
  SlowQueryLog* slow_log = nullptr;
  /// Extra /statusz rows (engine kind, storage backend, pool occupancy).
  std::function<AdminStatusRows()> status_provider;
  /// Liveness check: return false (and fill *detail) to turn /healthz
  /// into a 503.  Absent = always healthy while the server runs.
  std::function<bool(std::string* detail)> health_provider;
};

/// One rendered HTTP response (also the unit the routing tests assert on).
struct AdminResponse {
  int status = 200;
  std::string content_type;
  std::string body;
};

class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options);
  ~AdminServer();  ///< stops and joins if still running

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds the port and spawns the worker pool.  Fails with IoError when
  /// the port cannot be bound, FailedPrecondition when already running.
  [[nodiscard]] Status Start();

  /// Graceful shutdown: wakes every worker through the self-pipe, joins
  /// them (in-flight requests finish), and closes the listener.  Safe to
  /// call twice and from the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves option port 0); 0 before a successful Start.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Routes one request without a socket (unit tests; `target` includes
  /// the query string, e.g. "/varz?window=10s").
  AdminResponse HandleForTest(const std::string& method,
                              const std::string& target) {
    return Route(method, target);
  }

 private:
  /// Per-event-type rolling aggregate built from drained trace events.
  struct TraceTypeSummary {
    uint64_t instants = 0;
    uint64_t spans_closed = 0;
    double span_total_ms = 0.0;
  };

  void WorkerLoop();
  void ServeConnection(int fd);

  /// Dispatches a parsed request to an endpoint renderer.
  AdminResponse Route(const std::string& method, const std::string& target);

  AdminResponse RenderMetrics();
  AdminResponse RenderHealthz();
  AdminResponse RenderStatusz();
  AdminResponse RenderSlowz();
  AdminResponse RenderTracez() STPQ_EXCLUDES(tracez_mu_);
  AdminResponse RenderVarz(const std::string& query_string);

  double UptimeSeconds() const;

  AdminServerOptions options_;
  MetricsRegistry* registry_;  ///< never null after construction

  // Server-owned instruments (registered once; updates are atomic adds).
  Counter* requests_total_;
  Counter* errors_total_;
  HistogramMetric* request_ms_;

  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  UniqueFd listener_;
  SelfPipe shutdown_pipe_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point started_at_;

  /// /tracez drains the process tracer (a consuming read — see the class
  /// comment in obs/trace.h) and folds events into this rolling summary.
  mutable Mutex tracez_mu_;
  TraceTypeSummary tracez_types_[kNumTraceEventTypes]
      STPQ_GUARDED_BY(tracez_mu_);
  uint64_t tracez_events_total_ STPQ_GUARDED_BY(tracez_mu_) = 0;
  uint64_t tracez_dropped_total_ STPQ_GUARDED_BY(tracez_mu_) = 0;
  /// Most recent completed query spans (trace id, duration).
  std::deque<std::pair<uint32_t, double>> tracez_recent_queries_
      STPQ_GUARDED_BY(tracez_mu_);
};

}  // namespace stpq

#endif  // STPQ_OBS_ADMIN_SERVER_H_
