#include "obs/timeseries.h"

#include <utility>

namespace stpq {

uint64_t IntervalSample::CounterDelta(const std::string& name) const {
  auto it = counter_deltas.find(name);
  return it == counter_deltas.end() ? 0 : it->second;
}

double IntervalSample::Rate(const std::string& name) const {
  const double s = seconds();
  if (s <= 0.0) return 0.0;
  return static_cast<double>(CounterDelta(name)) / s;
}

const LatencyHistogram* IntervalSample::Histogram(
    const std::string& name) const {
  auto it = histogram_deltas.find(name);
  return it == histogram_deltas.end() ? nullptr : &it->second;
}

double IntervalSample::PoolHitRate() const {
  const double hits =
      static_cast<double>(CounterDelta("stpq_buffer_hits_total"));
  const double reads =
      static_cast<double>(CounterDelta("stpq_pages_read_total"));
  const double total = hits + reads;
  return total > 0.0 ? hits / total : 0.0;
}

MetricsRecorder::MetricsRecorder(MetricsRecorderOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::Global()),
      epoch_(std::chrono::steady_clock::now()) {}

MetricsRecorder::~MetricsRecorder() { Stop(); }

double MetricsRecorder::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void MetricsRecorder::Start() {
  if (running_.load(std::memory_order_relaxed)) return;
  {
    // Baseline snapshot: the first interval measures from Start, not from
    // whatever the registry accumulated before it.
    MutexLock lock(mu_);
    last_snapshot_ = registry_->Snapshot();
    last_edge_ms_ = NowMs();
    have_baseline_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread(&MetricsRecorder::SamplerLoop, this);
}

void MetricsRecorder::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  running_.store(false, std::memory_order_relaxed);
  // Close the final (partial) interval so short runs still report data.
  SampleNow();
}

void MetricsRecorder::SamplerLoop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    const auto interval = std::chrono::milliseconds(options_.interval_ms);
    if (wake_cv_.wait_for(lock, interval,
                          [this] { return stop_requested_; })) {
      return;  // Stop() takes the final sample after the join
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void MetricsRecorder::SampleNow() {
  MetricsSnapshot now = registry_->Snapshot();
  const double edge_ms = NowMs();

  MutexLock lock(mu_);
  if (!have_baseline_) {
    last_snapshot_ = std::move(now);
    last_edge_ms_ = edge_ms;
    have_baseline_ = true;
    return;
  }

  IntervalSample sample;
  sample.start_ms = last_edge_ms_;
  sample.end_ms = edge_ms;
  for (const auto& [name, value] : now.counters) {
    auto it = last_snapshot_.counters.find(name);
    const uint64_t older = it == last_snapshot_.counters.end() ? 0 : it->second;
    sample.counter_deltas.emplace(name, SaturatingCounterDelta(value, older));
  }
  sample.gauges = now.gauges;
  for (const auto& [name, hist] : now.histograms) {
    auto it = last_snapshot_.histograms.find(name);
    if (it == last_snapshot_.histograms.end()) {
      sample.histogram_deltas.emplace(name, hist);
    } else {
      sample.histogram_deltas.emplace(name, hist.Delta(it->second));
    }
  }
  last_snapshot_ = std::move(now);
  last_edge_ms_ = edge_ms;

  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<IntervalSample> MetricsRecorder::Recent(double window_s) const {
  MutexLock lock(mu_);
  std::vector<IntervalSample> out;
  if (ring_.empty()) return out;
  const double cutoff_ms =
      window_s > 0.0 ? ring_.back().end_ms - window_s * 1000.0 : -1.0;
  for (const IntervalSample& s : ring_) {
    if (s.end_ms >= cutoff_ms) out.push_back(s);
  }
  return out;
}

size_t MetricsRecorder::sample_count() const {
  MutexLock lock(mu_);
  return ring_.size();
}

}  // namespace stpq
