// Process-wide metrics registry with Prometheus text exposition
// (DESIGN.md §12).
//
// Counters, gauges, and histograms are registered by name on first use and
// live for the process lifetime; instrument handles are stable pointers,
// so hot code looks a metric up once and then updates it with a single
// atomic operation.  The engine feeds the registry once per completed
// query from the final QueryStats — never from inside the search loops —
// so the per-query cost is a dozen relaxed atomic adds regardless of how
// much work the query did.
//
// RenderPrometheusText() produces the Prometheus text exposition format
// (text/plain; version 0.0.4): one `# HELP`/`# TYPE` pair per metric, and
// for histograms the cumulative `_bucket{le="..."}` series plus `_sum`
// and `_count`.  Latencies are exported in milliseconds and the metric
// names carry the `_ms` suffix, so no unit conversion happens anywhere.
#ifndef STPQ_OBS_METRICS_REGISTRY_H_
#define STPQ_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/histogram.h"
#include "util/thread_annotations.h"

namespace stpq {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;

  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;

  std::atomic<double> value_{0.0};
};

/// Concurrently writable latency histogram sharing LatencyBuckets' layout.
/// Record is wait-free (three relaxed atomic RMWs); Snapshot() folds the
/// buckets into a single-writer LatencyHistogram for percentile queries.
class HistogramMetric {
 public:
  void Record(double ms);

  /// Consistent-enough copy for reporting: bucket counts are read
  /// individually, so a concurrent Record may straddle the snapshot by one
  /// sample — fine for monitoring, which is this type's only consumer.
  LatencyHistogram Snapshot() const;

 private:
  friend class MetricsRegistry;

  std::atomic<uint64_t> buckets_[LatencyBuckets::kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  /// Milliseconds accumulated as fixed-point nanoseconds: double has no
  /// atomic fetch_add pre-C++20 on all toolchains, and integer addition is
  /// exact under concurrency.
  std::atomic<uint64_t> sum_ns_{0};
};

/// Point-in-time copy of every registered instrument, keyed by metric
/// name.  The unit the time-series recorder (obs/timeseries.h) samples:
/// two snapshots subtract into interval deltas.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHistogram> histograms;
};

/// Name -> instrument registry.  GetX() registers on first use and returns
/// a stable reference; names must stay consistent in kind (getting a
/// counter name as a gauge aborts).
class MetricsRegistry {
 public:
  /// The process-wide registry (constructed on first use, never torn down
  /// before exit so instrument handles cached in statics stay valid).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help)
      STPQ_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& help)
      STPQ_EXCLUDES(mu_);
  HistogramMetric& GetHistogram(const std::string& name,
                                const std::string& help) STPQ_EXCLUDES(mu_);

  /// Prometheus text exposition of every registered metric, sorted by
  /// name.  Safe to call while other threads update instruments.
  std::string RenderPrometheusText() const STPQ_EXCLUDES(mu_);

  /// Copies every instrument's current value.  Same consistency contract
  /// as HistogramMetric::Snapshot(): individual reads are atomic, the set
  /// as a whole may straddle concurrent updates by one sample — fine for
  /// monitoring, which is this method's only consumer.
  MetricsSnapshot Snapshot() const STPQ_EXCLUDES(mu_);

  /// Zeroes every registered instrument (tests only; instruments stay
  /// registered so cached handles remain valid).
  void ResetForTest() STPQ_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& GetEntry(const std::string& name, const std::string& help,
                  Kind kind) STPQ_EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Sorted so the text exposition is stable.  The Entry values hold the
  /// instruments by unique_ptr, so the handles GetX() returns stay valid
  /// outside the lock; only the map structure itself is guarded.
  std::map<std::string, Entry> entries_ STPQ_GUARDED_BY(mu_);
};

}  // namespace stpq

#endif  // STPQ_OBS_METRICS_REGISTRY_H_
