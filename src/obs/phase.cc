#include "obs/phase.h"

namespace stpq {

thread_local PhaseTimer* PhaseTimer::current_ = nullptr;

}  // namespace stpq
