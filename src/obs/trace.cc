#include "obs/trace.h"

namespace stpq {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Epoch every timestamp is relative to: fixed once per process so rings
/// from different threads share one timeline.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kQuery:
      return "query";
    case TraceEventType::kComponentScore:
      return "component_score";
    case TraceEventType::kCombinationRound:
      return "combination_round";
    case TraceEventType::kRetrievalBatch:
      return "retrieval_batch";
    case TraceEventType::kVoronoiCell:
      return "voronoi_cell";
    case TraceEventType::kNodeVisit:
      return "node_visit";
    case TraceEventType::kPoolHit:
      return "pool_hit";
    case TraceEventType::kPoolMiss:
      return "pool_miss";
    case TraceEventType::kPoolEvict:
      return "pool_evict";
    case TraceEventType::kHeapHighWater:
      return "heap_high_water";
    case TraceEventType::kBuildPhase:
      return "build_phase";
    case TraceEventType::kAdminRequest:
      return "admin_request";
  }
  return "unknown";
}

TraceRing::TraceRing(uint32_t thread_ordinal, size_t capacity)
    : thread_ordinal_(thread_ordinal),
      mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
      buf_(mask_ + 1) {}

bool TraceRing::TryEmit(const TraceEvent& e) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail > mask_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  buf_[head & mask_] = e;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void TraceRing::Drain(bool keep_all, uint32_t filter_trace_id,
                      std::vector<TraceEvent>* out) {
  MutexLock lock(consume_mu_);
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (; tail != head; ++tail) {
    const TraceEvent& e = buf_[tail & mask_];
    if (out != nullptr && (keep_all || e.trace_id == filter_trace_id)) {
      out->push_back(e);
    }
  }
  tail_.store(tail, std::memory_order_release);
}

std::atomic<bool> Tracer::active_{false};
thread_local TraceRing* Tracer::tls_ring_ = nullptr;
thread_local uint32_t Tracer::tls_trace_id_ = 0;

// stpq-lint: allow(hot-alloc) leaky singleton: one allocation per process
Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  // Pin the epoch before the first event so timestamps never go negative.
  (void)Epoch();
  return *tracer;
}

void Tracer::Start(size_t ring_capacity) {
  {
    MutexLock lock(mu_);
    ring_capacity_ = ring_capacity < 2 ? 2 : ring_capacity;
  }
  active_.store(true, std::memory_order_release);
}

void Tracer::Stop() { active_.store(false, std::memory_order_release); }

TraceCollection Tracer::Collect() {
  TraceCollection out;
  MutexLock lock(mu_);
  for (const std::unique_ptr<TraceRing>& ring : rings_) {
    TraceThreadEvents t;
    t.thread_ordinal = ring->thread_ordinal();
    ring->Drain(/*keep_all=*/true, 0, &t.events);
    t.dropped = ring->TakeDropped();
    out.dropped += t.dropped;
    if (!t.events.empty() || t.dropped > 0) {
      out.threads.push_back(std::move(t));
    }
  }
  return out;
}

void Tracer::Discard() {
  MutexLock lock(mu_);
  for (const std::unique_ptr<TraceRing>& ring : rings_) {
    ring->Drain(/*keep_all=*/false, 0, nullptr);
    (void)ring->TakeDropped();
  }
}

TraceRing* Tracer::RingForThisThread() {
  if (tls_ring_ == nullptr) {
    MutexLock lock(mu_);
    rings_.push_back(std::make_unique<TraceRing>(
        static_cast<uint32_t>(rings_.size()), ring_capacity_));
    tls_ring_ = rings_.back().get();
  }
  return tls_ring_;
}

void Tracer::Emit(TraceEventType type, TraceMark mark, uint8_t arg_a,
                  uint8_t arg_b, uint32_t arg_c, uint64_t arg_d) {
  if (!Active()) return;
  TraceEvent e;
  e.ts_ns = NowNs();
  e.trace_id = tls_trace_id_;
  e.type = type;
  e.mark = mark;
  e.arg_a = arg_a;
  e.arg_b = arg_b;
  e.arg_c = arg_c;
  e.arg_d = arg_d;
  Global().RingForThisThread()->TryEmit(e);
}

void Tracer::DrainCurrentThread(uint32_t trace_id,
                                std::vector<TraceEvent>* out) {
  if (tls_ring_ == nullptr) return;
  tls_ring_->Drain(/*keep_all=*/false, trace_id, out);
}

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

void SlowQueryLog::Offer(uint32_t trace_id, double elapsed_ms,
                         const QueryStats& stats) {
  std::vector<TraceEvent> events;
#if !defined(STPQ_DISABLE_TRACING)
  // Consume this thread's pending events whether or not the query was
  // slow: discarding fast queries keeps the ring from filling up over a
  // long capture session.
  Tracer::DrainCurrentThread(trace_id, &events);
#endif
  if (elapsed_ms < threshold_ms_) return;
  SlowQueryRecord record;
  record.trace_id = trace_id;
  record.thread_ordinal = Tracer::CurrentThreadOrdinal();
  record.elapsed_ms = elapsed_ms;
  record.stats = stats;
  record.events = std::move(events);
  MutexLock lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > max_records_) records_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  MutexLock lock(mu_);
  return {records_.begin(), records_.end()};
}

size_t SlowQueryLog::size() const {
  MutexLock lock(mu_);
  return records_.size();
}

}  // namespace stpq
