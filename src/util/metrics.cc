#include "util/metrics.h"

#include <algorithm>
#include <sstream>

namespace stpq {

// Regression guard: QueryStats has 12 uint64_t counters, 2 standalone
// doubles, the phase_ms array, and the traversal profile — all 8-byte
// members (no padding on any supported ABI).  Adding a field changes the
// size and fails this assert — update operator+=, ToString(), and the
// QueryStatsContract tests in util_test.cc, then bump the count.
static_assert(sizeof(TraversalProfile) ==
                  (1 + kMaxProfiledFeatureSets) *
                      TreeTraversalCounts::kNumLevels * 3 * 8,
              "TraversalProfile changed: update QueryStats's contract");
static_assert(sizeof(QueryStats) ==
                  (12 + 2 + kNumQueryPhases) * 8 + sizeof(TraversalProfile),
              "QueryStats changed: update operator+=, ToString(), and the "
              "QueryStatsContract tests, then adjust this assert");

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kCombination:
      return "combination";
    case QueryPhase::kComponentScore:
      return "component_score";
    case QueryPhase::kObjectRetrieval:
      return "object_retrieval";
    case QueryPhase::kVoronoi:
      return "voronoi";
  }
  return "unknown";
}

uint64_t TraversalProfile::TotalVisited() const {
  return object_tree.TotalVisited() + FeatureVisited();
}

uint64_t TraversalProfile::TotalPruned() const {
  return object_tree.TotalPruned() + FeaturePruned();
}

uint64_t TraversalProfile::TotalDescended() const {
  return object_tree.TotalDescended() + FeatureDescended();
}

uint64_t TraversalProfile::FeatureVisited() const {
  uint64_t sum = 0;
  for (const TreeTraversalCounts& t : feature_tree) sum += t.TotalVisited();
  return sum;
}

uint64_t TraversalProfile::FeaturePruned() const {
  uint64_t sum = 0;
  for (const TreeTraversalCounts& t : feature_tree) sum += t.TotalPruned();
  return sum;
}

uint64_t TraversalProfile::FeatureDescended() const {
  uint64_t sum = 0;
  for (const TreeTraversalCounts& t : feature_tree) sum += t.TotalDescended();
  return sum;
}

double QueryStats::TracedMillis() const {
  double sum = 0.0;
  for (double ms : phase_ms) sum += ms;
  return sum;
}

double QueryStats::UntracedMillis() const {
  return std::max(0.0, cpu_ms - TracedMillis());
}

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  object_index_reads += other.object_index_reads;
  feature_index_reads += other.feature_index_reads;
  buffer_hits += other.buffer_hits;
  heap_pushes += other.heap_pushes;
  features_retrieved += other.features_retrieved;
  combinations_generated += other.combinations_generated;
  combinations_emitted += other.combinations_emitted;
  objects_scored += other.objects_scored;
  voronoi_cells += other.voronoi_cells;
  voronoi_clip_features += other.voronoi_clip_features;
  voronoi_reads += other.voronoi_reads;
  voronoi_cpu_ms += other.voronoi_cpu_ms;
  voronoi_cache_hits += other.voronoi_cache_hits;
  cpu_ms += other.cpu_ms;
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    phase_ms[i] += other.phase_ms[i];
  }
  traversal += other.traversal;
  return *this;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << TotalReads() << " (obj=" << object_index_reads
     << ", feat=" << feature_index_reads << ") hits=" << buffer_hits
     << " heap_pushes=" << heap_pushes
     << " features=" << features_retrieved
     << " combos=" << combinations_emitted << "/" << combinations_generated
     << " scored=" << objects_scored << " cpu_ms=" << cpu_ms;
  if (voronoi_cells > 0 || voronoi_clip_features > 0 || voronoi_reads > 0 ||
      voronoi_cache_hits > 0 || voronoi_cpu_ms > 0.0) {
    os << " voronoi(cells=" << voronoi_cells
       << ", clip_features=" << voronoi_clip_features
       << ", reads=" << voronoi_reads << ", cpu_ms=" << voronoi_cpu_ms
       << ", cache_hits=" << voronoi_cache_hits << ")";
  }
  if (traversal.TotalVisited() > 0 || traversal.TotalPruned() > 0 ||
      traversal.TotalDescended() > 0) {
    os << " traversal(obj_visited=" << traversal.object_tree.TotalVisited()
       << ", obj_pruned=" << traversal.object_tree.TotalPruned()
       << ", obj_descended=" << traversal.object_tree.TotalDescended()
       << ", feat_visited=" << traversal.FeatureVisited()
       << ", feat_pruned=" << traversal.FeaturePruned()
       << ", feat_descended=" << traversal.FeatureDescended() << ")";
  }
  if (TracedMillis() > 0.0) {
    os << " phases(";
    bool first = true;
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      if (!first) os << ", ";
      first = false;
      os << QueryPhaseName(static_cast<QueryPhase>(i)) << "=" << phase_ms[i];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace stpq
