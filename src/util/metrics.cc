#include "util/metrics.h"

#include <algorithm>
#include <sstream>

namespace stpq {

// Regression guard: QueryStats has 12 uint64_t counters, 2 standalone
// doubles, and the phase_ms array — all 8-byte members (no padding on any
// supported ABI).  Adding a field changes the size and fails this assert —
// update operator+=, ToString(), and the QueryStatsContract tests in
// util_test.cc, then bump the count.
static_assert(sizeof(QueryStats) == (12 + 2 + kNumQueryPhases) * 8,
              "QueryStats changed: update operator+=, ToString(), and the "
              "QueryStatsContract tests, then adjust this assert");

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kCombination:
      return "combination";
    case QueryPhase::kComponentScore:
      return "component_score";
    case QueryPhase::kObjectRetrieval:
      return "object_retrieval";
    case QueryPhase::kVoronoi:
      return "voronoi";
  }
  return "unknown";
}

double QueryStats::TracedMillis() const {
  double sum = 0.0;
  for (double ms : phase_ms) sum += ms;
  return sum;
}

double QueryStats::UntracedMillis() const {
  return std::max(0.0, cpu_ms - TracedMillis());
}

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  object_index_reads += other.object_index_reads;
  feature_index_reads += other.feature_index_reads;
  buffer_hits += other.buffer_hits;
  heap_pushes += other.heap_pushes;
  features_retrieved += other.features_retrieved;
  combinations_generated += other.combinations_generated;
  combinations_emitted += other.combinations_emitted;
  objects_scored += other.objects_scored;
  voronoi_cells += other.voronoi_cells;
  voronoi_clip_features += other.voronoi_clip_features;
  voronoi_reads += other.voronoi_reads;
  voronoi_cpu_ms += other.voronoi_cpu_ms;
  voronoi_cache_hits += other.voronoi_cache_hits;
  cpu_ms += other.cpu_ms;
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    phase_ms[i] += other.phase_ms[i];
  }
  return *this;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << TotalReads() << " (obj=" << object_index_reads
     << ", feat=" << feature_index_reads << ") hits=" << buffer_hits
     << " heap_pushes=" << heap_pushes
     << " features=" << features_retrieved
     << " combos=" << combinations_emitted << "/" << combinations_generated
     << " scored=" << objects_scored << " cpu_ms=" << cpu_ms;
  if (voronoi_cells > 0 || voronoi_clip_features > 0 || voronoi_reads > 0 ||
      voronoi_cache_hits > 0 || voronoi_cpu_ms > 0.0) {
    os << " voronoi(cells=" << voronoi_cells
       << ", clip_features=" << voronoi_clip_features
       << ", reads=" << voronoi_reads << ", cpu_ms=" << voronoi_cpu_ms
       << ", cache_hits=" << voronoi_cache_hits << ")";
  }
  if (TracedMillis() > 0.0) {
    os << " phases(";
    bool first = true;
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      if (!first) os << ", ";
      first = false;
      os << QueryPhaseName(static_cast<QueryPhase>(i)) << "=" << phase_ms[i];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace stpq
