#include "util/metrics.h"

#include <sstream>

namespace stpq {

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  object_index_reads += other.object_index_reads;
  feature_index_reads += other.feature_index_reads;
  buffer_hits += other.buffer_hits;
  heap_pushes += other.heap_pushes;
  features_retrieved += other.features_retrieved;
  combinations_generated += other.combinations_generated;
  combinations_emitted += other.combinations_emitted;
  objects_scored += other.objects_scored;
  voronoi_cells += other.voronoi_cells;
  voronoi_clip_features += other.voronoi_clip_features;
  voronoi_reads += other.voronoi_reads;
  voronoi_cpu_ms += other.voronoi_cpu_ms;
  voronoi_cache_hits += other.voronoi_cache_hits;
  cpu_ms += other.cpu_ms;
  return *this;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << TotalReads() << " (obj=" << object_index_reads
     << ", feat=" << feature_index_reads << ") hits=" << buffer_hits
     << " features=" << features_retrieved
     << " combos=" << combinations_emitted << "/" << combinations_generated
     << " scored=" << objects_scored << " cpu_ms=" << cpu_ms;
  return os.str();
}

}  // namespace stpq
