// Assertion macros used for internal invariants.
//
// STPQ_DCHECK compiles away in release builds; STPQ_CHECK is always on and
// is reserved for cheap checks guarding memory safety or API misuse.
#ifndef STPQ_UTIL_LOGGING_H_
#define STPQ_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define STPQ_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "STPQ_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define STPQ_DCHECK(cond) STPQ_CHECK(cond)
#else
#define STPQ_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // STPQ_UTIL_LOGGING_H_
