// Assertion macros used for internal invariants.
//
// STPQ_DCHECK compiles away in release builds; STPQ_CHECK is always on and
// is reserved for cheap checks guarding memory safety or API misuse.
// STPQ_VALIDATE runs a deep Status-returning structural validator (see
// debug/validate.h) and aborts with the validator's violation path on
// failure; like STPQ_DCHECK it compiles away (argument unevaluated) in
// release builds unless STPQ_ENABLE_VALIDATION is defined (the CMake
// option STPQ_VALIDATE=ON does that).
#ifndef STPQ_UTIL_LOGGING_H_
#define STPQ_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define STPQ_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "STPQ_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define STPQ_DCHECK(cond) STPQ_CHECK(cond)
#else
#define STPQ_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

// The expression must evaluate to a ::stpq::Status (the macro is textual,
// so this header does not depend on util/status.h; expansion sites include
// debug/validate.h which does).
#if !defined(NDEBUG) || defined(STPQ_ENABLE_VALIDATION)
#define STPQ_VALIDATE(expr)                                                \
  do {                                                                     \
    const ::stpq::Status _stpq_validate_st = (expr);                       \
    if (!_stpq_validate_st.ok()) {                                         \
      std::fprintf(stderr, "STPQ_VALIDATE failed at %s:%d:\n  %s\n  %s\n", \
                   __FILE__, __LINE__, #expr,                              \
                   _stpq_validate_st.ToString().c_str());                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
#else
#define STPQ_VALIDATE(expr) \
  do {                      \
  } while (0)
#endif

#endif  // STPQ_UTIL_LOGGING_H_
