// Result<T>: value-or-Status, the return type of fallible constructors.
#ifndef STPQ_UTIL_RESULT_H_
#define STPQ_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace stpq {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.  [[nodiscard]] so fallible calls cannot be
/// silently ignored.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    STPQ_CHECK(!status_.ok() && "Result constructed from OK status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Access the contained value; aborts (in all build types) when !ok().
  [[nodiscard]] T& value() {
    STPQ_CHECK(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    STPQ_CHECK(ok());
    return *value_;
  }

  /// Moves the contained value out; aborts (in all build types) when !ok().
  [[nodiscard]] T TakeValue() {
    STPQ_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("empty result");
};

}  // namespace stpq

#endif  // STPQ_UTIL_RESULT_H_
