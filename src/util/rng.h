// Deterministic random number generation for data/query generators and tests.
//
// A fixed, seedable generator (splitmix64 + xoshiro-style mixing via
// std::mt19937_64) keeps every experiment reproducible across platforms.
#ifndef STPQ_UTIL_RNG_H_
#define STPQ_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace stpq {

/// Seedable random source with the distributions the generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Gaussian clamped into [lo, hi].
  double ClampedGaussian(double mean, double stddev, double lo, double hi) {
    double v = Gaussian(mean, stddev);
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Zipf-distributed integer in [0, n) with skew parameter `theta` (>0).
  /// Rank 0 is the most frequent value.
  uint32_t Zipf(uint32_t n, double theta) {
    STPQ_DCHECK(n > 0);
    // Inverse-CDF sampling over precomputed harmonic weights would need a
    // table per n; the rejection-free approximation below (Gray et al.,
    // "Quickly generating billion-record synthetic databases") is standard.
    double alpha = 1.0 / (1.0 - theta);
    double zetan = Zetan(n, theta);
    double eta = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                 (1.0 - Zetan(2, theta) / zetan);
    double u = Uniform();
    double uz = u * zetan;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta)) return 1;
    return static_cast<uint32_t>(n * std::pow(eta * u - eta + 1.0, alpha));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  double Zetan(uint32_t n, double theta) {
    // Cache the two harmonic sums we need repeatedly.
    if (n == cached_n_ && theta == cached_theta_) return cached_zetan_;
    double z = 0.0;
    for (uint32_t i = 1; i <= n; ++i) z += 1.0 / std::pow(i, theta);
    if (n > 2) {  // only cache the expensive full-n sum
      cached_n_ = n;
      cached_theta_ = theta;
      cached_zetan_ = z;
    }
    return z;
  }

  std::mt19937_64 engine_;
  uint32_t cached_n_ = 0;
  double cached_theta_ = 0.0;
  double cached_zetan_ = 0.0;
};

}  // namespace stpq

#endif  // STPQ_UTIL_RNG_H_
