// Execution metrics: per-query cost counters reported by the benchmarks.
//
// The paper reports average execution time per query broken down into I/O
// time (proportional to page reads) and CPU time.  QueryStats carries both,
// plus algorithm-internal counters that the ablation benches inspect, plus
// a per-phase wall-time breakdown filled by obs/phase.h's PhaseTimer
// (DESIGN.md §12).
#ifndef STPQ_UTIL_METRICS_H_
#define STPQ_UTIL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace stpq {

/// Named query-execution phases that PhaseTimer (obs/phase.h) attributes
/// wall-time to.  The taxonomy follows the algorithmic structure shared by
/// STDS and STPS (DESIGN.md §12): combination enumeration (Algorithm 4),
/// component-score search over the feature indexes (Algorithm 2 and the
/// sorted feature streams), data-object retrieval/scanning, and Voronoi
/// cell construction (NN variant).  Time not covered by any timer is
/// reported as "other" (total CPU minus the traced phases); simulated
/// buffer-pool I/O is priced separately from page reads, so it is a
/// *derived* phase, not a timed one.
enum class QueryPhase : uint8_t {
  kCombination = 0,    ///< combination enumeration / threshold maintenance
  kComponentScore,     ///< tau_i(p) searches and sorted feature retrieval
  kObjectRetrieval,    ///< data-object fetching, scanning, and scoring
  kVoronoi,            ///< Voronoi cell construction (NN variant)
};

/// Number of timed phases (the extent of the QueryPhase enum).
inline constexpr size_t kNumQueryPhases = 4;

/// Human-readable phase name ("combination", "component_score", ...).
const char* QueryPhaseName(QueryPhase phase);

/// Feature sets the traversal profile resolves individually.  Mirrors
/// combination.h's kMaxFeatureSets (a static_assert there keeps the two in
/// sync); deeper ordinals fold into the last slot.
inline constexpr size_t kMaxProfiledFeatureSets = 8;

/// Per-tree-level traversal counters for one index tree.
///
/// `visited[L]` counts node expansions at level L (one per page access of
/// that tree in the query path); while a level-L node is expanded, each of
/// its child entries is either discarded by a filter (`pruned[L]`) or
/// enqueued for traversal / accepted into the result (`descended[L]`).
/// Levels follow the R-tree convention (0 = leaf); levels beyond
/// kNumLevels-1 clamp into the last slot.
struct TreeTraversalCounts {
  static constexpr size_t kNumLevels = 8;

  uint64_t visited[kNumLevels] = {};
  uint64_t pruned[kNumLevels] = {};
  uint64_t descended[kNumLevels] = {};

  void RecordVisit(size_t level, uint64_t pruned_n, uint64_t descended_n) {
    const size_t slot = level < kNumLevels ? level : kNumLevels - 1;
    visited[slot] += 1;
    pruned[slot] += pruned_n;
    descended[slot] += descended_n;
  }

  uint64_t TotalVisited() const {
    uint64_t sum = 0;
    for (uint64_t v : visited) sum += v;
    return sum;
  }
  uint64_t TotalPruned() const {
    uint64_t sum = 0;
    for (uint64_t v : pruned) sum += v;
    return sum;
  }
  uint64_t TotalDescended() const {
    uint64_t sum = 0;
    for (uint64_t v : descended) sum += v;
    return sum;
  }

  TreeTraversalCounts& operator+=(const TreeTraversalCounts& other) {
    for (size_t i = 0; i < kNumLevels; ++i) {
      visited[i] += other.visited[i];
      pruned[i] += other.pruned[i];
      descended[i] += other.descended[i];
    }
    return *this;
  }
};

/// Per-query traversal profile: one TreeTraversalCounts for the object
/// R-tree plus one per feature set.  Every simulated page access in the
/// query path records exactly one visit here, so per-tree visited totals
/// reconcile with the buffer-pool read+hit counters (trace_export_test
/// asserts the invariant).
struct TraversalProfile {
  TreeTraversalCounts object_tree;
  TreeTraversalCounts feature_tree[kMaxProfiledFeatureSets];

  /// The counts of feature set `ordinal` (clamped into the last slot).
  TreeTraversalCounts& FeatureTree(uint32_t ordinal) {
    return feature_tree[ordinal < kMaxProfiledFeatureSets
                            ? ordinal
                            : kMaxProfiledFeatureSets - 1];
  }
  const TreeTraversalCounts& FeatureTree(uint32_t ordinal) const {
    return feature_tree[ordinal < kMaxProfiledFeatureSets
                            ? ordinal
                            : kMaxProfiledFeatureSets - 1];
  }

  uint64_t TotalVisited() const;
  uint64_t TotalPruned() const;
  uint64_t TotalDescended() const;
  uint64_t FeatureVisited() const;
  uint64_t FeaturePruned() const;
  uint64_t FeatureDescended() const;

  TraversalProfile& operator+=(const TraversalProfile& other) {
    object_tree += other.object_tree;
    for (size_t i = 0; i < kMaxProfiledFeatureSets; ++i) {
      feature_tree[i] += other.feature_tree[i];
    }
    return *this;
  }
};

/// Cost counters accumulated while processing a single query (or a batch).
///
/// Contract: every field must be covered by operator+= and ToString(), and
/// the phase_ms array is element-wise summable like the counters.  A
/// regression guard in metrics.cc (sizeof static_assert) and
/// util_test.cc's QueryStatsContract tests fail when a field is added
/// without updating both.
struct QueryStats {
  // Simulated disk reads (buffer-pool misses), split by index family.
  uint64_t object_index_reads = 0;
  uint64_t feature_index_reads = 0;
  // Buffer-pool hits (no I/O charged).
  uint64_t buffer_hits = 0;

  // Algorithm-internal work counters.
  uint64_t heap_pushes = 0;            ///< entries pushed on any search heap
  uint64_t features_retrieved = 0;     ///< feature objects popped sorted by s(t)
  uint64_t combinations_generated = 0; ///< valid combinations materialized
  uint64_t combinations_emitted = 0;   ///< combinations returned by the iterator
  uint64_t objects_scored = 0;         ///< data objects whose tau(p) was computed
  uint64_t voronoi_cells = 0;          ///< Voronoi cells computed (NN variant)
  uint64_t voronoi_clip_features = 0;  ///< features streamed for cell clipping
  uint64_t voronoi_reads = 0;          ///< page reads charged to cell computation
  double voronoi_cpu_ms = 0.0;         ///< CPU time spent computing cells
  uint64_t voronoi_cache_hits = 0;     ///< cells served from the shared cache

  // Wall-clock CPU time of the query (filled by the caller's timer).
  double cpu_ms = 0.0;

  /// Self-time per phase (PhaseTimer attributes exclusive time, so nested
  /// timers never double-count and the entries sum to at most cpu_ms).
  double phase_ms[kNumQueryPhases] = {};

  /// Per-tree-level visited/pruned/descended counts (DESIGN.md §14).
  /// Always populated — the counters are plain adds on state the kernels
  /// already touch, so they change neither allocations nor page reads.
  TraversalProfile traversal;

  /// Total simulated page reads.
  uint64_t TotalReads() const {
    return object_index_reads + feature_index_reads;
  }

  /// Simulated I/O time given a per-read unit cost in milliseconds.
  double IoMillis(double io_unit_cost_ms) const {
    return static_cast<double>(TotalReads()) * io_unit_cost_ms;
  }

  /// Self-time attributed to `phase`.
  double PhaseMillis(QueryPhase phase) const {
    return phase_ms[static_cast<size_t>(phase)];
  }

  /// Sum of all traced phase self-times (<= cpu_ms up to timer resolution).
  double TracedMillis() const;

  /// CPU time not attributed to any traced phase (never negative).
  double UntracedMillis() const;

  /// Element-wise accumulation (used to average over a query workload).
  QueryStats& operator+=(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace stpq

#endif  // STPQ_UTIL_METRICS_H_
