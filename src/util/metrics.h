// Execution metrics: per-query cost counters reported by the benchmarks.
//
// The paper reports average execution time per query broken down into I/O
// time (proportional to page reads) and CPU time.  QueryStats carries both,
// plus algorithm-internal counters that the ablation benches inspect.
#ifndef STPQ_UTIL_METRICS_H_
#define STPQ_UTIL_METRICS_H_

#include <cstdint>
#include <string>

namespace stpq {

/// Cost counters accumulated while processing a single query (or a batch).
struct QueryStats {
  // Simulated disk reads (buffer-pool misses), split by index family.
  uint64_t object_index_reads = 0;
  uint64_t feature_index_reads = 0;
  // Buffer-pool hits (no I/O charged).
  uint64_t buffer_hits = 0;

  // Algorithm-internal work counters.
  uint64_t heap_pushes = 0;            ///< entries pushed on any search heap
  uint64_t features_retrieved = 0;     ///< feature objects popped sorted by s(t)
  uint64_t combinations_generated = 0; ///< valid combinations materialized
  uint64_t combinations_emitted = 0;   ///< combinations returned by the iterator
  uint64_t objects_scored = 0;         ///< data objects whose tau(p) was computed
  uint64_t voronoi_cells = 0;          ///< Voronoi cells computed (NN variant)
  uint64_t voronoi_clip_features = 0;  ///< features streamed for cell clipping
  uint64_t voronoi_reads = 0;          ///< page reads charged to cell computation
  double voronoi_cpu_ms = 0.0;         ///< CPU time spent computing cells
  uint64_t voronoi_cache_hits = 0;     ///< cells served from the shared cache

  // Wall-clock CPU time of the query (filled by the caller's timer).
  double cpu_ms = 0.0;

  /// Total simulated page reads.
  uint64_t TotalReads() const {
    return object_index_reads + feature_index_reads;
  }

  /// Simulated I/O time given a per-read unit cost in milliseconds.
  double IoMillis(double io_unit_cost_ms) const {
    return static_cast<double>(TotalReads()) * io_unit_cost_ms;
  }

  /// Element-wise accumulation (used to average over a query workload).
  QueryStats& operator+=(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace stpq

#endif  // STPQ_UTIL_METRICS_H_
