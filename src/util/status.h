// Status: lightweight error propagation for fallible operations.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see util/result.h) instead of throwing.  The library's
// hot query paths are infallible by construction and return values directly.
#ifndef STPQ_UTIL_STATUS_H_
#define STPQ_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace stpq {

/// Error codes used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kCorruption,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// [[nodiscard]] at class level: every function returning a Status warns
/// when the caller drops it on the floor.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace stpq

/// Propagates a non-OK status to the caller.
#define STPQ_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::stpq::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#endif  // STPQ_UTIL_STATUS_H_
