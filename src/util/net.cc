#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace stpq {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    // close(2) is not retried on EINTR: POSIX leaves the descriptor state
    // unspecified and Linux guarantees it is closed either way.
    ::close(fd_);
  }
  fd_ = fd;
}

Result<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<UniqueFd> ConnectTcp(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return fd;
}

Result<UniqueFd> AcceptConn(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  return UniqueFd(fd);
}

Result<bool> WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

Result<int> WaitEitherReadable(int fd0, int fd1, int timeout_ms) {
  pollfd pfds[2] = {{fd0, POLLIN, 0}, {fd1, POLLIN, 0}};
  int rc;
  do {
    rc = ::poll(pfds, 2, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return -1;
  // POLLHUP/POLLERR also mean "a blocking call would return immediately",
  // which is exactly what the caller wants to know.
  for (int i = 0; i < 2; ++i) {
    if (pfds[i].revents != 0) return i;
  }
  return -1;
}

Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE — scrapers disconnect whenever they like.
    ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, std::string* out, size_t max_bytes) {
  char buf[4096];
  const size_t want = max_bytes < sizeof(buf) ? max_bytes : sizeof(buf);
  ssize_t n;
  do {
    n = ::recv(fd, buf, want, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("recv");
  out->append(buf, static_cast<size_t>(n));
  return static_cast<size_t>(n);
}

void SelfPipe::Notify() const {
  const char byte = 1;
  ssize_t n;
  do {
    n = ::write(write_end.get(), &byte, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN (pipe full) is fine: a pending byte already wakes the poller.
}

Result<SelfPipe> MakeSelfPipe() {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  SelfPipe p;
  p.read_end.Reset(fds[0]);
  p.write_end.Reset(fds[1]);
  // Non-blocking write end so Notify never blocks on a full pipe.
  int flags = ::fcntl(p.write_end.get(), F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(p.write_end.get(), F_SETFL, flags | O_NONBLOCK);
  }
  return p;
}

}  // namespace stpq
