// Function attributes carrying project contracts (DESIGN.md §15).
#ifndef STPQ_UTIL_ATTRIBUTES_H_
#define STPQ_UTIL_ATTRIBUTES_H_

/// Marks a function as part of the allocation-free query hot path
/// (DESIGN.md §13): after a session's warm-up, neither the function nor
/// anything it transitively calls may reach operator new / malloc or
/// construct an allocating standard-library object.  The contract is
/// enforced two ways — at runtime by the counting allocator in alloc_test,
/// and statically by tools/stpq_lint.py rule `hot-alloc`, which walks the
/// project call graph from every STPQ_HOT root.  The attribute also feeds
/// the optimizer's hot-function heuristics on GCC and Clang.
#if defined(__GNUC__) || defined(__clang__)
#define STPQ_HOT __attribute__((hot))
#else
#define STPQ_HOT
#endif

/// The complement: error/teardown paths kept out of the hot working set.
#if defined(__GNUC__) || defined(__clang__)
#define STPQ_COLD __attribute__((cold))
#else
#define STPQ_COLD
#endif

#endif  // STPQ_UTIL_ATTRIBUTES_H_
