// Clang Thread Safety Analysis annotations (DESIGN.md §15).
//
// The engine's concurrency contracts — which mutex guards which members,
// which internal methods require the lock held, which public entry points
// must not be called with it held — were previously prose in class
// comments, enforced only by tests that happened to exercise a violation.
// These macros move the contracts into the type system: under Clang,
// -Wthread-safety (promoted to an error by -Werror=thread-safety-analysis,
// see the top-level CMakeLists) rejects any access to a STPQ_GUARDED_BY
// member outside its mutex and any call to a STPQ_REQUIRES method without
// the capability.  Under GCC (which has no thread-safety analysis) every
// macro expands to nothing, so the annotations are free documentation.
//
// Use the stpq::Mutex / stpq::MutexLock wrappers below instead of
// std::mutex / std::lock_guard in annotated classes: the analysis only
// tracks types marked as capabilities, and libstdc++'s std::mutex is not.
// The project linter (tools/stpq_lint.py, rule `mutex-guard`) enforces
// that every mutex member carries at least one STPQ_GUARDED_BY
// relationship or an explicit suppression naming why not.
#ifndef STPQ_UTIL_THREAD_ANNOTATIONS_H_
#define STPQ_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define STPQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STPQ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lock) the analysis tracks.
#define STPQ_CAPABILITY(x) STPQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define STPQ_SCOPED_CAPABILITY STPQ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define STPQ_GUARDED_BY(x) STPQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define STPQ_PT_GUARDED_BY(x) STPQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the listed capabilities.
#define STPQ_REQUIRES(...) \
  STPQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and does not release
/// them before returning.
#define STPQ_ACQUIRE(...) \
  STPQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define STPQ_RELEASE(...) \
  STPQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define STPQ_TRY_ACQUIRE(ret, ...) \
  STPQ_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention: it acquires them itself).
#define STPQ_EXCLUDES(...) STPQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition order between two mutexes.
#define STPQ_ACQUIRED_BEFORE(...) \
  STPQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define STPQ_ACQUIRED_AFTER(...) \
  STPQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define STPQ_RETURN_CAPABILITY(x) STPQ_THREAD_ANNOTATION(lock_returned(x))

/// Assertion that the calling thread already holds the capability; the
/// analysis trusts it for the rest of the scope.
#define STPQ_ASSERT_CAPABILITY(x) \
  STPQ_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function.  Every use must
/// carry a comment explaining the out-of-band reason the access is safe
/// (e.g. an object that is single-threaded by construction, or a
/// test-only corruption backdoor on a quiescent object).
#define STPQ_NO_THREAD_SAFETY_ANALYSIS \
  STPQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace stpq {

/// std::mutex wrapper visible to the thread-safety analysis.  Same cost:
/// the wrapper is a single std::mutex member and every method is inline.
class STPQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STPQ_ACQUIRE() { mu_.lock(); }
  void Unlock() STPQ_RELEASE() { mu_.unlock(); }
  bool TryLock() STPQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock: std::lock_guard over stpq::Mutex, visible to the analysis.
class STPQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STPQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() STPQ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace stpq

#endif  // STPQ_UTIL_THREAD_ANNOTATIONS_H_
