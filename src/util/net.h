// Minimal POSIX TCP helpers for the embedded admin plane (DESIGN.md §18).
//
// Dependency-free wrappers over socket(2)/bind(2)/accept(2) with the error
// handling the rest of the codebase expects: typed Status returns, EINTR
// retry on every blocking call, and RAII ownership of file descriptors so
// no error path can leak one.  The admin HTTP server (obs/admin_server.h)
// is the first consumer; the sharded query service of ROADMAP item 1 is
// the intended second one, which is why these helpers live in util/ and
// know nothing about HTTP.
//
// All listeners bind 127.0.0.1 only: the admin plane is an introspection
// surface, not a public API, and keeping it loopback-scoped means armed
// workloads never expose an unauthenticated port beyond the host.
#ifndef STPQ_UTIL_NET_H_
#define STPQ_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"

namespace stpq {

/// Owning file descriptor: closes on destruction, move-only.  An empty
/// UniqueFd holds -1 and closes nothing.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held descriptor (EINTR-safe) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port; read it back with LocalPort).  SO_REUSEADDR is set so
/// restarting a server does not trip over TIME_WAIT.
[[nodiscard]] Result<UniqueFd> ListenTcp(uint16_t port, int backlog = 64);

/// The locally bound port of a socket (resolves port 0 after ListenTcp).
[[nodiscard]] Result<uint16_t> LocalPort(int fd);

/// Blocking connect to 127.0.0.1:`port` (test clients, scrapers).
[[nodiscard]] Result<UniqueFd> ConnectTcp(uint16_t port);

/// Accepts one connection (blocking, EINTR-retried).
[[nodiscard]] Result<UniqueFd> AcceptConn(int listen_fd);

/// Waits until `fd` is readable.  Ok(true) = readable, Ok(false) = timed
/// out after `timeout_ms` (-1 = wait forever).
[[nodiscard]] Result<bool> WaitReadable(int fd, int timeout_ms);

/// Like WaitReadable over two descriptors: returns the index (0 or 1) of
/// a readable one, or -1 on timeout.  The admin server's accept loop polls
/// {listener, shutdown pipe} through this.
[[nodiscard]] Result<int> WaitEitherReadable(int fd0, int fd1,
                                             int timeout_ms);

/// Writes all of `data` (short writes and EINTR retried).  EPIPE comes
/// back as IoError, not a signal: callers must have SIGPIPE suppressed
/// (the send path uses MSG_NOSIGNAL).
[[nodiscard]] Status WriteAll(int fd, const std::string& data);

/// Reads at most `max_bytes`, appending to `*out`.  Ok(0) = clean EOF.
[[nodiscard]] Result<size_t> ReadSome(int fd, std::string* out,
                                      size_t max_bytes);

/// A self-pipe: writing one byte to `write_end` wakes any poll on
/// `read_end`.  The standard trick for interrupting a blocking accept
/// loop from another thread without races.
struct SelfPipe {
  UniqueFd read_end;
  UniqueFd write_end;

  /// Best-effort wakeup byte (ignores a full pipe: one pending byte is
  /// already enough to wake the poller).
  void Notify() const;
};

[[nodiscard]] Result<SelfPipe> MakeSelfPipe();

}  // namespace stpq

#endif  // STPQ_UTIL_NET_H_
