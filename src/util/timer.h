// Wall-clock timing helpers used by the benchmark harnesses.
#ifndef STPQ_UTIL_TIMER_H_
#define STPQ_UTIL_TIMER_H_

#include <chrono>

namespace stpq {

/// Measures elapsed wall time in milliseconds with monotonic clocks.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time of the enclosing scope into a double (in ms).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator_ms)
      : accumulator_ms_(accumulator_ms) {}
  ~ScopedTimer() { *accumulator_ms_ += timer_.ElapsedMillis(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_ms_;
  Timer timer_;
};

}  // namespace stpq

#endif  // STPQ_UTIL_TIMER_H_
