// Bounded top-k accumulator ordered by descending score.
#ifndef STPQ_UTIL_TOPK_H_
#define STPQ_UTIL_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <queue>
#include <vector>

namespace stpq {

/// Keeps the k items with the highest scores seen so far.
///
/// Push is O(log k); Threshold() returns the current k-th best score (the
/// pruning threshold used by both STDS and STPS), or `floor` while fewer
/// than k items have been pushed.
template <typename Item>
class TopK {
 public:
  struct Scored {
    double score;
    Item item;
  };

  explicit TopK(size_t k, double floor = 0.0) : k_(k), floor_(floor) {}

  /// Offers an item; it is kept only if it ranks among the best k.
  void Push(double score, Item item) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({score, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    } else if (score > heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
      heap_.back() = {score, std::move(item)};
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    }
  }

  /// True once k items are held; from then on Threshold() is the k-th score.
  bool Full() const { return heap_.size() >= k_; }

  /// Current k-th best score, or the floor if fewer than k items were seen.
  double Threshold() const {
    return Full() && k_ > 0 ? heap_.front().score : floor_;
  }

  size_t Size() const { return heap_.size(); }

  /// Extracts the items sorted by descending score (destructive).
  std::vector<Scored> TakeSortedDescending() {
    std::vector<Scored> out = std::move(heap_);
    std::sort(out.begin(), out.end(), [](const Scored& a, const Scored& b) {
      return a.score > b.score;
    });
    return out;
  }

 private:
  static bool MinFirst(const Scored& a, const Scored& b) {
    return a.score > b.score;  // min-heap on score
  }

  size_t k_;
  double floor_;
  std::vector<Scored> heap_;
};

}  // namespace stpq

#endif  // STPQ_UTIL_TOPK_H_
