// Real-dataset substitute (see DESIGN.md Section 7).
//
// The paper's real dataset came from factual.com: ~25K hotels and ~79K
// restaurants across 13 US states, restaurants annotated with a rating and
// ~130 distinct cuisine keywords.  That data is proprietary, so this
// generator synthesizes a distribution-equivalent stand-in: a handful of
// large state-shaped macro clusters with town-level sub-clusters (few big
// clusters, unlike the synthetic set's 10,000 small ones — the property the
// paper credits for real-vs-synthetic differences), a 130-term Zipfian
// cuisine vocabulary, ratings concentrated around 0.7, and a second
// coffeehouse feature set so c=2 defaults work.
#ifndef STPQ_GEN_REAL_LIKE_H_
#define STPQ_GEN_REAL_LIKE_H_

#include <cstdint>

#include "gen/dataset.h"

namespace stpq {

/// Knobs for the real-like generator; defaults mirror the paper's corpus.
struct RealLikeConfig {
  uint64_t seed = 7;
  uint32_t num_hotels = 25'000;
  uint32_t num_restaurants = 79'000;
  uint32_t num_cafes = 30'000;
  uint32_t num_states = 13;
  uint32_t towns_per_state = 40;
  double state_stddev = 0.04;  ///< spread of towns within a state
  double town_stddev = 0.004;  ///< spread of venues within a town
  uint32_t cuisine_vocabulary = 130;
  uint32_t cafe_vocabulary = 60;
  double keyword_zipf_theta = 0.7;  ///< skew of keyword popularity
  /// Uniform scale on all cardinalities (benchmark scaling knob).
  double scale = 1.0;
};

/// Generates the real-like dataset: feature set 0 = restaurants,
/// feature set 1 = coffeehouses.  Deterministic in `config.seed`.
Dataset GenerateRealLike(const RealLikeConfig& config);

}  // namespace stpq

#endif  // STPQ_GEN_REAL_LIKE_H_
