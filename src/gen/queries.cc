#include "gen/queries.h"

#include "util/logging.h"
#include "util/rng.h"

namespace stpq {

std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryWorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<Query> out;
  out.reserve(config.count);
  for (uint32_t q = 0; q < config.count; ++q) {
    Query query;
    query.k = config.k;
    query.radius = config.radius;
    query.lambda = config.lambda;
    query.variant = config.variant;
    for (const FeatureTable& table : dataset.feature_tables) {
      KeywordSet kw(table.universe_size());
      // Sample keywords data-distributed: adopt keywords of random features
      // until the requested count is reached (capped by the universe).
      uint32_t want = std::min(config.keywords_per_set,
                               table.universe_size());
      uint32_t guard = 0;
      while (kw.Count() < want && guard < 1000) {
        const FeatureObject& f =
            table.Get(static_cast<ObjectId>(
                rng.UniformInt(0, table.size() - 1)));
        for (TermId t : f.keywords.ToTerms()) {
          if (kw.Count() >= want) break;
          kw.Insert(t);
        }
        ++guard;
      }
      STPQ_CHECK(!kw.Empty());
      query.keywords.push_back(std::move(kw));
    }
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace stpq
