// Generated dataset container shared by the synthetic and real-like
// generators.
#ifndef STPQ_GEN_DATASET_H_
#define STPQ_GEN_DATASET_H_

#include <vector>

#include "index/feature_table.h"
#include "text/vocabulary.h"

namespace stpq {

/// A complete STPQ workload input: data objects plus c feature tables.
struct Dataset {
  std::vector<DataObject> objects;
  std::vector<FeatureTable> feature_tables;
  /// Vocabulary per feature set (universe of W_i).
  std::vector<Vocabulary> vocabularies;
};

}  // namespace stpq

#endif  // STPQ_GEN_DATASET_H_
