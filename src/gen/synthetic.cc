#include "gen/synthetic.h"

#include "util/logging.h"
#include "util/rng.h"

namespace stpq {

namespace {

/// Cluster centers uniform in [0,1]^2.
std::vector<Point> MakeClusterCenters(Rng* rng, uint32_t n) {
  std::vector<Point> centers(n);
  for (Point& c : centers) {
    c.x = rng->Uniform();
    c.y = rng->Uniform();
  }
  return centers;
}

/// A point Gaussian-scattered around a random cluster, clamped to [0,1]^2.
Point ClusteredPoint(Rng* rng, const std::vector<Point>& centers,
                     double stddev) {
  const Point& c = centers[rng->UniformInt(0, centers.size() - 1)];
  return Point{rng->ClampedGaussian(c.x, stddev, 0.0, 1.0),
               rng->ClampedGaussian(c.y, stddev, 0.0, 1.0)};
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  STPQ_CHECK(config.num_feature_sets >= 1);
  STPQ_CHECK(config.min_keywords_per_feature >= 1);
  STPQ_CHECK(config.max_keywords_per_feature >=
             config.min_keywords_per_feature);
  Rng rng(config.seed);
  Dataset ds;

  std::vector<Point> centers =
      MakeClusterCenters(&rng, std::max(1u, config.num_clusters));

  ds.objects.reserve(config.num_objects);
  for (uint32_t i = 0; i < config.num_objects; ++i) {
    ds.objects.push_back(DataObject{
        i, ClusteredPoint(&rng, centers, config.cluster_stddev), {}});
  }

  for (uint32_t set = 0; set < config.num_feature_sets; ++set) {
    std::vector<FeatureObject> features;
    features.reserve(config.num_features_per_set);
    for (uint32_t i = 0; i < config.num_features_per_set; ++i) {
      FeatureObject f;
      f.pos = ClusteredPoint(&rng, centers, config.cluster_stddev);
      f.score = rng.Uniform();
      f.keywords = KeywordSet(config.vocabulary_size);
      uint32_t nkw = static_cast<uint32_t>(
          rng.UniformInt(config.min_keywords_per_feature,
                         config.max_keywords_per_feature));
      for (uint32_t j = 0; j < nkw; ++j) {
        f.keywords.Insert(static_cast<TermId>(
            rng.UniformInt(0, config.vocabulary_size - 1)));
      }
      features.push_back(std::move(f));
    }
    ds.feature_tables.emplace_back(std::move(features),
                                   config.vocabulary_size);
    ds.vocabularies.push_back(Vocabulary::Synthetic(config.vocabulary_size));
  }
  return ds;
}

}  // namespace stpq
