// Clustered synthetic dataset generator (Section 8.1).
//
// "Approximately 10,000 clusters constitute each synthetic dataset.  The
// number of distinct keywords is set to 256 as a default value and each
// feature object is characterized by one or more keywords that are picked
// randomly.  The spatial constituent of all datasets has been normalized
// in [0,1] x [0,1]."  (The experiment sweeps use Table 2's bold defaults:
// 100K objects/features, c=2, 128 indexed keywords.)
#ifndef STPQ_GEN_SYNTHETIC_H_
#define STPQ_GEN_SYNTHETIC_H_

#include <cstdint>

#include "gen/dataset.h"

namespace stpq {

/// Knobs for the clustered synthetic generator.
struct SyntheticConfig {
  uint64_t seed = 42;
  uint32_t num_objects = 100'000;
  uint32_t num_features_per_set = 100'000;
  uint32_t num_feature_sets = 2;   ///< c
  uint32_t vocabulary_size = 128;  ///< indexed keywords
  uint32_t num_clusters = 10'000;
  double cluster_stddev = 0.005;   ///< Gaussian spread within a cluster
  uint32_t min_keywords_per_feature = 1;
  uint32_t max_keywords_per_feature = 4;
};

/// Generates a clustered dataset; deterministic in `config.seed`.
Dataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace stpq

#endif  // STPQ_GEN_SYNTHETIC_H_
