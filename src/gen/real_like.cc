#include "gen/real_like.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace stpq {

namespace {

// Seed terms for readable vocabularies; remaining terms are generated.
constexpr const char* kCuisines[] = {
    "american",  "italian",   "mexican",    "chinese",   "japanese",
    "thai",      "indian",    "greek",      "french",    "spanish",
    "pizza",     "burgers",   "seafood",    "steak",     "barbecue",
    "sushi",     "vegan",     "vegetarian", "mediterranean", "korean",
    "vietnamese", "sandwiches", "subs",     "buffet",    "bistro",
    "asian",     "european",  "cajun",      "southern",  "breakfast",
    "brunch",    "deli",      "diner",      "tapas",     "noodles",
    "ramen",     "dumplings", "tacos",      "burritos",  "wings",
};

constexpr const char* kCafeTerms[] = {
    "espresso",  "cappuccino", "latte",     "mocha",    "macchiato",
    "decaf",     "tea",        "muffins",   "croissants", "cake",
    "bread",     "pastries",   "toast",     "donuts",   "bagels",
    "cookies",   "brownies",   "smoothies", "juice",    "iced-coffee",
};

Vocabulary MakeVocabulary(const char* const* seeds, size_t seed_count,
                          uint32_t size, const char* prefix) {
  Vocabulary v;
  for (size_t i = 0; i < seed_count && v.size() < size; ++i) {
    v.Intern(seeds[i]);
  }
  char buf[32];
  for (uint32_t i = v.size(); i < size; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%03u", prefix, i);
    v.Intern(buf);
  }
  return v;
}

/// Town centers: `num_states` macro clusters, each with sub-clusters.
std::vector<Point> MakeTowns(Rng* rng, const RealLikeConfig& cfg) {
  std::vector<Point> towns;
  for (uint32_t s = 0; s < cfg.num_states; ++s) {
    Point state{rng->Uniform(0.1, 0.9), rng->Uniform(0.1, 0.9)};
    for (uint32_t t = 0; t < cfg.towns_per_state; ++t) {
      towns.push_back(Point{
          rng->ClampedGaussian(state.x, cfg.state_stddev, 0.0, 1.0),
          rng->ClampedGaussian(state.y, cfg.state_stddev, 0.0, 1.0)});
    }
  }
  return towns;
}

Point TownPoint(Rng* rng, const std::vector<Point>& towns, double stddev) {
  const Point& t = towns[rng->UniformInt(0, towns.size() - 1)];
  return Point{rng->ClampedGaussian(t.x, stddev, 0.0, 1.0),
               rng->ClampedGaussian(t.y, stddev, 0.0, 1.0)};
}

/// Zipf-skewed keyword set of 1-3 terms.
KeywordSet ZipfKeywords(Rng* rng, uint32_t universe, double theta) {
  KeywordSet kw(universe);
  uint32_t n = static_cast<uint32_t>(rng->UniformInt(1, 3));
  for (uint32_t i = 0; i < n; ++i) {
    kw.Insert(std::min(rng->Zipf(universe, theta), universe - 1));
  }
  return kw;
}

uint32_t Scaled(uint32_t n, double scale) {
  return std::max(1u, static_cast<uint32_t>(n * scale));
}

}  // namespace

Dataset GenerateRealLike(const RealLikeConfig& config) {
  Rng rng(config.seed);
  Dataset ds;
  std::vector<Point> towns = MakeTowns(&rng, config);

  const uint32_t num_hotels = Scaled(config.num_hotels, config.scale);
  const uint32_t num_restaurants =
      Scaled(config.num_restaurants, config.scale);
  const uint32_t num_cafes = Scaled(config.num_cafes, config.scale);

  ds.objects.reserve(num_hotels);
  for (uint32_t i = 0; i < num_hotels; ++i) {
    ds.objects.push_back(
        DataObject{i, TownPoint(&rng, towns, config.town_stddev),
                   "hotel-" + std::to_string(i)});
  }

  // Feature set 0: restaurants with cuisine keywords.
  {
    std::vector<FeatureObject> restaurants;
    restaurants.reserve(num_restaurants);
    for (uint32_t i = 0; i < num_restaurants; ++i) {
      FeatureObject f;
      f.pos = TownPoint(&rng, towns, config.town_stddev);
      // Ratings cluster high, like review-site data.
      f.score = rng.ClampedGaussian(0.7, 0.15, 0.0, 1.0);
      f.keywords = ZipfKeywords(&rng, config.cuisine_vocabulary,
                                config.keyword_zipf_theta);
      f.name = "restaurant-" + std::to_string(i);
      restaurants.push_back(std::move(f));
    }
    ds.feature_tables.emplace_back(std::move(restaurants),
                                   config.cuisine_vocabulary);
    ds.vocabularies.push_back(
        MakeVocabulary(kCuisines, std::size(kCuisines),
                       config.cuisine_vocabulary, "cuisine"));
  }

  // Feature set 1: coffeehouses with menu keywords.
  {
    std::vector<FeatureObject> cafes;
    cafes.reserve(num_cafes);
    for (uint32_t i = 0; i < num_cafes; ++i) {
      FeatureObject f;
      f.pos = TownPoint(&rng, towns, config.town_stddev);
      f.score = rng.ClampedGaussian(0.65, 0.18, 0.0, 1.0);
      f.keywords = ZipfKeywords(&rng, config.cafe_vocabulary,
                                config.keyword_zipf_theta);
      f.name = "cafe-" + std::to_string(i);
      cafes.push_back(std::move(f));
    }
    ds.feature_tables.emplace_back(std::move(cafes), config.cafe_vocabulary);
    ds.vocabularies.push_back(MakeVocabulary(
        kCafeTerms, std::size(kCafeTerms), config.cafe_vocabulary, "cafe"));
  }
  return ds;
}

}  // namespace stpq
