// Query workload generator.
//
// The paper: "Every reported value is the average of 1,000 random queries,
// which are generated in a similar way as the synthetic data and follow the
// same data distribution."  Query keywords are sampled from the keyword
// distribution of each feature set by drawing random features and adopting
// their keywords, so popular keywords are queried proportionally often.
#ifndef STPQ_GEN_QUERIES_H_
#define STPQ_GEN_QUERIES_H_

#include <vector>

#include "core/query.h"
#include "gen/dataset.h"

namespace stpq {

/// Knobs for the query workload (defaults = Table 2 bold values).
struct QueryWorkloadConfig {
  uint64_t seed = 99;
  uint32_t count = 50;
  uint32_t k = 10;
  double radius = 0.01;
  double lambda = 0.5;
  uint32_t keywords_per_set = 3;
  ScoreVariant variant = ScoreVariant::kRange;
};

/// Generates `config.count` random queries over `dataset`.
std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryWorkloadConfig& config);

}  // namespace stpq

#endif  // STPQ_GEN_QUERIES_H_
