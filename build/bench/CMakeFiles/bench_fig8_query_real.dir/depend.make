# Empty dependencies file for bench_fig8_query_real.
# This may be replaced when dependencies are built.
