# Empty dependencies file for bench_ablation_influence.
# This may be replaced when dependencies are built.
