file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_influence.dir/bench_ablation_influence.cc.o"
  "CMakeFiles/bench_ablation_influence.dir/bench_ablation_influence.cc.o.d"
  "bench_ablation_influence"
  "bench_ablation_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
