file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_srt.dir/bench_ablation_srt.cc.o"
  "CMakeFiles/bench_ablation_srt.dir/bench_ablation_srt.cc.o.d"
  "bench_ablation_srt"
  "bench_ablation_srt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
