# Empty dependencies file for bench_ablation_srt.
# This may be replaced when dependencies are built.
