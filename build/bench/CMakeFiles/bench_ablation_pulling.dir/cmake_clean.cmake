file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pulling.dir/bench_ablation_pulling.cc.o"
  "CMakeFiles/bench_ablation_pulling.dir/bench_ablation_pulling.cc.o.d"
  "bench_ablation_pulling"
  "bench_ablation_pulling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pulling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
