# Empty dependencies file for bench_ablation_pulling.
# This may be replaced when dependencies are built.
