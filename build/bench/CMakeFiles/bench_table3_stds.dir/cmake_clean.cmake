file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_stds.dir/bench_table3_stds.cc.o"
  "CMakeFiles/bench_table3_stds.dir/bench_table3_stds.cc.o.d"
  "bench_table3_stds"
  "bench_table3_stds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_stds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
