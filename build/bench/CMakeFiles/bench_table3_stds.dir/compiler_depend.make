# Empty compiler generated dependencies file for bench_table3_stds.
# This may be replaced when dependencies are built.
