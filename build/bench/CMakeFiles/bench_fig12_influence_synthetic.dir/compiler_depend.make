# Empty compiler generated dependencies file for bench_fig12_influence_synthetic.
# This may be replaced when dependencies are built.
