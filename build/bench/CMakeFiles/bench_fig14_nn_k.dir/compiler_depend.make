# Empty compiler generated dependencies file for bench_fig14_nn_k.
# This may be replaced when dependencies are built.
