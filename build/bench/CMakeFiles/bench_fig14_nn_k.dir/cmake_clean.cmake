file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nn_k.dir/bench_fig14_nn_k.cc.o"
  "CMakeFiles/bench_fig14_nn_k.dir/bench_fig14_nn_k.cc.o.d"
  "bench_fig14_nn_k"
  "bench_fig14_nn_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nn_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
