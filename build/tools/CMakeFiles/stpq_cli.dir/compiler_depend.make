# Empty compiler generated dependencies file for stpq_cli.
# This may be replaced when dependencies are built.
