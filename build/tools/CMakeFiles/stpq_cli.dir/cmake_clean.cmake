file(REMOVE_RECURSE
  "CMakeFiles/stpq_cli.dir/stpq_cli.cc.o"
  "CMakeFiles/stpq_cli.dir/stpq_cli.cc.o.d"
  "stpq_cli"
  "stpq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
