file(REMOVE_RECURSE
  "CMakeFiles/explainable_search.dir/explainable_search.cc.o"
  "CMakeFiles/explainable_search.dir/explainable_search.cc.o.d"
  "explainable_search"
  "explainable_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainable_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
