
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/stpq.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/combination.cc" "src/CMakeFiles/stpq.dir/core/combination.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/combination.cc.o.d"
  "/root/repo/src/core/compute_score.cc" "src/CMakeFiles/stpq.dir/core/compute_score.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/compute_score.cc.o.d"
  "/root/repo/src/core/cursor.cc" "src/CMakeFiles/stpq.dir/core/cursor.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/cursor.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/stpq.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/engine.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/stpq.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/explain.cc.o.d"
  "/root/repo/src/core/object_retrieval.cc" "src/CMakeFiles/stpq.dir/core/object_retrieval.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/object_retrieval.cc.o.d"
  "/root/repo/src/core/score.cc" "src/CMakeFiles/stpq.dir/core/score.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/score.cc.o.d"
  "/root/repo/src/core/stds.cc" "src/CMakeFiles/stpq.dir/core/stds.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/stds.cc.o.d"
  "/root/repo/src/core/stps.cc" "src/CMakeFiles/stpq.dir/core/stps.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/stps.cc.o.d"
  "/root/repo/src/core/stps_influence.cc" "src/CMakeFiles/stpq.dir/core/stps_influence.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/stps_influence.cc.o.d"
  "/root/repo/src/core/stps_nn.cc" "src/CMakeFiles/stpq.dir/core/stps_nn.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/stps_nn.cc.o.d"
  "/root/repo/src/core/voronoi.cc" "src/CMakeFiles/stpq.dir/core/voronoi.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/voronoi.cc.o.d"
  "/root/repo/src/core/voronoi_cache.cc" "src/CMakeFiles/stpq.dir/core/voronoi_cache.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/voronoi_cache.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/stpq.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/stpq.dir/core/workload.cc.o.d"
  "/root/repo/src/gen/queries.cc" "src/CMakeFiles/stpq.dir/gen/queries.cc.o" "gcc" "src/CMakeFiles/stpq.dir/gen/queries.cc.o.d"
  "/root/repo/src/gen/real_like.cc" "src/CMakeFiles/stpq.dir/gen/real_like.cc.o" "gcc" "src/CMakeFiles/stpq.dir/gen/real_like.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/stpq.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/stpq.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/CMakeFiles/stpq.dir/geom/polygon.cc.o" "gcc" "src/CMakeFiles/stpq.dir/geom/polygon.cc.o.d"
  "/root/repo/src/hilbert/hilbert.cc" "src/CMakeFiles/stpq.dir/hilbert/hilbert.cc.o" "gcc" "src/CMakeFiles/stpq.dir/hilbert/hilbert.cc.o.d"
  "/root/repo/src/hilbert/keyword_hilbert.cc" "src/CMakeFiles/stpq.dir/hilbert/keyword_hilbert.cc.o" "gcc" "src/CMakeFiles/stpq.dir/hilbert/keyword_hilbert.cc.o.d"
  "/root/repo/src/index/feature_table.cc" "src/CMakeFiles/stpq.dir/index/feature_table.cc.o" "gcc" "src/CMakeFiles/stpq.dir/index/feature_table.cc.o.d"
  "/root/repo/src/index/index_stats.cc" "src/CMakeFiles/stpq.dir/index/index_stats.cc.o" "gcc" "src/CMakeFiles/stpq.dir/index/index_stats.cc.o.d"
  "/root/repo/src/index/ir2_tree.cc" "src/CMakeFiles/stpq.dir/index/ir2_tree.cc.o" "gcc" "src/CMakeFiles/stpq.dir/index/ir2_tree.cc.o.d"
  "/root/repo/src/index/object_index.cc" "src/CMakeFiles/stpq.dir/index/object_index.cc.o" "gcc" "src/CMakeFiles/stpq.dir/index/object_index.cc.o.d"
  "/root/repo/src/index/srt_index.cc" "src/CMakeFiles/stpq.dir/index/srt_index.cc.o" "gcc" "src/CMakeFiles/stpq.dir/index/srt_index.cc.o.d"
  "/root/repo/src/io/dataset_io.cc" "src/CMakeFiles/stpq.dir/io/dataset_io.cc.o" "gcc" "src/CMakeFiles/stpq.dir/io/dataset_io.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/stpq.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/stpq.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/stpq.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/stpq.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/keyword_set.cc" "src/CMakeFiles/stpq.dir/text/keyword_set.cc.o" "gcc" "src/CMakeFiles/stpq.dir/text/keyword_set.cc.o.d"
  "/root/repo/src/text/signature.cc" "src/CMakeFiles/stpq.dir/text/signature.cc.o" "gcc" "src/CMakeFiles/stpq.dir/text/signature.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/stpq.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/stpq.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/util/metrics.cc" "src/CMakeFiles/stpq.dir/util/metrics.cc.o" "gcc" "src/CMakeFiles/stpq.dir/util/metrics.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/stpq.dir/util/status.cc.o" "gcc" "src/CMakeFiles/stpq.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
