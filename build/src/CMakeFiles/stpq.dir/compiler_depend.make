# Empty compiler generated dependencies file for stpq.
# This may be replaced when dependencies are built.
