file(REMOVE_RECURSE
  "libstpq.a"
)
