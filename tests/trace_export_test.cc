// Tests for src/obs/trace.h + trace_export.h: ring emission/drain/drop
// semantics, slow-query capture, Chrome trace JSON rendering (balanced
// B/E pairs, instants, drop counter), and the TraversalProfile invariant
// that per-tree visited totals reconcile with the buffer-pool counters.
//
// The global Tracer is process-wide state; every test that arms it stops
// and discards before returning so suites stay order-independent.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace stpq {
namespace {

TraceEvent MakeEvent(TraceEventType type, TraceMark mark, uint64_t ts_ns,
                     uint32_t trace_id = 1) {
  TraceEvent e;
  e.ts_ns = ts_ns;
  e.trace_id = trace_id;
  e.type = type;
  e.mark = mark;
  return e;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

Dataset SmallDataset() {
  SyntheticConfig cfg;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 400;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 40;
  cfg.seed = 11;
  return GenerateSynthetic(cfg);
}

std::vector<Query> SmallWorkload(const Dataset& ds, uint32_t count) {
  QueryWorkloadConfig qcfg;
  qcfg.count = count;
  qcfg.k = 5;
  qcfg.radius = 0.05;
  return GenerateQueries(ds, qcfg);
}

// --------------------------------------------------------------- TraceRing

TEST(TraceRingTest, EmitAndDrainRoundTrip) {
  TraceRing ring(3, 16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryEmit(MakeEvent(TraceEventType::kNodeVisit,
                                       TraceMark::kInstant, 100 + i)));
  }
  std::vector<TraceEvent> out;
  ring.Drain(/*keep_all=*/true, 0, &out);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].ts_ns, static_cast<uint64_t>(100 + i));
    EXPECT_EQ(out[i].type, TraceEventType::kNodeVisit);
  }
  // A second drain yields nothing: events are consumed.
  out.clear();
  ring.Drain(true, 0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.thread_ordinal(), 3u);
}

TEST(TraceRingTest, DrainFiltersByTraceId) {
  TraceRing ring(0, 16);
  ring.TryEmit(MakeEvent(TraceEventType::kQuery, TraceMark::kBegin, 1, 7));
  ring.TryEmit(MakeEvent(TraceEventType::kQuery, TraceMark::kBegin, 2, 8));
  ring.TryEmit(MakeEvent(TraceEventType::kQuery, TraceMark::kEnd, 3, 7));
  std::vector<TraceEvent> out;
  ring.Drain(/*keep_all=*/false, /*filter_trace_id=*/7, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].trace_id, 7u);
  EXPECT_EQ(out[1].trace_id, 7u);
  // Filtering still consumes the mismatching events.
  out.clear();
  ring.Drain(true, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TraceRingTest, FullRingDropsAndCounts) {
  TraceRing ring(0, 8);  // capacity rounds to a power of two: 8 slots
  uint64_t accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (ring.TryEmit(
            MakeEvent(TraceEventType::kPoolHit, TraceMark::kInstant, i))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(ring.TakeDropped(), 12u);
  EXPECT_EQ(ring.TakeDropped(), 0u);  // TakeDropped resets the counter
  std::vector<TraceEvent> out;
  ring.Drain(true, 0, &out);
  ASSERT_EQ(out.size(), 8u);
  // The *oldest* events survive; drops lose the newest.
  EXPECT_EQ(out.front().ts_ns, 0u);
  EXPECT_EQ(out.back().ts_ns, 7u);
  // Draining frees the slots for new events.
  EXPECT_TRUE(ring.TryEmit(
      MakeEvent(TraceEventType::kPoolHit, TraceMark::kInstant, 99)));
}

// ------------------------------------------------------------------ Tracer

#if !defined(STPQ_DISABLE_TRACING)

TEST(TracerTest, IdleTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  tracer.Discard();
  Tracer::Emit(TraceEventType::kPoolHit, TraceMark::kInstant, 0, 0, 0, 1);
  EXPECT_TRUE(tracer.Collect().Empty());
}

TEST(TracerTest, StartCollectStopRoundTrip) {
  Tracer& tracer = Tracer::Global();
  tracer.Discard();
  tracer.Start();
  Tracer::Emit(TraceEventType::kPoolMiss, TraceMark::kInstant, 0, 0, 0, 42);
  Tracer::Emit(TraceEventType::kPoolHit, TraceMark::kInstant, 0, 0, 0, 42);
  tracer.Stop();
  TraceCollection collection = tracer.Collect();
  ASSERT_EQ(collection.TotalEvents(), 2u);
  EXPECT_EQ(collection.dropped, 0u);
  const std::vector<TraceEvent>& events = collection.threads[0].events;
  EXPECT_EQ(events[0].type, TraceEventType::kPoolMiss);
  EXPECT_EQ(events[1].type, TraceEventType::kPoolHit);
  EXPECT_EQ(events[0].arg_d, 42u);
  // Timestamps are monotone within a thread's ring.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  tracer.Discard();
}

TEST(TracerTest, TraceQueryScopeBracketsAndRestoresId) {
  Tracer& tracer = Tracer::Global();
  tracer.Discard();
  tracer.Start();
  {
    TraceQueryScope scope;
    EXPECT_NE(scope.id(), 0u);
    EXPECT_EQ(Tracer::CurrentTraceId(), scope.id());
  }
  EXPECT_EQ(Tracer::CurrentTraceId(), 0u);
  tracer.Stop();
  TraceCollection collection = tracer.Collect();
  ASSERT_EQ(collection.TotalEvents(), 2u);
  const std::vector<TraceEvent>& events = collection.threads[0].events;
  EXPECT_EQ(events[0].mark, TraceMark::kBegin);
  EXPECT_EQ(events[1].mark, TraceMark::kEnd);
  EXPECT_EQ(events[0].type, TraceEventType::kQuery);
  tracer.Discard();
}

#endif  // !STPQ_DISABLE_TRACING

// ----------------------------------------------------- Chrome trace render

TEST(ChromeTraceRenderTest, BalancesSpansAndMarksInstants) {
  TraceCollection collection;
  TraceThreadEvents thread;
  thread.thread_ordinal = 2;
  thread.events.push_back(
      MakeEvent(TraceEventType::kQuery, TraceMark::kBegin, 1000));
  thread.events.push_back(
      MakeEvent(TraceEventType::kNodeVisit, TraceMark::kInstant, 2000));
  thread.events.push_back(
      MakeEvent(TraceEventType::kQuery, TraceMark::kEnd, 3000));
  collection.threads.push_back(std::move(thread));
  collection.dropped = 7;

  const std::string json = RenderChromeTrace(collection);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  // Instants carry thread scope; the lane is labelled after the ring.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node_visit\""), std::string::npos);
  EXPECT_NE(json.find("stpq-ring-2"), std::string::npos);
  // Microsecond timestamps: 2000 ns -> "2.000".
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":7"), std::string::npos);
}

TEST(ChromeTraceRenderTest, SkipsOrphanEndsAndClosesDanglingBegins) {
  TraceCollection collection;
  TraceThreadEvents thread;
  thread.thread_ordinal = 0;
  // An end whose begin was consumed earlier, then a begin whose end was
  // dropped by ring truncation.
  thread.events.push_back(
      MakeEvent(TraceEventType::kComponentScore, TraceMark::kEnd, 500));
  thread.events.push_back(
      MakeEvent(TraceEventType::kQuery, TraceMark::kBegin, 1000));
  thread.events.push_back(
      MakeEvent(TraceEventType::kNodeVisit, TraceMark::kInstant, 1500));
  collection.threads.push_back(std::move(thread));

  const std::string json = RenderChromeTrace(collection);
  // The orphan end is skipped and the dangling begin is closed, so the
  // output balances exactly.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"component_score\""), 0u);
  // The synthetic end lands at the lane's last timestamp (1500 ns).
  EXPECT_NE(json.find("\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":1.500"),
            std::string::npos);
}

TEST(ChromeTraceRenderTest, NodeVisitArgsDecodeVerdicts) {
  TraceCollection collection;
  TraceThreadEvents thread;
  TraceEvent e =
      MakeEvent(TraceEventType::kNodeVisit, TraceMark::kInstant, 100);
  e.arg_a = kTraceObjectTree;
  e.arg_b = 3;
  e.arg_c = (5u << 16) | 9u;  // pruned=5, descended=9
  e.arg_d = 77;
  thread.events.push_back(e);
  collection.threads.push_back(std::move(thread));

  const std::string json = RenderChromeTrace(collection);
  EXPECT_NE(json.find("\"tree\":\"object\""), std::string::npos);
  EXPECT_NE(json.find("\"level\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pruned\":5"), std::string::npos);
  EXPECT_NE(json.find("\"descended\":9"), std::string::npos);
  EXPECT_NE(json.find("\"node\":77"), std::string::npos);
}

TEST(ChromeTraceRenderTest, WriteChromeTraceFileRoundTrips) {
  TraceCollection collection;
  collection.dropped = 3;
  const std::string path =
      testing::TempDir() + "stpq_trace_export_test.json";
  ASSERT_TRUE(WriteChromeTraceFile(collection, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), RenderChromeTrace(collection));
  std::remove(path.c_str());
}

// ------------------------------------------------------- slow-query capture

TEST(SlowQueryLogTest, RetainsOnlyQueriesAtOrAboveThreshold) {
  SlowQueryLog log(/*threshold_ms=*/5.0);
  QueryStats stats;
  stats.objects_scored = 4;
  log.Offer(/*trace_id=*/1, /*elapsed_ms=*/1.0, stats);
  log.Offer(/*trace_id=*/2, /*elapsed_ms=*/9.0, stats);
  log.Offer(/*trace_id=*/3, /*elapsed_ms=*/5.0, stats);
  EXPECT_EQ(log.size(), 2u);
  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 2u);
  EXPECT_EQ(records[1].trace_id, 3u);
  EXPECT_DOUBLE_EQ(records[0].elapsed_ms, 9.0);
  EXPECT_EQ(records[0].stats.objects_scored, 4u);
}

TEST(SlowQueryLogTest, BoundedRetentionDropsOldest) {
  SlowQueryLog log(/*threshold_ms=*/0.0, /*max_records=*/2);
  QueryStats stats;
  log.Offer(1, 1.0, stats);
  log.Offer(2, 1.0, stats);
  log.Offer(3, 1.0, stats);
  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 2u);
  EXPECT_EQ(records[1].trace_id, 3u);
}

TEST(CollectionFromSlowQueriesTest, GroupsRecordsByThreadOrdinal) {
  SlowQueryRecord a;
  a.trace_id = 1;
  a.thread_ordinal = 4;
  a.events.push_back(MakeEvent(TraceEventType::kQuery, TraceMark::kBegin,
                               100, 1));
  SlowQueryRecord b;
  b.trace_id = 2;
  b.thread_ordinal = 9;
  b.events.push_back(MakeEvent(TraceEventType::kQuery, TraceMark::kBegin,
                               200, 2));
  SlowQueryRecord c;
  c.trace_id = 3;
  c.thread_ordinal = 4;
  c.events.push_back(MakeEvent(TraceEventType::kQuery, TraceMark::kBegin,
                               300, 3));
  TraceCollection collection =
      CollectionFromSlowQueries({a, b, c}, /*dropped=*/11);
  EXPECT_EQ(collection.dropped, 11u);
  ASSERT_EQ(collection.threads.size(), 2u);
  EXPECT_EQ(collection.threads[0].thread_ordinal, 4u);
  EXPECT_EQ(collection.threads[0].events.size(), 2u);
  EXPECT_EQ(collection.threads[1].thread_ordinal, 9u);
  EXPECT_EQ(collection.threads[1].events.size(), 1u);
  // Per-lane order follows completion order (timestamp order here).
  EXPECT_EQ(collection.threads[0].events[0].trace_id, 1u);
  EXPECT_EQ(collection.threads[0].events[1].trace_id, 3u);
}

// ------------------------------------------------ engine integration tests

#if !defined(STPQ_DISABLE_TRACING)

TEST(EngineTracingTest, WorkloadProducesBalancedChromeTrace) {
  Dataset ds = SmallDataset();
  std::vector<Query> queries = SmallWorkload(ds, 6);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();

  Tracer& tracer = Tracer::Global();
  tracer.Discard();
  tracer.Start();
  for (const Query& q : queries) {
    ASSERT_TRUE(engine.Execute(q, Algorithm::kStps).ok());
  }
  tracer.Stop();
  TraceCollection collection = tracer.Collect();
  ASSERT_FALSE(collection.Empty());

  // Within each ring the timestamps are monotone and raw B/E marks of each
  // type balance (nothing dropped in this small run).
  EXPECT_EQ(collection.dropped, 0u);
  size_t node_visits = 0;
  size_t query_begins = 0;
  for (const TraceThreadEvents& thread : collection.threads) {
    uint64_t prev_ts = 0;
    int open = 0;
    for (const TraceEvent& e : thread.events) {
      EXPECT_GE(e.ts_ns, prev_ts);
      prev_ts = e.ts_ns;
      if (e.mark == TraceMark::kBegin) ++open;
      if (e.mark == TraceMark::kEnd) --open;
      EXPECT_GE(open, 0);
      if (e.type == TraceEventType::kNodeVisit) ++node_visits;
      if (e.type == TraceEventType::kQuery &&
          e.mark == TraceMark::kBegin) {
        ++query_begins;
        EXPECT_NE(e.trace_id, 0u);
      }
    }
    EXPECT_EQ(open, 0);
  }
  EXPECT_GT(node_visits, 0u);
  EXPECT_EQ(query_begins, queries.size());

  const std::string json = RenderChromeTrace(collection);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
  EXPECT_NE(json.find("\"name\":\"node_visit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"combination_round\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
  tracer.Discard();
}

TEST(EngineTracingTest, SlowQueryLogCapturesPerQueryEvents) {
  Dataset ds = SmallDataset();
  std::vector<Query> queries = SmallWorkload(ds, 4);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();

  Tracer& tracer = Tracer::Global();
  tracer.Discard();
  tracer.Start();
  SlowQueryLog log(/*threshold_ms=*/0.0);  // capture everything
  ExecuteOptions opts;
  opts.slow_log = &log;
  for (const Query& q : queries) {
    ASSERT_TRUE(engine.Execute(q, opts).ok());
  }
  tracer.Stop();

  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), queries.size());
  for (const SlowQueryRecord& r : records) {
    EXPECT_NE(r.trace_id, 0u);
    ASSERT_FALSE(r.events.empty());
    // Every captured event belongs to the captured query, and the kQuery
    // end event made it into the capture (End() precedes the offer).
    bool saw_query_end = false;
    for (const TraceEvent& e : r.events) {
      EXPECT_EQ(e.trace_id, r.trace_id);
      if (e.type == TraceEventType::kQuery && e.mark == TraceMark::kEnd) {
        saw_query_end = true;
      }
    }
    EXPECT_TRUE(saw_query_end);
    EXPECT_GT(r.stats.TotalReads(), 0u);
  }
  // The offer drained the executing thread's ring query-by-query, so
  // nothing is left to collect.
  EXPECT_TRUE(tracer.Collect().Empty());
  tracer.Discard();
}

#endif  // !STPQ_DISABLE_TRACING

// --------------------------------------------- traversal profile invariant

TEST(TraversalProfileInvariantTest, VisitedTotalsMatchPageAccesses) {
  Dataset ds = SmallDataset();
  std::vector<Query> queries = SmallWorkload(ds, 8);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    Result<QueryResult> r = engine.Execute(q, Algorithm::kStps);
    ASSERT_TRUE(r.ok());
    const QueryStats& stats = r.value().stats;
    // Every simulated page access in the query path (miss or hit) expands
    // exactly one node and records exactly one visit.
    EXPECT_EQ(stats.traversal.TotalVisited(),
              stats.TotalReads() + stats.buffer_hits);
    EXPECT_GT(stats.traversal.FeatureVisited(), 0u);
    // Expanding a node classifies each child entry exactly once, so the
    // per-level verdicts are bounded by the fan-out work the kernels did.
    EXPECT_GE(stats.traversal.TotalDescended(), stats.heap_pushes);
  }
}

TEST(TraversalProfileInvariantTest, HoldsForBothAlgorithms) {
  Dataset ds = SmallDataset();
  std::vector<Query> queries = SmallWorkload(ds, 4);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    for (Algorithm algo : {Algorithm::kStds, Algorithm::kStps}) {
      Result<QueryResult> r = engine.Execute(q, algo);
      ASSERT_TRUE(r.ok());
      const QueryStats& stats = r.value().stats;
      EXPECT_EQ(stats.traversal.TotalVisited(),
                stats.TotalReads() + stats.buffer_hits)
          << "algorithm=" << static_cast<int>(algo);
    }
  }
}

TEST(TraversalProfileInvariantTest, HoldsForAllVariants) {
  Dataset ds = SmallDataset();
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.k = 5;
  qcfg.radius = 0.05;
  for (ScoreVariant variant : {ScoreVariant::kRange, ScoreVariant::kInfluence,
                               ScoreVariant::kNearestNeighbor}) {
    Dataset copy = SmallDataset();
    qcfg.variant = variant;
    std::vector<Query> queries = GenerateQueries(copy, qcfg);
    Engine engine = Engine::Build(std::move(copy.objects), std::move(copy.feature_tables),
                  {}).TakeValue();
    for (const Query& q : queries) {
      Result<QueryResult> r = engine.Execute(q, Algorithm::kStps);
      ASSERT_TRUE(r.ok());
      const QueryStats& stats = r.value().stats;
      EXPECT_EQ(stats.traversal.TotalVisited(),
                stats.TotalReads() + stats.buffer_hits)
          << "variant=" << static_cast<int>(variant);
    }
  }
}

}  // namespace
}  // namespace stpq
