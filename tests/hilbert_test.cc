// Tests for hilbert/: Skilling transcoding and the keyword mapping of
// Section 4.2.
#include <gtest/gtest.h>

#include <set>

#include "hilbert/hilbert.h"
#include "hilbert/keyword_hilbert.h"
#include "util/rng.h"

namespace stpq {
namespace {

// ---------------------------------------------------------------- Skilling

struct DimsBits {
  int dims;
  int bits;
};

class HilbertKeyTest : public ::testing::TestWithParam<DimsBits> {};

TEST_P(HilbertKeyTest, Bijective) {
  const auto [n, b] = GetParam();
  const uint64_t total = uint64_t{1} << (n * b);
  if (total > (1u << 16)) GTEST_SKIP() << "space too large for full sweep";
  std::set<uint64_t> keys;
  const uint32_t side = 1u << b;
  std::vector<uint32_t> coords(n, 0);
  // Enumerate the whole grid; every key must be distinct and < total.
  uint64_t count = 0;
  while (true) {
    uint64_t key = HilbertKey(coords.data(), b, n);
    EXPECT_LT(key, total);
    keys.insert(key);
    ++count;
    // Round-trip.
    std::vector<uint32_t> back(n);
    HilbertKeyToAxes(key, b, n, back.data());
    EXPECT_EQ(back, coords);
    // Odometer increment.
    int d = 0;
    while (d < n && ++coords[d] == side) {
      coords[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  EXPECT_EQ(keys.size(), count);
  EXPECT_EQ(count, total);
}

TEST_P(HilbertKeyTest, AdjacentKeysAreAdjacentCells) {
  // The defining Hilbert property: consecutive keys differ by exactly one
  // grid step in exactly one dimension.
  const auto [n, b] = GetParam();
  const uint64_t total = uint64_t{1} << (n * b);
  if (total > (1u << 16)) GTEST_SKIP() << "space too large for full sweep";
  std::vector<uint32_t> prev(n), cur(n);
  HilbertKeyToAxes(0, b, n, prev.data());
  for (uint64_t key = 1; key < total; ++key) {
    HilbertKeyToAxes(key, b, n, cur.data());
    int changed = 0;
    for (int i = 0; i < n; ++i) {
      uint32_t diff = cur[i] > prev[i] ? cur[i] - prev[i] : prev[i] - cur[i];
      if (diff == 1) {
        ++changed;
      } else {
        EXPECT_EQ(diff, 0u) << "key " << key << " dim " << i;
      }
    }
    EXPECT_EQ(changed, 1) << "key " << key;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, HilbertKeyTest,
    ::testing::Values(DimsBits{2, 1}, DimsBits{2, 4}, DimsBits{2, 8},
                      DimsBits{3, 1}, DimsBits{3, 4}, DimsBits{4, 1},
                      DimsBits{4, 2}, DimsBits{4, 4}, DimsBits{5, 1},
                      DimsBits{8, 1}, DimsBits{8, 2}, DimsBits{16, 1}),
    [](const ::testing::TestParamInfo<DimsBits>& param_info) {
      return "d" + std::to_string(param_info.param.dims) + "b" +
             std::to_string(param_info.param.bits);
    });

TEST(HilbertKeyTest, UnitCoordinatesClamped) {
  double lo[2] = {-0.5, 0.0};
  double hi[2] = {1.5, 1.0};
  uint64_t key_lo = HilbertKeyFromUnit(lo, 8, 2);
  uint64_t key_hi = HilbertKeyFromUnit(hi, 8, 2);
  double lo_c[2] = {0.0, 0.0};
  double hi_c[2] = {1.0, 1.0};
  EXPECT_EQ(key_lo, HilbertKeyFromUnit(lo_c, 8, 2));
  EXPECT_EQ(key_hi, HilbertKeyFromUnit(hi_c, 8, 2));
}

TEST(HilbertKeyTest, FirstOrder3DOrderingIsGrayWalk) {
  // For n=3, b=1, the curve visits all 8 hypercube corners, each step
  // flipping one coordinate (this is the ordering of the paper's Fig. 5 up
  // to dimension labeling).
  uint32_t prev[3], cur[3];
  HilbertKeyToAxes(0, 1, 3, prev);
  EXPECT_EQ(prev[0] | prev[1] | prev[2], 0u);  // starts at 000
  for (uint64_t key = 1; key < 8; ++key) {
    HilbertKeyToAxes(key, 1, 3, cur);
    int flips = 0;
    for (int i = 0; i < 3; ++i) flips += cur[i] != prev[i];
    EXPECT_EQ(flips, 1);
    std::copy(cur, cur + 3, prev);
  }
}

// ------------------------------------------------------- keyword mapping

KeywordSet MakeSet(uint32_t universe, std::initializer_list<TermId> terms) {
  return KeywordSet(universe, terms);
}

TEST(KeywordHilbertTest, EncodeDecodeRoundTripSmall) {
  const uint32_t w = 3;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    KeywordSet s(w);
    for (uint32_t i = 0; i < w; ++i) {
      if (mask & (1u << i)) s.Insert(i);
    }
    HilbertValue h = EncodeKeywords(s);
    EXPECT_EQ(DecodeKeywords(h, w), s) << "mask " << mask;
  }
}

class KeywordHilbertUniverseTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(KeywordHilbertUniverseTest, RoundTripRandomSets) {
  const uint32_t w = GetParam();
  Rng rng(w);
  for (int iter = 0; iter < 200; ++iter) {
    KeywordSet s(w);
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(0, 8));
    for (uint32_t i = 0; i < n; ++i) {
      s.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    HilbertValue h = EncodeKeywords(s);
    EXPECT_EQ(h.bits(), w);
    EXPECT_EQ(DecodeKeywords(h, w), s);
  }
}

TEST_P(KeywordHilbertUniverseTest, EncodingIsInjective) {
  const uint32_t w = GetParam();
  Rng rng(w + 1);
  std::set<std::vector<uint64_t>> seen_values;
  std::set<std::vector<uint64_t>> seen_sets;
  for (int iter = 0; iter < 300; ++iter) {
    KeywordSet s(w);
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(0, 6));
    for (uint32_t i = 0; i < n; ++i) {
      s.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    bool new_set = seen_sets.insert(s.blocks()).second;
    bool new_value = seen_values.insert(EncodeKeywords(s).words()).second;
    EXPECT_EQ(new_set, new_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, KeywordHilbertUniverseTest,
                         ::testing::Values(3u, 8u, 63u, 64u, 65u, 128u, 130u,
                                           192u, 256u, 300u),
                         [](const ::testing::TestParamInfo<uint32_t>&
                                param_info) {
                           return "w" + std::to_string(param_info.param);
                         });

TEST(KeywordHilbertTest, LocalityAdjacentValuesDifferInOneKeyword) {
  // Section 4.2: "vectors with distance 1 have only one different keyword".
  // Walk the full order for w = 8 by decoding consecutive values.
  const uint32_t w = 8;
  KeywordSet prev = DecodeKeywords(HilbertValue(w), w);  // value 0
  for (uint32_t v = 1; v < 256; ++v) {
    HilbertValue h(w);
    h.words()[0] = static_cast<uint64_t>(v) << (64 - w);
    KeywordSet cur = DecodeKeywords(h, w);
    uint32_t diff = cur.UnionCount(prev) - cur.IntersectCount(prev);
    EXPECT_EQ(diff, 1u) << "value " << v;
    prev = cur;
  }
}

TEST(KeywordHilbertTest, DistanceBoundsKeywordDifference) {
  // Section 4.2: Hilbert distance w' bounds the number of differing
  // keywords by w'.  (Each unit step flips one keyword.)
  const uint32_t w = 10;
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    uint64_t a = rng.UniformInt(0, (1u << w) - 1);
    uint64_t b = rng.UniformInt(0, (1u << w) - 1);
    HilbertValue ha(w), hb(w);
    ha.words()[0] = a << (64 - w);
    hb.words()[0] = b << (64 - w);
    KeywordSet sa = DecodeKeywords(ha, w);
    KeywordSet sb = DecodeKeywords(hb, w);
    uint64_t hdist = a > b ? a - b : b - a;
    uint32_t kdiff = sa.UnionCount(sb) - sa.IntersectCount(sb);
    EXPECT_LE(kdiff, hdist);
  }
}

TEST(KeywordHilbertTest, ComparisonMatchesNumericOrder) {
  const uint32_t w = 8;
  for (uint32_t a = 0; a < 64; ++a) {
    for (uint32_t b = 0; b < 64; ++b) {
      HilbertValue ha(w), hb(w);
      ha.words()[0] = static_cast<uint64_t>(a) << (64 - w);
      hb.words()[0] = static_cast<uint64_t>(b) << (64 - w);
      EXPECT_EQ(ha < hb, a < b);
      EXPECT_EQ(ha == hb, a == b);
    }
  }
}

TEST(KeywordHilbertTest, ToUnitDoubleMonotone) {
  const uint32_t w = 16;
  double prev = -1.0;
  for (uint32_t v = 0; v < (1u << w); v += 97) {
    HilbertValue h(w);
    h.words()[0] = static_cast<uint64_t>(v) << (64 - w);
    double d = h.ToUnitDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(KeywordHilbertTest, AggregateIsKeywordUnion) {
  // The SRT node update: decode, OR, re-encode (Section 4.2).
  const uint32_t w = 130;
  Rng rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    KeywordSet a(w), b(w);
    for (int i = 0; i < 4; ++i) {
      a.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
      b.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    HilbertValue agg = AggregateHilbert(EncodeKeywords(a), EncodeKeywords(b),
                                        w);
    KeywordSet expected = a;
    expected.UnionWith(b);
    EXPECT_EQ(DecodeKeywords(agg, w), expected);
  }
}

TEST(KeywordHilbertTest, AggregateIdempotentAndCommutative) {
  const uint32_t w = 64;
  KeywordSet a = MakeSet(w, {1, 5, 60});
  KeywordSet b = MakeSet(w, {2, 5});
  HilbertValue ha = EncodeKeywords(a), hb = EncodeKeywords(b);
  EXPECT_EQ(AggregateHilbert(ha, hb, w), AggregateHilbert(hb, ha, w));
  EXPECT_EQ(AggregateHilbert(ha, ha, w), ha);
}

TEST(KeywordHilbertTest, EmptySetMapsToZero) {
  KeywordSet empty(128);
  HilbertValue h = EncodeKeywords(empty);
  for (uint64_t wrd : h.words()) EXPECT_EQ(wrd, 0u);
  EXPECT_DOUBLE_EQ(h.ToUnitDouble(), 0.0);
}

}  // namespace
}  // namespace stpq
