// Tests for the influence and nearest-neighbor score variants (Section 7):
// Voronoi cells, per-variant score computation, and STDS/STPS agreement
// with brute force.
#include <gtest/gtest.h>

#include <set>

#include "core/brute_force.h"
#include "core/combination.h"
#include "core/compute_score.h"
#include "core/engine.h"
#include "core/score.h"
#include "core/voronoi.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "index/srt_index.h"
#include "paper_example.h"
#include "util/rng.h"

namespace stpq {
namespace {

namespace ex = testing_example;

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

void ExpectSameScores(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const char* label, double tol = 1e-9) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, tol) << label << " rank " << i;
  }
}

// ----------------------------------------------------------- score compute

TEST(InfluenceScoreTest, MatchesBruteForce) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.num_features_per_set = 600;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 50;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Query q;
  q.variant = ScoreVariant::kInfluence;
  q.radius = 0.05;
  q.lambda = 0.5;
  q.keywords = {KeywordSet(32, {0, 1, 2})};
  QueryStats stats;
  TraversalScratch scratch;
  for (const DataObject& o : ds.objects) {
    double got = ComputeScoreInfluence(index, o.pos, q.keywords[0], q.lambda,
                                       q.radius, stats, scratch);
    EXPECT_NEAR(got, brute.ComponentScore(o.pos, 0, q), 1e-12);
  }
}

TEST(InfluenceScoreTest, DecaysWithDistance) {
  // A feature at distance r contributes half its preference score.
  EXPECT_DOUBLE_EQ(InfluenceFactor(0.0, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(InfluenceFactor(0.01, 0.01), 0.5);
  EXPECT_DOUBLE_EQ(InfluenceFactor(0.02, 0.01), 0.25);
}

TEST(NnScoreTest, MatchesBruteForce) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.num_features_per_set = 600;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 50;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Query q;
  q.variant = ScoreVariant::kNearestNeighbor;
  q.lambda = 0.5;
  q.keywords = {KeywordSet(32, {0, 1, 2})};
  QueryStats stats;
  TraversalScratch scratch;
  for (const DataObject& o : ds.objects) {
    double got = ComputeScoreNearestNeighbor(index, o.pos, q.keywords[0],
                                             q.lambda, stats, scratch);
    EXPECT_NEAR(got, brute.ComponentScore(o.pos, 0, q), 1e-12);
  }
}

TEST(NnScoreTest, IgnoresIrrelevantNearerFeature) {
  // A closer feature with sim = 0 must not mask the nearest relevant one.
  std::vector<FeatureObject> f;
  f.push_back({0, {0.50, 0.5}, 0.9, KeywordSet(4, {0}), "near-irrelevant"});
  f.push_back({0, {0.60, 0.5}, 0.6, KeywordSet(4, {1}), "far-relevant"});
  FeatureTable table(std::move(f), 4);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  KeywordSet query(4, {1});
  QueryStats stats;
  TraversalScratch scratch;
  double got = ComputeScoreNearestNeighbor(index, {0.49, 0.5}, query, 0.5,
                                           stats, scratch);
  EXPECT_NEAR(got, 0.5 * 0.6 + 0.5 * 1.0, 1e-12);
}

TEST(NnScoreTest, EquidistantTieBreaksByPreferenceScore) {
  // p = (0.5, 0.5) with features at x = 0.4 and x = 0.6: neither feature
  // coordinate is exactly representable in binary, but both subtractions
  // are exact (Sterbenz) and round to the same double, so the squared
  // distances tie bit-for-bit.  Definition 7's tie rule: the larger s(t)
  // wins — regardless of which feature the traversal visits first.
  const Point p{0.5, 0.5};
  ASSERT_EQ(SquaredDistance(p, Point{0.4, 0.5}),
            SquaredDistance(p, Point{0.6, 0.5}));
  const double expected = 0.5 * 0.8 + 0.5 * 1.0;  // s(t) of the 0.8 feature
  for (bool high_first : {false, true}) {
    std::vector<FeatureObject> f;
    f.push_back({0, {0.4, 0.5}, high_first ? 0.8 : 0.2,
                 KeywordSet(4, {1}), "left"});
    f.push_back({0, {0.6, 0.5}, high_first ? 0.2 : 0.8,
                 KeywordSet(4, {1}), "right"});
    FeatureTable table(std::move(f), 4);
    FeatureIndexOptions opts;
    SrtIndex index(&table, opts);
    KeywordSet query(4, {1});
    QueryStats stats;
    TraversalScratch scratch;
    BestFeature best =
        ComputeBestNearestNeighbor(index, p, query, 0.5, stats, scratch);
    EXPECT_EQ(best.feature, high_first ? 0u : 1u)
        << "high_first=" << high_first;
    EXPECT_NEAR(best.score, expected, 1e-12);
    EXPECT_NEAR(ComputeScoreNearestNeighbor(index, p, query, 0.5, stats,
                                            scratch),
                expected, 1e-12);
  }
}

// ----------------------------------------------------------------- Voronoi

TEST(VoronoiTest, CellContainsExactlyNearestRegion) {
  SyntheticConfig cfg;
  cfg.num_objects = 0;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 8;
  cfg.num_clusters = 40;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  KeywordSet query(8, {0, 1});
  Rect2 domain = MakeRect2(0, 0, 1, 1);
  Rng rng(71);
  QueryStats stats;
  TraversalScratch scratch;
  // Pick several relevant features and verify their cells pointwise.
  std::vector<ObjectId> relevant;
  for (const FeatureObject& t : ds.feature_tables[0].All()) {
    if (t.keywords.Intersects(query)) relevant.push_back(t.id);
  }
  ASSERT_GE(relevant.size(), 5u);
  for (int c = 0; c < 5; ++c) {
    ObjectId center = relevant[rng.UniformInt(0, relevant.size() - 1)];
    ConvexPolygon cell = ComputeVoronoiCell(index, center, query, 0.5,
                                            domain, stats, scratch);
    const Point cpos = ds.feature_tables[0].Get(center).pos;
    for (int s = 0; s < 200; ++s) {
      Point p{rng.Uniform(), rng.Uniform()};
      // Brute-force nearest relevant feature.
      double best_d2 = 1e18;
      ObjectId best = kVirtualFeature;
      for (ObjectId id : relevant) {
        double d2 = SquaredDistance(p, ds.feature_tables[0].Get(id).pos);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = id;
        }
      }
      bool in_cell = cell.Contains(p);
      bool is_nearest = best == center;
      double margin =
          std::abs(std::sqrt(best_d2) - Distance(p, cpos));
      if (margin > 1e-9) {  // skip razor-thin boundary ties
        EXPECT_EQ(in_cell, is_nearest)
            << "center " << center << " point (" << p.x << "," << p.y << ")";
      }
    }
  }
  EXPECT_EQ(stats.voronoi_cells, 5u);
  EXPECT_GT(stats.voronoi_clip_features, 0u);
}

TEST(VoronoiTest, SingleFeatureOwnsWholeDomain) {
  std::vector<FeatureObject> f;
  f.push_back({0, {0.5, 0.5}, 1.0, KeywordSet(4, {0}), {}});
  FeatureTable table(std::move(f), 4);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  KeywordSet query(4, {0});
  QueryStats stats;
  TraversalScratch scratch;
  ConvexPolygon cell = ComputeVoronoiCell(
      index, 0, query, 0.5, MakeRect2(0, 0, 1, 1), stats, scratch);
  EXPECT_NEAR(cell.Area(), 1.0, 1e-12);
}

TEST(VoronoiTest, IntersectConvexMatchesSequentialClipping) {
  ConvexPolygon a = ConvexPolygon::FromRect(MakeRect2(0, 0, 0.6, 0.6));
  ConvexPolygon b = ConvexPolygon::FromRect(MakeRect2(0.4, 0.4, 1, 1));
  IntersectConvex(&a, b);
  EXPECT_NEAR(a.Area(), 0.04, 1e-12);
  EXPECT_TRUE(a.Contains({0.5, 0.5}));
  EXPECT_FALSE(a.Contains({0.3, 0.3}));
  // Disjoint intersection is empty.
  ConvexPolygon c = ConvexPolygon::FromRect(MakeRect2(0, 0, 0.2, 0.2));
  ConvexPolygon d = ConvexPolygon::FromRect(MakeRect2(0.5, 0.5, 1, 1));
  IntersectConvex(&c, d);
  EXPECT_TRUE(c.IsEmpty());
  // Intersection with empty is empty.
  ConvexPolygon e = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  IntersectConvex(&e, ConvexPolygon());
  EXPECT_TRUE(e.IsEmpty());
}

// ------------------------------------------------- full-query agreement

struct VariantParam {
  ScoreVariant variant;
  FeatureIndexKind kind;
  uint32_t c;
  uint32_t k;
  double lambda;
};

class VariantAgreementTest : public ::testing::TestWithParam<VariantParam> {};

TEST_P(VariantAgreementTest, StdsStpsBruteForceAgree) {
  const VariantParam& p = GetParam();
  SyntheticConfig cfg;
  cfg.seed = 2000 + static_cast<int>(p.variant) * 10 + p.c;
  cfg.num_objects = 250;
  cfg.num_features_per_set = 200;
  cfg.num_feature_sets = p.c;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 40;
  cfg.cluster_stddev = 0.02;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 4;
  qcfg.k = p.k;
  qcfg.radius = 0.05;
  qcfg.lambda = p.lambda;
  qcfg.variant = p.variant;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions opts;
  opts.index_kind = p.kind;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  for (const Query& q : queries) {
    std::vector<ResultEntry> expected = brute.TopK(q);
    ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected, "STDS");
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "STPS");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariantAgreementTest,
    ::testing::Values(
        VariantParam{ScoreVariant::kInfluence, FeatureIndexKind::kSrt, 1, 10,
                     0.5},
        VariantParam{ScoreVariant::kInfluence, FeatureIndexKind::kSrt, 2, 10,
                     0.5},
        VariantParam{ScoreVariant::kInfluence, FeatureIndexKind::kSrt, 3, 5,
                     0.3},
        VariantParam{ScoreVariant::kInfluence, FeatureIndexKind::kIr2, 2, 10,
                     0.5},
        VariantParam{ScoreVariant::kInfluence, FeatureIndexKind::kSrt, 2, 40,
                     0.9},
        VariantParam{ScoreVariant::kNearestNeighbor, FeatureIndexKind::kSrt,
                     1, 10, 0.5},
        VariantParam{ScoreVariant::kNearestNeighbor, FeatureIndexKind::kSrt,
                     2, 10, 0.5},
        VariantParam{ScoreVariant::kNearestNeighbor, FeatureIndexKind::kSrt,
                     2, 5, 0.0},
        VariantParam{ScoreVariant::kNearestNeighbor, FeatureIndexKind::kIr2,
                     2, 10, 0.5},
        VariantParam{ScoreVariant::kNearestNeighbor, FeatureIndexKind::kSrt,
                     3, 5, 0.7}),
    [](const ::testing::TestParamInfo<VariantParam>& param_info) {
      const VariantParam& p = param_info.param;
      return std::string(VariantName(p.variant)) + "_" +
             (p.kind == FeatureIndexKind::kSrt ? "srt" : "ir2") + "_c" +
             std::to_string(p.c) + "_k" + std::to_string(p.k) + "_i" +
             std::to_string(param_info.index);
    });

// ------------------------------------------------------- paper example

TEST(VariantPaperExample, InfluenceRanksSameTopHotelsHigh) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  q.variant = ScoreVariant::kInfluence;
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  std::vector<ResultEntry> expected = brute.TopK(q);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "influence");
  // Influence scores are below the range scores (distance decay).
  for (const ResultEntry& e : expected) {
    EXPECT_LT(e.score, ex::kTopHotelScore);
    EXPECT_GT(e.score, 0.0);
  }
}

TEST(VariantPaperExample, NearestNeighborAgreesWithBruteForce) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 10);
  q.variant = ScoreVariant::kNearestNeighbor;
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  std::vector<ResultEntry> expected = brute.TopK(q);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected, "STDS nn");
  ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "STPS nn");
}

// ----------------------------------------------------------- edge cases

TEST(InfluenceModesTest, AnchoredAndCombinationModesAgree) {
  // The anchored strategy must return exactly the same top-k scores as the
  // paper's Algorithm 5 (both are exact; ties may reorder objects).
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 250;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 40;
  cfg.cluster_stddev = 0.02;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 5;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions anchored;
  anchored.influence_mode = InfluenceMode::kAnchored;
  EngineOptions combos;
  combos.influence_mode = InfluenceMode::kCombinations;
  Engine a = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
           anchored).TakeValue();
  Engine b = Engine::Build(ds.objects, std::move(ds.feature_tables), combos).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(a.Execute(q, Algorithm::kStps).TakeValue().entries, b.Execute(q, Algorithm::kStps).TakeValue().entries,
                     "influence modes");
  }
}

TEST(InfluenceModesTest, AnchoredAvoidsCombinationEnumeration) {
  SyntheticConfig cfg;
  cfg.num_objects = 2000;
  cfg.num_features_per_set = 2000;
  cfg.num_feature_sets = 3;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 200;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 2;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
    EXPECT_EQ(r.stats.combinations_emitted, 0u);
    EXPECT_GT(r.stats.objects_scored, 0u);
  }
}

TEST(VariantEdgeCases, InfluenceWithNoRelevantFeatures) {
  Dataset ds = ex::ExampleDataset();
  Query q;
  q.k = 3;
  q.radius = 3.5;
  q.variant = ScoreVariant::kInfluence;
  q.keywords.push_back(KeywordSet(ds.feature_tables[0].universe_size()));
  q.keywords.push_back(KeywordSet(ds.feature_tables[1].universe_size()));
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
  ASSERT_EQ(r.entries.size(), 3u);
  for (const auto& e : r.entries) EXPECT_EQ(e.score, 0.0);
}

TEST(VariantEdgeCases, NnWithOneEmptyFeatureSet) {
  // Second feature set has no relevant features: tau_2 = 0 for everyone,
  // ranking degenerates to the restaurant component only.
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 5);
  q.variant = ScoreVariant::kNearestNeighbor;
  q.keywords[1] = KeywordSet(ds.feature_tables[1].universe_size());
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  std::vector<ResultEntry> expected = brute.TopK(q);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "nn empty set");
}

TEST(VariantEdgeCases, NnVoronoiStatsPopulated) {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 200;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 30;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 1;
  qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult r = engine.Execute(queries[0], Algorithm::kStps).TakeValue();
  EXPECT_GT(r.stats.voronoi_cells, 0u);
  EXPECT_GT(r.stats.voronoi_cpu_ms, 0.0);
}

}  // namespace
}  // namespace stpq
