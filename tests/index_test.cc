// Tests for index/: FeatureTable, the SRT-index and the modified IR2-tree
// (bound validity, textual filters, I/O accounting), and the ObjectIndex.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "core/score.h"
#include "gen/synthetic.h"
#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "paper_example.h"
#include "util/rng.h"

namespace stpq {
namespace {

namespace ex = testing_example;

FeatureTable RandomFeatures(uint64_t seed, uint32_t n, uint32_t universe) {
  Rng rng(seed);
  std::vector<FeatureObject> f;
  for (uint32_t i = 0; i < n; ++i) {
    FeatureObject t;
    t.pos = {rng.Uniform(), rng.Uniform()};
    t.score = rng.Uniform();
    t.keywords = KeywordSet(universe);
    uint32_t nkw = static_cast<uint32_t>(rng.UniformInt(1, 4));
    for (uint32_t j = 0; j < nkw; ++j) {
      t.keywords.Insert(static_cast<TermId>(rng.UniformInt(0, universe - 1)));
    }
    f.push_back(std::move(t));
  }
  return FeatureTable(std::move(f), universe);
}

TEST(FeatureTableTest, AssignsIdsAndDomain) {
  FeatureTable t = RandomFeatures(1, 100, 32);
  EXPECT_EQ(t.size(), 100u);
  for (uint32_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.Get(i).id, i);
  const Rect2& d = t.domain();
  EXPECT_GE(d.lo[0], 0.0);
  EXPECT_LE(d.hi[0], 1.0);
  EXPECT_FALSE(d.IsEmpty());
}

// -------- shared FeatureIndex conformance suite (runs for SRT and IR2) ----

struct IndexFactory {
  const char* name;
  std::function<std::unique_ptr<FeatureIndex>(const FeatureTable*,
                                              const FeatureIndexOptions&)>
      make;
};

class FeatureIndexConformance : public ::testing::TestWithParam<IndexFactory> {
 protected:
  std::unique_ptr<FeatureIndex> Build(const FeatureTable* table,
                                      BufferPool* pool = nullptr,
                                      BulkLoadKind bulk =
                                          BulkLoadKind::kHilbert) {
    FeatureIndexOptions opts;
    opts.buffer_pool = pool;
    opts.bulk_load = bulk;
    opts.page_size_bytes = 1024;  // small pages, deeper trees
    return GetParam().make(table, opts);
  }
};

/// Every feature must be reachable, and every internal entry's bound must
/// dominate the exact score of every feature below it (Section 4.1's
/// s-hat(e) >= s(t) requirement) — checked by full traversal.
TEST_P(FeatureIndexConformance, BoundDominatesDescendants) {
  FeatureTable table = RandomFeatures(2, 2000, 64);
  std::unique_ptr<FeatureIndex> index = Build(&table);
  Rng rng(3);
  for (int q = 0; q < 10; ++q) {
    KeywordSet query(64);
    for (int j = 0; j < 3; ++j) {
      query.Insert(static_cast<TermId>(rng.UniformInt(0, 63)));
    }
    double lambda = rng.Uniform();
    std::set<uint32_t> seen;
    std::vector<FeatureBranch> scratch;
    // DFS carrying the tightest ancestor bound.
    struct Frame {
      NodeId id;
      double bound;
    };
    std::vector<Frame> stack{{index->RootId(), 1.0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      index->VisitChildren(f.id, query, lambda, &scratch);
      for (const FeatureBranch& b : scratch) {
        EXPECT_LE(b.score_bound, f.bound + 1e-9)
            << "child bound exceeds parent bound";
        if (b.is_feature) {
          seen.insert(b.id);
          const FeatureObject& t = table.Get(b.id);
          double exact = PreferenceScore(t, query, lambda);
          EXPECT_NEAR(b.score_bound, exact, 1e-12);
          EXPECT_EQ(b.text_match, t.keywords.Intersects(query));
          // Leaf MBR is the feature's position.
          EXPECT_DOUBLE_EQ(b.mbr.lo[0], t.pos.x);
          EXPECT_DOUBLE_EQ(b.mbr.lo[1], t.pos.y);
        } else {
          stack.push_back({b.id, b.score_bound});
        }
      }
    }
    EXPECT_EQ(seen.size(), table.size());
  }
}

TEST_P(FeatureIndexConformance, TextMatchNeverFalseNegative) {
  // If an internal entry reports text_match == false, no feature below may
  // intersect the query keywords (pruning safety).
  FeatureTable table = RandomFeatures(4, 1500, 128);
  std::unique_ptr<FeatureIndex> index = Build(&table);
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    KeywordSet query(128);
    for (int j = 0; j < 2; ++j) {
      query.Insert(static_cast<TermId>(rng.UniformInt(0, 127)));
    }
    std::vector<FeatureBranch> scratch;
    std::vector<std::pair<NodeId, bool>> stack{{index->RootId(), true}};
    while (!stack.empty()) {
      auto [nid, ancestor_match] = stack.back();
      stack.pop_back();
      index->VisitChildren(nid, query, 0.5, &scratch);
      for (const FeatureBranch& b : scratch) {
        if (!ancestor_match) {
          EXPECT_FALSE(b.text_match && b.is_feature &&
                       table.Get(b.id).keywords.Intersects(query))
              << "feature matches under a non-matching ancestor";
        }
        if (b.is_feature) continue;
        stack.push_back({b.id, b.text_match});
      }
    }
  }
}

TEST_P(FeatureIndexConformance, SpatialMbrCoversDescendants) {
  FeatureTable table = RandomFeatures(6, 1000, 32);
  std::unique_ptr<FeatureIndex> index = Build(&table);
  KeywordSet query(32, {0});
  std::vector<FeatureBranch> scratch;
  struct Frame {
    NodeId id;
    Rect2 mbr;
  };
  std::vector<Frame> stack{{index->RootId(), MakeRect2(-1e9, -1e9, 1e9, 1e9)}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    index->VisitChildren(f.id, query, 0.5, &scratch);
    for (const FeatureBranch& b : scratch) {
      EXPECT_TRUE(f.mbr.ContainsRect(b.mbr));
      if (!b.is_feature) stack.push_back({b.id, b.mbr});
    }
  }
}

TEST_P(FeatureIndexConformance, ChargesBufferPool) {
  BufferPool pool(0);
  FeatureTable table = RandomFeatures(7, 2000, 64);
  std::unique_ptr<FeatureIndex> index = Build(&table, &pool);
  pool.Clear();
  pool.ResetStats();
  KeywordSet query(64, {1, 2, 3});
  std::vector<FeatureBranch> scratch;
  index->VisitChildren(index->RootId(), query, 0.5, &scratch);
  EXPECT_EQ(pool.stats().reads, 1u);
  index->VisitChildren(index->RootId(), query, 0.5, &scratch);
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(index->buffer_pool(), &pool);
}

TEST_P(FeatureIndexConformance, InsertConstructionAgrees) {
  // kInsert builds the same logical index content as bulk loading.
  FeatureTable table = RandomFeatures(8, 500, 32);
  std::unique_ptr<FeatureIndex> bulk = Build(&table);
  std::unique_ptr<FeatureIndex> ins =
      Build(&table, nullptr, BulkLoadKind::kInsert);
  KeywordSet query(32, {0, 5});
  // Same reachable feature set.
  for (FeatureIndex* idx : {bulk.get(), ins.get()}) {
    std::set<uint32_t> seen;
    std::vector<FeatureBranch> scratch;
    std::vector<NodeId> stack{idx->RootId()};
    while (!stack.empty()) {
      NodeId nid = stack.back();
      stack.pop_back();
      idx->VisitChildren(nid, query, 0.5, &scratch);
      for (const FeatureBranch& b : scratch) {
        if (b.is_feature) {
          seen.insert(b.id);
        } else {
          stack.push_back(b.id);
        }
      }
    }
    EXPECT_EQ(seen.size(), table.size()) << idx->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Indexes, FeatureIndexConformance,
    ::testing::Values(
        IndexFactory{"SRT",
                     [](const FeatureTable* table,
                        const FeatureIndexOptions& o) {
                       return std::unique_ptr<FeatureIndex>(
                           new SrtIndex(table, o));
                     }},
        IndexFactory{"IR2",
                     [](const FeatureTable* table,
                        const FeatureIndexOptions& o) {
                       return std::unique_ptr<FeatureIndex>(
                           new Ir2Tree(table, o));
                     }}),
    [](const ::testing::TestParamInfo<IndexFactory>& param_info) {
      return param_info.param.name;
    });

// ------------------------------------------------ index-specific details

TEST(SrtIndexTest, NodeSummariesAreExactKeywordUnions) {
  FeatureTable table = RandomFeatures(9, 800, 64);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  // For the SRT-index, a node's aggregated Hilbert value decodes to the
  // exact union of descendant keywords, so a query fully contained in the
  // union yields bound >= (1-l)*e.s + l (only if all query terms present).
  const auto& tree = index.tree();
  std::function<KeywordSet(NodeId)> collect = [&](NodeId nid) -> KeywordSet {
    const auto& node = tree.ReadNode(nid);
    KeywordSet acc(64);
    for (const auto& e : node.entries) {
      if (node.IsLeaf()) {
        acc.UnionWith(table.Get(e.id).keywords);
      } else {
        acc.UnionWith(collect(e.id));
      }
    }
    return acc;
  };
  std::function<void(NodeId)> verify = [&](NodeId nid) {
    const auto& node = tree.ReadNode(nid);
    if (node.IsLeaf()) return;
    for (const auto& e : node.entries) {
      KeywordSet expected = collect(e.id);
      EXPECT_EQ(DecodeKeywords(e.aug.keyword_hilbert, 64), expected);
      verify(e.id);
    }
  };
  verify(tree.root_id());
}

TEST(SrtIndexTest, FourthDimensionIsHilbertValue) {
  FeatureTable table = RandomFeatures(10, 200, 32);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  const auto& tree = index.tree();
  std::vector<NodeId> stack{tree.root_id()};
  while (!stack.empty()) {
    NodeId nid = stack.back();
    stack.pop_back();
    const auto& node = tree.ReadNode(nid);
    for (const auto& e : node.entries) {
      if (node.IsLeaf()) {
        const FeatureObject& t = table.Get(e.id);
        EXPECT_DOUBLE_EQ(e.rect.lo[2], t.score);
        EXPECT_DOUBLE_EQ(e.rect.lo[3],
                         EncodeKeywords(t.keywords).ToUnitDouble());
      } else {
        stack.push_back(e.id);
      }
    }
  }
}

TEST(SrtIndexTest, ClustersScoreAndText) {
  // SRT leaves should have smaller score spreads than spatial-only leaves
  // (that is the point of indexing the mapped 4-D space).
  FeatureTable table = RandomFeatures(11, 5000, 64);
  FeatureIndexOptions srt_opts;
  SrtIndex srt(&table, srt_opts);
  Ir2Tree ir2(&table, srt_opts);
  auto mean_leaf_score_spread = [&](auto& tree) {
    double total = 0;
    int leaves = 0;
    std::vector<NodeId> stack{tree.root_id()};
    while (!stack.empty()) {
      NodeId nid = stack.back();
      stack.pop_back();
      const auto& node = tree.ReadNode(nid);
      if (node.IsLeaf()) {
        double lo = 1e9, hi = -1e9;
        for (const auto& e : node.entries) {
          double s = table.Get(e.id).score;
          lo = std::min(lo, s);
          hi = std::max(hi, s);
        }
        total += hi - lo;
        ++leaves;
      } else {
        for (const auto& e : node.entries) stack.push_back(e.id);
      }
    }
    return total / leaves;
  };
  EXPECT_LT(mean_leaf_score_spread(srt.tree()),
            mean_leaf_score_spread(ir2.tree()));
}

TEST(Ir2TreeTest, SignatureWidthScalesWithVocabulary) {
  FeatureTable small = RandomFeatures(12, 100, 64);
  FeatureTable large = RandomFeatures(13, 100, 256);
  FeatureIndexOptions opts;
  Ir2Tree a(&small, opts), b(&large, opts);
  EXPECT_EQ(a.scheme().signature_bits(), 128u);
  EXPECT_EQ(b.scheme().signature_bits(), 512u);
  // Wider signatures shrink the fan-out.
  EXPECT_GT(a.tree().options().max_entries, b.tree().options().max_entries);
}

TEST(Ir2TreeTest, ExplicitSignatureBits) {
  FeatureTable table = RandomFeatures(14, 100, 64);
  FeatureIndexOptions opts;
  opts.signature_bits = 1024;
  Ir2Tree index(&table, opts);
  EXPECT_EQ(index.scheme().signature_bits(), 1024u);
}

// ------------------------------------------------------------ ObjectIndex

TEST(ObjectIndexTest, RangeQueryMatchesBruteForce) {
  Rng rng(15);
  std::vector<DataObject> objects;
  for (uint32_t i = 0; i < 3000; ++i) {
    objects.push_back(DataObject{i, {rng.Uniform(), rng.Uniform()}, {}});
  }
  ObjectIndexOptions opts;
  ObjectIndex index(&objects, opts);
  for (int q = 0; q < 30; ++q) {
    Point c{rng.Uniform(), rng.Uniform()};
    double r = rng.Uniform(0.01, 0.2);
    std::vector<ObjectId> got = index.RangeQuery(c, r);
    std::set<ObjectId> got_set(got.begin(), got.end());
    std::set<ObjectId> expect;
    for (const DataObject& o : objects) {
      if (Distance(o.pos, c) <= r) expect.insert(o.id);
    }
    EXPECT_EQ(got_set, expect);
  }
}

TEST(ObjectIndexTest, LeafBlocksPartitionObjects) {
  Rng rng(16);
  std::vector<DataObject> objects;
  for (uint32_t i = 0; i < 1000; ++i) {
    objects.push_back(DataObject{i, {rng.Uniform(), rng.Uniform()}, {}});
  }
  ObjectIndexOptions opts;
  ObjectIndex index(&objects, opts);
  std::set<ObjectId> seen;
  index.ForEachLeafBlock([&](std::span<const ObjectId> ids, const Rect2& mbr) {
    for (ObjectId id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "object in two leaf blocks";
      EXPECT_TRUE(mbr.Contains({objects[id].pos.x, objects[id].pos.y}));
    }
  });
  EXPECT_EQ(seen.size(), objects.size());
}

TEST(ObjectIndexTest, DomainCoversAllObjects) {
  Rng rng(17);
  std::vector<DataObject> objects;
  for (uint32_t i = 0; i < 500; ++i) {
    objects.push_back(
        DataObject{i, {rng.Uniform(2.0, 5.0), rng.Uniform(-3.0, 0.0)}, {}});
  }
  ObjectIndexOptions opts;
  ObjectIndex index(&objects, opts);
  for (const DataObject& o : objects) {
    EXPECT_TRUE(index.domain().Contains({o.pos.x, o.pos.y}));
  }
}

// ------------------------------------------- paper example through index

TEST(PaperExampleTest, OntarioAndRoyalRankFirst) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1]);
  // Best restaurant under W1 = {italian, pizza} is Ontario's Pizza (0.9);
  // best coffeehouse under W2 = {espresso, muffins} is Royal Coffe Shop.
  double best_r = 0, best_c = 0;
  std::string best_r_name, best_c_name;
  for (const FeatureObject& t : ds.feature_tables[0].All()) {
    double s = PreferenceScore(t, q.keywords[0], q.lambda);
    if (s > best_r) {
      best_r = s;
      best_r_name = t.name;
    }
  }
  for (const FeatureObject& t : ds.feature_tables[1].All()) {
    double s = PreferenceScore(t, q.keywords[1], q.lambda);
    if (s > best_c) {
      best_c = s;
      best_c_name = t.name;
    }
  }
  EXPECT_EQ(best_r_name, "Ontario's Pizza");
  EXPECT_DOUBLE_EQ(best_r, ex::kOntarioScore);
  EXPECT_EQ(best_c_name, "Royal Coffe Shop");
  EXPECT_NEAR(best_c, ex::kRoyalScore, 1e-12);
}

}  // namespace
}  // namespace stpq
