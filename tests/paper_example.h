// The paper's running example: the restaurants of Figure 2, the
// coffeehouses of Figure 3, and data objects placed per Figure 6.
// Shared by index, algorithm, and integration tests.
#ifndef STPQ_TESTS_PAPER_EXAMPLE_H_
#define STPQ_TESTS_PAPER_EXAMPLE_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "gen/dataset.h"

namespace stpq {
namespace testing_example {

// One shared vocabulary per feature set.
inline Vocabulary RestaurantVocab() {
  Vocabulary v;
  for (const char* t :
       {"chinese", "asian", "greek", "mediterranean", "italian", "spanish",
        "european", "buffet", "pizza", "sandwiches", "subs", "seafood",
        "american", "coffee", "tea", "bistro"}) {
    v.Intern(t);
  }
  return v;
}

inline Vocabulary CafeVocab() {
  Vocabulary v;
  for (const char* t :
       {"cake", "bread", "pastries", "cappuccino", "toast", "decaf",
        "donuts", "iced-coffee", "tea", "muffins", "croissants", "espresso",
        "macchiato"}) {
    v.Intern(t);
  }
  return v;
}

inline KeywordSet Terms(const Vocabulary& v,
                        std::initializer_list<const char*> words) {
  KeywordSet s(v.size());
  for (const char* w : words) s.Insert(v.Lookup(w).value());
  return s;
}

/// Figure 2: the eight restaurants.
inline FeatureTable Restaurants(const Vocabulary& v) {
  std::vector<FeatureObject> f;
  auto add = [&](const char* name, double score, double x, double y,
                 std::initializer_list<const char*> words) {
    f.push_back(FeatureObject{0, {x, y}, score, Terms(v, words), name});
  };
  add("Beijing Restaurant", 0.6, 1, 2, {"chinese", "asian"});
  add("Daphne's Restaurant", 0.5, 4, 1, {"greek", "mediterranean"});
  add("Espanol Restaurant", 0.8, 5, 8, {"italian", "spanish", "european"});
  add("Golden Wok", 0.8, 2, 3, {"chinese", "buffet"});
  add("John's Pizza Plaza", 0.9, 8, 4, {"pizza", "sandwiches", "subs"});
  add("Ontario's Pizza", 0.8, 7, 6, {"pizza", "italian"});
  add("Oyster House", 0.8, 6, 10, {"seafood", "mediterranean"});
  add("Small Bistro", 1.0, 3, 7, {"american", "coffee", "tea", "bistro"});
  return FeatureTable(std::move(f), v.size());
}

/// Figure 3: the eight coffeehouses.
inline FeatureTable Coffeehouses(const Vocabulary& v) {
  std::vector<FeatureObject> f;
  auto add = [&](const char* name, double score, double x, double y,
                 std::initializer_list<const char*> words) {
    f.push_back(FeatureObject{0, {x, y}, score, Terms(v, words), name});
  };
  add("Bakery & Cafe", 0.6, 4, 1, {"cake", "bread", "pastries"});
  add("Coffee House", 0.5, 4, 7, {"cappuccino", "toast", "decaf"});
  add("Coffe Time", 0.8, 3, 10, {"cake", "toast", "donuts"});
  add("Cafe Ole", 0.6, 6, 2, {"cappuccino", "iced-coffee", "tea"});
  add("Royal Coffe Shop", 0.9, 5, 5, {"muffins", "croissants", "espresso"});
  add("Mocha Coffe House", 1.0, 10, 3, {"macchiato", "espresso", "decaf"});
  add("The Terrace", 0.7, 6, 9, {"muffins", "pastries", "espresso"});
  add("Espresso Bar", 0.4, 7, 6, {"croissants", "decaf", "tea"});
  return FeatureTable(std::move(f), v.size());
}

/// Figure 6: ten hotels; exactly p6, p9, p10 (ids 5, 8, 9) lie within
/// r = 3.5 of both Ontario's Pizza (7,6) and Royal Coffe Shop (5,5).
inline std::vector<DataObject> Hotels() {
  std::vector<DataObject> o;
  auto add = [&](const char* name, double x, double y) {
    o.push_back(DataObject{0, {x, y}, name});
  };
  add("p1", 1, 2);
  add("p2", 0, 9);
  add("p3", 10, 0);
  add("p4", 2, 9);
  add("p5", 0, 5);
  add("p6", 6, 5.5);
  add("p7", 10, 10);
  add("p8", 9, 9);
  add("p9", 6.5, 5);
  add("p10", 5.5, 6);
  return o;
}

/// The tourist query of Section 3: W1 = {italian, pizza},
/// W2 = {espresso, muffins}, lambda = 0.5, r = 3.5.
inline Query TouristQuery(const Vocabulary& rv, const Vocabulary& cv,
                          uint32_t k = 3) {
  Query q;
  q.k = k;
  q.radius = 3.5;
  q.lambda = 0.5;
  q.keywords.push_back(Terms(rv, {"italian", "pizza"}));
  q.keywords.push_back(Terms(cv, {"espresso", "muffins"}));
  return q;
}

/// Full example dataset bundle.
inline Dataset ExampleDataset() {
  Dataset ds;
  Vocabulary rv = RestaurantVocab();
  Vocabulary cv = CafeVocab();
  ds.objects = Hotels();
  ds.feature_tables.push_back(Restaurants(rv));
  ds.feature_tables.push_back(Coffeehouses(cv));
  ds.vocabularies.push_back(std::move(rv));
  ds.vocabularies.push_back(std::move(cv));
  return ds;
}

// Expected scores from the paper:
//   s(r6) = 0.9, s(c5) = 0.5*0.9 + 0.5*(2/3) = 0.78333...,
//   tau(p) = 1.68333... for p6, p9, p10.
inline constexpr double kOntarioScore = 0.9;
inline constexpr double kRoyalScore = 0.45 + 0.5 * (2.0 / 3.0);
inline constexpr double kTopHotelScore = kOntarioScore + kRoyalScore;

}  // namespace testing_example
}  // namespace stpq

#endif  // STPQ_TESTS_PAPER_EXAMPLE_H_
