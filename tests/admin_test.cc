// Tests for the live introspection service (DESIGN.md §18): util/net
// socket helpers, AdminServer routing and HTTP framing at the socket
// level, and the concurrent scrape-while-query contract that the TSan CI
// job exercises.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "obs/admin_server.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/net.h"

namespace stpq {
namespace {

// ------------------------------------------------------------- util/net

TEST(NetTest, ListenConnectRoundTrip) {
  Result<UniqueFd> listener = ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<uint16_t> port = LocalPort(listener.value().get());
  ASSERT_TRUE(port.ok());
  ASSERT_GT(port.value(), 0);

  Result<UniqueFd> client = ConnectTcp(port.value());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<UniqueFd> server_side = AcceptConn(listener.value().get());
  ASSERT_TRUE(server_side.ok()) << server_side.status().ToString();

  ASSERT_TRUE(WriteAll(client.value().get(), "ping").ok());
  std::string received;
  Result<size_t> n = ReadSome(server_side.value().get(), &received, 64);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(received, "ping");
}

TEST(NetTest, UniqueFdMoveTransfersOwnership) {
  Result<UniqueFd> listener = ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  UniqueFd a = listener.TakeValue();
  const int raw = a.get();
  UniqueFd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
}

TEST(NetTest, SelfPipeWakesPoller) {
  Result<SelfPipe> pipe = MakeSelfPipe();
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  // Nothing written yet: the poll times out.
  Result<bool> quiet = WaitReadable(pipe.value().read_end.get(), 50);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(quiet.value());

  pipe.value().Notify();
  Result<bool> woken = WaitReadable(pipe.value().read_end.get(), 1000);
  ASSERT_TRUE(woken.ok());
  EXPECT_TRUE(woken.value());

  // WaitEitherReadable reports which fd fired.
  Result<UniqueFd> listener = ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  Result<int> which = WaitEitherReadable(listener.value().get(),
                                         pipe.value().read_end.get(), 1000);
  ASSERT_TRUE(which.ok());
  EXPECT_EQ(which.value(), 1);
}

// -------------------------------------------------- socket-level client

/// One blocking HTTP/1.1 request against 127.0.0.1:port; returns the raw
/// response (status line + headers + body) or empty on connect failure.
std::string HttpRequest(uint16_t port, const std::string& request) {
  Result<UniqueFd> conn = ConnectTcp(port);
  if (!conn.ok()) return "";
  if (!WriteAll(conn.value().get(), request).ok()) return "";
  std::string response;
  for (;;) {
    Result<bool> readable = WaitReadable(conn.value().get(), 5000);
    if (!readable.ok() || !readable.value()) break;
    Result<size_t> n = ReadSome(conn.value().get(), &response, 1 << 16);
    if (!n.ok() || n.value() == 0) break;  // EOF: Connection: close
  }
  return response;
}

std::string HttpGet(uint16_t port, const std::string& target) {
  return HttpRequest(port, "GET " + target +
                               " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/// Status code from a raw response ("HTTP/1.1 200 OK..." -> 200).
int StatusCode(const std::string& response) {
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ----------------------------------------------------------- AdminServer

TEST(AdminServerTest, StartBindsEphemeralPortAndStopIsIdempotent) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  AdminServer server(std::move(opts));
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(AdminServerTest, ServesHealthzStatuszMetricsOverSockets) {
  MetricsRegistry registry;
  registry.GetCounter("stpq_queries_total", "help").Increment(7);
  AdminServerOptions opts;
  opts.registry = &registry;
  opts.status_provider = [] {
    return AdminStatusRows{{"index", "SRT"}, {"objects", "123"}};
  };
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCode(health), 200);
  EXPECT_NE(Body(health).find("\"status\":\"ok\""), std::string::npos);

  const std::string status = HttpGet(server.port(), "/statusz");
  EXPECT_EQ(StatusCode(status), 200);
  EXPECT_NE(Body(status).find("\"index\":\"SRT\""), std::string::npos);
  EXPECT_NE(Body(status).find("\"objects\":\"123\""), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(StatusCode(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Body(metrics).find("stpq_queries_total 7"), std::string::npos);
  // The server's own instruments appear in the registry it serves.
  EXPECT_NE(Body(metrics).find("stpq_admin_requests_total"),
            std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, UnhealthyProviderTurns503) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  opts.health_provider = [](std::string* detail) {
    *detail = "pool exhausted";
    return false;
  };
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCode(health), 503);
  EXPECT_NE(Body(health).find("pool exhausted"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, RejectsMalformedAndUnknownRequests) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  opts.max_request_bytes = 256;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  EXPECT_EQ(StatusCode(HttpGet(port, "/nope")), 404);
  EXPECT_EQ(StatusCode(HttpRequest(
                port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  EXPECT_EQ(StatusCode(HttpRequest(port, "garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusCode(HttpRequest(
                port, "GET /metrics SMTP/9.9\r\nHost: x\r\n\r\n")),
            400);
  // Header block beyond max_request_bytes: 431.
  const std::string huge = "GET /metrics HTTP/1.1\r\nX-Pad: " +
                           std::string(1024, 'a') + "\r\n\r\n";
  EXPECT_EQ(StatusCode(HttpRequest(port, huge)), 431);
  // Errors are counted on the server's own instruments.
  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(Body(metrics).find("stpq_admin_errors_total 0"),
            std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, HeadRequestReturnsHeadersOnly) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpRequest(
      server.port(), "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusCode(response), 200);
  EXPECT_TRUE(Body(response).empty());
  // Content-Length still names the suppressed body size.
  EXPECT_EQ(response.find("Content-Length: 0"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, SlowzAndVarzReportNotArmedWithoutSources) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const std::string slowz = HttpGet(server.port(), "/slowz");
  EXPECT_EQ(StatusCode(slowz), 200);
  EXPECT_NE(Body(slowz).find("\"armed\":false"), std::string::npos);
  const std::string varz = HttpGet(server.port(), "/varz");
  EXPECT_EQ(StatusCode(varz), 200);
  EXPECT_NE(Body(varz).find("\"armed\":false"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, VarzServesIntervalDeltasAndHonorsWindow) {
  MetricsRegistry registry;
  Counter& queries = registry.GetCounter("stpq_queries_total", "help");
  HistogramMetric& lat = registry.GetHistogram("stpq_query_cpu_ms", "help");

  MetricsRecorderOptions ropts;
  ropts.interval_ms = 60'000;  // sampled manually below
  ropts.registry = &registry;
  MetricsRecorder recorder(ropts);
  recorder.Start();
  queries.Increment(20);
  lat.Record(1.0);
  lat.Record(4.0);
  recorder.SampleNow();

  AdminServerOptions opts;
  opts.registry = &registry;
  opts.recorder = &recorder;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());

  const std::string varz = Body(HttpGet(server.port(), "/varz"));
  EXPECT_NE(varz.find("\"armed\":true"), std::string::npos);
  EXPECT_NE(varz.find("\"queries\":20"), std::string::npos);
  EXPECT_NE(varz.find("interval_p50_ms"), std::string::npos);

  // An hour-wide window keeps the (fresh) sample; the query string also
  // accepts a bare number and a trailing 's'.
  EXPECT_NE(Body(HttpGet(server.port(), "/varz?window=3600s"))
                .find("\"queries\":20"),
            std::string::npos);
  EXPECT_NE(Body(HttpGet(server.port(), "/varz?window=3600"))
                .find("\"queries\":20"),
            std::string::npos);
  server.Stop();
  recorder.Stop();
}

TEST(AdminServerTest, SlowzServesRetainedQueries) {
  MetricsRegistry registry;
  SlowQueryLog log(/*threshold_ms=*/0.0);
  QueryStats stats;
  stats.cpu_ms = 12.5;
  log.Offer(/*trace_id=*/9, /*elapsed_ms=*/12.5, stats);

  AdminServerOptions opts;
  opts.registry = &registry;
  opts.slow_log = &log;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const std::string slowz = Body(HttpGet(server.port(), "/slowz"));
  EXPECT_NE(slowz.find("\"armed\":true"), std::string::npos);
  EXPECT_NE(slowz.find("\"count\":1"), std::string::npos);
  EXPECT_NE(slowz.find("\"trace_id\":9"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, RouteHandlesRequestsWithoutSockets) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  AdminServer server(std::move(opts));  // never started: pure routing
  EXPECT_EQ(server.HandleForTest("GET", "/healthz").status, 200);
  EXPECT_EQ(server.HandleForTest("GET", "/").status, 200);
  EXPECT_EQ(server.HandleForTest("GET", "/missing").status, 404);
  EXPECT_EQ(server.HandleForTest("DELETE", "/metrics").status, 405);
  const AdminResponse metrics = server.HandleForTest("GET", "/metrics");
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
}

TEST(AdminServerTest, StopUnblocksWorkersMidRead) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  opts.worker_threads = 2;
  opts.read_timeout_ms = 60'000;  // Stop must not wait for this
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  // Open connections that never send a byte, tying up every worker.
  Result<UniqueFd> stalled1 = ConnectTcp(server.port());
  Result<UniqueFd> stalled2 = ConnectTcp(server.port());
  ASSERT_TRUE(stalled1.ok());
  ASSERT_TRUE(stalled2.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();  // joins: would hang until read_timeout_ms if broken
  SUCCEED();
}

TEST(AdminServerTest, StartStopCyclesRebind) {
  MetricsRegistry registry;
  AdminServerOptions opts;
  opts.registry = &registry;
  AdminServer server(std::move(opts));
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(server.Start().ok()) << "cycle " << cycle;
    EXPECT_EQ(StatusCode(HttpGet(server.port(), "/healthz")), 200);
    server.Stop();
  }
}

// ------------------------------------------- scrape-while-query (TSan)

/// N query threads hammer an engine while M scrape threads hammer the
/// admin endpoints over real sockets.  Run under the TSan CI job, this is
/// the no-torn-reads proof for the whole introspection plane; everywhere
/// it asserts that scraped counters are monotone.
TEST(AdminConcurrencyTest, ScrapesStayConsistentWhileQueriesRun) {
  SyntheticConfig config;
  config.seed = 7;
  config.num_objects = 1000;
  config.num_features_per_set = 800;
  config.num_feature_sets = 2;
  config.vocabulary_size = 32;
  config.num_clusters = 50;
  Dataset ds = GenerateSynthetic(config);

  QueryWorkloadConfig qcfg;
  qcfg.count = 40;
  qcfg.seed = 11;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);

  Result<Engine> engine =
      Engine::Build(ds.objects, std::move(ds.feature_tables), {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  MetricsRecorderOptions ropts;
  ropts.interval_ms = 5;
  MetricsRecorder recorder(ropts);
  recorder.Start();
  SlowQueryLog slow_log(/*threshold_ms=*/0.0);

  AdminServerOptions opts;
  opts.recorder = &recorder;
  opts.slow_log = &slow_log;
  opts.worker_threads = 3;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<int> failures{0};

  constexpr int kQueryThreads = 4;
  constexpr int kScrapeThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecuteOptions exec;
      exec.slow_log = &slow_log;
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        Result<QueryResult> r =
            engine.value().Execute(queries[i % queries.size()], exec);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  for (int t = 0; t < kScrapeThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t last_queries = 0;
      int round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const char* target =
            (round % 3 == 0) ? "/metrics" : (round % 3 == 1) ? "/slowz"
                                                             : "/varz";
        const std::string response = HttpGet(port, target);
        if (StatusCode(response) != 200) {
          failures.fetch_add(1);
          return;
        }
        if (round % 3 == 0) {
          // stpq_queries_total must be monotone across scrapes.
          const std::string body = Body(response);
          const size_t pos = body.find("\nstpq_queries_total ");
          if (pos != std::string::npos) {
            const uint64_t seen = std::strtoull(
                body.c_str() + pos + sizeof("\nstpq_queries_total ") - 1,
                nullptr, 10);
            if (seen < last_queries) {
              failures.fetch_add(1);
              return;
            }
            last_queries = seen;
          }
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
        ++round;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  server.Stop();
  recorder.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(executed.load(), 0u);
  EXPECT_GT(scrapes.load(), 0u);
  // The plane observed the run: the slow log retained queries and the
  // sampler closed intervals while scrapes were in flight.
  EXPECT_GT(slow_log.size(), 0u);
  EXPECT_GT(recorder.sample_count(), 0u);
}

}  // namespace
}  // namespace stpq
