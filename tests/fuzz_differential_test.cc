// Seeded differential fuzzing: STDS and STPS, over both feature indexes and
// every score variant, must agree with the brute-force evaluator on random
// datasets and random queries.  Any structural or pruning bug that survives
// the unit tests tends to surface here as a score mismatch.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/score.h"
#include "gen/synthetic.h"
#include "util/rng.h"

namespace stpq {
namespace {

struct FuzzCase {
  const char* name;
  uint32_t feature_sets;
  FeatureIndexKind index_kind;
  BulkLoadKind bulk_load;
};

Dataset MakeDataset(uint32_t feature_sets, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.num_objects = 80;
  cfg.num_features_per_set = 250;
  cfg.num_feature_sets = feature_sets;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 30;
  return GenerateSynthetic(cfg);
}

/// Random query over `c` feature sets: 1-3 keywords per set, lambda and
/// radius across their whole domains, k in [1, 15].
Query RandomQuery(Rng* rng, uint32_t c, uint32_t vocab, ScoreVariant variant) {
  Query q;
  q.variant = variant;
  q.k = static_cast<uint32_t>(rng->UniformInt(1, 15));
  q.radius = rng->Uniform(0.01, 0.3);
  q.lambda = rng->Uniform(0.0, 1.0);
  if (rng->Bernoulli(0.1)) q.lambda = rng->Bernoulli(0.5) ? 0.0 : 1.0;
  for (uint32_t i = 0; i < c; ++i) {
    KeywordSet kw(vocab);
    uint32_t terms = static_cast<uint32_t>(rng->UniformInt(1, 3));
    for (uint32_t t = 0; t < terms; ++t) {
      kw.Insert(static_cast<TermId>(rng->UniformInt(0, vocab - 1)));
    }
    q.keywords.push_back(std::move(kw));
  }
  return q;
}

void ExpectSameScores(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9)
        << label << " rank " << i;
  }
}

TEST(FuzzDifferentialTest, AlgorithmsAgreeWithBruteForce) {
  const FuzzCase cases[] = {
      {"srt_c1", 1, FeatureIndexKind::kSrt, BulkLoadKind::kHilbert},
      {"ir2_c1", 1, FeatureIndexKind::kIr2, BulkLoadKind::kHilbert},
      {"srt_c2", 2, FeatureIndexKind::kSrt, BulkLoadKind::kHilbert},
      {"ir2_c2", 2, FeatureIndexKind::kIr2, BulkLoadKind::kHilbert},
      {"srt_c1_insert", 1, FeatureIndexKind::kSrt, BulkLoadKind::kInsert},
      {"srt_c2_str", 2, FeatureIndexKind::kSrt, BulkLoadKind::kStr},
  };
  const ScoreVariant variants[] = {ScoreVariant::kRange,
                                   ScoreVariant::kInfluence,
                                   ScoreVariant::kNearestNeighbor};
  Rng rng(20150323);  // deterministic: every run fuzzes the same queries

  for (const FuzzCase& fc : cases) {
    Dataset ds = MakeDataset(fc.feature_sets, /*seed=*/777 + fc.feature_sets);
    std::vector<const FeatureTable*> tables;
    for (const FeatureTable& t : ds.feature_tables) tables.push_back(&t);
    BruteForceEvaluator brute(&ds.objects, tables);

    EngineOptions opts;
    opts.index_kind = fc.index_kind;
    opts.bulk_load = fc.bulk_load;
    // Copy the dataset into the engine; `ds` stays alive for brute force.
    Engine engine = Engine::Build(ds.objects, ds.feature_tables, opts).TakeValue();

    for (ScoreVariant variant : variants) {
      for (int trial = 0; trial < 8; ++trial) {
        Query q = RandomQuery(&rng, fc.feature_sets, 32, variant);
        std::vector<ResultEntry> want = brute.TopK(q);
        std::string label = std::string(fc.name) + "/" + VariantName(variant) +
                            "/trial" + std::to_string(trial);
        ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, want,
                         label + "/stds");
        ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, want,
                         label + "/stps");
      }
    }
  }
}

TEST(FuzzDifferentialTest, PullingStrategiesAgree) {
  Dataset ds = MakeDataset(2, /*seed=*/31);
  std::vector<const FeatureTable*> tables;
  for (const FeatureTable& t : ds.feature_tables) tables.push_back(&t);
  BruteForceEvaluator brute(&ds.objects, tables);

  EngineOptions round_robin;
  round_robin.pulling = PullingStrategy::kRoundRobin;
  Engine engine = Engine::Build(ds.objects, ds.feature_tables, round_robin).TakeValue();

  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Query q = RandomQuery(&rng, 2, 32, ScoreVariant::kRange);
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries,
                     brute.TopK(q), "round_robin/trial" +
                     std::to_string(trial));
  }
}

TEST(FuzzDifferentialTest, BatchedAndUnbatchedStdsAgree) {
  Dataset ds = MakeDataset(1, /*seed=*/32);
  std::vector<const FeatureTable*> tables;
  for (const FeatureTable& t : ds.feature_tables) tables.push_back(&t);
  BruteForceEvaluator brute(&ds.objects, tables);

  EngineOptions unbatched;
  unbatched.stds_batching = false;
  Engine engine = Engine::Build(ds.objects, ds.feature_tables, unbatched).TakeValue();

  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Query q = RandomQuery(&rng, 1, 32, ScoreVariant::kInfluence);
    ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries,
                     brute.TopK(q), "unbatched/trial" + std::to_string(trial));
  }
}

// Deserializer fuzz: single-byte mutations of a valid .stpqx image must
// either load successfully (a flip in slack/padding the checksums do not
// cover does not exist — every payload byte is checksummed, so in practice
// only flips in the zero-fill between segments survive) or fail with a
// typed error.  Crashing, hanging, or returning a half-restored index is
// the bug this guards against.
TEST(FuzzDifferentialTest, IndexDeserializerSurvivesByteFlips) {
  SyntheticConfig cfg;
  cfg.seed = 5150;
  cfg.num_objects = 120;
  cfg.num_features_per_set = 120;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 8;
  Dataset ds = GenerateSynthetic(cfg);
  EngineOptions opts;
  opts.storage.page_size = 256;
  Engine engine =
      Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), opts)
          .TakeValue();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("stpq_fuzz_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string pristine = (dir / "pristine.stpqx").string();
  ASSERT_TRUE(engine.Save(pristine).ok());
  std::string bytes;
  {
    std::ifstream in(pristine, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 256u);

  Rng rng(424242);
  std::string mutated = (dir / "mutated.stpqx").string();
  int loaded_ok = 0, rejected = 0;
  for (int trial = 0; trial < 64; ++trial) {
    size_t offset = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
    char flip =
        static_cast<char>(1 + rng.UniformInt(0, 254));  // never a no-op
    std::string copy = bytes;
    copy[offset] = static_cast<char>(copy[offset] ^ flip);
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), static_cast<std::streamsize>(copy.size()));
    }
    Result<Engine> r = Engine::Open(mutated);
    if (r.ok()) {
      ++loaded_ok;
    } else {
      ++rejected;
      StatusCode code = r.status().code();
      EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kIoError ||
                  code == StatusCode::kCorruption)
          << "offset " << offset << ": " << r.status().ToString();
    }
  }
  // Every payload byte is covered by a segment checksum, so the vast
  // majority of flips must be rejected (only inter-segment padding flips
  // can load).
  EXPECT_GT(rejected, loaded_ok);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stpq
