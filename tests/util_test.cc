// Tests for util/: Status, Result, TopK, Rng, QueryStats.
#include <gtest/gtest.h>

#include <set>

#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/topk.h"

namespace stpq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

Status FailsThrough() {
  STPQ_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = FailsThrough();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(r.TakeValue(), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TopKTest, KeepsBestK) {
  TopK<int> topk(3);
  for (int i = 0; i < 10; ++i) topk.Push(static_cast<double>(i), i);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 9);
  EXPECT_EQ(out[1].item, 8);
  EXPECT_EQ(out[2].item, 7);
}

TEST(TopKTest, ThresholdIsKthBest) {
  TopK<int> topk(2);
  EXPECT_FALSE(topk.Full());
  EXPECT_EQ(topk.Threshold(), 0.0);
  topk.Push(5.0, 1);
  EXPECT_FALSE(topk.Full());
  topk.Push(3.0, 2);
  EXPECT_TRUE(topk.Full());
  EXPECT_EQ(topk.Threshold(), 3.0);
  topk.Push(4.0, 3);  // evicts 3.0
  EXPECT_EQ(topk.Threshold(), 4.0);
  topk.Push(1.0, 4);  // below threshold, ignored
  EXPECT_EQ(topk.Threshold(), 4.0);
}

TEST(TopKTest, CustomFloor) {
  TopK<int> topk(5, -1.0);
  EXPECT_EQ(topk.Threshold(), -1.0);
}

TEST(TopKTest, ZeroKIsEmpty) {
  TopK<int> topk(0);
  topk.Push(1.0, 1);
  EXPECT_EQ(topk.Size(), 0u);
}

TEST(TopKTest, FewerItemsThanK) {
  TopK<int> topk(10);
  topk.Push(2.0, 1);
  topk.Push(1.0, 2);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].score, 2.0);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 5));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5}));
}

TEST(RngTest, ClampedGaussianRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.ClampedGaussian(0.5, 10.0, 0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, ZipfRankZeroMostFrequent) {
  Rng rng(5);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    uint32_t v = rng.Zipf(16, 0.8);
    ASSERT_LT(v, 16u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[15]);
}

TEST(QueryStatsTest, AccumulatesAndReports) {
  QueryStats a;
  a.object_index_reads = 3;
  a.feature_index_reads = 7;
  a.cpu_ms = 1.5;
  QueryStats b;
  b.object_index_reads = 2;
  b.voronoi_cells = 1;
  b.cpu_ms = 0.5;
  a += b;
  EXPECT_EQ(a.object_index_reads, 5u);
  EXPECT_EQ(a.TotalReads(), 12u);
  EXPECT_EQ(a.voronoi_cells, 1u);
  EXPECT_DOUBLE_EQ(a.cpu_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.IoMillis(0.1), 1.2);
  EXPECT_NE(a.ToString().find("reads=12"), std::string::npos);
}

}  // namespace
}  // namespace stpq
