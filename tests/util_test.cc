// Tests for util/: Status, Result, TopK, Rng, QueryStats.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/topk.h"

namespace stpq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

Status FailsThrough() {
  STPQ_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = FailsThrough();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(r.TakeValue(), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TopKTest, KeepsBestK) {
  TopK<int> topk(3);
  for (int i = 0; i < 10; ++i) topk.Push(static_cast<double>(i), i);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 9);
  EXPECT_EQ(out[1].item, 8);
  EXPECT_EQ(out[2].item, 7);
}

TEST(TopKTest, ThresholdIsKthBest) {
  TopK<int> topk(2);
  EXPECT_FALSE(topk.Full());
  EXPECT_EQ(topk.Threshold(), 0.0);
  topk.Push(5.0, 1);
  EXPECT_FALSE(topk.Full());
  topk.Push(3.0, 2);
  EXPECT_TRUE(topk.Full());
  EXPECT_EQ(topk.Threshold(), 3.0);
  topk.Push(4.0, 3);  // evicts 3.0
  EXPECT_EQ(topk.Threshold(), 4.0);
  topk.Push(1.0, 4);  // below threshold, ignored
  EXPECT_EQ(topk.Threshold(), 4.0);
}

TEST(TopKTest, CustomFloor) {
  TopK<int> topk(5, -1.0);
  EXPECT_EQ(topk.Threshold(), -1.0);
}

TEST(TopKTest, ZeroKIsEmpty) {
  TopK<int> topk(0);
  topk.Push(1.0, 1);
  EXPECT_EQ(topk.Size(), 0u);
}

TEST(TopKTest, FewerItemsThanK) {
  TopK<int> topk(10);
  topk.Push(2.0, 1);
  topk.Push(1.0, 2);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].score, 2.0);
}

TEST(TopKTest, ZeroKThresholdStaysFloor) {
  TopK<int> topk(0, 7.5);
  topk.Push(9.0, 1);
  EXPECT_EQ(topk.Size(), 0u);
  EXPECT_EQ(topk.Threshold(), 7.5);
  EXPECT_TRUE(topk.TakeSortedDescending().empty());
}

TEST(TopKTest, UnderfilledNonzeroFloorKeepsFloorThreshold) {
  TopK<int> topk(3, -2.5);
  EXPECT_EQ(topk.Threshold(), -2.5);
  topk.Push(1.0, 1);
  topk.Push(0.5, 2);
  // Still under-filled: the pruning threshold must stay the floor, not
  // some partial k-th score.
  EXPECT_FALSE(topk.Full());
  EXPECT_EQ(topk.Threshold(), -2.5);
  topk.Push(-3.0, 3);  // below the floor but still among the best 3
  EXPECT_TRUE(topk.Full());
  EXPECT_EQ(topk.Threshold(), -3.0);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].item, 3);
}

TEST(TopKTest, DuplicateScoresAtThresholdDoNotEvict) {
  TopK<int> topk(2);
  topk.Push(3.0, 1);
  topk.Push(3.0, 2);
  topk.Push(3.0, 3);  // ties the threshold exactly: must not displace
  EXPECT_EQ(topk.Threshold(), 3.0);
  auto out = topk.TakeSortedDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ((std::set<int>{out[0].item, out[1].item}),
            (std::set<int>{1, 2}));
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 5));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5}));
}

TEST(RngTest, ClampedGaussianRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.ClampedGaussian(0.5, 10.0, 0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, ZipfRankZeroMostFrequent) {
  Rng rng(5);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    uint32_t v = rng.Zipf(16, 0.8);
    ASSERT_LT(v, 16u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[15]);
}

/// Fills every QueryStats field with a distinct value; the contract tests
/// below use this as the single enumeration of the struct's fields.  When
/// a field is added, metrics.cc's sizeof static_assert fails first; extend
/// this function and the expectations together.
QueryStats DistinctStats() {
  QueryStats s;
  s.object_index_reads = 101;
  s.feature_index_reads = 102;
  s.buffer_hits = 103;
  s.heap_pushes = 104;
  s.features_retrieved = 105;
  s.combinations_generated = 106;
  s.combinations_emitted = 107;
  s.objects_scored = 108;
  s.voronoi_cells = 109;
  s.voronoi_clip_features = 110;
  s.voronoi_reads = 111;
  s.voronoi_cpu_ms = 112.5;
  s.voronoi_cache_hits = 113;
  s.cpu_ms = 114.5;
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    s.phase_ms[i] = 120.5 + static_cast<double>(i);
  }
  // Traversal profile: distinct values in every level slot of every tree.
  uint64_t v = 300;
  auto fill_counts = [&v](TreeTraversalCounts& counts) {
    for (size_t l = 0; l < TreeTraversalCounts::kNumLevels; ++l) {
      counts.visited[l] = v++;
      counts.pruned[l] = v++;
      counts.descended[l] = v++;
    }
  };
  fill_counts(s.traversal.object_tree);
  for (size_t f = 0; f < kMaxProfiledFeatureSets; ++f) {
    fill_counts(s.traversal.feature_tree[f]);
  }
  return s;
}

TEST(QueryStatsContract, ToStringMentionsEveryCounter) {
  std::string str = DistinctStats().ToString();
  for (const char* needle :
       {"obj=101", "feat=102", "hits=103", "heap_pushes=104",
        "features=105", "combos=107/106", "scored=108", "cpu_ms=114.5",
        "cells=109", "clip_features=110", "reads=111", "cpu_ms=112.5",
        "cache_hits=113", "combination=120.5", "component_score=121.5",
        "object_retrieval=122.5", "voronoi=123.5", "obj_visited=",
        "obj_pruned=", "obj_descended=", "feat_visited=", "feat_pruned=",
        "feat_descended="}) {
    EXPECT_NE(str.find(needle), std::string::npos)
        << "'" << needle << "' missing from: " << str;
  }
}

TEST(QueryStatsContract, PlusEqualsCoversEveryField) {
  QueryStats sum;  // zero-initialized
  const QueryStats b = DistinctStats();
  sum += b;
  // Starting from zero, += must reproduce b exactly.  QueryStats has no
  // padding (metrics.cc's sizeof guard), so bytewise equality covers every
  // field — including any newly added one that += forgot to accumulate.
  EXPECT_EQ(std::memcmp(&sum, &b, sizeof(QueryStats)), 0)
      << "operator+= does not cover every QueryStats field";
  sum += b;
  EXPECT_EQ(sum.object_index_reads, 202u);
  EXPECT_EQ(sum.voronoi_cache_hits, 226u);
  EXPECT_DOUBLE_EQ(sum.cpu_ms, 229.0);
  EXPECT_DOUBLE_EQ(sum.phase_ms[0], 241.0);
  EXPECT_EQ(sum.traversal.object_tree.visited[0], 600u);
  EXPECT_EQ(sum.traversal.feature_tree[kMaxProfiledFeatureSets - 1]
                .descended[TreeTraversalCounts::kNumLevels - 1],
            2u * (300 + (1 + kMaxProfiledFeatureSets) * 3 *
                            TreeTraversalCounts::kNumLevels - 1));
}

TEST(TraversalProfileTest, RecordVisitClampsAndTotals) {
  TreeTraversalCounts counts;
  counts.RecordVisit(0, 2, 3);
  counts.RecordVisit(1, 1, 0);
  // Levels beyond the last slot fold into it instead of writing OOB.
  counts.RecordVisit(TreeTraversalCounts::kNumLevels + 5, 7, 11);
  EXPECT_EQ(counts.visited[0], 1u);
  EXPECT_EQ(counts.visited[1], 1u);
  EXPECT_EQ(counts.visited[TreeTraversalCounts::kNumLevels - 1], 1u);
  EXPECT_EQ(counts.TotalVisited(), 3u);
  EXPECT_EQ(counts.TotalPruned(), 10u);
  EXPECT_EQ(counts.TotalDescended(), 14u);
}

TEST(TraversalProfileTest, FeatureTreeOrdinalClamps) {
  TraversalProfile profile;
  profile.FeatureTree(0).RecordVisit(0, 1, 1);
  // Out-of-range ordinals land in the last profiled slot, never OOB.
  profile.FeatureTree(kMaxProfiledFeatureSets + 100).RecordVisit(0, 5, 0);
  EXPECT_EQ(profile.feature_tree[0].TotalVisited(), 1u);
  EXPECT_EQ(
      profile.feature_tree[kMaxProfiledFeatureSets - 1].TotalVisited(), 1u);
  EXPECT_EQ(profile.FeatureVisited(), 2u);
  EXPECT_EQ(profile.FeaturePruned(), 6u);
  EXPECT_EQ(profile.TotalVisited(), 2u);
  EXPECT_EQ(profile.TotalDescended(), 1u);
}

TEST(QueryStatsTest, PhaseAccounting) {
  QueryStats s;
  s.cpu_ms = 10.0;
  s.phase_ms[static_cast<size_t>(QueryPhase::kCombination)] = 2.0;
  s.phase_ms[static_cast<size_t>(QueryPhase::kVoronoi)] = 3.0;
  EXPECT_DOUBLE_EQ(s.PhaseMillis(QueryPhase::kCombination), 2.0);
  EXPECT_DOUBLE_EQ(s.PhaseMillis(QueryPhase::kComponentScore), 0.0);
  EXPECT_DOUBLE_EQ(s.TracedMillis(), 5.0);
  EXPECT_DOUBLE_EQ(s.UntracedMillis(), 5.0);
  s.cpu_ms = 1.0;  // timer noise: untraced clamps at zero, never negative
  EXPECT_DOUBLE_EQ(s.UntracedMillis(), 0.0);
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kCombination), "combination");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kComponentScore),
               "component_score");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kObjectRetrieval),
               "object_retrieval");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kVoronoi), "voronoi");
}

TEST(QueryStatsTest, AccumulatesAndReports) {
  QueryStats a;
  a.object_index_reads = 3;
  a.feature_index_reads = 7;
  a.cpu_ms = 1.5;
  QueryStats b;
  b.object_index_reads = 2;
  b.voronoi_cells = 1;
  b.cpu_ms = 0.5;
  a += b;
  EXPECT_EQ(a.object_index_reads, 5u);
  EXPECT_EQ(a.TotalReads(), 12u);
  EXPECT_EQ(a.voronoi_cells, 1u);
  EXPECT_DOUBLE_EQ(a.cpu_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.IoMillis(0.1), 1.2);
  EXPECT_NE(a.ToString().find("reads=12"), std::string::npos);
}

}  // namespace
}  // namespace stpq
