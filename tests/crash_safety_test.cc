// Crash-safety suite for the .stpqx write path (DESIGN.md §17).
//
// The durability contract: writing an index over an existing one can fail
// at any point — write, file fsync, rename, directory fsync — and the
// destination must afterwards hold either the complete old file or the
// complete new file, never a torn mix, and never nothing.  The suite
// drives every AtomicFile failure point through both writers (Engine::Save
// and BuildIndexFileExternal) and sweeps truncations across every segment
// boundary to check the reader's side of the bargain.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/synthetic.h"
#include "io/atomic_file.h"
#include "io/bulk_load.h"
#include "io/dataset_io.h"
#include "io/index_file.h"
#include "io/index_format.h"

namespace stpq {
namespace {

class CrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_crash_safety_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    AtomicFile::SetFailurePointForTest(AtomicFile::FailurePoint::kNone);
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  static Dataset SmallDataset(uint64_t seed) {
    SyntheticConfig cfg;
    cfg.seed = seed;
    cfg.num_objects = 200;
    cfg.num_features_per_set = 200;
    cfg.num_feature_sets = 2;
    cfg.vocabulary_size = 48;
    cfg.num_clusters = 16;
    return GenerateSynthetic(cfg);
  }

  static Engine BuildEngine(const Dataset& ds) {
    EngineOptions opts;
    opts.storage.page_size = 256;
    return Engine::Build(ds.objects,
                         std::vector<FeatureTable>(ds.feature_tables), opts)
        .TakeValue();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  /// Saves a known-good index at `name` and returns (path, bytes).
  std::pair<std::string, std::string> SaveGoodIndex(const char* name) {
    Engine engine = BuildEngine(SmallDataset(7));
    std::string path = Path(name);
    EXPECT_TRUE(engine.Save(path).ok());
    return {path, ReadAll(path)};
  }

  std::filesystem::path dir_;
};

TEST_F(CrashSafetyTest, SaveFailureNeverCorruptsPreviousIndex) {
  auto [path, good_bytes] = SaveGoodIndex("idx.stpqx");
  Engine replacement = BuildEngine(SmallDataset(99));

  // Failures at or before the rename leave the old file byte-identical.
  for (AtomicFile::FailurePoint fp : {AtomicFile::FailurePoint::kWrite,
                                      AtomicFile::FailurePoint::kSyncFile,
                                      AtomicFile::FailurePoint::kRename}) {
    AtomicFile::SetFailurePointForTest(fp);
    Status s = replacement.Save(path);
    AtomicFile::SetFailurePointForTest(AtomicFile::FailurePoint::kNone);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    EXPECT_TRUE(ReadAll(path) == good_bytes)
        << "previous index damaged by failure point "
        << static_cast<int>(fp);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
        << "uncommitted temp file left behind";
    EXPECT_TRUE(Engine::Open(path).ok());
  }
}

TEST_F(CrashSafetyTest, DirSyncFailureStillExposesCompleteNewIndex) {
  // kSyncDir fires after the rename: the write is reported failed (its
  // durability is not guaranteed) but the visible file is the complete new
  // index — never a torn mix.
  auto [path, good_bytes] = SaveGoodIndex("idx.stpqx");
  Engine replacement = BuildEngine(SmallDataset(99));
  AtomicFile::SetFailurePointForTest(AtomicFile::FailurePoint::kSyncDir);
  Status s = replacement.Save(path);
  AtomicFile::SetFailurePointForTest(AtomicFile::FailurePoint::kNone);
  ASSERT_FALSE(s.ok());
  std::string after = ReadAll(path);
  EXPECT_FALSE(after == good_bytes) << "rename should have happened";
  Result<Engine> reopened = Engine::Open(path);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST_F(CrashSafetyTest, ExternalBuildFailureNeverCorruptsPreviousIndex) {
  auto [path, good_bytes] = SaveGoodIndex("idx.stpqx");
  Dataset ds = SmallDataset(99);
  std::string data = Path("data.stpq");
  ASSERT_TRUE(WriteDatasetBinary(data, ds).ok());
  ExternalBuildOptions opts;
  opts.params.page_size_bytes = 256;

  for (AtomicFile::FailurePoint fp : {AtomicFile::FailurePoint::kWrite,
                                      AtomicFile::FailurePoint::kSyncFile,
                                      AtomicFile::FailurePoint::kRename}) {
    AtomicFile::SetFailurePointForTest(fp);
    Result<ExternalBuildStats> r = BuildIndexFileExternal(data, path, opts);
    AtomicFile::SetFailurePointForTest(AtomicFile::FailurePoint::kNone);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(ReadAll(path) == good_bytes)
        << "previous index damaged by failure point "
        << static_cast<int>(fp);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    EXPECT_TRUE(Engine::Open(path).ok());
  }
}

TEST_F(CrashSafetyTest, StaleTempFileIsReplacedByNextSave) {
  // A crash can leave `<path>.tmp` behind (the process died before the
  // destructor ran).  The next writer truncates and reuses it; after a
  // successful commit no temp file remains.
  auto [path, good_bytes] = SaveGoodIndex("idx.stpqx");
  {
    std::ofstream junk(path + ".tmp", std::ios::binary);
    junk << "stale partial write from a crashed process";
  }
  Engine replacement = BuildEngine(SmallDataset(99));
  ASSERT_TRUE(replacement.Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_TRUE(Engine::Open(path).ok());
}

TEST_F(CrashSafetyTest, TruncationAtEverySegmentBoundaryIsTypedError) {
  // Simulates the torn outcomes a non-atomic writer could produce: the
  // file cut at every segment boundary (and just inside each segment).
  // Every cut must fail with a typed error — never succeed, never crash —
  // and the original stays readable.
  auto [path, good_bytes] = SaveGoodIndex("idx.stpqx");
  Result<IndexFileInfo> info = ReadIndexFileInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_FALSE(info.value().segments.empty());

  std::vector<uint64_t> cuts = {0, 1, index_format::kSuperblockBytes - 1};
  for (const IndexSegmentInfo& seg : info.value().segments) {
    cuts.push_back(seg.offset);
    if (seg.bytes > 0) cuts.push_back(seg.offset + seg.bytes / 2);
  }
  std::string cut_path = Path("cut.stpqx");
  for (uint64_t cut : cuts) {
    if (cut >= good_bytes.size()) continue;
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(good_bytes.data(), static_cast<std::streamsize>(cut));
    }
    Result<LoadedIndex> r = LoadIndexFile(cut_path);
    ASSERT_FALSE(r.ok()) << "cut at " << cut << " loaded successfully";
    EXPECT_TRUE(r.status().code() == StatusCode::kIoError ||
                r.status().code() == StatusCode::kCorruption ||
                r.status().code() == StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << r.status().ToString();
  }
  // The original is untouched by the sweep.
  EXPECT_TRUE(Engine::Open(path).ok());
}

TEST_F(CrashSafetyTest, AbandonedAtomicFileLeavesNoTrace) {
  std::string path = Path("a.bin");
  {
    Result<AtomicFile> f = AtomicFile::Create(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value().WriteAt(0, "xyz", 3).ok());
    // Dropped without Commit: destructor unlinks the temp file.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

}  // namespace
}  // namespace stpq
