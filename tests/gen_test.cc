// Tests for gen/: synthetic and real-like dataset generators and the query
// workload generator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/queries.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"

namespace stpq {
namespace {

TEST(SyntheticTest, RespectsCardinalities) {
  SyntheticConfig cfg;
  cfg.num_objects = 1234;
  cfg.num_features_per_set = 567;
  cfg.num_feature_sets = 3;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 50;
  Dataset ds = GenerateSynthetic(cfg);
  EXPECT_EQ(ds.objects.size(), 1234u);
  ASSERT_EQ(ds.feature_tables.size(), 3u);
  for (const FeatureTable& t : ds.feature_tables) {
    EXPECT_EQ(t.size(), 567u);
    EXPECT_EQ(t.universe_size(), 64u);
  }
  EXPECT_EQ(ds.vocabularies.size(), 3u);
  EXPECT_EQ(ds.vocabularies[0].size(), 64u);
}

TEST(SyntheticTest, NormalizedAndScored) {
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.num_features_per_set = 500;
  cfg.num_clusters = 20;
  Dataset ds = GenerateSynthetic(cfg);
  for (const DataObject& o : ds.objects) {
    EXPECT_GE(o.pos.x, 0.0);
    EXPECT_LE(o.pos.x, 1.0);
    EXPECT_GE(o.pos.y, 0.0);
    EXPECT_LE(o.pos.y, 1.0);
  }
  for (const FeatureObject& f : ds.feature_tables[0].All()) {
    EXPECT_GE(f.score, 0.0);
    EXPECT_LE(f.score, 1.0);
    EXPECT_GE(f.keywords.Count(), 1u);
    EXPECT_LE(f.keywords.Count(), 4u);
  }
}

TEST(SyntheticTest, DeterministicBySeed) {
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.num_features_per_set = 100;
  cfg.num_clusters = 10;
  Dataset a = GenerateSynthetic(cfg);
  Dataset b = GenerateSynthetic(cfg);
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].pos, b.objects[i].pos);
  }
  for (size_t i = 0; i < a.feature_tables[0].size(); ++i) {
    EXPECT_EQ(a.feature_tables[0].Get(i).score,
              b.feature_tables[0].Get(i).score);
    EXPECT_EQ(a.feature_tables[0].Get(i).keywords,
              b.feature_tables[0].Get(i).keywords);
  }
  cfg.seed = 43;
  Dataset c = GenerateSynthetic(cfg);
  EXPECT_NE(a.objects[0].pos, c.objects[0].pos);
}

TEST(SyntheticTest, IsActuallyClustered) {
  // With tight clusters, many objects must have a very close neighbor.
  SyntheticConfig cfg;
  cfg.num_objects = 2000;
  cfg.num_features_per_set = 1;
  cfg.num_clusters = 50;
  cfg.cluster_stddev = 0.003;
  Dataset ds = GenerateSynthetic(cfg);
  int with_close_neighbor = 0;
  for (size_t i = 0; i < 200; ++i) {
    double best = 1e9;
    for (size_t j = 0; j < ds.objects.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, Distance(ds.objects[i].pos, ds.objects[j].pos));
    }
    if (best < 0.01) ++with_close_neighbor;
  }
  EXPECT_GT(with_close_neighbor, 150);
}

TEST(RealLikeTest, MirrorsPaperCorpus) {
  RealLikeConfig cfg;
  cfg.scale = 0.1;  // keep the test fast
  Dataset ds = GenerateRealLike(cfg);
  EXPECT_EQ(ds.objects.size(), 2500u);
  ASSERT_EQ(ds.feature_tables.size(), 2u);
  EXPECT_EQ(ds.feature_tables[0].size(), 7900u);
  EXPECT_EQ(ds.feature_tables[0].universe_size(), 130u);
  EXPECT_EQ(ds.feature_tables[1].universe_size(), 60u);
  EXPECT_TRUE(ds.vocabularies[0].Lookup("pizza").ok());
  EXPECT_TRUE(ds.vocabularies[1].Lookup("espresso").ok());
}

TEST(RealLikeTest, KeywordsAreZipfSkewed) {
  RealLikeConfig cfg;
  cfg.scale = 0.2;
  Dataset ds = GenerateRealLike(cfg);
  std::vector<uint32_t> freq(130, 0);
  for (const FeatureObject& f : ds.feature_tables[0].All()) {
    for (TermId t : f.keywords.ToTerms()) ++freq[t];
  }
  // Rank-0 keyword much more frequent than mid-rank ones.
  EXPECT_GT(freq[0], 4 * std::max(freq[60], 1u));
}

TEST(RealLikeTest, RatingsConcentratedHigh) {
  RealLikeConfig cfg;
  cfg.scale = 0.1;
  Dataset ds = GenerateRealLike(cfg);
  double sum = 0;
  for (const FeatureObject& f : ds.feature_tables[0].All()) sum += f.score;
  double mean = sum / ds.feature_tables[0].size();
  EXPECT_GT(mean, 0.6);
  EXPECT_LT(mean, 0.8);
}

TEST(RealLikeTest, FewBigClustersVsSyntheticManySmall) {
  // The paper attributes real-vs-synthetic cost differences to cluster
  // structure; verify the real-like data is far more concentrated by
  // comparing the fraction of occupied grid cells.
  RealLikeConfig rcfg;
  rcfg.scale = 0.2;
  Dataset real = GenerateRealLike(rcfg);
  SyntheticConfig scfg;
  scfg.num_objects = static_cast<uint32_t>(real.objects.size());
  scfg.num_features_per_set = 100;
  Dataset synth = GenerateSynthetic(scfg);
  auto occupied_cells = [](const std::vector<DataObject>& objs) {
    std::set<int> cells;
    for (const DataObject& o : objs) {
      cells.insert(static_cast<int>(o.pos.x * 50) * 64 +
                   static_cast<int>(o.pos.y * 50));
    }
    return cells.size();
  };
  EXPECT_LT(occupied_cells(real.objects), occupied_cells(synth.objects) / 2);
}

TEST(QueryGenTest, RespectsConfig) {
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.num_features_per_set = 500;
  cfg.num_feature_sets = 3;
  cfg.vocabulary_size = 64;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 20;
  qcfg.k = 7;
  qcfg.radius = 0.025;
  qcfg.lambda = 0.3;
  qcfg.keywords_per_set = 5;
  qcfg.variant = ScoreVariant::kInfluence;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  ASSERT_EQ(queries.size(), 20u);
  for (const Query& q : queries) {
    EXPECT_EQ(q.k, 7u);
    EXPECT_DOUBLE_EQ(q.radius, 0.025);
    EXPECT_DOUBLE_EQ(q.lambda, 0.3);
    EXPECT_EQ(q.variant, ScoreVariant::kInfluence);
    ASSERT_EQ(q.keywords.size(), 3u);
    for (const KeywordSet& w : q.keywords) {
      EXPECT_EQ(w.Count(), 5u);
      EXPECT_EQ(w.universe_size(), 64u);
    }
  }
}

TEST(QueryGenTest, DeterministicAndSeedSensitive) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.num_features_per_set = 200;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 5;
  std::vector<Query> a = GenerateQueries(ds, qcfg);
  std::vector<Query> b = GenerateQueries(ds, qcfg);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords[0], b[i].keywords[0]);
  }
  qcfg.seed = 123;
  std::vector<Query> c = GenerateQueries(ds, qcfg);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].keywords[0] == c[i].keywords[0])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QueryGenTest, KeywordsFollowDataDistribution) {
  // Popular feature keywords must be queried more often than rare ones.
  RealLikeConfig cfg;
  cfg.scale = 0.1;
  Dataset ds = GenerateRealLike(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 300;
  qcfg.keywords_per_set = 2;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  std::vector<uint32_t> qfreq(130, 0);
  for (const Query& q : queries) {
    for (TermId t : q.keywords[0].ToTerms()) ++qfreq[t];
  }
  uint32_t head = qfreq[0] + qfreq[1] + qfreq[2];
  uint32_t tail = 0;
  for (int t = 100; t < 130; ++t) tail += qfreq[t];
  EXPECT_GT(head, tail);
}

TEST(QueryGenTest, MatchingFeaturesExist) {
  // Data-distributed keywords guarantee at least one relevant feature per
  // queried set (the terms were taken from actual features).
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 20;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (const Query& q : queries) {
    for (size_t i = 0; i < 2; ++i) {
      bool any = false;
      for (const FeatureObject& f : ds.feature_tables[i].All()) {
        if (f.keywords.Intersects(q.keywords[i])) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

}  // namespace
}  // namespace stpq
