#!/usr/bin/env python3
"""Self-test for tools/stpq_lint.py and tools/check_lint_baseline.py.

Three layers, all run via ctest (see tests/CMakeLists.txt):

 1. Fixture goldens: lint tests/lint/fixtures/ and compare the stable
    finding keys (active and suppressed) against expected_findings.json.
    Every rule has a firing case, a clean case, and a suppressed case.
 2. Seeded-violation negative test: copy two real project files into a
    temp tree, confirm they lint clean in isolation, then append one
    violation per rule and confirm each rule fires.  This guards against
    the linter silently going blind on real-world code shapes rather
    than only on hand-built fixtures.
 3. Ratchet: check_lint_baseline.py accepts equal/shrunk baselines and
    rejects grown ones.

Exit code 0 on success; prints a diff and exits 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

FAILURES = []


def check(cond, label, detail=""):
    if cond:
        print(f"ok   {label}")
    else:
        print(f"FAIL {label}{': ' + detail if detail else ''}")
        FAILURES.append(label)


def run_lint(lint, extra, cwd):
    """Runs stpq_lint with a JSON report; returns (exit_code, report)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        report_path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, lint, "--json", report_path] + extra,
            cwd=cwd, capture_output=True, text=True)
        with open(report_path, encoding="utf-8") as fh:
            report = json.load(fh)
        return proc.returncode, report
    finally:
        os.unlink(report_path)


def keys(report, *, suppressed):
    return sorted(f["key"] for f in report["findings"]
                  if f["suppressed"] == suppressed)


def test_fixture_goldens(root, lint):
    golden = json.load(open(os.path.join(root, "tests/lint",
                                         "expected_findings.json"),
                            encoding="utf-8"))
    code, report = run_lint(
        lint, ["--sources", "tests/lint/fixtures", "--project-root", "."],
        cwd=root)
    active = keys(report, suppressed=False)
    suppressed = keys(report, suppressed=True)
    check(active == sorted(golden["active"]), "fixture active findings",
          f"\n  got:      {active}\n  expected: "
          f"{sorted(golden['active'])}")
    check(suppressed == sorted(golden["suppressed"]),
          "fixture suppressed findings",
          f"\n  got:      {suppressed}\n  expected: "
          f"{sorted(golden['suppressed'])}")
    check(code == 1, "fixture run exits 1 (new findings, no baseline)",
          f"exit={code}")

    # With the goldens as baseline the same run must pass.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"version": 1, "findings": golden["active"]}, tmp)
        baseline = tmp.name
    try:
        code2, _ = run_lint(
            lint, ["--sources", "tests/lint/fixtures", "--project-root",
                   ".", "--baseline", baseline], cwd=root)
        check(code2 == 0, "fixture run exits 0 against matching baseline",
              f"exit={code2}")
    finally:
        os.unlink(baseline)


SEEDS_CC = """
namespace stpq {
STPQ_HOT int LintSeedHot() { return *new int(1); }  // hot-alloc
long LintSeedClock() {  // raw-clock
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace stpq
"""

SEEDS_H = """
namespace stpq {
std::priority_queue<int> LintSeedHeap();  // priority-queue
Status LintSeedStatus();  // nodiscard-status (public, header, no attr)
class LintSeedLock {
 private:
  Mutex mu_;  // mutex-guard
};
}  // namespace stpq
"""


def test_seeded_violations(root, lint):
    """Real project files must lint clean as copies, then light up all
    five rules once violations are seeded into them."""
    victims = ["src/core/voronoi_cache.cc", "src/core/voronoi_cache.h"]
    with tempfile.TemporaryDirectory() as tree:
        for rel in victims:
            dst = os.path.join(tree, os.path.basename(rel))
            shutil.copy(os.path.join(root, rel), dst)
        code, report = run_lint(
            lint, ["--sources", ".", "--project-root", "."], cwd=tree)
        check(code == 0 and not report["findings"],
              "unseeded copies lint clean",
              f"exit={code} findings={keys(report, suppressed=False)}")

        with open(os.path.join(tree, "voronoi_cache.cc"), "a",
                  encoding="utf-8") as fh:
            fh.write(SEEDS_CC)
        with open(os.path.join(tree, "voronoi_cache.h"), "a",
                  encoding="utf-8") as fh:
            fh.write(SEEDS_H)
        code, report = run_lint(
            lint, ["--sources", ".", "--project-root", "."], cwd=tree)
        fired = {f["rule"] for f in report["findings"]
                 if not f["suppressed"]}
        expected = {"hot-alloc", "priority-queue", "mutex-guard",
                    "raw-clock", "nodiscard-status"}
        check(code == 1, "seeded copies fail the lint", f"exit={code}")
        check(fired >= expected, "every rule fires on seeded violations",
              f"missing: {sorted(expected - fired)}")


def test_ratchet(root, checker):
    old = {"version": 1, "findings": ["r|a|x", "r|b|y"]}
    cases = [
        ("equal baseline accepted", old["findings"], 0),
        ("shrunk baseline accepted", old["findings"][:1], 0),
        ("grown baseline rejected", old["findings"] + ["r|c|z"], 1),
    ]
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        json.dump(old, open(old_path, "w", encoding="utf-8"))
        for label, findings, want in cases:
            new_path = os.path.join(tmp, "new.json")
            json.dump({"version": 1, "findings": findings},
                      open(new_path, "w", encoding="utf-8"))
            proc = subprocess.run(
                [sys.executable, checker, "--old", old_path,
                 "--new", new_path],
                capture_output=True, text=True)
            check(proc.returncode == want, f"ratchet: {label}",
                  f"exit={proc.returncode}, want {want}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up)")
    args = ap.parse_args()
    root = os.path.abspath(args.root or os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir))
    lint = os.path.join(root, "tools", "stpq_lint.py")
    checker = os.path.join(root, "tools", "check_lint_baseline.py")

    test_fixture_goldens(root, lint)
    test_seeded_violations(root, lint)
    test_ratchet(root, checker)

    if FAILURES:
        print(f"{len(FAILURES)} lint self-test failure(s)")
        return 1
    print("all lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
