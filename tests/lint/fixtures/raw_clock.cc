// stpq_lint fixture: the raw-clock rule.  Timing must flow through the
// obs/ layer (Timer, PhaseTimer, Tracer), not raw chrono clocks.
// Never compiled — linter input only.
#include <chrono>

namespace fixture {

long Naked() {
  auto t0 = std::chrono::steady_clock::now();  // finding
  auto t1 = std::chrono::high_resolution_clock::now();  // finding
  return (t1 - t0).count();
}

long Wall() {
  return std::chrono::system_clock::now()  // finding
      .time_since_epoch()
      .count();
}

long Suppressed() {
  // stpq-lint: allow(raw-clock) fixture: one-off calibration probe
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
