// stpq_lint fixture: the mutex-guard rule.  Every owned mutex member must
// appear in a GUARDED_BY relationship (or carry a reasoned suppression).
// Never compiled — linter input only.
#pragma once

namespace fixture {

class Unguarded {
 public:
  void Touch();

 private:
  Mutex mu_;  // finding: protects nothing on record
  int value_ = 0;
};

class Guarded {
 public:
  void Touch() STPQ_EXCLUDES(mu_);

 private:
  Mutex mu_;  // clean: value_ names it
  int value_ STPQ_GUARDED_BY(mu_) = 0;
};

class StdGuarded {
 private:
  std::mutex raw_mu_;  // clean: table_ names it
  int table_ STPQ_GUARDED_BY(raw_mu_) = 0;
};

class SuppressedOrdering {
 private:
  // stpq-lint: allow(mutex-guard) fixture: pure ordering lock
  Mutex order_mu_;
};

class Holder {
 private:
  Mutex& borrowed_;  // clean: references don't own the capability
};

}  // namespace fixture
