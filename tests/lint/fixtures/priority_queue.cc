// stpq_lint fixture: the priority-queue rule.  std::priority_queue owns a
// heap-allocated vector; query code borrows BorrowedHeap from session
// scratch instead.  Never compiled — linter input only.
#include <queue>

namespace fixture {

class Merger {
 public:
  void Push(int v) { heap_.push(v); }

 private:
  std::priority_queue<int> heap_;  // finding
};

int DrainLocal() {
  std::priority_queue<int> local;  // finding
  local.push(3);
  return local.top();
}

// stpq-lint: allow(priority-queue) fixture: suppressed occurrence
using SuppressedHeap = std::priority_queue<int>;

}  // namespace fixture
