// stpq_lint fixture: the hot-alloc rule.  Tagged functions and everything
// they transitively call must not allocate.  This file is never compiled;
// it only feeds the linter's frontend (see tests/lint/run_lint_tests.py).
#include <vector>

namespace fixture {

int LeafAllocates() {
  auto* p = new int(7);  // finding: new inside the hot closure
  int v = *p;
  delete p;
  return v;
}

int MiddleCallsLeaf() { return LeafAllocates(); }

STPQ_HOT int HotRoot() {
  std::vector<int> locals;  // finding: owning container local in hot code
  locals.push_back(MiddleCallsLeaf());
  return static_cast<int>(locals.size());
}

STPQ_HOT int HotButClean(const std::vector<int>& scratch) {
  // References to containers are fine: the caller owns the storage.
  int sum = 0;
  for (int x : scratch) sum += x;
  return sum;
}

// stpq-lint: allow(hot-alloc) fixture: function-level suppression
STPQ_HOT int HotSuppressed() { return *new int(1); }

int ColdAllocates() {
  // Not reachable from any STPQ_HOT root: no finding.
  return *new int(2);
}

}  // namespace fixture
