// stpq_lint fixture: the nodiscard-status rule.  Public header functions
// returning Status or Result<T> must be [[nodiscard]] so dropped errors
// fail the build.  Never compiled — linter input only.
#pragma once

namespace fixture {

Status OpenThing(int id);                  // finding
Result<int> CountThings();                 // finding
[[nodiscard]] Status CloseThing(int id);   // clean
[[nodiscard]] Result<int> SizeThing();     // clean
void Fire(int id);                         // clean: no Status involved

class Gadget {
 public:
  Status Arm();                 // finding
  [[nodiscard]] Status Fuse();  // clean

 private:
  Status Prime();  // clean: rule covers the public surface only
};

}  // namespace fixture
